"""Stress the paper's assumptions: partitions, quorums, total failure.

The nonblocking theorem holds inside a precise model: reliable network,
reliable failure detection, and at least one operational site.  This
drill walks the three boundaries of that model:

1. **Partition** (out of model): the detector mistakes unreachability
   for death, both halves of a 3PC terminate independently, and the
   decision splits — the famous 3PC weakness.
2. **Quorum termination** (extension): the same partition with
   majority-gated termination: the minority blocks, the majority
   decides, atomicity survives.  The cost: a lone survivor of genuine
   crashes now blocks too.
3. **Total failure** (the paper's declared limit): everyone crashes in
   doubt; the baseline stays undecided forever, while the
   total-failure-recovery extension aborts safely once every
   participant proves itself recovered-in-doubt.

Run with::

    python examples/assumption_stress.py
"""

from repro import CommitRun, catalog
from repro.runtime.decision import TerminationRule
from repro.types import Outcome
from repro.viz import render_run
from repro.workload.crashes import CrashAt

N = 4


def show(title: str, run) -> None:
    print(f"--- {title} ---")
    outcomes = {s: r.outcome.value for s, r in sorted(run.reports.items())}
    print(f"  outcomes: {outcomes}")
    print(f"  atomic:   {run.atomic}")
    if run.blocked_sites:
        print(f"  blocked:  {run.blocked_sites}")
    print()


def main() -> None:
    spec = catalog.build("3pc-central", N)
    rule = TerminationRule(spec)
    groups = [{1, 2}, {3, 4}]

    # 1. Partition under the paper's protocol: split decision.
    split = CommitRun(
        spec, rule=rule, partition_at=3.2, partition_groups=groups
    ).execute()
    show("partition, standard termination (OUT OF MODEL)", split)
    assert not split.atomic, "the split-brain is the point of this demo"

    # 2a. Same partition, quorum termination: minorities block, atomic.
    quorum = CommitRun(
        spec,
        rule=rule,
        termination_mode="quorum",
        partition_at=3.2,
        partition_groups=groups,
    ).execute()
    show("partition, quorum termination", quorum)
    assert quorum.atomic

    # 2b. The price: a cascade of real crashes leaves the survivor blocked.
    cascade = [CrashAt(site=i, at=2.0 + 2.0 * i) for i in (1, 2, 3)]
    lone = CommitRun(
        spec, crashes=cascade, rule=rule, termination_mode="quorum"
    ).execute()
    show("crash cascade, quorum termination (survivor blocks)", lone)
    assert lone.reports[4].outcome is Outcome.UNDECIDED

    # 3. Total failure, with and without the recovery extension.
    spec_d = catalog.build("3pc-decentralized", 3)
    rule_d = TerminationRule(spec_d)
    wave = [CrashAt(site=s, at=1.5, restart_at=20.0 + s) for s in spec_d.sites]
    baseline = CommitRun(
        spec_d, crashes=wave, rule=rule_d, max_time=120.0
    ).execute()
    show("total failure, paper baseline (stays in doubt)", baseline)

    extended = CommitRun(
        spec_d,
        crashes=wave,
        rule=rule_d,
        total_failure_recovery=True,
        max_time=120.0,
    ).execute()
    show("total failure, recovery extension", extended)
    assert set(extended.outcomes().values()) == {Outcome.ABORT}

    print("swimlanes of the split-brain run, for the curious:")
    print(render_run(split))


if __name__ == "__main__":
    main()
