"""Kill -9 a real coordinator and watch 3PC not care.

This example runs the paper's headline claim outside the simulator:
three actual `repro serve` processes on loopback TCP, each with a
durable fsynced DT log, running the same FSA/termination/recovery code
the simulator executes.  The coordinator is SIGKILLed the instant its
3PC prepare broadcast is flushed — the worst moment the paper's
analysis identifies — and the survivors commit anyway via the
termination protocol.  Then the same scenario under 2PC: the survivors
block, exactly as Theorem 2 predicts, until the coordinator's
restarted incarnation resolves the transaction.

Run it:

    PYTHONPATH=src python examples/live_cluster.py
"""

import tempfile
from pathlib import Path

from repro.live.cluster import (
    ClusterConfig,
    ClusterHarness,
    kill_coordinator_scenario,
)


def drill(spec_name: str, work_dir: Path) -> None:
    print(f"--- {spec_name}: kill -9 the coordinator mid-broadcast ---")
    config = ClusterConfig(spec_name=spec_name, n_sites=3, data_dir=work_dir / spec_name)
    with ClusterHarness(config) as harness:
        result = kill_coordinator_scenario(harness)
    if result.survivors_blocked:
        print("survivors while the coordinator was dead: BLOCKED (undecided)")
    else:
        outcomes = sorted(set(result.survivor_outcomes.values()))
        print(
            "survivors decided without the coordinator: "
            f"{', '.join(outcomes)} in {result.survivor_decision_s:.2f}s"
        )
    finals = {site: outcome for site, outcome in sorted(result.final_outcomes.items())}
    print(f"after the coordinator restarted (boot {result.coordinator_boot}): {finals}")
    print(f"atomic: {len(set(finals.values())) == 1}")
    print()


def main() -> None:
    print("live cluster drill: real processes, real TCP, real SIGKILL")
    print()
    with tempfile.TemporaryDirectory(prefix="repro-live-example-") as tmp:
        work_dir = Path(tmp)
        # 3PC: nonblocking — survivors terminate to COMMIT on their own.
        drill("3pc-central", work_dir)
        # 2PC: blocking — survivors freeze until the coordinator returns.
        drill("2pc-central", work_dir)
    print("the difference is the paper's thesis: 3PC's extra phase makes")
    print("the commit point survivable; 2PC's window makes it a hostage.")


if __name__ == "__main__":
    main()
