"""Outage drill: cascading coordinator failures and full recovery.

The worst case slide 37 contemplates: the coordinator dies, the first
backup dies mid-termination, the next backup dies too — until a single
operational site remains.  The drill then restarts every crashed site
and lets the recovery protocol bring each one to the same outcome.

Run with::

    python examples/outage_drill.py
"""

from repro import CommitRun, catalog
from repro.types import Outcome
from repro.workload.crashes import CrashAt

N_SITES = 5


def main() -> None:
    spec = catalog.build("3pc-central", N_SITES)

    # Coordinator dies at t=2 (votes collected, decision unsent); every
    # newly elected backup (sites 2, 3, 4 under the lowest-id election)
    # is assassinated mid-termination; all crashed sites restart later.
    crashes = [CrashAt(site=1, at=2.0, restart_at=60.0)]
    for i, backup in enumerate((2, 3, 4)):
        crashes.append(CrashAt(site=backup, at=4.0 + 3.0 * i, restart_at=60.0 + backup))

    run = CommitRun(spec, crashes=crashes).execute()

    print("drill timeline (failures, elections, decisions, recoveries):")
    interesting = ("site.crash", "site.restart", "term.", "recovery.", "site.decided")
    for entry in run.trace.entries:
        if any(
            entry.category == c or (c.endswith(".") and entry.category.startswith(c))
            for c in interesting
        ):
            print(" ", entry.format())
    print()

    print("final state:")
    for site, report in sorted(run.reports.items()):
        print(
            f"  site {site}: {report.outcome.value:9s} via "
            f"{report.via or '—':12s} crashed={report.crashed} "
            f"alive={report.alive}"
        )

    assert run.atomic, "outcomes must never mix"
    survivor = run.reports[N_SITES]
    assert survivor.outcome.is_final, "the sole survivor must terminate"
    recovered = [r for r in run.reports.values() if r.crashed]
    assert all(r.outcome is run.reports[N_SITES].outcome for r in recovered), (
        "every recovered site must agree with the survivor"
    )
    print()
    print(
        f"all {len(recovered)} crashed sites recovered to "
        f"'{survivor.outcome.value}', matching the lone survivor — "
        "nonblocking termination plus log-based recovery."
    )


if __name__ == "__main__":
    main()
