"""Design your own commit protocol — and let the paper fix it.

This example walks the paper's design method end to end on a protocol
built from scratch with the public FSA API (not from the catalog):

1. define a bespoke central-site two-phase protocol;
2. analyze it: reachable states, concurrency sets, committable states,
   the fundamental nonblocking theorem — it blocks, of course;
3. apply buffer-state synthesis (slide 34's method, mechanized);
4. re-verify: the synthesized protocol is nonblocking, and it is
   structurally the catalog 3PC.

Run with::

    python examples/protocol_designer.py
"""

from repro.analysis import (
    build_state_graph,
    check_nonblocking,
    check_synchronicity,
    concurrency_table,
    insert_buffer_states,
)
from repro.analysis.committable import committable_labels
from repro.analysis.concurrency import format_concurrency_table
from repro.analysis.synthesis import specs_structurally_equal
from repro.fsa import EXTERNAL, Msg, ProtocolSpec, SiteAutomaton, Transition
from repro.fsa.messages import fan_in, fan_out
from repro.fsa.render import format_spec
from repro.protocols.three_phase_central import central_three_phase
from repro.types import ProtocolClass, SiteId, Vote

N_SITES = 3
COORD = SiteId(1)


def design_my_2pc() -> ProtocolSpec:
    """A hand-rolled central-site 2PC built from the public FSA API."""
    slaves = [SiteId(i) for i in range(2, N_SITES + 1)]

    coordinator = SiteAutomaton(
        site=COORD,
        role="coordinator",
        initial="q",
        commit_states=["c"],
        abort_states=["a"],
        transitions=[
            Transition(
                "q",
                "w",
                reads=frozenset({Msg("request", EXTERNAL, COORD)}),
                writes=fan_out("xact", COORD, slaves),
            ),
            Transition(
                "w",
                "c",
                reads=fan_in("yes", slaves, COORD),
                writes=fan_out("commit", COORD, slaves),
                vote=Vote.YES,
            ),
            Transition(
                "w",
                "a",
                reads=fan_in("yes", slaves, COORD),
                writes=fan_out("abort", COORD, slaves),
                vote=Vote.NO,
            ),
            # Unilateral slave aborts: wait for the full vote vector.
            Transition(
                "w",
                "a",
                reads=frozenset(
                    {Msg("no", slaves[0], COORD), Msg("yes", slaves[1], COORD)}
                ),
                writes=fan_out("abort", COORD, slaves),
            ),
            Transition(
                "w",
                "a",
                reads=frozenset(
                    {Msg("yes", slaves[0], COORD), Msg("no", slaves[1], COORD)}
                ),
                writes=fan_out("abort", COORD, slaves),
            ),
            Transition(
                "w",
                "a",
                reads=frozenset(
                    {Msg("no", slaves[0], COORD), Msg("no", slaves[1], COORD)}
                ),
                writes=fan_out("abort", COORD, slaves),
            ),
        ],
    )

    automata = {COORD: coordinator}
    for site in slaves:
        automata[site] = SiteAutomaton(
            site=site,
            role="slave",
            initial="q",
            commit_states=["c"],
            abort_states=["a"],
            transitions=[
                Transition(
                    "q",
                    "w",
                    reads=frozenset({Msg("xact", COORD, site)}),
                    writes=(Msg("yes", site, COORD),),
                    vote=Vote.YES,
                ),
                Transition(
                    "q",
                    "a",
                    reads=frozenset({Msg("xact", COORD, site)}),
                    writes=(Msg("no", site, COORD),),
                    vote=Vote.NO,
                ),
                Transition(
                    "w", "c", reads=frozenset({Msg("commit", COORD, site)})
                ),
                Transition(
                    "w", "a", reads=frozenset({Msg("abort", COORD, site)})
                ),
            ],
        )

    return ProtocolSpec(
        name="my hand-rolled 2PC",
        protocol_class=ProtocolClass.CENTRAL_SITE,
        automata=automata,
        initial_messages=[Msg("request", EXTERNAL, COORD)],
        coordinator=COORD,
    )


def main() -> None:
    spec = design_my_2pc()
    print(format_spec(spec))
    print()

    graph = build_state_graph(spec)
    print(f"reachable global states: {len(graph)} (edges: {graph.edge_count})")
    print(f"deadlocked: {len(graph.deadlocked_states())}, "
          f"inconsistent: {len(graph.inconsistent_states())}")
    print()

    print("concurrency sets at slave site 2:")
    print(format_concurrency_table(concurrency_table(graph, SiteId(2))))
    print("committable states:", sorted(committable_labels(graph, SiteId(2))))
    print()

    report = check_nonblocking(spec, graph=graph)
    print(report.describe())
    print()

    sync = check_synchronicity(spec)
    assert sync.synchronous_within_one, "the design method needs this property"

    fixed = insert_buffer_states(spec)
    fixed_report = check_nonblocking(fixed)
    print(f"after buffer-state synthesis: nonblocking = "
          f"{fixed_report.nonblocking}, tolerates "
          f"{fixed_report.tolerated_failures} failures")

    reference = central_three_phase(N_SITES)
    print(
        "synthesized protocol structurally equals the catalog 3PC:",
        specs_structurally_equal(fixed, reference),
    )


if __name__ == "__main__":
    main()
