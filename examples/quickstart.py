"""Quickstart: analyze a protocol, run it, crash the coordinator.

Demonstrates the core loop of the library in ~40 lines:

1. build a catalog protocol (the nonblocking central-site 3PC);
2. check the fundamental nonblocking theorem on it;
3. simulate a commit with a mid-protocol coordinator crash and watch
   the termination protocol carry the survivors to a consistent end.

Run with::

    python examples/quickstart.py
"""

from repro import CommitRun, catalog, check_nonblocking
from repro.workload.crashes import CrashAt


def main() -> None:
    # 1. Build the nonblocking central-site 3PC over five sites.
    spec = catalog.build("3pc-central", 5)

    # 2. Prove (exhaustively) that it cannot block: the theorem checker
    #    enumerates every reachable global state, derives concurrency
    #    sets, and verifies both conditions at every site.
    report = check_nonblocking(spec)
    print(report.describe())
    print()

    # 3. Run a transaction and kill the coordinator mid-protocol.  The
    #    failure detector notifies the slaves, a backup coordinator is
    #    elected, and the decision rule terminates everyone safely.
    run = CommitRun(spec, crashes=[CrashAt(site=1, at=2.0)]).execute()

    print("timeline (termination protocol events):")
    for entry in run.trace.select(category="term."):
        print(" ", entry.format())
    print()

    print("final outcomes:")
    for site, site_report in sorted(run.reports.items()):
        status = site_report.outcome.value
        if not site_report.alive:
            status += " (site down)"
        elif site_report.via:
            status += f" via {site_report.via}"
        print(f"  site {site}: {status}")

    print()
    print(f"atomic: {run.atomic}   duration: {run.duration:g} time units")
    assert run.atomic, "nonblocking 3PC must never mix outcomes"
    operational_decided = all(
        r.outcome.is_final for r in run.reports.values() if r.alive
    )
    assert operational_decided, "3PC survivors must all terminate"
    print("every operational site terminated despite the failure — "
          "the nonblocking property in action.")


if __name__ == "__main__":
    main()
