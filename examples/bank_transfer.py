"""Bank transfers over a distributed database: 2PC vs 3PC under failure.

The scenario the paper's introduction motivates: a database partitioned
across sites, transactions spanning several of them, and a site failure
at the worst possible moment.  The same stream of transfers runs twice
— once committing through 2PC, once through 3PC — with the commit
coordinator crashing during one transfer.

Watch three things:

* both protocols keep the money consistent (atomicity holds);
* under 2PC the in-flight transfer ends BLOCKED with its locks held, so
  every later transfer on those accounts stalls and dies;
* under 3PC the termination protocol resolves the in-flight transfer
  and the stream continues.

Run with::

    python examples/bank_transfer.py
"""

from repro.db import DistributedDB
from repro.types import Outcome, SiteId
from repro.workload.crashes import CrashAt

ACCOUNTS = {"checking": SiteId(1), "savings": SiteId(2), "fees": SiteId(3)}
OPENING_BALANCE = 1_000
TRANSFERS = 12
CRASH_DURING = 4  # The coordinator dies during this transfer's commit.


def run_stream(protocol: str) -> None:
    print(f"--- {protocol} ---")
    db = DistributedDB(4, protocol=protocol, placement=ACCOUNTS)
    db.run_transaction(
        0,
        [
            ("w", "checking", OPENING_BALANCE),
            ("w", "savings", OPENING_BALANCE),
            ("w", "fees", 0),
        ],
    )

    committed = stalled = blocked = 0
    for i in range(1, TRANSFERS + 1):
        amount = 10 * i
        ops = [
            ("r", "checking"),
            ("w", "checking", OPENING_BALANCE - amount),
            ("r", "savings"),
            ("w", "savings", OPENING_BALANCE + amount - 1),
            ("r", "fees"),
            ("w", "fees", i),
        ]
        crashes = [CrashAt(site=1, at=2.0)] if i == CRASH_DURING else []
        outcome = db.run_transaction(i, ops, crashes=crashes)
        if outcome.outcome is Outcome.COMMIT:
            committed += 1
            tag = "committed"
        elif outcome.outcome is Outcome.BLOCKED:
            blocked += 1
            tag = "BLOCKED (locks held at undecided sites)"
        else:
            tag = f"aborted ({outcome.reason})"
            if outcome.reason == "stalled":
                stalled += 1
        marker = "  <- coordinator crash" if i == CRASH_DURING else ""
        print(f"  transfer {i:2d}: {tag}{marker}")

    print(
        f"  => {committed}/{TRANSFERS} committed, {blocked} blocked, "
        f"{stalled} stalled behind held locks"
    )
    print(
        "  balances:",
        {name: db.get(name) for name in ("checking", "savings", "fees")},
    )
    print()


def main() -> None:
    run_stream("2pc-central")
    run_stream("3pc-central")
    print(
        "Same failure, same workload: the blocking protocol freezes the "
        "accounts; the nonblocking protocol keeps the bank open."
    )


if __name__ == "__main__":
    main()
