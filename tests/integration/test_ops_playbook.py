"""Operational playbook scenarios: the tooling working together.

Each test is a workflow an operator of this library would actually run:
capture a campaign, replay a suspicious run with swimlanes, audit it,
summarize a fleet-wide sweep.
"""

import pytest

from repro.analysis.conformance import audit_run
from repro.metrics import summarize_runs
from repro.protocols import catalog
from repro.runtime.decision import TerminationRule
from repro.runtime.harness import CommitRun
from repro.runtime.multi import MultiCommitRun
from repro.types import Outcome, TransactionId
from repro.viz import render_run
from repro.workload.crashes import CrashAt
from repro.workload.generator import WorkloadGenerator
from repro.workload.serialize import campaign_from_json, campaign_to_json


class TestCaptureAndReplay:
    def test_full_capture_replay_audit_cycle(self, tmp_path):
        spec = catalog.build("3pc-central", 4)
        generator = WorkloadGenerator(spec, seed=31, p_no=0.2, p_crash=0.4)

        # 1. Run a campaign and serialize it.
        transactions = list(generator.transactions(20))
        path = tmp_path / "campaign.json"
        path.write_text(campaign_to_json(transactions))

        # 2. Replay from disk: results must match the originals.
        replayed = campaign_from_json(path.read_text())
        for original, copy in zip(transactions, replayed):
            a = generator.run(original)
            b = generator.run(copy)
            assert a.outcomes() == b.outcomes()

        # 3. Every replayed run passes the conformance audit.
        for txn in replayed:
            assert audit_run(generator.run(txn), spec) == []

    def test_summary_over_mixed_protocols(self):
        rows = {}
        for name in ("2pc-central", "3pc-central"):
            spec = catalog.build(name, 4)
            generator = WorkloadGenerator(spec, seed=13, p_crash=0.5)
            rows[name] = summarize_runs(generator.campaign(40))
        # The summaries expose the paper's contrast numerically.
        assert rows["2pc-central"].blocked_fraction > 0
        assert rows["3pc-central"].blocked_fraction == 0
        assert rows["2pc-central"].violations == 0
        assert rows["3pc-central"].violations == 0


class TestIncidentForensics:
    def test_swimlane_of_a_blocked_incident_shows_the_story(self):
        spec = catalog.build("2pc-central", 3)
        rule = TerminationRule(spec)
        run = CommitRun(
            spec, crashes=[CrashAt(site=1, at=2.0)], rule=rule
        ).execute()
        lanes = render_run(run)
        # The postmortem reads off the diagram: crash, detection round,
        # and the blocked verdict.
        assert "CRASH" in lanes
        assert "[round]" in lanes
        assert "[blocked]" in lanes
        assert "COMMIT!" not in lanes

    def test_multi_run_incident_isolates_the_window(self):
        spec = catalog.build("3pc-central", 4)
        rule = TerminationRule(spec)
        run = MultiCommitRun(
            spec,
            start_times=[0.0, 3.0, 20.0],
            crashes=[CrashAt(site=1, at=4.0)],
            rule=rule,
        ).execute()
        # Txn 1 finished pre-crash; txn 2 was in flight (terminated);
        # txn 3 started after the crash with a dead coordinator — the
        # slaves never hear about it and terminate it by rule.
        assert run.atomic
        first = run.per_transaction[TransactionId(1)]
        assert Outcome.COMMIT in first.decided_outcomes()
        second = run.per_transaction[TransactionId(2)]
        assert second.decided_outcomes() == {Outcome.ABORT}

    def test_audit_attached_to_every_incident(self):
        spec = catalog.build("3pc-central", 4)
        rule = TerminationRule(spec)
        for crash_time in (0.5, 2.0, 3.5, 5.0):
            run = CommitRun(
                spec,
                crashes=[CrashAt(site=1, at=crash_time, restart_at=40.0)],
                rule=rule,
            ).execute()
            assert audit_run(run, spec) == [], f"crash at {crash_time}"
