"""Integration scenarios: multi-component, end-to-end stories.

Each test tells one complete story across the stack — FSA spec, network,
engine, termination, recovery, and (for the database scenarios) WAL and
locks — and asserts the global outcome the paper predicts.
"""

import pytest

from repro.db.distributed import DistributedDB
from repro.net.latency import PerLinkLatency, UniformLatency
from repro.protocols import catalog
from repro.runtime.decision import TerminationRule
from repro.runtime.harness import CommitRun
from repro.runtime.policies import BernoulliVotes, FixedVotes
from repro.types import Outcome, SiteId, Vote
from repro.workload.crashes import CrashAt, CrashDuringTransition
from repro.workload.generator import WorkloadGenerator


class TestFullCommitStories:
    def test_five_site_3pc_with_random_latency(self):
        spec = catalog.build("3pc-central", 5)
        run = CommitRun(
            spec,
            seed=11,
            latency=UniformLatency(0.2, 2.5),
            termination_enabled=False,
        ).execute()
        assert set(run.outcomes().values()) == {Outcome.COMMIT}
        assert run.atomic

    def test_straggler_link_delays_but_does_not_break(self):
        spec = catalog.build("3pc-central", 4)
        slow = PerLinkLatency({(1, 4): 10.0, (4, 1): 10.0}, default=1.0)
        run = CommitRun(spec, latency=slow, termination_enabled=False).execute()
        assert set(run.outcomes().values()) == {Outcome.COMMIT}
        fast = CommitRun(
            spec, termination_enabled=False
        ).execute()
        assert run.duration > fast.duration

    def test_mixed_votes_under_randomized_latency(self):
        spec = catalog.build("2pc-decentralized", 4)
        run = CommitRun(
            spec,
            seed=3,
            latency=UniformLatency(0.5, 1.5),
            vote_policy=FixedVotes({SiteId(3): Vote.NO}),
            termination_enabled=False,
        ).execute()
        assert set(run.outcomes().values()) == {Outcome.ABORT}


class TestWorstCaseCascade:
    def test_kill_every_backup_in_turn(self):
        spec = catalog.build("3pc-central", 6)
        rule = TerminationRule(spec)
        crashes = [CrashAt(site=1, at=2.0)]
        for i, backup in enumerate((2, 3, 4, 5)):
            crashes.append(CrashAt(site=backup, at=4.0 + 3.0 * i))
        run = CommitRun(spec, crashes=crashes, rule=rule).execute()
        survivor = run.reports[6]
        assert survivor.alive and survivor.outcome.is_final
        assert run.atomic

    def test_cascade_then_everyone_recovers(self):
        spec = catalog.build("3pc-central", 4)
        rule = TerminationRule(spec)
        run = CommitRun(
            spec,
            crashes=[
                CrashAt(site=1, at=2.0, restart_at=50.0),
                CrashAt(site=2, at=4.5, restart_at=55.0),
            ],
            rule=rule,
        ).execute()
        # Everyone — survivors and recovered sites — holds one outcome.
        outcomes = {r.outcome for r in run.reports.values()}
        assert len(outcomes) == 1
        assert next(iter(outcomes)).is_final


class TestMassCampaigns:
    @pytest.mark.parametrize("name", catalog.protocol_names())
    def test_hundred_randomized_runs_stay_atomic(self, name):
        spec = catalog.build(name, 4)
        generator = WorkloadGenerator(
            spec, seed=23, p_no=0.15, p_crash=0.35, p_partial=0.3
        )
        for result in generator.campaign(100):
            result.assert_atomic()

    @pytest.mark.parametrize("name", ["3pc-central", "3pc-decentralized"])
    def test_hundred_randomized_runs_never_block_3pc(self, name):
        spec = catalog.build(name, 4)
        generator = WorkloadGenerator(spec, seed=29, p_no=0.1, p_crash=0.4)
        for result in generator.campaign(100):
            assert result.blocked_sites == []
            for report in result.reports.values():
                if report.alive and not report.crashed:
                    assert report.outcome.is_final

    def test_bernoulli_vote_campaign(self):
        spec = catalog.build("2pc-central", 4)
        rule = TerminationRule(spec)
        outcomes = set()
        for seed in range(30):
            run = CommitRun(
                spec,
                seed=seed,
                vote_policy=BernoulliVotes(0.3, seed=seed),
                rule=rule,
            ).execute()
            run.assert_atomic()
            outcomes |= run.decided_outcomes()
        assert outcomes == {Outcome.COMMIT, Outcome.ABORT}


class TestDatabaseEndToEnd:
    def test_money_conserved_across_failure_modes(self):
        db = DistributedDB(
            3,
            protocol="3pc-central",
            placement={"acct:a": SiteId(1), "acct:b": SiteId(2)},
        )
        db.run_transaction(0, [("w", "acct:a", 500), ("w", "acct:b", 500)])
        txn = 1
        for crash in (
            [],
            [CrashAt(site=1, at=2.0)],
            [CrashDuringTransition(site=1, transition_number=2, after_writes=1)],
            [CrashAt(site=2, at=1.5)],
        ):
            a = db.get("acct:a")
            b = db.get("acct:b")
            outcome = db.run_transaction(
                txn,
                [
                    ("r", "acct:a"),
                    ("w", "acct:a", a - 50),
                    ("r", "acct:b"),
                    ("w", "acct:b", b + 50),
                ],
                crashes=crash,
            )
            assert outcome.outcome in (Outcome.COMMIT, Outcome.ABORT)
            assert db.get("acct:a") + db.get("acct:b") == 1000
            txn += 1

    def test_wal_survives_repeated_site_crashes(self):
        db = DistributedDB(2, placement={"k": SiteId(1)})
        for i in range(5):
            db.run_transaction(i, [("w", "k", i)])
            classification = db.crash_site(SiteId(1))
            assert i in classification["committed"]
            assert db.get("k") == i

    def test_contended_stream_serializes_correctly(self):
        db = DistributedDB(2, placement={"hot": SiteId(1), "cold": SiteId(2)})
        db.run_transaction(0, [("w", "hot", 0), ("w", "cold", 0)])
        results = db.run_concurrent(
            {
                i: [("r", "hot"), ("w", "hot", i), ("w", "cold", i)]
                for i in range(1, 6)
            }
        )
        committed = [t for t, r in results.items() if r.committed]
        assert committed  # At least one wins.
        assert db.get("hot") == db.get("cold")  # Writes stayed paired.


class TestLargerTopologies:
    def test_eight_site_3pc_cascade_to_last_survivor(self):
        spec = catalog.build("3pc-central", 8)
        rule = TerminationRule(spec)
        crashes = [CrashAt(site=1, at=2.0)]
        for i, backup in enumerate(range(2, 8)):
            crashes.append(CrashAt(site=backup, at=4.0 + 3.0 * i))
        run = CommitRun(spec, crashes=crashes, rule=rule).execute()
        survivor = run.reports[8]
        assert survivor.alive and survivor.outcome.is_final
        assert run.atomic
        # Seven elections happened (one per failure at minimum).
        assert run.trace.count("term.round") >= 7

    def test_ten_site_happy_path_all_protocols(self):
        for name in catalog.protocol_names():
            run = CommitRun(
                catalog.build(name, 10), termination_enabled=False
            ).execute()
            assert set(run.outcomes().values()) == {Outcome.COMMIT}, name

    def test_six_site_decentralized_crash_storm(self):
        spec = catalog.build("3pc-decentralized", 6)
        rule = TerminationRule(spec)
        run = CommitRun(
            spec,
            crashes=[
                CrashAt(site=2, at=0.5),
                CrashAt(site=4, at=1.5),
                CrashAt(site=6, at=2.5),
            ],
            rule=rule,
        ).execute()
        assert run.atomic
        for site in (1, 3, 5):
            assert run.reports[site].outcome.is_final


class TestElectionIntegration:
    def test_termination_with_each_election_strategy(self):
        from repro.election.bully import bully_strategy
        from repro.election.ring import ring_strategy
        from repro.runtime.termination import lowest_id_election

        spec = catalog.build("3pc-central", 4)
        rule = TerminationRule(spec)
        for strategy in (lowest_id_election, bully_strategy, ring_strategy):
            run = CommitRun(
                spec,
                crashes=[CrashAt(site=1, at=2.0)],
                rule=rule,
                elect=strategy,
            ).execute()
            assert run.atomic
            for site in (2, 3, 4):
                assert run.reports[site].outcome.is_final
