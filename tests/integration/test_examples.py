"""The example scripts must run clean end to end (their internal
assertions double as acceptance tests)."""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parents[2] / "examples"


@pytest.mark.parametrize(
    "script",
    [
        "quickstart.py",
        "bank_transfer.py",
        "protocol_designer.py",
        "outage_drill.py",
        "assumption_stress.py",
        pytest.param("live_cluster.py", marks=pytest.mark.slow),
    ],
)
def test_example_runs_clean(script, capsys):
    runpy.run_path(str(EXAMPLES / script), run_name="__main__")
    out = capsys.readouterr().out
    assert out  # Every example narrates what it demonstrates.


def test_quickstart_reports_nonblocking(capsys):
    runpy.run_path(str(EXAMPLES / "quickstart.py"), run_name="__main__")
    out = capsys.readouterr().out
    assert "nonblocking: YES" in out
    assert "atomic: True" in out


def test_bank_transfer_contrasts_protocols(capsys):
    runpy.run_path(str(EXAMPLES / "bank_transfer.py"), run_name="__main__")
    out = capsys.readouterr().out
    assert "BLOCKED" in out          # 2PC freezes.
    assert "stalled" in out
    assert out.count("---") >= 2     # Both protocol sections present.


def test_protocol_designer_synthesizes_3pc(capsys):
    runpy.run_path(str(EXAMPLES / "protocol_designer.py"), run_name="__main__")
    out = capsys.readouterr().out
    assert "nonblocking: NO" in out            # The hand-rolled 2PC.
    assert "nonblocking = True" in out         # After synthesis.
    assert "structurally equals the catalog 3PC: True" in out


def test_outage_drill_recovers_everyone(capsys):
    runpy.run_path(str(EXAMPLES / "outage_drill.py"), run_name="__main__")
    out = capsys.readouterr().out
    assert "crashed sites recovered" in out


@pytest.mark.slow
def test_live_cluster_contrasts_protocols(capsys):
    runpy.run_path(str(EXAMPLES / "live_cluster.py"), run_name="__main__")
    out = capsys.readouterr().out
    assert "survivors decided without the coordinator: commit" in out
    assert "BLOCKED" in out
    assert out.count("atomic: True") == 2


def test_assumption_stress_walks_the_boundaries(capsys):
    runpy.run_path(str(EXAMPLES / "assumption_stress.py"), run_name="__main__")
    out = capsys.readouterr().out
    assert "atomic:   False" in out    # The partition split.
    assert "quorum termination" in out
    assert "recovery extension" in out
