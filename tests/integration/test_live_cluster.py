"""End-to-end live cluster tests: real processes, real TCP, real kill -9.

These spawn `repro serve` subprocesses on loopback, so they are marked
slow; each scenario is deterministic (marker-gated pause points, no
sleep-based race windows) and finishes in a few seconds.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.cli import main as cli_main
from repro.errors import EXIT_OK
from repro.live.audit import audit_data_dir
from repro.live.client import ClientSession
from repro.live.cluster import (
    ClusterConfig,
    ClusterHarness,
    kill_coordinator_scenario,
)
from repro.live.stitch import stitch_data_dir
from repro.types import SiteId

pytestmark = pytest.mark.slow


@pytest.fixture
def make_harness(tmp_path):
    harnesses = []

    def build(spec_name: str, n_sites: int = 3) -> ClusterHarness:
        config = ClusterConfig(
            spec_name=spec_name,
            n_sites=n_sites,
            data_dir=tmp_path / spec_name,
        )
        harness = ClusterHarness(config)
        harnesses.append(harness)
        return harness

    yield build
    for harness in harnesses:
        harness.stop()


@pytest.mark.parametrize(
    "spec_name",
    ["2pc-central", "3pc-central", "2pc-decentralized", "3pc-decentralized"],
)
def test_healthy_path_commits(make_harness, spec_name):
    harness = make_harness(spec_name)
    harness.start()
    reply = harness.begin(1)
    assert reply["t"] == "decided"
    assert reply["outcome"] == "commit"
    assert reply["elapsed_ms"] > 0
    finals = harness.audit_atomicity(1)
    # Every site, not just the gateway, reached commit durably.
    harness.wait_outcomes(
        1,
        lambda views: all(
            v is not None and v["outcome"] == "commit" for v in views.values()
        ),
        10.0,
        "all sites committing",
    )
    assert set(finals.values()) <= {"commit"}


def test_no_vote_aborts_everywhere(make_harness, tmp_path):
    harness = make_harness("3pc-central")
    for site in harness.ports:
        harness.spawn(site, vote="no" if int(site) == 3 else "yes")
    harness.wait_all_ready()
    reply = harness.begin(1)
    assert reply["outcome"] == "abort"
    harness.wait_outcomes(
        1,
        lambda views: all(
            v is not None and v["outcome"] == "abort" for v in views.values()
        ),
        10.0,
        "all sites aborting",
    )
    harness.audit_atomicity(1)


def test_3pc_survives_coordinator_kill9(make_harness):
    """The paper's headline property, live: 3PC is nonblocking.

    The coordinator is SIGKILLed right after flushing its prepare
    broadcast; the survivors must terminate to COMMIT on their own, and
    the restarted coordinator must recover the same outcome from its
    durable log plus queries.
    """
    harness = make_harness("3pc-central")
    result = kill_coordinator_scenario(harness)
    assert result.survivors_blocked is False
    assert set(result.survivor_outcomes.values()) == {"commit"}
    assert result.final_outcomes == {1: "commit", 2: "commit", 3: "commit"}
    assert result.coordinator_boot == 2  # really was a restart


def test_2pc_blocks_on_coordinator_kill9(make_harness):
    """The contrast case: 2PC blocks when the coordinator dies in-window.

    Survivors sit in their wait state (termination rule: BLOCKED) until
    the coordinator's restarted incarnation — whose log holds no
    decision — resolves the transaction by unilateral abort.
    """
    harness = make_harness("2pc-central")
    result = kill_coordinator_scenario(harness)
    assert result.survivors_blocked is True
    assert set(result.final_outcomes.values()) == {"abort"}
    assert result.coordinator_boot == 2


def test_metrics_snapshots_published(make_harness):
    harness = make_harness("3pc-central")
    harness.start()
    harness.begin(1)
    snapshot = harness.site_metrics(SiteId(1))
    assert snapshot is not None
    assert snapshot["live"]["site"] == 1
    assert snapshot["live"]["forced_writes"] >= 1
    # Transport observability: decoder backlog gauge and per-peer
    # reconnect counters (zero on a healthy run, but present).
    assert snapshot["live"]["decoder_hwm"] >= 0
    assert set(snapshot["live"]["peer_reconnects"]) == {"2", "3"}
    assert snapshot["live"]["trace_entries"] > 0
    assert snapshot["live"]["trace_dropped"] == 0
    counters = snapshot.get("counters", {})
    assert any(key.startswith("txns_total") for key in counters)


def test_decided_reply_carries_stage_breakdown(make_harness):
    """The client reply decomposes commit latency into additive stages:
    queue wait, protocol resolution, and the fsync-durability wait."""
    harness = make_harness("3pc-central")
    harness.start()
    reply = harness.begin(1)
    stages = reply["stages"]
    assert set(stages) == {"queue_ms", "resolve_ms", "durable_ms"}
    assert all(value >= 0 for value in stages.values())
    # Additive by construction: the advertised latency IS the stage sum.
    assert reply["elapsed_ms"] == pytest.approx(sum(stages.values()), abs=1e-3)


def test_bench_reports_shape(make_harness):
    harness = make_harness("2pc-central")
    harness.start()
    report = harness.bench(3)
    assert report["protocol"] == "2pc-central"
    assert report["txns"] == 3
    assert report["concurrency"] == 1
    assert report["txns_per_sec"] > 0
    assert 0 < report["latency_ms"]["p50"] <= report["latency_ms"]["p99"]
    assert report["forced_writes"] > 0
    assert report["proto_frames"] > 0
    breakdown = report["latency_breakdown"]
    assert set(breakdown) == {"queue_ms", "resolve_ms", "durable_ms"}
    for stats in breakdown.values():
        assert 0 <= stats["p50"] <= stats["p99"]
    # Stage means must sum to the measured latency mean (each reply's
    # elapsed_ms is exactly its stage sum, so the means telescope).
    stage_mean_sum = sum(stats["mean"] for stats in breakdown.values())
    assert stage_mean_sum == pytest.approx(
        report["latency_ms"]["mean"], abs=max(0.05, 0.02 * report["latency_ms"]["mean"])
    )


@pytest.mark.parametrize("spec_name", ["2pc-central", "3pc-central"])
def test_concurrent_txns_interleave_and_group_commit(make_harness, spec_name):
    """Many in-flight transactions share peer links and DT-log fsyncs.

    ``bench`` raises if any transaction fails to commit, so surviving
    the call already proves interleaved frames dispatch correctly; the
    counter deltas prove the fsyncs were actually batched.
    """
    harness = make_harness(spec_name)
    harness.start()
    report = harness.bench(32, concurrency=8)
    assert report["txns"] == 32
    assert report["concurrency"] == 8
    # Group commit engaged: strictly fewer fsyncs than forced records.
    assert 0 < report["fsync_calls"] < report["forced_writes"]
    # Write-side coalescing engaged: frames per socket write above 1.
    assert report["frames_per_socket_write"] > 1.0
    for txn_id in (1, 16, 32):
        harness.audit_atomicity(txn_id)


def test_client_session_serves_sequential_requests(make_harness):
    """One persistent connection handles begins and status queries."""
    harness = make_harness("2pc-central")
    harness.start()
    port = harness.ports[SiteId(1)]

    async def run():
        async with ClientSession(harness.config.host, port) as session:
            first = await session.begin_txn(1)
            second = await session.begin_txn(2)
            status = await session.request({"t": "status", "txn": 1})
            return first, second, status

    first, second, status = asyncio.run(run())
    assert first["outcome"] == second["outcome"] == "commit"
    assert status["t"] == "status-reply"
    assert status["outcome"] == "commit"


@pytest.mark.parametrize("spec_name", ["2pc-central", "3pc-central"])
def test_kill9_coordinator_under_concurrent_load(make_harness, spec_name):
    """kill -9 lands mid-burst — likely during a batched flush — and
    atomicity must hold for every transaction anyway.

    Sixteen transactions are begun through a survivor gateway without
    waiting, the coordinator is SIGKILLed while they are in flight,
    then restarted.  Every transaction must reach one consistent
    outcome cluster-wide: the group-commit buffer may lose un-fsynced
    records to the kill, but only records nobody acted on (the
    durability barrier), so recovery always converges.
    """
    harness = make_harness(spec_name)
    harness.start()
    txn_ids = list(range(1, 17))
    harness.begin_many(txn_ids, gateway=SiteId(2), wait=False)
    harness.kill(SiteId(1))
    harness.spawn(SiteId(1))
    gateway = SiteId(2)

    def settled(views):
        # Liveness: every site that knows the transaction reaches a
        # final outcome — nobody hangs in a wait state.  A site with no
        # trace of the txn (the coordinator died before telling it, or
        # the restarted coordinator's log never heard of it) has
        # nothing to decide; peers querying it get unilateral abort.
        if any(v is None for v in views.values()):
            return False  # a site is down/restarting
        if views[gateway]["outcome"] not in ("commit", "abort"):
            return False  # the gateway always knows the txn
        return all(
            v["outcome"] in ("commit", "abort") or v["state"] is None
            for v in views.values()
        )

    for txn_id in txn_ids:
        harness.wait_outcomes(
            txn_id,
            settled,
            30.0,
            f"txn {txn_id} settling at every site that knows it",
        )
        finals = harness.audit_atomicity(txn_id)
        assert len(set(finals.values())) == 1  # no split decision


def test_kill9_traces_stitch_clean_and_audit_passes(make_harness):
    """The CI smoke contract: after a kill -9 scenario, the site traces
    stitch into one cluster trace with zero orphan spans (the pause
    marker flushed everything the coordinator sent before dying, and
    incarnation-fenced frames become *closed* drop spans), and the
    durable artifacts pass the atomicity audit.
    """
    harness = make_harness("3pc-central")
    result = kill_coordinator_scenario(harness)
    assert result.final_outcomes == {1: "commit", 2: "commit", 3: "commit"}
    harness.stop()  # graceful stop flushes every surviving trace tail
    data_dir = harness.config.data_dir

    stitched = stitch_data_dir(data_dir)
    assert stitched.orphan_spans == []
    assert stitched.orphan_parents == []
    assert stitched.cycles_broken == 0
    assert len(stitched.trace) > 0

    report = audit_data_dir(data_dir)
    assert report.ok(), report.violations
    assert report.decisions >= 3
    assert cli_main(["stitch", str(data_dir), "--strict"]) == EXIT_OK
    assert cli_main(["audit", str(data_dir)]) == EXIT_OK


def test_canonical_stitch_byte_stable_across_runs(tmp_path):
    """Two independent live runs of the same fixed scenario stitch to
    byte-identical canonical cluster traces — the live analogue of the
    simulator's deterministic trace guarantee."""
    outputs = []
    for run in ("run-a", "run-b"):
        config = ClusterConfig(
            spec_name="3pc-central",
            n_sites=3,
            data_dir=tmp_path / run,
        )
        harness = ClusterHarness(config)
        try:
            harness.start()
            reply = harness.begin(1)
            assert reply["outcome"] == "commit"
            harness.wait_outcomes(
                1,
                lambda views: all(
                    v is not None and v["outcome"] == "commit"
                    for v in views.values()
                ),
                10.0,
                "all sites committing",
            )
        finally:
            harness.stop()
        result = stitch_data_dir(config.data_dir, canonical=True)
        assert result.orphan_spans == []
        assert result.orphan_parents == []
        assert result.cycles_broken == 0
        outputs.append(result.trace.to_jsonl())
    assert outputs[0] == outputs[1]


# ----------------------------------------------------------------------
# Chaos: gray failures and soak
# ----------------------------------------------------------------------


def test_gray_failure_scenario_splits_the_decision(tmp_path):
    """Heartbeats flow, commit-phase frames die: 3PC splits.

    The packaged gray-link policy starves site 3 of its prepare while
    keeping every TCP connection up.  Site 2 (in p) solo-terminates to
    commit, site 3 (in w) to abort — the reliable-detector assumption
    violated on real sockets, caught by the durable-log audit.
    """
    from repro.live.cluster import gray_failure_scenario

    config = ClusterConfig(
        spec_name="3pc-central", n_sites=3, data_dir=tmp_path / "gray"
    )
    harness = ClusterHarness(config)
    try:
        result = gray_failure_scenario(harness)
    finally:
        harness.stop()
    assert result.split_detected
    assert result.outcomes == {2: "commit", 3: "abort"}
    assert result.coordinator_outcome == "undecided"
    assert result.violation is not None
    assert not result.audit_ok
    assert any("AC1" in v for v in result.audit_violations)
    # Re-auditing the durable artifacts agrees after the fact.
    report = audit_data_dir(config.data_dir, include_traces=False)
    assert not report.ok()
    # Chaos drops close their spans: strict stitching stays clean.
    stitched = stitch_data_dir(config.data_dir)
    assert stitched.orphan_spans == []
    assert stitched.cycles_broken == 0


def test_gray_failure_scenario_is_deterministic(tmp_path):
    from repro.live.cluster import gray_failure_scenario

    outcomes = []
    for run in ("a", "b"):
        config = ClusterConfig(
            spec_name="3pc-central", n_sites=3, data_dir=tmp_path / run
        )
        harness = ClusterHarness(config)
        try:
            result = gray_failure_scenario(harness)
        finally:
            harness.stop()
        outcomes.append((result.outcomes, result.chaos_hash))
    assert outcomes[0] == outcomes[1]


def test_soak_smoke_under_combined_chaos(tmp_path):
    """A short soak under WAN + slow-disk chaos audits clean."""
    from repro.live.soak import SoakConfig, run_soak

    result = run_soak(
        SoakConfig(
            data_dir=tmp_path / "soak",
            txns=30,
            batch=15,
            concurrency=3,
            profile="combined",
            seed=1,
        )
    )
    assert result.ok
    assert result.txns == 30
    assert result.waves == 2
    assert result.audits == 2  # one mid-run, one final
    assert result.chaos_hash is not None
    # The WAN profile is delay-only: delays observed, nothing dropped.
    assert sum(result.chaos_delays.values()) > 0
    assert sum(result.chaos_drops.values()) == 0
    assert result.stitch["orphan_spans"] == []
    assert result.stitch["cycles_broken"] == 0


def test_soak_canonical_stitch_byte_stable_under_wan_chaos(tmp_path):
    """Fixed-seed serial soaks replay to byte-identical canonical
    traces even with WAN delay/jitter live on every link — the chaos
    determinism contract holding end-to-end through real sockets."""
    from repro.live.soak import SoakConfig, run_soak

    hashes = []
    for run in ("a", "b"):
        result = run_soak(
            SoakConfig(
                data_dir=tmp_path / run,
                txns=8,
                batch=8,
                concurrency=1,
                profile="wan",
                seed=3,
            )
        )
        assert result.ok
        hashes.append(result.stitch_hash)
    assert hashes[0] == hashes[1]


# ----------------------------------------------------------------------
# Commit presumptions and the read-only one-phase exit
# ----------------------------------------------------------------------


def test_presumption_none_is_byte_identical_to_default(tmp_path):
    """The differential contract: explicitly requesting --presumption
    none (and the default asyncio loop) changes nothing — the canonical
    stitch is byte-identical to a config that never mentions the new
    knobs, and no forced write was elided."""
    outputs = []
    for run, extra in (("default", {}), ("explicit", {"presumption": "none", "loop": "asyncio"})):
        config = ClusterConfig(
            spec_name="3pc-central",
            n_sites=3,
            data_dir=tmp_path / run,
            **extra,
        )
        harness = ClusterHarness(config)
        try:
            harness.start()
            assert harness.begin(1)["outcome"] == "commit"
            harness.wait_outcomes(
                1,
                lambda views: all(
                    v is not None and v["outcome"] == "commit"
                    for v in views.values()
                ),
                10.0,
                "all sites committing",
            )
            skipped = sum(
                harness.site_metrics(s)["live"]["forced_writes_skipped"]
                for s in harness.ports
            )
            assert skipped == 0
        finally:
            harness.stop()
        outputs.append(
            stitch_data_dir(config.data_dir, canonical=True).trace.to_jsonl()
        )
    assert outputs[0] == outputs[1]


@pytest.mark.parametrize("presumption", ["abort", "commit"])
def test_presumptions_cut_forced_writes_on_the_commit_path(
    tmp_path, presumption
):
    """Either presumption must strictly reduce forced writes for the
    same committed workload (participant decisions go lazy), while the
    audit stays clean."""
    counts = {}
    for name in ("none", presumption):
        config = ClusterConfig(
            spec_name="2pc-central",
            n_sites=3,
            data_dir=tmp_path / name,
            presumption=name,
        )
        harness = ClusterHarness(config)
        try:
            harness.start()
            report = harness.bench(8)
            counts[name] = (report["forced_writes"], report["forced_writes_skipped"])
        finally:
            harness.stop()
        audit = audit_data_dir(config.data_dir)
        assert audit.ok(), audit.violations
    assert counts["none"][1] == 0
    assert counts[presumption][1] > 0
    assert counts[presumption][0] < counts["none"][0]


def test_read_only_site_exits_phase1_with_zero_log_writes(tmp_path):
    """A READ-ONLY voter leaves after phase 1: the voters commit, the
    read-only site's DT log holds nothing but boot records, and it is
    pruned from the phase-2/3 fan-out."""
    from repro.live.dtlog import read_log_file

    config = ClusterConfig(
        spec_name="3pc-central",
        n_sites=3,
        data_dir=tmp_path / "ro",
        ro_sites=(SiteId(3),),
    )
    harness = ClusterHarness(config)
    try:
        harness.start()
        reply = harness.begin(1)
        assert reply["outcome"] == "commit"
        views = harness.wait_outcomes(
            1,
            lambda views: all(
                views[s] is not None and views[s]["outcome"] == "commit"
                for s in (SiteId(1), SiteId(2))
            ),
            10.0,
            "voters committing",
        )
        # The read-only site is done at phase 1 — no outcome to reach.
        assert views[SiteId(3)] is None or views[SiteId(3)]["outcome"] != "commit"
    finally:
        harness.stop()
    bodies, torn = read_log_file(config.data_dir / "site-3.dtlog")
    assert not torn
    assert [b["r"] for b in bodies] == ["boot"]
    audit = audit_data_dir(config.data_dir)
    assert audit.ok(), audit.violations


def test_kill9_read_only_site_after_phase1_exit(tmp_path):
    """kill -9 the read-only site once it has left the protocol: the
    voters are unaffected, the restarted site has nothing to recover,
    and the audit stays clean."""
    from repro.live.dtlog import read_log_file

    config = ClusterConfig(
        spec_name="2pc-central",
        n_sites=3,
        data_dir=tmp_path / "ro-kill",
        ro_sites=(SiteId(3),),
        presumption="abort",
    )
    harness = ClusterHarness(config)
    try:
        harness.start()
        assert harness.begin(1)["outcome"] == "commit"
        harness.kill(SiteId(3))
        harness.spawn(SiteId(3))
        harness.wait_all_ready()
        # The cluster keeps committing with the read-only site reborn.
        assert harness.begin(2)["outcome"] == "commit"
        views = harness.statuses(2)
        assert views[SiteId(3)] is not None
        assert views[SiteId(3)]["boot"] == 2
    finally:
        harness.stop()
    bodies, _ = read_log_file(config.data_dir / "site-3.dtlog")
    assert [b["r"] for b in bodies] == ["boot", "boot"]
    audit = audit_data_dir(config.data_dir)
    assert audit.ok(), audit.violations


def test_kill9_presumed_commit_coordinator_before_decision(tmp_path):
    """The presumed-commit danger window, live: the coordinator dies
    after forcing the membership record but before any decision.  Its
    recovery must abort *explicitly* (membership + no vote), never
    presume commit, and the cluster must agree."""
    from repro.live.dtlog import read_log_file

    config = ClusterConfig(
        spec_name="2pc-central",
        n_sites=3,
        data_dir=tmp_path / "pc-kill",
        presumption="commit",
    )
    harness = ClusterHarness(config)
    try:
        result = kill_coordinator_scenario(harness)
        assert set(result.final_outcomes.values()) == {"abort"}
        assert result.coordinator_boot == 2
    finally:
        harness.stop()
    bodies, _ = read_log_file(config.data_dir / "site-1.dtlog")
    kinds = [b["r"] for b in bodies if b["r"] != "boot"]
    # The membership record made it to disk before the kill; the
    # explicit abort followed on recovery.
    assert kinds[0] == "membership"
    assert ("decision", "abort") in [
        (b["r"], b.get("outcome")) for b in bodies
    ]
    trace_text = (config.data_dir / "site-1.trace.jsonl").read_text()
    assert "recovery.presumed" in trace_text
    audit = audit_data_dir(config.data_dir)
    assert audit.ok(), audit.violations
