"""Differential property tests of the two wire codecs.

The binary codec's contract is not "roughly the same frames" — it is
dict-identical decode output for every frame the JSON codec carries on
peer links.  Hypothesis generates every runtime payload dataclass
(interned vocabulary and arbitrary unicode alike), trace-context
stamping, incarnation fencing, and adversarial chunk splits, and pins

    decode_bin(encode_bin(f)) == decode_json(encode_json(f)) == f

plus the negative space: control frames are never stamped, and the
binary codec refuses frames outside the peer-link schema instead of
guessing.
"""

import json

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.errors import FrameError
from repro.live.wire import (
    FrameDecoder,
    decode_frame_bytes,
    decode_payload,
    encode_frame,
    encode_payload,
    stamp_trace_context,
    trace_context,
)
from repro.live.wire_bin import (
    INTERNED,
    BinFrameDecoder,
    decode_frame_bin_bytes,
    encode_frame_bin,
)
from repro.runtime.messages import (
    OutcomeQuery,
    OutcomeReply,
    ProtoMsg,
    TermAck,
    TermBlocked,
    TermDecision,
    TermMoveTo,
    TermStateQuery,
    TermStateReply,
)
from repro.types import Outcome, SiteId

# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------

# Protocol vocabulary plus arbitrary unicode: the interned fast path
# and the literal escape hatch must be indistinguishable to callers.
names = st.one_of(
    st.sampled_from(INTERNED),
    st.text(min_size=0, max_size=24),
)
rounds = st.integers(min_value=0, max_value=2**32 - 1)
site_ids = st.integers(min_value=1, max_value=2**31).map(SiteId)
outcomes = st.sampled_from(list(Outcome))
txns = st.integers(min_value=0, max_value=2**64 - 1)
span_ids = st.integers(min_value=0, max_value=2**64 - 1)

payloads = st.one_of(
    st.builds(ProtoMsg, kind=names),
    st.builds(TermMoveTo, backup=site_ids, state=names, round_no=rounds),
    st.builds(TermAck, round_no=rounds),
    st.builds(TermDecision, outcome=outcomes, round_no=rounds),
    st.builds(TermBlocked, round_no=rounds),
    st.builds(TermStateQuery, backup=site_ids, round_no=rounds),
    st.builds(TermStateReply, state=names, outcome=outcomes, round_no=rounds),
    st.builds(OutcomeQuery),
    st.builds(OutcomeReply, outcome=outcomes, recovered_in_doubt=st.booleans()),
)


@st.composite
def payload_frames(draw):
    """A peer-link payload frame as LiveSite builds them."""
    frame = {
        "t": "payload",
        "txn": draw(txns),
        "d": encode_payload(draw(payloads)),
    }
    if draw(st.booleans()):
        stamp_trace_context(
            frame,
            draw(span_ids),
            draw(st.one_of(st.none(), span_ids)),
        )
    if draw(st.booleans()):
        frame["dst_boot"] = draw(st.integers(min_value=0, max_value=2**32))
    return frame


@st.composite
def external_frames(draw):
    frame = {"t": "external", "txn": draw(txns), "kind": draw(names)}
    if draw(st.booleans()):
        stamp_trace_context(frame, draw(span_ids))
    return frame


hb_frames = st.builds(lambda site: {"t": "hb", "site": site}, site_ids.map(int))

peer_frames = st.one_of(payload_frames(), external_frames(), hb_frames)


def json_roundtrip(frame):
    decoded, rest = decode_frame_bytes(encode_frame(frame))
    assert rest == b""
    return decoded


def bin_roundtrip(frame):
    decoded, rest = decode_frame_bin_bytes(encode_frame_bin(frame))
    assert rest == b""
    return decoded


# ----------------------------------------------------------------------
# Payload dataclass round trips
# ----------------------------------------------------------------------


class TestPayloadRoundTrip:
    @given(payload=payloads)
    @settings(max_examples=200, deadline=None)
    def test_json_roundtrip_identity(self, payload):
        wire = json.loads(json.dumps(encode_payload(payload)))
        assert decode_payload(wire) == payload

    @given(payload=payloads, txn=txns)
    @settings(max_examples=200, deadline=None)
    def test_bin_roundtrip_identity(self, payload, txn):
        frame = {"t": "payload", "txn": txn, "d": encode_payload(payload)}
        assert decode_payload(bin_roundtrip(frame)["d"]) == payload

    @given(payload=payloads, txn=txns)
    @settings(max_examples=200, deadline=None)
    def test_cross_codec_differential(self, payload, txn):
        frame = {"t": "payload", "txn": txn, "d": encode_payload(payload)}
        assert bin_roundtrip(frame) == json_roundtrip(frame) == frame

    @given(payload=payloads)
    @settings(max_examples=100, deadline=None)
    def test_bin_encoding_is_deterministic(self, payload):
        frame = {"t": "payload", "txn": 7, "d": encode_payload(payload)}
        assert encode_frame_bin(frame) == encode_frame_bin(frame)

    @given(kind=st.sampled_from(INTERNED), txn=st.integers(0, 2**31))
    @settings(max_examples=50, deadline=None)
    def test_bin_is_smaller_for_protocol_traffic(self, kind, txn):
        # The whole point: interned protocol messages pack far below
        # their sorted-key JSON form.
        frame = {"t": "payload", "txn": txn, "d": encode_payload(ProtoMsg(kind))}
        assert len(encode_frame_bin(frame)) < len(encode_frame(frame))


# ----------------------------------------------------------------------
# Full-frame differential equivalence
# ----------------------------------------------------------------------


class TestFrameDifferential:
    @given(frame=peer_frames)
    @settings(max_examples=300, deadline=None)
    def test_any_peer_frame_cross_codec(self, frame):
        assert bin_roundtrip(frame) == json_roundtrip(frame) == frame

    @given(frame=payload_frames(), sid=span_ids, pid=span_ids)
    @settings(max_examples=150, deadline=None)
    def test_trace_context_survives_both_codecs(self, frame, sid, pid):
        stamp_trace_context(frame, sid, pid)
        assert trace_context(bin_roundtrip(frame)) == (sid, pid)
        assert trace_context(json_roundtrip(frame)) == (sid, pid)

    @given(frame=payload_frames(), sid=span_ids)
    @settings(max_examples=100, deadline=None)
    def test_rootless_parent_stays_off_the_wire(self, frame, sid):
        frame.pop("sid", None)
        frame.pop("pid", None)
        stamp_trace_context(frame, sid, None)
        for decoded in (bin_roundtrip(frame), json_roundtrip(frame)):
            assert decoded["sid"] == sid
            assert "pid" not in decoded

    @given(frame=external_frames(), boot=st.integers(0, 2**32))
    @settings(max_examples=100, deadline=None)
    def test_incarnation_fence_survives_both_codecs(self, frame, boot):
        fenced = {**frame, "dst_boot": boot}
        assert bin_roundtrip(fenced) == json_roundtrip(fenced) == fenced

    @given(frames=st.lists(peer_frames, min_size=1, max_size=8), data=st.data())
    @settings(max_examples=100, deadline=None)
    def test_bin_decoder_reassembles_any_chunking(self, frames, data):
        blob = b"".join(encode_frame_bin(f) for f in frames)
        decoder = BinFrameDecoder()
        decoded = []
        while blob:
            cut = data.draw(st.integers(1, len(blob)), label="chunk")
            decoded.extend(decoder.feed(blob[:cut]))
            blob = blob[cut:]
        assert decoded == frames
        assert decoder.pending == 0

    @given(frames=st.lists(peer_frames, min_size=1, max_size=8), data=st.data())
    @settings(max_examples=100, deadline=None)
    def test_json_decoder_reassembles_any_chunking(self, frames, data):
        blob = b"".join(encode_frame(f) for f in frames)
        decoder = FrameDecoder()
        decoded = []
        while blob:
            cut = data.draw(st.integers(1, len(blob)), label="chunk")
            decoded.extend(decoder.feed(blob[:cut]))
            blob = blob[cut:]
        assert decoded == frames
        assert decoder.pending == 0


# ----------------------------------------------------------------------
# Negative space: what the binary codec must refuse
# ----------------------------------------------------------------------


class TestBinaryCodecRefusals:
    @given(site=site_ids.map(int), sid=span_ids)
    @settings(max_examples=50, deadline=None)
    def test_stamped_heartbeat_is_rejected(self, site, sid):
        # Control frames are never stamped; the binary schema makes
        # that structural instead of conventional.
        hb = stamp_trace_context({"t": "hb", "site": site}, sid)
        with pytest.raises(FrameError):
            encode_frame_bin(hb)

    @given(
        frame=st.sampled_from(
            [
                {"t": "hello", "site": 1, "boot": 1, "codec": "bin"},
                {"t": "begin", "txn": 1},
                {"t": "status", "txn": 1},
                {"t": "decided", "txn": 1, "outcome": "commit"},
                {"t": "ok"},
                {"t": "shutdown"},
            ]
        )
    )
    @settings(max_examples=20, deadline=None)
    def test_handshake_and_client_frames_are_json_only(self, frame):
        with pytest.raises(FrameError):
            encode_frame_bin(frame)

    @given(frame=payload_frames(), extra=st.text(min_size=1, max_size=8))
    @settings(max_examples=50, deadline=None)
    def test_unknown_keys_are_rejected_not_dropped(self, frame, extra):
        known = {"t", "txn", "d", "sid", "pid", "dst_boot"}
        if extra in known:
            return
        frame[extra] = 1
        with pytest.raises(FrameError):
            encode_frame_bin(frame)

    @given(txn=st.one_of(st.just(-1), st.just(2**64), st.booleans()))
    @settings(max_examples=20, deadline=None)
    def test_unpackable_ints_are_rejected(self, txn):
        frame = {"t": "payload", "txn": txn, "d": encode_payload(OutcomeQuery())}
        with pytest.raises(FrameError):
            encode_frame_bin(frame)
