"""Property-based tests of the schedule shrinker.

Two layers:

* **synthetic oracles** — fast, runtime-free: Hypothesis draws a noisy
  prefix plus the subset of decisions a "violation" actually depends
  on, and the shrinker must (1) be deterministic, (2) return a prefix
  the oracle still accepts, (3) be idempotent, and (4) never grow the
  schedule.
* **the live runtime** — Hypothesis draws fallback choices for the
  seeded ``skip-buffer`` mutant; whenever the schedule violates, the
  shrunk schedule must reproduce the same violation signature, and
  shrinking must be idempotent against the real execution oracle.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, assume, given, settings
from hypothesis import strategies as st

from repro.explore import (
    Choice,
    ExploreConfig,
    Explorer,
    shrink,
    strip_defaults,
)

pytestmark = pytest.mark.slow


# ----------------------------------------------------------------------
# Synthetic oracles
# ----------------------------------------------------------------------

indices = st.integers(min_value=0, max_value=2)
prefixes = st.lists(indices, min_size=1, max_size=10).map(
    lambda idxs: tuple(Choice("order", index, 3) for index in idxs)
)


@st.composite
def prefix_and_requirement(draw):
    """A prefix plus a satisfiable requirement hidden inside it."""
    prefix = draw(prefixes)
    # Requirement: a non-empty subset of the prefix's non-default
    # positions must keep their exact indices.
    nondefault = [
        position
        for position, choice in enumerate(prefix)
        if not choice.is_default
    ]
    if not nondefault:
        # Force one non-default decision so the oracle is satisfiable
        # by a non-empty schedule.
        position = draw(st.integers(0, len(prefix) - 1))
        fixed = list(prefix)
        fixed[position] = Choice("order", draw(st.integers(1, 2)), 3)
        prefix = tuple(fixed)
        nondefault = [position]
    required_positions = draw(
        st.sets(st.sampled_from(nondefault), min_size=1)
    )
    required = {
        position: prefix[position].index for position in required_positions
    }
    return prefix, required


def _subset_oracle(required):
    def probe(candidate):
        padded = dict(enumerate(candidate))
        for position, index in required.items():
            choice = padded.get(position)
            if choice is None or choice.index != index:
                return None
        return candidate

    return probe


@settings(max_examples=60, deadline=None)
@given(prefix_and_requirement())
def test_synthetic_shrink_properties(case):
    prefix, required = case
    probe = _subset_oracle(required)
    assert probe(prefix) is not None  # precondition: input is interesting

    first = shrink(prefix, probe)
    # Deterministic.
    assert shrink(prefix, probe) == first
    # Result still reproduces the "violation".
    assert probe(first.prefix) is not None
    # Never grows, and stays canonical.
    assert len(first.prefix) <= len(strip_defaults(prefix))
    assert first.prefix == strip_defaults(first.prefix)
    # Idempotent.
    second = shrink(first.prefix, probe)
    assert second.prefix == first.prefix


@settings(max_examples=60, deadline=None)
@given(prefix_and_requirement())
def test_synthetic_shrink_reaches_requirement_floor(case):
    prefix, required = case
    result = shrink(prefix, _subset_oracle(required))
    # The minimum conceivable schedule keeps exactly the required
    # decisions (padded with defaults up to the last required position).
    assert len(result.prefix) == max(required) + 1
    assert (
        sum(1 for choice in result.prefix if not choice.is_default)
        == len(required)
    )


# ----------------------------------------------------------------------
# The live runtime as the oracle
# ----------------------------------------------------------------------


@pytest.fixture(scope="module")
def mutant_explorer():
    return Explorer(
        ExploreConfig(
            protocol="3pc-central",
            n_sites=3,
            seed=7,
            budget=50,
            shards=1,
            mutant="skip-buffer",
        )
    )


@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(choices=st.lists(st.integers(0, 2), min_size=0, max_size=12))
def test_runtime_shrink_preserves_signature(mutant_explorer, choices):
    # Drive the mutant with arbitrary forced decisions (tolerantly
    # clamped), then shrink whatever violation appears.
    raw = tuple(Choice("fuzz", index, 3) for index in choices)
    outcome = mutant_explorer.run_one(raw)
    # Some schedules dodge the bug legitimately (e.g. crashing a slave
    # before it votes aborts the transaction, so the mutated commit
    # path never runs); only violating schedules are shrinkable.
    assume(outcome.violations)

    result, final = mutant_explorer.shrink_violation(outcome)
    assert final.signature == outcome.signature
    assert len(result.prefix) <= len(outcome.canonical)
    assert len(result.prefix) <= 12

    # Idempotent against the real execution oracle.
    again, _ = mutant_explorer.shrink_violation(final)
    assert again.prefix == result.prefix
