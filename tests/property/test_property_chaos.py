"""Property tests of the chaos seam's determinism contract.

The whole value of a serialized :class:`ChaosPolicy` is that replaying
it replays the *same* network: identical seeds must give identical
drop/delay decision streams no matter when or where the engine is
instantiated, and the packaged latency profiles must derive their
shapes from the seed alone.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.live.chaos import (
    CATEGORIES,
    ChaosPolicy,
    ChaosRule,
    LinkChaos,
    wan_policy,
)
from repro.net.latency import ExponentialLatency
from repro.types import SiteId

pytestmark = pytest.mark.slow


# ----------------------------------------------------------------------
# Strategies: random (but reconstructible) policies and frame streams
# ----------------------------------------------------------------------

kind_names = st.sampled_from(
    ["prepare", "commit", "abort", "vote-req", "xact", "term-decision"]
)
kind_specs = st.one_of(
    kind_names, st.sampled_from(["@" + c for c in CATEGORIES])
)

rules = st.builds(
    ChaosRule,
    src=st.sampled_from([1, 3]),
    dst=st.just(2),
    kinds=st.one_of(
        st.none(), st.lists(kind_specs, min_size=1, max_size=3).map(tuple)
    ),
    drop=st.sampled_from([0.0, 0.3, 0.7, 1.0]),
    delay_ms=st.sampled_from([0.0, 2.0, 10.0]),
    jitter_ms=st.sampled_from([0.0, 3.0]),
    after_kind=st.one_of(st.none(), kind_names),
    after_count=st.integers(min_value=0, max_value=2),
)

policies = st.builds(
    ChaosPolicy,
    seed=st.integers(min_value=0, max_value=2**16),
    links=st.lists(rules, min_size=1, max_size=5).map(tuple),
)


def frame_stream(seed: int, length: int) -> list[tuple[int, dict]]:
    """A deterministic pseudo-random stream of (src, frame) pairs."""
    rng = random.Random(seed)
    stream = []
    for _ in range(length):
        src = rng.choice([1, 3])
        roll = rng.random()
        if roll < 0.3:
            frame = {"t": "hb", "site": src}
        elif roll < 0.8:
            frame = {
                "t": "payload",
                "d": {
                    "p": "proto",
                    "kind": rng.choice(["prepare", "commit", "abort"]),
                    "txn": rng.randrange(5),
                },
            }
        else:
            frame = {"t": "external", "kind": "xact", "txn": rng.randrange(5)}
        stream.append((src, frame))
    return stream


@settings(max_examples=60, deadline=None)
@given(policy=policies, stream_seed=st.integers(0, 2**16))
def test_identical_policy_gives_identical_decision_stream(
    policy, stream_seed
):
    """Two fresh engines fed one frame stream decide identically."""
    stream = frame_stream(stream_seed, 60)
    first = LinkChaos(policy, site=2)
    second = LinkChaos(ChaosPolicy.from_json(policy.to_json()), site=2)
    decisions_a = [first.decide(src, frame) for src, frame in stream]
    decisions_b = [second.decide(src, frame) for src, frame in stream]
    assert decisions_a == decisions_b
    assert (first.drops, first.delays) == (second.drops, second.delays)


@settings(max_examples=40, deadline=None)
@given(
    policy=policies,
    stream_seed=st.integers(0, 2**16),
    flip=st.integers(min_value=1, max_value=2**16),
)
def test_different_seed_may_differ_but_never_crashes(
    policy, stream_seed, flip
):
    """Re-seeding keeps the engine total (no draw-order poisoning)."""
    stream = frame_stream(stream_seed, 40)
    reseeded = ChaosPolicy(
        seed=policy.seed + flip,
        links=policy.links,
        disk=policy.disk,
        skew=policy.skew,
    )
    for engine in (LinkChaos(policy, 2), LinkChaos(reseeded, 2)):
        for src, frame in stream:
            drop, delay = engine.decide(src, frame)
            assert isinstance(drop, bool)
            assert delay >= 0.0


@settings(max_examples=40, deadline=None)
@given(
    seed=st.integers(0, 2**16),
    n_sites=st.integers(min_value=2, max_value=6),
)
def test_wan_policy_is_a_pure_function_of_its_seed(seed, n_sites):
    one = wan_policy(n_sites, seed=seed)
    two = wan_policy(n_sites, seed=seed)
    assert one == two
    assert one.hash == two.hash
    # And the serialized form reconstructs the same object.
    assert ChaosPolicy.from_json(one.to_json()) == one


@settings(max_examples=40, deadline=None)
@given(seed=st.integers(0, 2**16))
def test_wan_policy_seed_moves_delays(seed):
    """Different seeds give different link geographies (generically)."""
    base = {
        (r.src, r.dst): r.delay_ms for r in wan_policy(3, seed=seed).links
    }
    other = {
        (r.src, r.dst): r.delay_ms
        for r in wan_policy(3, seed=seed + 1).links
    }
    assert base.keys() == other.keys()
    # Identical whole maps would mean the seed is ignored; per-link
    # collisions are possible in principle but the full 6-entry map
    # colliding is not (delays are 64-bit hash fractions).
    assert base != other


@settings(max_examples=60, deadline=None)
@given(
    seed=st.integers(0, 2**32 - 1),
    mean=st.floats(min_value=0.01, max_value=100.0),
    floor=st.floats(min_value=0.0, max_value=10.0),
)
def test_exponential_latency_is_seed_stable(seed, mean, floor):
    """Same RNG seed, same delay sequence — sim configs replay exactly."""
    latency = ExponentialLatency(mean=mean, floor=floor)
    draws_a = [
        latency.delay(SiteId(1), SiteId(2), rng)
        for rng in [random.Random(seed)]
        for _ in range(10)
    ]
    rng_b = random.Random(seed)
    draws_b = [latency.delay(SiteId(1), SiteId(2), rng_b) for _ in range(10)]
    assert draws_a == draws_b
    assert all(delay >= floor for delay in draws_a)
