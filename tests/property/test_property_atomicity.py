"""Property-based tests of the paper's core guarantees.

Hypothesis drives randomized vote assignments, crash schedules (timed
and mid-transition partial sends), restarts, and latency seeds through
the runtime, asserting the invariants the paper proves:

* **atomicity** — no execution of any catalog protocol may log commit
  at one site and abort at another (counting crashed sites' logs);
* **nonblocking** — under any schedule with at least one operational
  3PC site, every operational never-crashed site reaches a decision;
* **recovery agreement** — a recovered site never contradicts a
  decided survivor.
"""

import hypothesis.strategies as st
from hypothesis import HealthCheck, given, settings

from repro.protocols import catalog
from repro.runtime.decision import TerminationRule
from repro.runtime.harness import CommitRun
from repro.runtime.policies import FixedVotes
from repro.types import Outcome, SiteId, Vote
from repro.workload.crashes import CrashAt, CrashDuringTransition

import pytest

pytestmark = pytest.mark.slow

N_SITES = 3
SITES = [SiteId(i) for i in range(1, N_SITES + 1)]

#: Termination rules are cached per protocol to keep example throughput
#: reasonable (building one costs a state-graph enumeration).
_RULES = {
    name: TerminationRule(catalog.build(name, N_SITES))
    for name in catalog.protocol_names()
}


def crash_events(site: SiteId):
    """Strategy: one crash event (timed or partial-send) for ``site``."""
    timed = st.builds(
        CrashAt,
        site=st.just(site),
        at=st.floats(min_value=0.0, max_value=8.0, allow_nan=False),
        restart_at=st.one_of(
            st.none(), st.floats(min_value=30.0, max_value=60.0)
        ),
    )
    partial = st.builds(
        CrashDuringTransition,
        site=st.just(site),
        transition_number=st.integers(min_value=1, max_value=3),
        after_writes=st.integers(min_value=0, max_value=N_SITES),
        restart_at=st.one_of(
            st.none(), st.floats(min_value=30.0, max_value=60.0)
        ),
    )
    return st.one_of(timed, partial)


schedules = st.lists(
    st.one_of(*[crash_events(site) for site in SITES]),
    max_size=N_SITES,
    unique_by=lambda event: event.site,
)

votes = st.fixed_dictionaries(
    {site: st.sampled_from([Vote.YES, Vote.NO]) for site in SITES}
)


def run(protocol: str, vote_map, crashes, seed: int):
    return CommitRun(
        spec=catalog.build(protocol, N_SITES),
        seed=seed,
        vote_policy=FixedVotes(vote_map),
        crashes=crashes,
        rule=_RULES[protocol],
        max_time=200.0,
    ).execute()


COMMON_SETTINGS = settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


class TestAtomicityAllProtocols:
    @given(votes=votes, crashes=schedules, seed=st.integers(0, 2**16))
    @COMMON_SETTINGS
    def test_2pc_central_never_mixes_outcomes(self, votes, crashes, seed):
        run("2pc-central", votes, crashes, seed).assert_atomic()

    @given(votes=votes, crashes=schedules, seed=st.integers(0, 2**16))
    @COMMON_SETTINGS
    def test_2pc_decentralized_never_mixes_outcomes(self, votes, crashes, seed):
        run("2pc-decentralized", votes, crashes, seed).assert_atomic()

    @given(votes=votes, crashes=schedules, seed=st.integers(0, 2**16))
    @COMMON_SETTINGS
    def test_3pc_central_never_mixes_outcomes(self, votes, crashes, seed):
        run("3pc-central", votes, crashes, seed).assert_atomic()

    @given(votes=votes, crashes=schedules, seed=st.integers(0, 2**16))
    @COMMON_SETTINGS
    def test_3pc_decentralized_never_mixes_outcomes(self, votes, crashes, seed):
        run("3pc-decentralized", votes, crashes, seed).assert_atomic()

    @given(crashes=schedules, seed=st.integers(0, 2**16))
    @COMMON_SETTINGS
    def test_1pc_never_mixes_outcomes(self, crashes, seed):
        # 1PC slaves hold no vote, so only unanimous-yes is meaningful.
        run("1pc", {}, crashes, seed).assert_atomic()


class TestNonblockingProperty:
    @given(votes=votes, crashes=schedules, seed=st.integers(0, 2**16))
    @COMMON_SETTINGS
    def test_3pc_central_operational_sites_always_decide(
        self, votes, crashes, seed
    ):
        result = run("3pc-central", votes, crashes, seed)
        for site, report in result.reports.items():
            if report.alive and not report.crashed:
                assert report.outcome.is_final, (
                    f"site {site} hung: {result.outcomes()}"
                )
        assert result.blocked_sites == []

    @given(votes=votes, crashes=schedules, seed=st.integers(0, 2**16))
    @COMMON_SETTINGS
    def test_3pc_decentralized_operational_sites_always_decide(
        self, votes, crashes, seed
    ):
        result = run("3pc-decentralized", votes, crashes, seed)
        for site, report in result.reports.items():
            if report.alive and not report.crashed:
                assert report.outcome.is_final
        assert result.blocked_sites == []


class TestRecoveryAgreement:
    @given(
        votes=votes,
        crash_time=st.floats(min_value=0.0, max_value=8.0),
        victim=st.sampled_from(SITES),
        seed=st.integers(0, 2**16),
    )
    @COMMON_SETTINGS
    def test_recovered_site_agrees_with_survivors(
        self, votes, crash_time, victim, seed
    ):
        result = run(
            "3pc-central",
            votes,
            [CrashAt(site=victim, at=crash_time, restart_at=40.0)],
            seed,
        )
        final = {
            r.outcome for r in result.reports.values() if r.outcome.is_final
        }
        assert len(final) <= 1
        # The recovered site must itself have terminated.
        assert result.reports[victim].outcome.is_final


class TestDeterminismProperty:
    @given(votes=votes, crashes=schedules, seed=st.integers(0, 2**16))
    @settings(max_examples=25, deadline=None)
    def test_runs_are_reproducible(self, votes, crashes, seed):
        a = run("3pc-central", votes, crashes, seed)
        b = run("3pc-central", votes, crashes, seed)
        assert a.outcomes() == b.outcomes()
        assert a.duration == b.duration
        assert a.messages_sent == b.messages_sent
