"""Property tests on the design method and protocol constructions.

The buffer-state synthesis and the protocol builders must behave as
algebraically as the paper presents them, across site counts:

* synthesis is idempotent (a synthesized protocol is already
  nonblocking, so re-synthesizing returns it unchanged);
* synthesis commutes with the catalog (2PC(n) + buffer == 3PC(n));
* builders are deterministic (structural equality across calls);
* strict and eager variants agree on everything the theorem measures.
"""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.analysis.nonblocking import check_nonblocking
from repro.analysis.synthesis import insert_buffer_states, specs_structurally_equal
from repro.protocols.three_phase_central import central_three_phase
from repro.protocols.three_phase_decentralized import decentralized_three_phase
from repro.protocols.two_phase_central import central_two_phase
from repro.protocols.two_phase_decentralized import decentralized_two_phase

import pytest

pytestmark = pytest.mark.slow

site_counts = st.integers(min_value=2, max_value=4)

SETTINGS = settings(max_examples=12, deadline=None)


class TestSynthesisAlgebra:
    @given(n=site_counts)
    @SETTINGS
    def test_synthesis_reproduces_central_3pc(self, n):
        assert specs_structurally_equal(
            insert_buffer_states(central_two_phase(n)),
            central_three_phase(n),
        )

    @given(n=site_counts)
    @SETTINGS
    def test_synthesis_reproduces_decentralized_3pc(self, n):
        assert specs_structurally_equal(
            insert_buffer_states(decentralized_two_phase(n)),
            decentralized_three_phase(n),
        )

    @given(n=site_counts)
    @SETTINGS
    def test_synthesis_is_idempotent(self, n):
        once = insert_buffer_states(central_two_phase(n))
        twice = insert_buffer_states(once)
        assert twice is once  # Nonblocking input returns unchanged.

    @given(n=site_counts)
    @SETTINGS
    def test_synthesized_protocols_tolerate_n_minus_1(self, n):
        report = check_nonblocking(
            insert_buffer_states(decentralized_two_phase(n))
        )
        assert report.tolerated_failures == n - 1


class TestBuilderDeterminism:
    @given(n=site_counts)
    @SETTINGS
    def test_builders_are_pure(self, n):
        assert specs_structurally_equal(
            central_three_phase(n), central_three_phase(n)
        )
        assert specs_structurally_equal(
            decentralized_two_phase(n), decentralized_two_phase(n)
        )

    @given(n=site_counts)
    @SETTINGS
    def test_eager_and_strict_share_theorem_verdicts(self, n):
        for builder in (central_two_phase, central_three_phase,
                        decentralized_two_phase, decentralized_three_phase):
            strict = check_nonblocking(builder(n))
            eager = check_nonblocking(builder(n, eager_abort=True))
            assert strict.nonblocking == eager.nonblocking
            assert strict.tolerated_failures == eager.tolerated_failures

    @given(n=site_counts)
    @SETTINGS
    def test_eager_and_strict_differ_structurally(self, n):
        if n == 2:
            return  # One voter: a single no IS the full vector.
        assert not specs_structurally_equal(
            central_two_phase(n), central_two_phase(n, eager_abort=True)
        )
