"""Property-based tests on the database substrate.

The WAL recovery invariant: after any sequence of transactions (each
either committed, aborted, or cut off by a crash), recovery rebuilds a
store reflecting exactly the committed transactions.  The lock-manager
invariant: holders are always mutually compatible.
"""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.db.kv import KVStore
from repro.db.local_tm import BlockedOnLock, ResourceManager
from repro.db.locks import LockManager, LockMode
from repro.db.wal import MISSING, WriteAheadLog
from repro.errors import DeadlockError
from repro.types import SiteId, TransactionId

import pytest

pytestmark = pytest.mark.slow

keys = st.sampled_from(["a", "b", "c", "d"])
values = st.integers(min_value=0, max_value=999)

#: One transaction: list of (key, value) writes plus a fate.
transactions = st.lists(
    st.tuples(
        st.lists(st.tuples(keys, values), min_size=1, max_size=4),
        st.sampled_from(["commit", "abort", "crash"]),
    ),
    min_size=1,
    max_size=6,
)


class TestWALRecovery:
    @given(history=transactions)
    @settings(max_examples=80, deadline=None)
    def test_recovery_reflects_exactly_committed_prefix(self, history):
        wal = WriteAheadLog()
        live = KVStore()
        expected = {}
        crashed = False
        for index, (writes, fate) in enumerate(history):
            if crashed:
                break
            txn = TransactionId(index + 1)
            wal.log_begin(txn)
            pending = {}
            for key, value in writes:
                old = live.get(key, MISSING) if live.exists(key) else MISSING
                wal.log_update(txn, key, old, value)
                live.put(key, value)
                pending[key] = value
            if fate == "commit":
                wal.log_commit(txn)
                expected.update(pending)
            elif fate == "abort":
                # Undo from the log in reverse, as the RM does.
                for record in reversed(wal.updates_of(txn)):
                    if record.old is MISSING:
                        live.delete(record.key)
                    else:
                        live.put(record.key, record.old)
                wal.log_abort(txn)
            else:
                crashed = True  # Mid-transaction crash ends the history.

        recovered = KVStore()
        wal.recover(recovered)
        assert recovered.snapshot() == expected

    @given(history=transactions)
    @settings(max_examples=40, deadline=None)
    def test_double_recovery_is_stable(self, history):
        wal = WriteAheadLog()
        for index, (writes, fate) in enumerate(history):
            txn = TransactionId(index + 1)
            wal.log_begin(txn)
            prior = {}
            for key, value in writes:
                wal.log_update(txn, key, prior.get(key, MISSING), value)
                prior[key] = value
            if fate == "commit":
                wal.log_commit(txn)
            elif fate == "abort":
                wal.log_abort(txn)
        first = KVStore()
        wal.recover(first)
        second = KVStore()
        wal.recover(second)
        assert first.snapshot() == second.snapshot()


lock_requests = st.lists(
    st.tuples(
        st.integers(min_value=1, max_value=4),  # txn
        keys,
        st.sampled_from([LockMode.SHARED, LockMode.EXCLUSIVE]),
    ),
    max_size=20,
)


class TestLockInvariants:
    @given(requests=lock_requests)
    @settings(max_examples=80, deadline=None)
    def test_holders_always_compatible(self, requests):
        locks = LockManager()
        for txn_id, key, mode in requests:
            txn = TransactionId(txn_id)
            try:
                locks.acquire(txn, key, mode)
            except DeadlockError:
                locks.release_all(txn)
            holders = locks.holders(key)
            items = list(holders.items())
            for i, (txn_a, mode_a) in enumerate(items):
                for txn_b, mode_b in items[i + 1:]:
                    assert mode_a.compatible_with(mode_b), (
                        f"{txn_a}:{mode_a} vs {txn_b}:{mode_b} on {key}"
                    )

    @given(requests=lock_requests)
    @settings(max_examples=60, deadline=None)
    def test_release_all_leaves_no_trace(self, requests):
        locks = LockManager()
        touched = set()
        for txn_id, key, mode in requests:
            txn = TransactionId(txn_id)
            touched.add(txn)
            try:
                locks.acquire(txn, key, mode)
            except DeadlockError:
                pass
        for txn in touched:
            locks.release_all(txn)
        for _txn_id, key, _mode in requests:
            assert locks.holders(key) == {}
            assert locks.waiters(key) == []


concurrent_programs = st.dictionaries(
    keys=st.integers(min_value=1, max_value=5),
    values=st.lists(
        st.tuples(keys, st.integers(min_value=1, max_value=5)),
        min_size=1,
        max_size=4,
    ),
    min_size=1,
    max_size=5,
)


class TestConcurrentIsolation:
    @given(programs=concurrent_programs)
    @settings(max_examples=40, deadline=None)
    def test_no_aborted_write_survives(self, programs):
        """Strict 2PL + WAL: only committed transactions' writes remain.

        Every write value encodes its writer, so the final database
        state must be attributable entirely to committed transactions —
        an aborted or stalled transaction leaking even one write would
        be caught here.
        """
        from repro.db.distributed import DistributedDB
        from repro.types import Outcome, TransactionId

        db = DistributedDB(3)
        txn_programs = {
            TransactionId(txn): [
                ("w", key, (txn, value)) for key, value in writes
            ]
            for txn, writes in programs.items()
        }
        results = db.run_concurrent(txn_programs)
        committed = {
            txn for txn, r in results.items() if r.outcome is Outcome.COMMIT
        }
        for key, value in db.snapshot().items():
            writer, _ = value
            assert TransactionId(writer) in committed, (
                f"{key}={value} written by non-committed txn {writer}"
            )

    @given(programs=concurrent_programs)
    @settings(max_examples=40, deadline=None)
    def test_every_transaction_gets_exactly_one_outcome(self, programs):
        from repro.db.distributed import DistributedDB
        from repro.types import TransactionId

        db = DistributedDB(3)
        txn_programs = {
            TransactionId(txn): [("w", key, value) for key, value in writes]
            for txn, writes in programs.items()
        }
        results = db.run_concurrent(txn_programs)
        assert set(results) == set(txn_programs)
        for outcome in results.values():
            assert outcome.outcome.is_final or outcome.outcome.value == "blocked"


rm_programs = st.lists(
    st.tuples(
        st.integers(min_value=1, max_value=3),
        st.sampled_from(["r", "w"]),
        keys,
        values,
    ),
    max_size=15,
)


class TestResourceManagerNeverCorrupts:
    @given(program=rm_programs)
    @settings(max_examples=60, deadline=None)
    def test_aborting_everything_restores_empty_store(self, program):
        rm = ResourceManager(SiteId(1))
        begun = set()
        for txn_id, kind, key, value in program:
            txn = TransactionId(txn_id)
            if txn not in begun:
                rm.begin(txn)
                begun.add(txn)
            try:
                if kind == "r":
                    rm.read(txn, key)
                else:
                    rm.write(txn, key, value)
            except (BlockedOnLock, DeadlockError, Exception):
                # Any refusal is fine; we only test final rollback.
                pass
        for txn in begun:
            rm.abort(txn)
        assert rm.store.snapshot() == {}
