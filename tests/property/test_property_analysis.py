"""Property-based tests on the analysis machinery.

Random protocol instances (catalog protocols over random site counts,
plus randomly synthesized buffer variants) must uphold the structural
invariants the paper's definitions imply.
"""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.analysis.committable import committable_states
from repro.analysis.concurrency import concurrency_set
from repro.analysis.nonblocking import check_nonblocking
from repro.analysis.reachability import build_state_graph
from repro.protocols import catalog

import pytest

pytestmark = pytest.mark.slow

protocol_names = st.sampled_from(catalog.protocol_names())
small_n = st.integers(min_value=2, max_value=3)


@st.composite
def spec_instances(draw):
    return catalog.build(draw(protocol_names), draw(small_n))


class TestGraphInvariants:
    @given(spec=spec_instances())
    @settings(max_examples=30, deadline=None)
    def test_terminal_states_are_final(self, spec):
        graph = build_state_graph(spec)
        for state in graph.terminal_states():
            assert graph.is_final(state)

    @given(spec=spec_instances())
    @settings(max_examples=30, deadline=None)
    def test_no_inconsistent_states(self, spec):
        graph = build_state_graph(spec)
        assert graph.inconsistent_states() == []

    @given(spec=spec_instances())
    @settings(max_examples=30, deadline=None)
    def test_edges_preserve_site_count(self, spec):
        graph = build_state_graph(spec)
        width = len(graph.sites)
        for state in graph.states:
            assert len(state.locals) == width
            for edge in graph.successors(state):
                assert len(edge.target.locals) == width

    @given(spec=spec_instances())
    @settings(max_examples=30, deadline=None)
    def test_final_states_have_no_successors_for_their_site(self, spec):
        graph = build_state_graph(spec)
        for state in graph.states:
            for edge in graph.successors(state):
                source_local = graph.local_of(state, edge.site)
                assert not spec.is_final_state(edge.site, source_local)


class TestConcurrencySymmetry:
    @given(spec=spec_instances())
    @settings(max_examples=20, deadline=None)
    def test_concurrency_is_symmetric(self, spec):
        # If (j, t) is in CS(i, s) then (i, s) is in CS(j, t): both mean
        # a reachable global state contains s at i and t at j.
        graph = build_state_graph(spec)
        for site in graph.sites:
            for state in graph.reachable_local_states(site):
                for other, other_state in concurrency_set(graph, site, state):
                    back = concurrency_set(graph, other, other_state)
                    assert (site, state) in back

    @given(spec=spec_instances())
    @settings(max_examples=20, deadline=None)
    def test_initial_states_mutually_concurrent(self, spec):
        graph = build_state_graph(spec)
        sites = graph.sites
        for i, site in enumerate(sites):
            cs = concurrency_set(graph, site, spec.automaton(site).initial)
            for other in sites:
                if other != site:
                    assert (other, spec.automaton(other).initial) in cs


class TestCommittableInvariants:
    @given(spec=spec_instances())
    @settings(max_examples=20, deadline=None)
    def test_committable_implies_no_concurrent_abort(self, spec):
        # Occupancy of a committable state implies every site voted yes,
        # and a site that voted yes cannot sit in a state it reached by
        # voting no; for the catalog protocols this surfaces as: no
        # abort state in any committable state's concurrency set.
        graph = build_state_graph(spec)
        table = committable_states(graph)
        for (site, state), committable in table.items():
            if not committable:
                continue
            cs = concurrency_set(graph, site, state)
            assert not any(
                spec.is_abort_state(other, local) for other, local in cs
            )

    @given(spec=spec_instances())
    @settings(max_examples=20, deadline=None)
    def test_initial_never_committable(self, spec):
        graph = build_state_graph(spec)
        table = committable_states(graph)
        for site in graph.sites:
            assert table[(site, spec.automaton(site).initial)] is False


class TestTheoremConsistency:
    @given(spec=spec_instances())
    @settings(max_examples=20, deadline=None)
    def test_verdict_matches_catalog_classification(self, spec):
        report = check_nonblocking(spec)
        expected = any(
            marker in spec.name for marker in ("3PC",)
        )
        assert report.nonblocking == expected

    @given(spec=spec_instances())
    @settings(max_examples=20, deadline=None)
    def test_tolerated_failures_bounded_by_sites(self, spec):
        report = check_nonblocking(spec)
        assert 0 <= report.tolerated_failures <= spec.n_sites - 1
