"""Stateful property testing of the lock manager.

Hypothesis drives arbitrary interleavings of acquire / unlock /
release-all across transactions and keys, with a shadow model tracking
what *should* be held.  Invariants checked after every step:

* holders of one key are pairwise compatible;
* a transaction never ends up both holding and waiting on one key;
* FIFO integrity: the waiter queue never contains duplicates;
* ``release_all`` leaves no residue for the released transaction;
* deadlock victims are never enqueued.
"""

import hypothesis.strategies as st
from hypothesis import settings
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.db.locks import LockManager, LockMode
from repro.errors import DeadlockError
from repro.types import TransactionId

import pytest

pytestmark = pytest.mark.slow

TXNS = [TransactionId(i) for i in range(1, 5)]
KEYS = ["a", "b", "c"]
MODES = [LockMode.SHARED, LockMode.EXCLUSIVE]


class LockMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.locks = LockManager()
        self.granted: dict[tuple[TransactionId, str], LockMode] = {}

    # ------------------------------------------------------------------
    # Actions
    # ------------------------------------------------------------------

    @rule(
        txn=st.sampled_from(TXNS),
        key=st.sampled_from(KEYS),
        mode=st.sampled_from(MODES),
    )
    def acquire(self, txn, key, mode):
        try:
            granted = self.locks.acquire(txn, key, mode)
        except DeadlockError:
            # Mirror the resource manager: the victim aborts, which
            # must scrub every hold and queued request it ever made.
            self.locks.release_all(txn)
            self.granted = {
                (t, k): m for (t, k), m in self.granted.items() if t != txn
            }
            for other_key in KEYS:
                assert txn not in self.locks.waiters(other_key)
                assert txn not in self.locks.holders(other_key)
            return
        if granted:
            held = self.locks.holders(key).get(txn)
            assert held is not None
            self.granted[(txn, key)] = held

    @rule(txn=st.sampled_from(TXNS))
    def release_all(self, txn):
        woken = self.locks.release_all(txn)
        self.granted = {
            (t, k): m for (t, k), m in self.granted.items() if t != txn
        }
        # Woken transactions now hold their keys; refresh the shadow.
        for other in woken:
            for key, mode in self.locks.locks_held(other).items():
                self.granted[(other, key)] = mode

    @rule(txn=st.sampled_from(TXNS), key=st.sampled_from(KEYS))
    def unlock_if_held(self, txn, key):
        if txn in self.locks.holders(key):
            self.locks.unlock(txn, key)
            self.granted.pop((txn, key), None)
            for other, mode in self.locks.holders(key).items():
                self.granted[(other, key)] = mode

    # ------------------------------------------------------------------
    # Invariants
    # ------------------------------------------------------------------

    @invariant()
    def holders_pairwise_compatible(self):
        for key in KEYS:
            holders = list(self.locks.holders(key).items())
            for i, (txn_a, mode_a) in enumerate(holders):
                for txn_b, mode_b in holders[i + 1:]:
                    assert mode_a.compatible_with(mode_b), (key, holders)

    @invariant()
    def never_both_holding_and_waiting(self):
        for key in KEYS:
            holders = set(self.locks.holders(key))
            waiters = self.locks.waiters(key)
            # A holder may wait only for an upgrade (S held, X queued).
            for waiter in waiters:
                if waiter in holders:
                    assert self.locks.holders(key)[waiter] is LockMode.SHARED

    @invariant()
    def waiter_queue_has_no_duplicates(self):
        for key in KEYS:
            waiters = self.locks.waiters(key)
            assert len(waiters) == len(set(waiters)), (key, waiters)

    @invariant()
    def shadow_model_agrees(self):
        for (txn, key), mode in self.granted.items():
            held = self.locks.holders(key).get(txn)
            assert held is not None, (txn, key)
            # Upgrades may have strengthened the lock since we recorded it.
            if mode is LockMode.EXCLUSIVE:
                assert held is LockMode.EXCLUSIVE


LockMachine.TestCase.settings = settings(
    max_examples=60, stateful_step_count=30, deadline=None
)
TestLockMachine = LockMachine.TestCase
