"""Property tests: every randomized execution conforms to the model.

Beyond atomicity, hypothesis-driven schedules are audited step by step
by :func:`repro.analysis.conformance.audit_run` — the engine may never
fire a transition its automaton does not define, misreport a vote, or
end in a state inconsistent with its logged decision.
"""

import hypothesis.strategies as st
from hypothesis import HealthCheck, given, settings

from repro.analysis.conformance import audit_run
from repro.protocols import catalog
from repro.runtime.decision import TerminationRule
from repro.runtime.harness import CommitRun
from repro.runtime.multi import MultiCommitRun
from repro.runtime.policies import FixedVotes
from repro.types import SiteId, Vote
from repro.workload.crashes import CrashAt, CrashDuringTransition

import pytest

pytestmark = pytest.mark.slow

N_SITES = 3
SITES = [SiteId(i) for i in range(1, N_SITES + 1)]
SPECS = {name: catalog.build(name, N_SITES) for name in catalog.protocol_names()}
RULES = {name: TerminationRule(spec) for name, spec in SPECS.items()}

crash_schedules = st.lists(
    st.one_of(
        st.builds(
            CrashAt,
            site=st.sampled_from(SITES),
            at=st.floats(min_value=0.0, max_value=8.0, allow_nan=False),
            restart_at=st.one_of(
                st.none(), st.floats(min_value=30.0, max_value=50.0)
            ),
        ),
        st.builds(
            CrashDuringTransition,
            site=st.sampled_from(SITES),
            transition_number=st.integers(min_value=1, max_value=3),
            after_writes=st.integers(min_value=0, max_value=N_SITES),
        ),
    ),
    max_size=2,
    unique_by=lambda e: e.site,
)

vote_maps = st.fixed_dictionaries(
    {site: st.sampled_from([Vote.YES, Vote.NO]) for site in SITES}
)

SETTINGS = settings(
    max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)


class TestEveryExecutionConforms:
    @given(
        name=st.sampled_from(sorted(SPECS)),
        votes=vote_maps,
        crashes=crash_schedules,
        seed=st.integers(0, 2**16),
    )
    @SETTINGS
    def test_single_run_conformance(self, name, votes, crashes, seed):
        spec = SPECS[name]
        run = CommitRun(
            spec,
            seed=seed,
            vote_policy=FixedVotes(votes),
            crashes=crashes,
            rule=RULES[name],
            max_time=200.0,
        ).execute()
        findings = audit_run(run, spec)
        assert findings == [], [str(f) for f in findings]

    @given(
        mode=st.sampled_from(["standard", "cooperative", "quorum"]),
        votes=vote_maps,
        crashes=crash_schedules,
        seed=st.integers(0, 2**16),
    )
    @SETTINGS
    def test_termination_modes_conform_and_stay_atomic(
        self, mode, votes, crashes, seed
    ):
        spec = SPECS["3pc-central"]
        run = CommitRun(
            spec,
            seed=seed,
            vote_policy=FixedVotes(votes),
            crashes=crashes,
            rule=RULES["3pc-central"],
            termination_mode=mode,
            max_time=200.0,
        ).execute()
        run.assert_atomic()
        assert audit_run(run, spec) == []


class TestMultiplexedRuns:
    @given(
        stagger=st.floats(min_value=0.0, max_value=3.0, allow_nan=False),
        crash_time=st.floats(min_value=0.5, max_value=10.0, allow_nan=False),
        seed=st.integers(0, 2**16),
    )
    @settings(max_examples=25, deadline=None)
    def test_every_multiplexed_transaction_stays_atomic(
        self, stagger, crash_time, seed
    ):
        spec = SPECS["3pc-central"]
        run = MultiCommitRun(
            spec,
            start_times=[i * stagger for i in range(4)],
            crashes=[CrashAt(site=1, at=crash_time)],
            seed=seed,
            rule=RULES["3pc-central"],
            max_time=200.0,
        ).execute()
        assert run.atomic
        assert run.blocked_transactions() == []
        for result in run.per_transaction.values():
            for site, report in result.reports.items():
                if report.alive and not report.crashed:
                    assert report.outcome.is_final
