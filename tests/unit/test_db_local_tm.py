"""Unit tests for the per-site resource manager."""

import pytest

from repro.db.local_tm import BlockedOnLock, ResourceManager
from repro.errors import DeadlockError, TransactionAborted
from repro.types import Outcome, SiteId, TransactionId, Vote

T1, T2 = TransactionId(1), TransactionId(2)


@pytest.fixture()
def rm():
    return ResourceManager(SiteId(1))


class TestReadWrite:
    def test_write_then_read_own_value(self, rm):
        rm.begin(T1)
        rm.write(T1, "k", 10)
        assert rm.read(T1, "k") == 10

    def test_read_missing_returns_none(self, rm):
        rm.begin(T1)
        assert rm.read(T1, "k") is None

    def test_read_committed_value(self, rm):
        rm.begin(T1)
        rm.write(T1, "k", 5)
        rm.commit(T1)
        rm.begin(T2)
        assert rm.read(T2, "k") == 5

    def test_op_on_unknown_txn_raises(self, rm):
        with pytest.raises(TransactionAborted):
            rm.read(T1, "k")

    def test_conflicting_write_blocks(self, rm):
        rm.begin(T1)
        rm.begin(T2)
        rm.write(T1, "k", 1)
        with pytest.raises(BlockedOnLock):
            rm.write(T2, "k", 2)

    def test_shared_reads_coexist(self, rm):
        rm.begin(T1)
        rm.begin(T2)
        rm.read(T1, "k")
        rm.read(T2, "k")  # Must not block.

    def test_read_own_write_does_not_self_block(self, rm):
        rm.begin(T1)
        rm.write(T1, "k", 1)
        assert rm.read(T1, "k") == 1


class TestCommitAbort:
    def test_commit_releases_locks(self, rm):
        rm.begin(T1)
        rm.write(T1, "k", 1)
        rm.commit(T1)
        rm.begin(T2)
        rm.write(T2, "k", 2)  # Granted: T1's lock is gone.
        assert rm.store.get("k") == 2

    def test_abort_undoes_updates(self, rm):
        rm.begin(T1)
        rm.write(T1, "k", "v1")
        rm.commit(T1)
        rm.begin(T2)
        rm.write(T2, "k", "v2")
        rm.abort(T2)
        assert rm.store.get("k") == "v1"

    def test_abort_removes_created_keys(self, rm):
        rm.begin(T1)
        rm.write(T1, "fresh", 1)
        rm.abort(T1)
        assert not rm.store.exists("fresh")

    def test_abort_is_idempotent(self, rm):
        rm.begin(T1)
        rm.abort(T1)
        rm.abort(T1)  # No error.

    def test_ops_after_abort_raise(self, rm):
        rm.begin(T1)
        rm.abort(T1)
        with pytest.raises(TransactionAborted):
            rm.write(T1, "k", 1)

    def test_deadlock_victim_auto_aborted(self, rm):
        rm.begin(T1)
        rm.begin(T2)
        rm.write(T1, "a", 1)
        rm.write(T2, "b", 2)
        with pytest.raises(BlockedOnLock):
            rm.write(T1, "b", 3)
        with pytest.raises(DeadlockError):
            rm.write(T2, "a", 4)
        assert not rm.is_active(T2)
        assert rm.deadlock_victims == 1
        # The victim's release unblocks T1's queued request eventually.
        rm.write(T1, "b", 3)
        assert rm.store.get("b") == 3


class TestVoting:
    def test_healthy_txn_votes_yes(self, rm):
        rm.begin(T1)
        rm.write(T1, "k", 1)
        assert rm.prepare(T1) is Vote.YES
        assert rm.is_prepared(T1)

    def test_aborted_txn_votes_no(self, rm):
        rm.begin(T1)
        rm.abort(T1)
        assert rm.prepare(T1) is Vote.NO

    def test_unknown_txn_votes_no(self, rm):
        assert rm.prepare(T1) is Vote.NO


class TestCrashRecovery:
    def test_crash_wipes_volatile_state(self, rm):
        rm.begin(T1)
        rm.write(T1, "k", 1)
        rm.crash()
        assert len(rm.store) == 0
        assert not rm.is_active(T1)

    def test_recover_redoes_committed(self, rm):
        rm.begin(T1)
        rm.write(T1, "k", "v")
        rm.commit(T1)
        rm.crash()
        classification = rm.recover()
        assert rm.store.get("k") == "v"
        assert classification["committed"] == [T1]

    def test_recover_rolls_back_active(self, rm):
        rm.begin(T1)
        rm.write(T1, "k", "v")
        rm.crash()
        classification = rm.recover()
        assert not rm.store.exists("k")
        assert classification["rolled_back"] == [T1]

    def test_recover_preserves_in_doubt_with_locks(self, rm):
        rm.begin(T1)
        rm.write(T1, "k", "v")
        rm.prepare(T1)
        rm.crash()
        classification = rm.recover(in_doubt=[T1])
        assert classification["in_doubt"] == [T1]
        assert rm.store.get("k") == "v"
        assert rm.is_active(T1)
        assert rm.is_prepared(T1)
        # Re-acquired locks block other writers.
        rm.begin(T2)
        with pytest.raises(BlockedOnLock):
            rm.write(T2, "k", "other")

    def test_resolve_in_doubt_commit(self, rm):
        rm.begin(T1)
        rm.write(T1, "k", "v")
        rm.prepare(T1)
        rm.crash()
        rm.recover(in_doubt=[T1])
        rm.resolve(T1, Outcome.COMMIT)
        assert rm.store.get("k") == "v"
        assert rm.wal.status(T1) == "committed"

    def test_resolve_in_doubt_abort(self, rm):
        rm.begin(T1)
        rm.write(T1, "k", "v")
        rm.prepare(T1)
        rm.crash()
        rm.recover(in_doubt=[T1])
        rm.resolve(T1, Outcome.ABORT)
        assert not rm.store.exists("k")

    def test_resolve_non_final_raises(self, rm):
        rm.begin(T1)
        with pytest.raises(ValueError):
            rm.resolve(T1, Outcome.BLOCKED)
