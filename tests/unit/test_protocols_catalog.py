"""Unit tests for the protocol catalog and the individual builders."""

import pytest

from repro.errors import InstantiationError, InvalidProtocolError
from repro.fsa.messages import EXTERNAL, Msg
from repro.protocols import catalog
from repro.protocols.one_phase import one_phase
from repro.protocols.three_phase_central import central_three_phase
from repro.protocols.three_phase_decentralized import decentralized_three_phase
from repro.protocols.two_phase_central import central_two_phase
from repro.protocols.two_phase_decentralized import decentralized_two_phase
from repro.protocols._shared import no_vote_combinations
from repro.types import ProtocolClass, SiteId, Vote


class TestCatalog:
    def test_five_protocols(self):
        assert catalog.protocol_names() == [
            "1pc",
            "2pc-central",
            "2pc-decentralized",
            "3pc-central",
            "3pc-decentralized",
        ]

    def test_build_by_name(self):
        spec = catalog.build("3pc-central", 4)
        assert spec.n_sites == 4
        assert "3PC" in spec.name

    def test_unknown_name_rejected(self):
        with pytest.raises(InvalidProtocolError, match="unknown protocol"):
            catalog.build("4pc", 3)

    def test_blocking_and_nonblocking_partitions(self):
        assert set(catalog.BLOCKING) | set(catalog.NONBLOCKING) == set(
            catalog.PROTOCOLS
        )

    @pytest.mark.parametrize("name", catalog.protocol_names())
    def test_minimum_site_count_enforced(self, name):
        with pytest.raises(InstantiationError):
            catalog.build(name, 1)


class TestCentralSiteStructure:
    @pytest.mark.parametrize(
        "builder", [one_phase, central_two_phase, central_three_phase]
    )
    def test_coordinator_is_site_one(self, builder):
        spec = builder(4)
        assert spec.coordinator == SiteId(1)
        assert spec.protocol_class is ProtocolClass.CENTRAL_SITE

    @pytest.mark.parametrize(
        "builder", [central_two_phase, central_three_phase]
    )
    def test_slaves_talk_only_to_coordinator(self, builder):
        # Property 3 of the central-site model (slide 23).
        spec = builder(4)
        for site in spec.sites:
            if site == spec.coordinator:
                continue
            automaton = spec.automaton(site)
            for transition in automaton.transitions:
                for msg in transition.writes:
                    assert msg.dst == spec.coordinator
                for msg in transition.reads:
                    assert msg.src in (spec.coordinator, EXTERNAL)

    def test_external_input_is_single_request(self):
        spec = central_two_phase(4)
        assert spec.initial_messages == frozenset(
            {Msg("request", EXTERNAL, SiteId(1))}
        )

    def test_2pc_coordinator_vote_nondeterminism(self):
        # Two transitions read the full yes set: one commits (vote yes),
        # one aborts (vote no) — the "(yes_1)"/"(no_1)" of slide 15.
        spec = central_two_phase(3)
        coordinator = spec.automaton(SiteId(1))
        all_yes = [
            t
            for t in coordinator.out_transitions("w")
            if all(m.kind == "yes" for m in t.reads)
            and len(t.reads) == spec.n_sites - 1
        ]
        votes = {t.vote for t in all_yes}
        assert votes == {Vote.YES, Vote.NO}

    def test_3pc_has_prepare_and_ack_kinds(self):
        kinds = central_three_phase(3).message_kinds()
        assert "prepare" in kinds and "ack" in kinds

    def test_2pc_lacks_prepare(self):
        assert "prepare" not in central_two_phase(3).message_kinds()


class TestDecentralizedStructure:
    @pytest.mark.parametrize(
        "builder", [decentralized_two_phase, decentralized_three_phase]
    )
    def test_all_sites_same_role_no_coordinator(self, builder):
        spec = builder(4)
        assert spec.coordinator is None
        assert {spec.automaton(s).role for s in spec.sites} == {"peer"}

    def test_every_site_gets_external_xact(self):
        spec = decentralized_two_phase(3)
        assert spec.initial_messages == frozenset(
            Msg("xact", EXTERNAL, SiteId(i)) for i in (1, 2, 3)
        )

    def test_sites_send_votes_to_themselves(self):
        # Slide 25: "sites will be assumed to send messages to themselves."
        spec = decentralized_two_phase(3)
        peer = spec.automaton(SiteId(2))
        vote_transition = [t for t in peer.transitions if t.vote is Vote.YES][0]
        assert Msg("yes", SiteId(2), SiteId(2)) in vote_transition.writes

    def test_commit_requires_full_yes_set(self):
        spec = decentralized_two_phase(3)
        peer = spec.automaton(SiteId(1))
        commit_transitions = [
            t for t in peer.transitions if t.target in peer.commit_states
        ]
        assert len(commit_transitions) == 1
        assert {m.src for m in commit_transitions[0].reads} == {1, 2, 3}

    def test_3pc_prepare_broadcast_to_all(self):
        spec = decentralized_three_phase(3)
        peer = spec.automaton(SiteId(1))
        to_p = [t for t in peer.transitions if t.target == "p"][0]
        assert {m.dst for m in to_p.writes} == {1, 2, 3}
        assert all(m.kind == "prepare" for m in to_p.writes)


class TestVoteCombinations:
    def test_count_is_all_but_all_yes(self):
        voters = [SiteId(2), SiteId(3), SiteId(4)]
        assert len(no_vote_combinations(voters)) == 2**3 - 1

    def test_each_has_at_least_one_no(self):
        for vector in no_vote_combinations([SiteId(2), SiteId(3)]):
            assert "no" in vector.values()

    def test_all_vectors_distinct(self):
        combos = no_vote_combinations([SiteId(2), SiteId(3), SiteId(4)])
        as_tuples = {tuple(sorted(v.items())) for v in combos}
        assert len(as_tuples) == len(combos)

    def test_strict_2pc_abort_transition_count(self):
        # w has 2 all-yes transitions plus 2^(n-1)-1 abort vectors.
        spec = central_two_phase(4)
        coordinator = spec.automaton(SiteId(1))
        assert len(coordinator.out_transitions("w")) == 2 + (2**3 - 1)

    def test_eager_2pc_abort_transition_count(self):
        spec = central_two_phase(4, eager_abort=True)
        coordinator = spec.automaton(SiteId(1))
        assert len(coordinator.out_transitions("w")) == 2 + 3


class TestOnePhase:
    def test_slaves_cannot_vote(self):
        spec = one_phase(3)
        for site in (2, 3):
            automaton = spec.automaton(SiteId(site))
            assert all(t.vote is None for t in automaton.transitions)

    def test_single_phase(self):
        assert one_phase(3).max_phase_count() == 1

    def test_coordinator_decides_alone(self):
        spec = one_phase(3)
        coordinator = spec.automaton(SiteId(1))
        assert coordinator.successors("q") == {"c", "a"}
