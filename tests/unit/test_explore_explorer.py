"""Explorer behavior: determinism, coverage, mutants, sharding, replay."""

from __future__ import annotations

import pytest

from repro.errors import ExploreConfigError, ReplayDivergenceError
from repro.explore import (
    Choice,
    ExploreConfig,
    Explorer,
    ReplayArtifact,
    apply_mutant,
    merge_explore_payloads,
    mutant_names,
    plan_tasks,
    render_explore_report,
    replay,
    violation_artifact,
)
from repro.explore.shard import build_explore_payload
from repro.protocols import catalog


@pytest.fixture(scope="module")
def clean_explorer():
    return Explorer(
        ExploreConfig(
            protocol="3pc-central", n_sites=3, seed=7, budget=40, shards=1
        )
    )


@pytest.fixture(scope="module")
def mutant_explorer():
    return Explorer(
        ExploreConfig(
            protocol="3pc-central",
            n_sites=3,
            seed=7,
            budget=40,
            shards=1,
            mutant="skip-buffer",
        )
    )


# ----------------------------------------------------------------------
# Single runs
# ----------------------------------------------------------------------


def test_root_schedule_of_correct_3pc_is_clean(clean_explorer):
    outcome = clean_explorer.run_one(())
    assert outcome.violations == ()
    assert outcome.outcomes == ("commit", "commit", "commit")
    assert outcome.canonical == ()  # all-defaults trail canonicalizes away


def test_run_one_is_deterministic(clean_explorer):
    first = clean_explorer.run_one(())
    second = clean_explorer.run_one(())
    assert first == second


def test_prefix_replays_reproduce_the_recorded_trail(clean_explorer):
    root = clean_explorer.run_one(())
    # Replaying a run's own full trail is the identity.
    again = clean_explorer.run_one(root.trail)
    assert again.trail == root.trail
    assert again.hash == root.hash


def test_expansion_branches_only_beyond_prefix(clean_explorer):
    root = clean_explorer.run_one(())
    children = clean_explorer.expand(0, root.trail)
    assert children, "root trail should offer alternatives"
    for child in children:
        assert not child[-1].is_default  # every child ends in a non-default
    # Children of a child must not re-branch the inherited prefix.
    child = children[0]
    grandchildren = clean_explorer.expand(
        len(child), clean_explorer.run_one(child).trail
    )
    for grandchild in grandchildren:
        assert grandchild[: len(child)] == child


# ----------------------------------------------------------------------
# Exploration: clean protocol, sharding, random mode
# ----------------------------------------------------------------------


def test_clean_3pc_exploration_finds_nothing(clean_explorer):
    result = clean_explorer.explore_shard(0)
    assert result.schedules == 40
    assert result.violations == []


def test_shard_union_is_worker_independent():
    # The same config explored as 2 shards merges to the exact document
    # the shard tasks produce individually — worker count never appears.
    config = ExploreConfig(
        protocol="3pc-central", n_sites=3, seed=7, budget=30, shards=2
    )
    tasks = plan_tasks(config)
    assert len(tasks) == 2
    payloads_a = [build_explore_payload(task) for task in tasks]
    payloads_b = [build_explore_payload(task) for task in reversed(tasks)]
    merged_a = merge_explore_payloads(payloads_a)
    merged_b = merge_explore_payloads(payloads_b)
    assert merged_a == merged_b
    assert merged_a["schedules"] == 30
    assert render_explore_report(merged_a) == render_explore_report(merged_b)


def test_shard_budget_split_is_exact():
    config = ExploreConfig(
        protocol="3pc-central", n_sites=3, seed=7, budget=10, shards=4
    )
    explorer = Explorer(config)
    totals = [explorer.explore_shard(shard).schedules for shard in range(4)]
    assert sum(totals) == 10
    assert totals[0] >= totals[-1]  # remainder goes to low shards


def test_random_mode_is_deterministic():
    config = ExploreConfig(
        protocol="3pc-central",
        n_sites=3,
        seed=7,
        budget=12,
        shards=1,
        mode="random",
    )
    explorer = Explorer(config)
    first = explorer.explore_shard(0)
    second = explorer.explore_shard(0)
    assert first.schedules == second.schedules == 12
    assert first.violations == second.violations == []


def test_shard_index_out_of_range(clean_explorer):
    with pytest.raises(ValueError):
        clean_explorer.explore_shard(1)


# ----------------------------------------------------------------------
# Mutants: the explorer must catch a deliberately broken runtime
# ----------------------------------------------------------------------


def test_mutant_registry():
    assert "skip-buffer" in mutant_names()
    with pytest.raises(ExploreConfigError):
        apply_mutant(catalog.build("3pc-central", 3), "nope")
    with pytest.raises(ExploreConfigError):
        # 2PC has no buffer state to skip.
        apply_mutant(catalog.build("2pc-central", 3), "skip-buffer")


def test_skip_buffer_mutant_is_caught_and_shrunk(mutant_explorer):
    result = mutant_explorer.explore_shard(0)
    assert result.violations, "the seeded bug must be detected"
    kinds = {kind for rec in result.violations for kind in rec.signature}
    assert "conformance" in kinds
    assert "history-noncommittable" in kinds
    for record in result.violations:
        # Acceptance bar: minimized counterexamples stay <= 12 choices.
        assert len(record.shrunk) <= 12
        # The shrunk schedule must itself reproduce the signature.
        again = mutant_explorer.run_one(record.shrunk)
        assert again.signature == record.signature


def test_mutant_artifact_replays(mutant_explorer):
    result = mutant_explorer.explore_shard(0)
    record = result.violations[0]
    artifact = violation_artifact(mutant_explorer.config, record)
    outcome = replay(artifact, explorer=mutant_explorer)
    assert outcome.ok, outcome.problems


# ----------------------------------------------------------------------
# Replay strictness
# ----------------------------------------------------------------------


def test_replay_detects_wrong_expectations(clean_explorer):
    artifact = ReplayArtifact(
        config=clean_explorer.config,
        schedule=(),
        expect_verdict="violation",
        expect_kinds=("atomicity",),
    )
    outcome = replay(artifact, explorer=clean_explorer)
    assert not outcome.ok
    assert any("verdict" in problem for problem in outcome.problems)


def test_replay_raises_on_unreachable_schedule(clean_explorer):
    # A recorded schedule longer than any real decision sequence means
    # the runtime changed under the artifact: divergence, not mismatch.
    root = clean_explorer.run_one(())
    fabricated = tuple(root.trail) + tuple(
        Choice("order", 1, 2) for _ in range(60)
    )
    artifact = ReplayArtifact(
        config=clean_explorer.config,
        schedule=fabricated[: clean_explorer.config.depth + 20],
        expect_verdict="clean",
    )
    with pytest.raises(ReplayDivergenceError):
        replay(artifact, explorer=clean_explorer)


def test_replay_rejects_mismatched_explorer(clean_explorer):
    artifact = ReplayArtifact(
        config=ExploreConfig(protocol="2pc-central", n_sites=3),
        schedule=(),
        expect_verdict="clean",
    )
    with pytest.raises(ValueError):
        replay(artifact, explorer=clean_explorer)


# ----------------------------------------------------------------------
# 2PC gating: blocking is expected, not a violation
# ----------------------------------------------------------------------


def test_2pc_blocking_is_not_flagged():
    explorer = Explorer(
        ExploreConfig(
            protocol="2pc-central", n_sites=3, seed=7, budget=40, shards=1
        )
    )
    assert explorer.policy.nonblocking is False
    result = explorer.explore_shard(0)
    assert result.violations == []
