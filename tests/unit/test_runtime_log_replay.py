"""`DTLog.replay` edge cases: the restart path re-checks every invariant."""

from __future__ import annotations

import pytest

from repro.errors import WALError
from repro.runtime.log import DecisionRecord, DTLog, VoteRecord
from repro.types import Outcome, Vote

VOTE = VoteRecord(vote=Vote.YES, at=1.0)
COMMIT = DecisionRecord(outcome=Outcome.COMMIT, at=2.0, via="protocol")
ABORT = DecisionRecord(outcome=Outcome.ABORT, at=2.0, via="termination")


def test_replay_normal_sequence():
    log = DTLog.replay([VOTE, COMMIT])
    assert log.vote() == VOTE
    assert log.decision() == COMMIT
    assert log.outcome() is Outcome.COMMIT


def test_replay_empty():
    log = DTLog.replay([])
    assert len(log) == 0
    assert log.outcome() is Outcome.UNDECIDED


def test_replay_is_idempotent():
    # Re-applying a log's own records reproduces it exactly.
    log = DTLog()
    log.write_vote(Vote.YES, at=1.0)
    log.write_decision(Outcome.COMMIT, at=2.0, via="protocol")
    assert DTLog.replay(log.records).records == log.records
    # And a second round-trip is a fixed point.
    assert DTLog.replay(DTLog.replay(log.records).records).records == log.records


def test_replay_decision_without_vote_is_legal():
    # Termination/recovery can force an outcome onto a site that never
    # voted (e.g. unilateral abort after a pre-vote crash).
    log = DTLog.replay([ABORT])
    assert log.vote() is None
    assert log.outcome() is Outcome.ABORT


def test_replay_absorbs_duplicate_same_outcome_decisions():
    # A recovering site may re-learn its own decision; same-outcome
    # duplicates collapse through the no-op re-logging path.
    relearn = DecisionRecord(outcome=Outcome.COMMIT, at=9.0, via="recovery")
    log = DTLog.replay([VOTE, COMMIT, relearn])
    assert len(log) == 2
    assert log.decision() == COMMIT  # the first force wins


def test_replay_rejects_conflicting_decisions():
    with pytest.raises(WALError):
        DTLog.replay([VOTE, COMMIT, ABORT])


def test_replay_rejects_duplicate_votes():
    with pytest.raises(WALError):
        DTLog.replay([VOTE, VOTE])


def test_replay_rejects_vote_after_decision():
    with pytest.raises(WALError):
        DTLog.replay([ABORT, VOTE])


def test_replay_rejects_foreign_records():
    with pytest.raises(WALError):
        DTLog.replay([VOTE, object()])  # type: ignore[list-item]


def test_replay_rejects_non_final_decision():
    bogus = DecisionRecord(outcome=Outcome.UNDECIDED, at=2.0, via="protocol")
    with pytest.raises(WALError):
        DTLog.replay([bogus])
