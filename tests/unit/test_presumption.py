"""Presumed abort / presumed commit and the read-only one-phase exit.

Covers the whole sim-side stack of the optimization: spec building
(read-only slave FSAs, validation), the engine's force matrix (which
records each presumption fsyncs), the membership record's log
invariants, recovery's presumption-aware resolution paths, and config
validation at the live layer.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.errors import (
    InstantiationError,
    InvalidProtocolError,
    LiveConfigError,
    WALError,
)
from repro.analysis.conformance import audit_run
from repro.fsa.messages import EXTERNAL, Msg
from repro.live.node import LiveConfig
from repro.protocols import catalog
from repro.runtime.engine import Engine
from repro.runtime.harness import CommitRun
from repro.runtime.log import DTLog, MembershipRecord
from repro.runtime.policies import FixedVotes, UnanimousYes
from repro.types import Outcome, SiteId, Vote

S1, S2, S3, S4 = SiteId(1), SiteId(2), SiteId(3), SiteId(4)


# ---------------------------------------------------------------------------
# Spec building
# ---------------------------------------------------------------------------


class TestReadOnlySpecs:
    @pytest.mark.parametrize("name", catalog.RO_CAPABLE)
    def test_read_only_sites_collected(self, name):
        spec = catalog.build(name, 4, ro_sites=(3,))
        assert spec.read_only_sites == frozenset({S3})
        automaton = spec.automaton(S3)
        assert automaton.read_only_states == frozenset({"r"})
        assert not automaton.commit_states and not automaton.abort_states

    @pytest.mark.parametrize("name", catalog.RO_CAPABLE)
    def test_read_only_slave_reports_ro_and_exits(self, name):
        spec = catalog.build(name, 4, ro_sites=(3,))
        automaton = spec.automaton(S3)
        (transition,) = automaton.transitions
        assert transition.vote is Vote.READ_ONLY
        assert [m.kind for m in transition.writes] == ["ro"]
        assert transition.target in automaton.read_only_states

    def test_voting_spec_has_no_read_only_sites(self):
        spec = catalog.build("3pc-central", 4)
        assert spec.read_only_sites == frozenset()

    def test_coordinator_cannot_be_read_only(self):
        with pytest.raises(InstantiationError):
            catalog.build("2pc-central", 3, ro_sites=(1,))

    def test_unknown_site_cannot_be_read_only(self):
        with pytest.raises(InstantiationError):
            catalog.build("2pc-central", 3, ro_sites=(9,))

    def test_at_least_one_voting_slave_required(self):
        with pytest.raises(InstantiationError):
            catalog.build("2pc-central", 3, ro_sites=(2, 3))

    @pytest.mark.parametrize(
        "name", sorted(set(catalog.protocol_names()) - set(catalog.RO_CAPABLE))
    )
    def test_unsupported_protocols_reject_ro_sites(self, name):
        with pytest.raises(InvalidProtocolError):
            catalog.build(name, 3, ro_sites=(2,))


# ---------------------------------------------------------------------------
# Engine force matrix
# ---------------------------------------------------------------------------


class RecordingLog(DTLog):
    """A DT log that remembers each record's forced flag."""

    def __init__(self):
        super().__init__()
        self.forced: list[tuple[str, bool]] = []

    def write_vote(self, vote, at, forced=True):
        super().write_vote(vote, at)
        self.forced.append(("vote", forced))

    def write_decision(self, outcome, at, via, forced=True):
        before = len(self)
        super().write_decision(outcome, at, via=via)
        if len(self) > before:
            self.forced.append(("decision", forced))

    def write_membership(self, members, at):
        super().write_membership(members, at)
        self.forced.append(("membership", True))


def drive(site, spec, presumption, membership=(), vote=Vote.YES):
    """Run one site's engine to completion against scripted peers."""
    log = RecordingLog()
    automaton = spec.automaton(site)
    engine = Engine(
        automaton=automaton,
        vote_policy=FixedVotes({site: vote}),
        log=log,
        send=lambda msg: None,
        now=lambda: 0.0,
        on_final=lambda outcome, via: None,
        on_trace=lambda category, detail, **data: None,
        presumption=presumption,
        membership=membership,
    )
    return engine, log


class TestForceMatrix:
    def _run_coordinator(self, presumption, votes):
        spec = catalog.build("2pc-central", 3)
        engine, log = drive(
            S1, spec, presumption, membership=(S2, S3)
        )
        engine.receive(Msg("request", EXTERNAL, S1))
        for site, vote in votes.items():
            engine.receive(Msg(vote, site, S1))
        assert engine.finished
        return log

    def _run_slave(self, presumption, vote, outcome):
        spec = catalog.build("2pc-central", 3)
        engine, log = drive(S2, spec, presumption, vote=vote)
        engine.receive(Msg("xact", S1, S2))
        if not engine.finished:
            engine.receive(Msg(outcome.value, S1, S2))
        assert engine.finished
        return log

    def test_none_forces_everything(self):
        log = self._run_coordinator("none", {S2: "yes", S3: "yes"})
        assert log.forced == [("vote", True), ("decision", True)]
        log = self._run_slave("none", Vote.NO, Outcome.ABORT)
        assert log.forced == [("vote", True), ("decision", True)]

    def test_presumed_abort_skips_abort_side_forces(self):
        # A no vote and the abort decision are both lazily logged: the
        # presumption re-derives them from the records' absence.
        log = self._run_slave("abort", Vote.NO, Outcome.ABORT)
        assert log.forced == [("vote", False), ("decision", False)]
        log = self._run_coordinator("abort", {S2: "yes", S3: "no"})
        assert ("decision", False) in log.forced

    def test_presumed_abort_keeps_yes_vote_forced(self):
        log = self._run_slave("abort", Vote.YES, Outcome.COMMIT)
        assert log.forced == [("vote", True), ("decision", False)]

    def test_presumed_commit_keeps_no_vote_forced(self):
        # A lost no vote would be mis-presumed as commit.
        log = self._run_slave("commit", Vote.NO, Outcome.ABORT)
        assert log.forced == [("vote", True), ("decision", False)]

    def test_coordinator_commit_always_forced(self):
        for presumption in ("none", "abort", "commit"):
            log = self._run_coordinator(presumption, {S2: "yes", S3: "yes"})
            assert ("decision", True) in log.forced

    def test_presumed_commit_membership_precedes_everything(self):
        log = self._run_coordinator("commit", {S2: "yes", S3: "yes"})
        assert log.forced[0] == ("membership", True)
        record = log.membership()
        assert record is not None and record.members == (S2, S3)

    def test_no_membership_without_presumed_commit(self):
        for presumption in ("none", "abort"):
            log = self._run_coordinator(presumption, {S2: "yes", S3: "yes"})
            assert log.membership() is None

    def test_participants_never_write_membership(self):
        log = self._run_slave("commit", Vote.YES, Outcome.COMMIT)
        assert log.membership() is None

    def test_read_only_exit_writes_nothing(self):
        spec = catalog.build("2pc-central", 4, ro_sites=(3,))
        for presumption in ("none", "abort", "commit"):
            engine, log = drive(S3, spec, presumption, vote=Vote.READ_ONLY)
            engine.receive(Msg("xact", S1, S3))
            assert engine.finished
            assert engine.outcome is Outcome.UNDECIDED
            assert len(log) == 0


# ---------------------------------------------------------------------------
# Membership record log invariants
# ---------------------------------------------------------------------------


class TestMembershipLogInvariants:
    def test_round_trips_through_replay(self):
        log = DTLog()
        log.write_membership((S2, S3), 0.5)
        log.write_vote(Vote.YES, 1.0)
        log.write_decision(Outcome.COMMIT, 2.0, via="protocol")
        reborn = DTLog.replay(log.records)
        assert reborn.records == log.records
        assert reborn.membership() == MembershipRecord(members=(S2, S3), at=0.5)

    def test_second_membership_rejected(self):
        log = DTLog()
        log.write_membership((S2,), 0.5)
        with pytest.raises(WALError):
            log.write_membership((S2,), 1.0)

    def test_membership_after_decision_rejected(self):
        log = DTLog()
        log.write_decision(Outcome.ABORT, 1.0, via="protocol")
        with pytest.raises(WALError):
            log.write_membership((S2,), 2.0)


# ---------------------------------------------------------------------------
# Recovery under a presumption
# ---------------------------------------------------------------------------


class TestPresumptionRecovery:
    def test_membership_without_vote_aborts_explicitly(self):
        # Presumed commit: the coordinator dies after forcing the
        # membership record but before deciding.  Its recovery must
        # abort the transaction *explicitly* — the commit presumption
        # only covers transactions with no record at all.
        from repro.workload.crashes import CrashAt

        spec = catalog.build("2pc-central", 3)
        run = CommitRun(
            spec,
            crashes=[CrashAt(site=S1, at=0.5, restart_at=30.0)],
            presumption="commit",
        ).execute()
        assert run.trace.count("recovery.presumed") == 1
        assert set(run.outcomes().values()) == {Outcome.ABORT}
        assert audit_run(run, spec) == []

    def test_membership_with_yes_vote_stays_in_doubt(self):
        # 3PC: a coordinator that crashed after prepare holds both the
        # membership record and a forced yes vote; survivors may commit
        # via termination, so recovery must query, never presume abort.
        from repro.workload.crashes import CrashAt

        spec = catalog.build("3pc-central", 3)
        run = CommitRun(
            spec,
            crashes=[CrashAt(site=S1, at=3.0, restart_at=30.0)],
            presumption="commit",
        ).execute()
        assert run.trace.count("recovery.presumed") == 0
        assert run.atomic
        assert audit_run(run, spec) == []

    @pytest.mark.parametrize("presumption", ["none", "abort", "commit"])
    def test_read_only_crash_recovers_trivially(self, presumption):
        from repro.workload.crashes import CrashAt

        # Crash after the ro reply left (xact arrives at 1.0): voters
        # proceed without the read-only site, which recovers with an
        # empty log and nothing to resolve.
        spec = catalog.build("3pc-central", 4, ro_sites=(3,))
        run = CommitRun(
            spec,
            crashes=[CrashAt(site=S3, at=1.5, restart_at=30.0)],
            presumption=presumption,
        ).execute()
        assert run.trace.count("recovery.read_only") == 1
        voters = {s: o for s, o in run.outcomes().items() if s != S3}
        assert set(voters.values()) == {Outcome.COMMIT}
        assert audit_run(run, spec) == []


# ---------------------------------------------------------------------------
# Read-only one-phase exit, failure-free
# ---------------------------------------------------------------------------


class TestReadOnlyRuns:
    @pytest.mark.parametrize("name", catalog.RO_CAPABLE)
    @pytest.mark.parametrize("presumption", ["none", "abort", "commit"])
    def test_voters_commit_ro_site_exits(self, name, presumption):
        spec = catalog.build(name, 4, ro_sites=(4,))
        run = CommitRun(spec, presumption=presumption).execute()
        outcomes = run.outcomes()
        assert outcomes.pop(S4) is Outcome.UNDECIDED
        assert set(outcomes.values()) == {Outcome.COMMIT}
        assert run.reports[S4].read_only
        assert not run.reports[S4].blocked
        assert audit_run(run, spec) == []

    def test_no_vote_still_aborts_voters(self):
        spec = catalog.build("2pc-central", 4, ro_sites=(4,))
        run = CommitRun(
            spec, vote_policy=FixedVotes({S2: Vote.NO})
        ).execute()
        outcomes = run.outcomes()
        assert outcomes.pop(S4) is Outcome.UNDECIDED
        assert set(outcomes.values()) == {Outcome.ABORT}

    def test_ro_exit_trims_message_complexity(self):
        # 3PC with one read-only slave: the slave's five messages
        # (xact/yes/prepare/ack/commit) collapse to xact + ro.
        voting = CommitRun(catalog.build("3pc-central", 4)).execute()
        pruned = CommitRun(
            catalog.build("3pc-central", 4, ro_sites=(4,))
        ).execute()
        assert pruned.messages_sent == voting.messages_sent - 3


# ---------------------------------------------------------------------------
# Live config validation
# ---------------------------------------------------------------------------


class TestLiveConfigValidation:
    def _config(self, **overrides):
        base = dict(
            site=SiteId(1),
            spec_name="3pc-central",
            n_sites=3,
            port=19000,
            peers={S2: ("127.0.0.1", 19001), S3: ("127.0.0.1", 19002)},
            data_dir=Path("/tmp/x"),
        )
        base.update(overrides)
        return LiveConfig(**base)

    def test_defaults_are_valid(self):
        config = self._config()
        assert config.presumption == "none"
        assert config.loop == "asyncio"
        assert config.ro_sites == ()

    @pytest.mark.parametrize("presumption", ["abort", "commit"])
    def test_presumptions_accepted(self, presumption):
        assert self._config(presumption=presumption).presumption == presumption

    def test_unknown_presumption_rejected(self):
        with pytest.raises(LiveConfigError):
            self._config(presumption="maybe")

    def test_unknown_loop_rejected(self):
        with pytest.raises(LiveConfigError):
            self._config(loop="trio")

    def test_ro_sites_normalized(self):
        config = self._config(spec_name="2pc-central", ro_sites=(3,))
        assert config.ro_sites == (S3,)

    def test_ro_site_out_of_range_rejected(self):
        with pytest.raises(LiveConfigError):
            self._config(ro_sites=(9,))

    def test_trace_cap_must_be_positive(self):
        with pytest.raises(LiveConfigError):
            self._config(trace_max_entries=0)


class TestClusterConfigValidation:
    def _config(self, **overrides):
        from repro.live.cluster import ClusterConfig

        base = dict(spec_name="3pc-central", n_sites=3, data_dir=Path("/tmp/x"))
        base.update(overrides)
        return ClusterConfig(**base)

    def test_unknown_presumption_rejected(self):
        with pytest.raises(LiveConfigError):
            self._config(presumption="always")

    def test_unknown_loop_rejected(self):
        with pytest.raises(LiveConfigError):
            self._config(loop="twisted")

    def test_trace_cap_must_be_positive(self):
        with pytest.raises(LiveConfigError):
            self._config(trace_cap=0)

    def test_soak_config_threads_validation(self):
        from repro.live.soak import SoakConfig, run_soak

        config = SoakConfig(data_dir=Path("/tmp/x"), presumption="bogus")
        with pytest.raises(LiveConfigError):
            run_soak(config)
