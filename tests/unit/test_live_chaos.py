"""Unit tests for the chaos-injection policy layer.

Covers frame classification, rule matching and validation, policy
serialization (round-trip, hash pinning, merge), the receive-side
:class:`LinkChaos` engine (arming, deterministic drops, FIFO-safe
delays), and the packaged profiles.
"""

from __future__ import annotations

import pytest

from repro.errors import LiveConfigError
from repro.live.chaos import (
    ChaosPolicy,
    ChaosRule,
    LinkChaos,
    frame_chaos_kind,
    gray_link_policy,
    slow_disk_policy,
    wan_policy,
)


def proto_frame(kind: str, txn: int = 1) -> dict:
    """A payload frame carrying one FSA protocol message."""
    return {"t": "payload", "d": {"p": "proto", "kind": kind, "txn": txn}}


class TestFrameChaosKind:
    def test_heartbeat(self):
        assert frame_chaos_kind({"t": "hb", "site": 1}) == ("hb", ("hb",))

    def test_protocol_payload_reports_message_kind(self):
        kind, categories = frame_chaos_kind(proto_frame("prepare"))
        assert kind == "prepare"
        assert categories == ("payload", "proto")

    def test_runtime_payload_reports_codec_tag(self):
        kind, categories = frame_chaos_kind(
            {"t": "payload", "d": {"p": "term-decision"}}
        )
        assert kind == "term-decision"
        assert categories == ("payload",)

    def test_external_frame(self):
        kind, categories = frame_chaos_kind({"t": "external", "kind": "xact"})
        assert kind == "xact"
        assert categories == ("external",)

    def test_everything_else_is_control(self):
        kind, categories = frame_chaos_kind({"t": "hello", "site": 2})
        assert kind == "hello"
        assert categories == ("control",)


class TestChaosRule:
    def test_rejects_self_link(self):
        with pytest.raises(LiveConfigError):
            ChaosRule(src=1, dst=1)

    def test_rejects_drop_outside_unit_interval(self):
        with pytest.raises(LiveConfigError):
            ChaosRule(src=1, dst=2, drop=1.5)

    def test_rejects_negative_delay(self):
        with pytest.raises(LiveConfigError):
            ChaosRule(src=1, dst=2, delay_ms=-1.0)

    def test_rejects_unknown_category(self):
        with pytest.raises(LiveConfigError, match="unknown chaos category"):
            ChaosRule(src=1, dst=2, kinds=("@nonsense",))

    def test_matches_by_category_and_exact_kind(self):
        rule = ChaosRule(src=1, dst=2, kinds=("@hb", "prepare"))
        assert rule.matches("hb", ("hb",))
        assert rule.matches("prepare", ("payload", "proto"))
        assert not rule.matches("commit", ("payload", "proto"))

    def test_none_kinds_matches_everything(self):
        rule = ChaosRule(src=1, dst=2)
        assert rule.matches("anything", ("control",))

    def test_dict_round_trip_omits_defaults(self):
        rule = ChaosRule(src=1, dst=3, kinds=("prepare",), drop=1.0)
        data = rule.to_dict()
        assert "delay_ms" not in data and "after_kind" not in data
        assert ChaosRule.from_dict(data) == rule


class TestChaosPolicy:
    def test_json_round_trip_preserves_hash(self):
        policy = gray_link_policy(seed=4)
        clone = ChaosPolicy.from_json(policy.to_json())
        assert clone == policy
        assert clone.hash == policy.hash

    def test_hash_changes_with_seed(self):
        assert gray_link_policy(seed=0).hash != gray_link_policy(seed=1).hash

    def test_from_json_rejects_foreign_document(self):
        with pytest.raises(LiveConfigError, match="not a chaos policy"):
            ChaosPolicy.from_json('{"kind": "something-else"}')

    def test_from_json_rejects_tampered_hash(self):
        text = gray_link_policy().to_json().replace(
            gray_link_policy().hash, "0" * 12
        )
        with pytest.raises(LiveConfigError, match="hash mismatch"):
            ChaosPolicy.from_json(text)

    def test_save_load_round_trip(self, tmp_path):
        policy = wan_policy(3, seed=9)
        path = tmp_path / "chaos.json"
        policy.save(path)
        assert ChaosPolicy.load(path) == policy

    def test_merged_concatenates_links_and_overlays_disk(self):
        combined = wan_policy(3, seed=2).merged(
            slow_disk_policy(3, fsync_delay_ms=7.0, seed=2)
        )
        assert len(combined.links) == 6  # every ordered pair of 3 sites
        assert combined.fsync_delay_ms(2) == 7.0
        assert "wan profile" in combined.note
        assert "slow disks" in combined.note

    def test_rules_for_filters_by_receiver(self):
        policy = gray_link_policy()
        for _, rule in policy.rules_for(3):
            assert rule.dst == 3
        assert policy.rules_for(1) == ()

    def test_accessors_default_to_zero(self):
        policy = ChaosPolicy()
        assert policy.fsync_delay_ms(1) == 0.0
        assert policy.skew_s(1) == 0.0


class TestLinkChaos:
    def test_inactive_without_rules_for_site(self):
        assert not LinkChaos(gray_link_policy(), site=1).active
        assert LinkChaos(gray_link_policy(), site=3).active

    def test_certain_drop_is_deterministic(self):
        policy = ChaosPolicy(
            links=(ChaosRule(src=1, dst=2, kinds=("prepare",), drop=1.0),)
        )
        chaos = LinkChaos(policy, site=2)
        drop, delay = chaos.decide(1, proto_frame("prepare"))
        assert drop and delay == 0.0
        drop, _ = chaos.decide(1, proto_frame("commit"))
        assert not drop
        assert chaos.drops == 1

    def test_arming_frames_pass_unmodified(self):
        policy = ChaosPolicy(
            links=(
                ChaosRule(
                    src=1,
                    dst=2,
                    kinds=("@hb",),
                    drop=1.0,
                    after_kind="xact",
                    after_count=1,
                ),
            )
        )
        chaos = LinkChaos(policy, site=2)
        # Before the trigger: heartbeats pass.
        drop, _ = chaos.decide(1, {"t": "hb", "site": 1})
        assert not drop
        # The trigger frame itself passes (prior-frames-only arming).
        drop, _ = chaos.decide(1, {"t": "external", "kind": "xact"})
        assert not drop
        # After the trigger: heartbeats die.
        drop, _ = chaos.decide(1, {"t": "hb", "site": 1})
        assert drop

    def test_arming_counts_are_per_source_link(self):
        policy = ChaosPolicy(
            links=(
                ChaosRule(src=1, dst=3, drop=1.0, after_count=1),
                ChaosRule(src=2, dst=3, drop=1.0, after_count=1),
            )
        )
        chaos = LinkChaos(policy, site=3)
        assert not chaos.decide(1, proto_frame("a"))[0]
        # Site 2's rule is still unarmed: site 1's traffic is not its.
        assert not chaos.decide(2, proto_frame("a"))[0]
        assert chaos.decide(1, proto_frame("b"))[0]
        assert chaos.decide(2, proto_frame("b"))[0]

    def test_delay_takes_max_across_matching_rules(self):
        policy = ChaosPolicy(
            links=(
                ChaosRule(src=1, dst=2, delay_ms=5.0),
                ChaosRule(src=1, dst=2, kinds=("@proto",), delay_ms=9.0),
            )
        )
        chaos = LinkChaos(policy, site=2)
        drop, delay = chaos.decide(1, proto_frame("prepare"))
        assert not drop
        assert delay == pytest.approx(0.009)
        assert chaos.delays == 1

    def test_dropped_frame_reports_zero_delay(self):
        policy = ChaosPolicy(
            links=(ChaosRule(src=1, dst=2, drop=1.0, delay_ms=50.0),)
        )
        drop, delay = LinkChaos(policy, site=2).decide(1, proto_frame("x"))
        assert drop and delay == 0.0


class TestProfiles:
    def test_wan_policy_covers_every_ordered_pair(self):
        policy = wan_policy(4, seed=1)
        pairs = {(rule.src, rule.dst) for rule in policy.links}
        assert len(pairs) == 12
        assert all(src != dst for src, dst in pairs)

    def test_wan_policy_is_asymmetric(self):
        policy = wan_policy(3, seed=0)
        delays = {(r.src, r.dst): r.delay_ms for r in policy.links}
        assert delays[(1, 2)] != delays[(2, 1)]

    def test_wan_policy_never_touches_heartbeats(self):
        for rule in wan_policy(3).links:
            assert not rule.matches("hb", ("hb",))
            assert rule.drop == 0.0

    def test_wan_policy_delays_inside_band(self):
        for rule in wan_policy(5, seed=3, min_ms=2.0, max_ms=4.0).links:
            assert 2.0 <= rule.delay_ms <= 4.0

    def test_wan_policy_rejects_degenerate_input(self):
        with pytest.raises(LiveConfigError):
            wan_policy(1)
        with pytest.raises(LiveConfigError):
            wan_policy(3, min_ms=5.0, max_ms=1.0)

    def test_slow_disk_policy_covers_all_sites(self):
        policy = slow_disk_policy(3, fsync_delay_ms=6.0)
        assert [policy.fsync_delay_ms(s) for s in (1, 2, 3)] == [6.0] * 3
        assert policy.links == ()

    def test_pinned_corpus_artifact_records_gray_policy_provenance(self):
        """The explorer round-trip of the live gray-link failure is
        pinned under tests/corpus/ and names the policy that found it."""
        from pathlib import Path

        from repro.explore.schedule import ReplayArtifact

        path = (
            Path(__file__).parent.parent / "corpus" / "3pc-gray-link-split.json"
        )
        artifact = ReplayArtifact.load(str(path))
        assert gray_link_policy(seed=0).hash in artifact.note
        assert artifact.expect_verdict == "violation"
        assert "atomicity" in artifact.expect_kinds
        # The shrunk schedule isolates site 3 — the site the gray link
        # starved of its commit-phase frames.
        assert any(
            choice.point == "partition" and choice.index == 3
            for choice in artifact.schedule
        )

    def test_gray_link_policy_heartbeats_flow_before_xact(self):
        """The packaged scenario is healthy until the txn starts."""
        policy = gray_link_policy(seed=0)
        hb_rules = [
            rule
            for rule in policy.links
            if rule.kinds is not None and "@hb" in rule.kinds
        ]
        assert hb_rules, "expected heartbeat-only gray rules"
        for rule in hb_rules:
            assert rule.after_kind == "xact"
            assert rule.drop == 1.0  # deterministic: no RNG draw on hb
            assert rule.jitter_ms == 0.0
