"""Unit tests for CommitRun / RunResult — failure-free and failing runs."""

import pytest

from repro.errors import AtomicityViolationError
from repro.net.latency import UniformLatency
from repro.protocols import catalog
from repro.runtime.harness import CommitRun
from repro.runtime.policies import FixedVotes
from repro.types import Outcome, SiteId, Vote
from repro.workload.crashes import CrashAt, CrashDuringTransition


class TestHappyPath:
    @pytest.mark.parametrize("name", catalog.protocol_names())
    def test_unanimous_yes_commits_everywhere(self, name):
        run = CommitRun(catalog.build(name, 4), termination_enabled=False).execute()
        assert set(run.outcomes().values()) == {Outcome.COMMIT}
        assert run.atomic
        assert run.blocked_sites == []

    @pytest.mark.parametrize("name", catalog.protocol_names())
    def test_all_decisions_via_protocol(self, name):
        run = CommitRun(catalog.build(name, 3), termination_enabled=False).execute()
        assert all(r.via == "protocol" for r in run.reports.values())

    def test_one_no_vote_aborts_everywhere(self, spec_3pc_central, rule_3pc_central):
        run = CommitRun(
            spec_3pc_central,
            vote_policy=FixedVotes({SiteId(2): Vote.NO}),
            rule=rule_3pc_central,
        ).execute()
        assert set(run.outcomes().values()) == {Outcome.ABORT}

    def test_coordinator_no_vote_aborts(self, spec_2pc_central, rule_2pc_central):
        run = CommitRun(
            spec_2pc_central,
            vote_policy=FixedVotes({SiteId(1): Vote.NO}),
            rule=rule_2pc_central,
        ).execute()
        assert set(run.outcomes().values()) == {Outcome.ABORT}

    def test_deterministic_given_seed(self, spec_3pc_central, rule_3pc_central):
        def execute():
            return CommitRun(
                spec_3pc_central,
                seed=5,
                latency=UniformLatency(0.5, 2.0),
                rule=rule_3pc_central,
            ).execute()

        a, b = execute(), execute()
        assert a.duration == b.duration
        assert a.messages_sent == b.messages_sent
        assert a.outcomes() == b.outcomes()

    def test_decision_times_recorded(self, spec_2pc_central, rule_2pc_central):
        run = CommitRun(spec_2pc_central, rule=rule_2pc_central).execute()
        times = run.decision_times()
        assert set(times) == {1, 2, 3}
        # The coordinator decides first; slaves one hop later.
        assert times[1] < times[2]


class TestCrashScenarios:
    def test_3pc_coordinator_crash_terminates_survivors(
        self, spec_3pc_central, rule_3pc_central
    ):
        run = CommitRun(
            spec_3pc_central,
            crashes=[CrashAt(site=1, at=2.0)],
            rule=rule_3pc_central,
        ).execute()
        assert run.atomic
        for site in (2, 3):
            assert run.reports[site].outcome.is_final
            assert run.reports[site].via == "termination"

    def test_2pc_coordinator_crash_blocks_survivors(
        self, spec_2pc_central, rule_2pc_central
    ):
        run = CommitRun(
            spec_2pc_central,
            crashes=[CrashAt(site=1, at=2.0)],
            rule=rule_2pc_central,
        ).execute()
        assert run.atomic
        assert run.blocked_sites == [2, 3]
        assert run.undecided_operational == [2, 3]

    def test_blocked_2pc_resolves_on_recovery(
        self, spec_2pc_central, rule_2pc_central
    ):
        run = CommitRun(
            spec_2pc_central,
            crashes=[CrashAt(site=1, at=2.0, restart_at=30.0)],
            rule=rule_2pc_central,
        ).execute()
        assert run.atomic
        assert set(run.outcomes().values()) == {Outcome.ABORT}
        assert run.reports[1].via == "recovery"

    def test_partial_commit_fanout_heals_via_termination(
        self, spec_2pc_central, rule_2pc_central
    ):
        run = CommitRun(
            spec_2pc_central,
            crashes=[CrashDuringTransition(site=1, transition_number=2, after_writes=1)],
            rule=rule_2pc_central,
        ).execute()
        assert run.atomic
        # Coordinator logged commit before crashing; everyone commits.
        assert set(run.outcomes().values()) == {Outcome.COMMIT}

    def test_crash_without_termination_leaves_undecided(self, spec_3pc_central):
        run = CommitRun(
            spec_3pc_central,
            crashes=[CrashAt(site=1, at=2.0)],
            termination_enabled=False,
        ).execute()
        assert run.undecided_operational == [2, 3]
        assert run.blocked_sites == []  # Nobody even tried to terminate.

    def test_slave_crash_before_voting_aborts(self, spec_3pc_central, rule_3pc_central):
        run = CommitRun(
            spec_3pc_central,
            crashes=[CrashAt(site=3, at=0.5)],
            rule=rule_3pc_central,
        ).execute()
        assert run.atomic
        assert run.reports[1].outcome is Outcome.ABORT
        assert run.reports[2].outcome is Outcome.ABORT

    def test_vote_recorded_in_report(self, spec_3pc_central, rule_3pc_central):
        run = CommitRun(
            spec_3pc_central,
            crashes=[CrashAt(site=3, at=1.5)],
            rule=rule_3pc_central,
        ).execute()
        assert run.reports[3].vote is Vote.YES
        assert run.reports[3].crashed


class TestRunResult:
    def test_assert_atomic_raises_on_fabricated_violation(self, spec_3pc_central):
        run = CommitRun(spec_3pc_central, termination_enabled=False).execute()
        run.reports[2].outcome = Outcome.ABORT  # Fabricate a violation.
        assert not run.atomic
        with pytest.raises(AtomicityViolationError):
            run.assert_atomic()

    def test_message_accounting(self, spec_2pc_central, rule_2pc_central):
        run = CommitRun(spec_2pc_central, rule=rule_2pc_central).execute()
        assert run.messages_sent == 6  # 2 xact + 2 yes + 2 commit.
        assert run.messages_delivered == 6
        assert run.messages_dropped == 0

    def test_crash_schedule_validated(self, spec_2pc_central, rule_2pc_central):
        with pytest.raises(ValueError, match="does not participate"):
            CommitRun(
                spec_2pc_central,
                crashes=[CrashAt(site=9, at=1.0)],
                rule=rule_2pc_central,
            )

    def test_crash_event_validation(self):
        with pytest.raises(ValueError):
            CrashAt(site=1, at=5.0, restart_at=3.0)
        with pytest.raises(ValueError):
            CrashDuringTransition(site=1, transition_number=0, after_writes=0)
        with pytest.raises(ValueError):
            CrashDuringTransition(site=1, transition_number=1, after_writes=-1)

    def test_trace_available(self, spec_2pc_central, rule_2pc_central):
        run = CommitRun(spec_2pc_central, rule=rule_2pc_central).execute()
        assert run.trace.count("engine.transition") > 0
