"""Unit tests for site automata and the message helpers."""

import pytest

from repro.errors import InvalidAutomatonError
from repro.fsa.automaton import SiteAutomaton, Transition
from repro.fsa.messages import EXTERNAL, Msg, fan_in, fan_out
from repro.types import SiteId, StateKind, Vote


def simple_automaton():
    """q -> w (vote yes) -> c, q -> a (vote no), w -> a."""
    site = SiteId(1)
    return SiteAutomaton(
        site=site,
        role="peer",
        initial="q",
        commit_states=["c"],
        abort_states=["a"],
        transitions=[
            Transition("q", "w", frozenset({Msg("go", EXTERNAL, site)}),
                       (Msg("yes", site, site),), vote=Vote.YES),
            Transition("q", "a", frozenset({Msg("go", EXTERNAL, site)}),
                       vote=Vote.NO),
            Transition("w", "c", frozenset({Msg("ok", site, site)})),
            Transition("w", "a", frozenset({Msg("stop", site, site)})),
        ],
    )


class TestMessages:
    def test_msg_str_external(self):
        assert str(Msg("xact", EXTERNAL, SiteId(2))) == "xact→2"

    def test_msg_str_internal(self):
        assert str(Msg("yes", SiteId(2), SiteId(1))) == "yes[2→1]"

    def test_fan_out_order_and_addressing(self):
        msgs = fan_out("commit", SiteId(1), [SiteId(2), SiteId(3)])
        assert [m.dst for m in msgs] == [2, 3]
        assert all(m.src == 1 and m.kind == "commit" for m in msgs)

    def test_fan_in_collects_from_all(self):
        msgs = fan_in("yes", [SiteId(2), SiteId(3)], SiteId(1))
        assert {m.src for m in msgs} == {2, 3}
        assert all(m.dst == 1 for m in msgs)

    def test_msg_is_hashable_and_ordered(self):
        a = Msg("a", SiteId(1), SiteId(2))
        b = Msg("b", SiteId(1), SiteId(2))
        assert len({a, b, a}) == 2
        assert sorted([b, a])[0] == a


class TestStructure:
    def test_states_inferred_from_transitions(self):
        automaton = simple_automaton()
        assert automaton.states == {"q", "w", "a", "c"}

    def test_final_states_union(self):
        automaton = simple_automaton()
        assert automaton.final_states == {"a", "c"}

    def test_kind_classification(self):
        automaton = simple_automaton()
        assert automaton.kind("q") is StateKind.INITIAL
        assert automaton.kind("w") is StateKind.INTERMEDIATE
        assert automaton.kind("c") is StateKind.COMMIT
        assert automaton.kind("a") is StateKind.ABORT

    def test_successors_is_paper_adjacency(self):
        automaton = simple_automaton()
        assert automaton.successors("w") == {"a", "c"}
        assert automaton.successors("q") == {"w", "a"}
        assert automaton.successors("c") == frozenset()

    def test_predecessors(self):
        automaton = simple_automaton()
        assert automaton.predecessors("a") == {"q", "w"}

    def test_out_in_transitions(self):
        automaton = simple_automaton()
        assert len(automaton.out_transitions("q")) == 2
        assert len(automaton.in_transitions("a")) == 2


class TestDepthsAndPhases:
    def test_depths_are_shortest_paths(self):
        automaton = simple_automaton()
        assert automaton.depths == {"q": 0, "w": 1, "a": 1, "c": 2}

    def test_depth_of_unreachable_raises(self):
        automaton = simple_automaton()
        with pytest.raises(InvalidAutomatonError):
            automaton.depth("zzz")

    def test_phase_count_is_longest_final_path(self):
        # a is reachable at depth 1 AND 2; phases = longest = 2.
        assert simple_automaton().phase_count == 2

    def test_topological_order_starts_at_initial(self):
        order = simple_automaton().topological_order()
        assert order[0] == "q"
        assert set(order) == {"q", "w", "a", "c"}

    def test_topological_order_respects_edges(self):
        order = simple_automaton().topological_order()
        assert order.index("q") < order.index("w") < order.index("c")

    def test_cycle_detected(self):
        site = SiteId(1)
        cyclic = SiteAutomaton(
            site=site,
            role="x",
            initial="q",
            commit_states=["c"],
            abort_states=["a"],
            transitions=[
                Transition("q", "w", frozenset({Msg("m", site, site)})),
                Transition("w", "q", frozenset({Msg("n", site, site)})),
                Transition("w", "c", frozenset({Msg("o", site, site)})),
                Transition("q", "a", frozenset({Msg("p", site, site)})),
            ],
        )
        with pytest.raises(InvalidAutomatonError):
            cyclic.topological_order()


class TestVoteAnalysis:
    def test_initial_does_not_imply_yes(self):
        assert simple_automaton().implies_yes_vote["q"] is False

    def test_state_after_yes_vote_implies_yes(self):
        implies = simple_automaton().implies_yes_vote
        assert implies["w"] is True
        assert implies["c"] is True

    def test_state_reachable_without_yes_does_not_imply(self):
        # a is reachable via q->a (vote no) — so occupancy of a does not
        # imply a yes vote even though w->a exists on a yes path.
        assert simple_automaton().implies_yes_vote["a"] is False

    def test_all_paths_semantics(self):
        # Diamond: q -> x (yes), q -> y (yes), both -> m: every path to
        # m carries a yes, so m implies yes.
        site = SiteId(1)
        automaton = SiteAutomaton(
            site=site,
            role="x",
            initial="q",
            commit_states=["m"],
            abort_states=["a"],
            transitions=[
                Transition("q", "x", frozenset({Msg("1", site, site)}), vote=Vote.YES),
                Transition("q", "y", frozenset({Msg("2", site, site)}), vote=Vote.YES),
                Transition("x", "m", frozenset({Msg("3", site, site)})),
                Transition("y", "m", frozenset({Msg("4", site, site)})),
                Transition("q", "a", frozenset({Msg("5", site, site)}), vote=Vote.NO),
            ],
        )
        assert automaton.implies_yes_vote["m"] is True


class TestTransitionDescribe:
    def test_describe_mentions_reads_writes_vote(self):
        automaton = simple_automaton()
        vote_transition = automaton.out_transitions("q")[0]
        text = vote_transition.describe()
        assert "q --(" in text and "-->" in text
        assert "[vote yes]" in text

    def test_describe_empty_writes_renders_dash(self):
        automaton = simple_automaton()
        silent = [t for t in automaton.transitions if not t.writes][0]
        assert "/ —" in silent.describe()
