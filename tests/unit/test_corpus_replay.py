"""Replay every regression-corpus schedule and hold it to its verdict.

``tests/corpus/*.json`` are minimized counterexample (and witness)
schedules promoted from past exploration runs.  Each must re-execute
*exactly* — the strict controller raises on any divergence between the
recorded choice points and what the runtime offers — and must still
produce the verdict, violation kinds, and blocking behavior recorded in
the artifact.  A behavior change that breaks one of these is either a
bug or a deliberate semantics change that must update the corpus.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.explore import Explorer, ReplayArtifact, replay

CORPUS_DIR = pathlib.Path(__file__).parent.parent / "corpus"
CORPUS_FILES = sorted(CORPUS_DIR.glob("*.json"))

#: Explorers are expensive (reachability graph + termination rule);
#: corpus entries share configs, so share explorers across cases too.
_EXPLORERS: dict = {}


def _explorer_for(artifact: ReplayArtifact) -> Explorer:
    explorer = _EXPLORERS.get(artifact.config)
    if explorer is None:
        explorer = _EXPLORERS[artifact.config] = Explorer(artifact.config)
    return explorer


def test_corpus_is_not_empty():
    assert len(CORPUS_FILES) >= 4, (
        "regression corpus missing — expected seeded schedules in "
        f"{CORPUS_DIR}"
    )


@pytest.mark.parametrize(
    "path", CORPUS_FILES, ids=[path.stem for path in CORPUS_FILES]
)
def test_corpus_entry_replays_exactly(path):
    artifact = ReplayArtifact.load(str(path))
    outcome = replay(artifact, explorer=_explorer_for(artifact))
    assert outcome.ok, (
        f"{path.name} no longer reproduces its recorded behavior:\n  "
        + "\n  ".join(outcome.problems)
        + "\nIf this change is intentional, regenerate the corpus entry "
        "(see docs/EXPLORATION.md, 'Corpus promotion')."
    )


@pytest.mark.parametrize(
    "path", CORPUS_FILES, ids=[path.stem for path in CORPUS_FILES]
)
def test_corpus_entry_hash_is_consistent(path):
    # load() verifies the embedded hash; serialization must round-trip.
    artifact = ReplayArtifact.load(str(path))
    assert ReplayArtifact.from_json(artifact.to_json()) == artifact


def test_corpus_covers_both_verdicts():
    verdicts = {
        ReplayArtifact.load(str(path)).expect_verdict
        for path in CORPUS_FILES
    }
    assert verdicts == {"violation", "clean"}


def test_corpus_violations_are_minimal():
    # The ISSUE's acceptance bar: shrunk counterexamples stay small.
    for path in CORPUS_FILES:
        artifact = ReplayArtifact.load(str(path))
        if artifact.expect_verdict == "violation":
            assert len(artifact.schedule) <= 12, (
                f"{path.name}: {len(artifact.schedule)} choice points — "
                "re-shrink before promoting"
            )
