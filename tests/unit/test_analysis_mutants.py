"""Adversarial tests: the analysis must catch *broken* protocol designs.

A checker that only ever says "3PC good, 2PC bad" might be pattern
matching.  These tests hand-build plausible-but-wrong protocol mutants
— each a design mistake someone could actually make — and assert the
machinery flags exactly what is wrong with each.
"""

import pytest

from repro.analysis.committable import committable_states
from repro.analysis.nonblocking import check_nonblocking
from repro.analysis.reachability import build_state_graph
from repro.fsa.automaton import SiteAutomaton, Transition
from repro.fsa.messages import EXTERNAL, Msg, fan_in, fan_out
from repro.fsa.spec import ProtocolSpec
from repro.protocols._shared import COORDINATOR, no_vote_combinations
from repro.types import ProtocolClass, SiteId, Vote

N = 3
SLAVES = [SiteId(2), SiteId(3)]
SITES = [SiteId(1), SiteId(2), SiteId(3)]


def _coordinator(transitions):
    return SiteAutomaton(
        site=COORDINATOR,
        role="coordinator",
        initial="q",
        commit_states=["c"],
        abort_states=["a"],
        transitions=transitions,
    )


def _slave(site, transitions):
    return SiteAutomaton(
        site=site,
        role="slave",
        initial="q",
        commit_states=["c"],
        abort_states=["a"],
        transitions=transitions,
    )


def _abort_combos(writes=True):
    transitions = []
    for vector in no_vote_combinations(SLAVES):
        transitions.append(
            Transition(
                "w",
                "a",
                reads=frozenset(
                    Msg(kind, slave, COORDINATOR)
                    for slave, kind in vector.items()
                ),
                writes=fan_out("abort", COORDINATOR, SLAVES) if writes else (),
            )
        )
    return transitions


def mutant_3pc_without_acks() -> ProtocolSpec:
    """A '3PC' whose coordinator commits right after sending prepare.

    The designer added the buffer state but forgot the acknowledgement
    round, so the coordinator can reach ``c`` while slaves are still in
    ``w`` — the prepare state no longer separates commit from the
    uncertainty window.
    """
    coordinator = _coordinator(
        [
            Transition(
                "q",
                "w",
                reads=frozenset({Msg("request", EXTERNAL, COORDINATOR)}),
                writes=fan_out("xact", COORDINATOR, SLAVES),
            ),
            Transition(
                "w",
                "p",
                reads=fan_in("yes", SLAVES, COORDINATOR),
                writes=fan_out("prepare", COORDINATOR, SLAVES),
                vote=Vote.YES,
            ),
            Transition(
                "w",
                "a",
                reads=fan_in("yes", SLAVES, COORDINATOR),
                writes=fan_out("abort", COORDINATOR, SLAVES),
                vote=Vote.NO,
            ),
            # BUG: no ack round — commit fires on a self-timer message
            # the instant prepare is out.  Model that as committing on
            # nothing gained: read the external 'go' the designer left in.
            Transition(
                "p",
                "c",
                reads=frozenset({Msg("go", EXTERNAL, COORDINATOR)}),
                writes=fan_out("commit", COORDINATOR, SLAVES),
            ),
        ]
    )
    automata = {COORDINATOR: coordinator}
    for site in SLAVES:
        automata[site] = _slave(
            site,
            [
                Transition(
                    "q",
                    "w",
                    reads=frozenset({Msg("xact", COORDINATOR, site)}),
                    writes=(Msg("yes", site, COORDINATOR),),
                    vote=Vote.YES,
                ),
                Transition(
                    "q",
                    "a",
                    reads=frozenset({Msg("xact", COORDINATOR, site)}),
                    writes=(Msg("no", site, COORDINATOR),),
                    vote=Vote.NO,
                ),
                Transition(
                    "w",
                    "p",
                    reads=frozenset({Msg("prepare", COORDINATOR, site)}),
                ),
                Transition(
                    "w", "a", reads=frozenset({Msg("abort", COORDINATOR, site)})
                ),
                Transition(
                    "p", "c", reads=frozenset({Msg("commit", COORDINATOR, site)})
                ),
            ],
        )
    return ProtocolSpec(
        name="mutant 3PC without acks",
        protocol_class=ProtocolClass.CENTRAL_SITE,
        automata=automata,
        initial_messages=[
            Msg("request", EXTERNAL, COORDINATOR),
            Msg("go", EXTERNAL, COORDINATOR),
        ],
        coordinator=COORDINATOR,
    )


def mutant_3pc_unprepared_slave() -> ProtocolSpec:
    """A '3PC' where one slave commits straight from ``w``.

    A copy-paste error: slave 3 kept its 2PC transition ``w -> c`` on
    the commit message and never passes through ``p``.
    """
    from repro.protocols.three_phase_central import central_three_phase

    reference = central_three_phase(N)
    automata = dict(reference.automata)
    site = SiteId(3)
    # The mistake: slave 3 never got the p state.  It acks blindly at
    # vote time (so the coordinator is not stuck waiting) and keeps the
    # 2PC-style direct w -> c — reopening its uncertainty window.
    automata[site] = _slave(
        site,
        [
            Transition(
                "q",
                "w",
                reads=frozenset({Msg("xact", COORDINATOR, site)}),
                writes=(Msg("yes", site, COORDINATOR), Msg("ack", site, COORDINATOR)),
                vote=Vote.YES,
            ),
            Transition(
                "q",
                "a",
                reads=frozenset({Msg("xact", COORDINATOR, site)}),
                writes=(Msg("no", site, COORDINATOR),),
                vote=Vote.NO,
            ),
            Transition(
                "w", "a", reads=frozenset({Msg("abort", COORDINATOR, site)})
            ),
            # 2PC-style direct commit from w: the uncertainty window is
            # back for this slave (its ack was sent blindly at vote time).
            Transition(
                "w", "c", reads=frozenset({Msg("commit", COORDINATOR, site)})
            ),
        ],
    )
    return ProtocolSpec(
        name="mutant 3PC with an unprepared slave",
        protocol_class=ProtocolClass.CENTRAL_SITE,
        automata=automata,
        initial_messages=reference.initial_messages,
        coordinator=COORDINATOR,
    )


class TestMutantsAreCaught:
    def test_ackless_3pc_blocks(self):
        spec = mutant_3pc_without_acks()
        report = check_nonblocking(spec)
        assert not report.nonblocking
        # The failure is at the slaves' wait state: the coordinator can
        # commit while a slave still sits in w.
        violating = {(v.site, v.state) for v in report.violations}
        assert (SiteId(2), "w") in violating

    def test_ackless_3pc_w_concurrency_contains_commit(self):
        spec = mutant_3pc_without_acks()
        graph = build_state_graph(spec)
        from repro.analysis.concurrency import concurrency_labels

        assert "c" in concurrency_labels(graph, SiteId(2), "w")

    def test_unprepared_slave_breaks_nonblocking(self):
        spec = mutant_3pc_unprepared_slave()
        report = check_nonblocking(spec)
        assert not report.nonblocking
        # Specifically the shortcut slave's wait state is condemned.
        assert any(
            v.site == SiteId(3) and v.state == "w" for v in report.violations
        )

    def test_unprepared_slave_keeps_other_sites_obeying(self):
        # The corollary's subset view: the *other* slave still obeys.
        spec = mutant_3pc_unprepared_slave()
        report = check_nonblocking(spec)
        assert SiteId(2) in report.obeying_sites

    def test_mutants_still_atomic_without_failures(self):
        # Broken w.r.t. blocking, but not w.r.t. failure-free atomicity:
        # the graph has no inconsistent states.  (Blocking and safety
        # are different properties — the paper's whole point.)
        for spec in (mutant_3pc_without_acks(), mutant_3pc_unprepared_slave()):
            graph = build_state_graph(spec)
            assert graph.inconsistent_states() == []

    def test_ackless_p_state_still_committable(self):
        # The buffer state is committable even in the ackless mutant —
        # committability wasn't the bug; the concurrency set was.
        spec = mutant_3pc_without_acks()
        graph = build_state_graph(spec)
        table = committable_states(graph)
        assert table[(COORDINATOR, "p")] is True
