"""Wall-clock timer seam, live config validation, and exit-code mapping."""

from __future__ import annotations

import asyncio
from pathlib import Path

import pytest

from repro.errors import (
    EXIT_CONFIG,
    EXIT_OK,
    EXIT_TIMEOUT,
    EXIT_TRANSPORT,
    EXIT_VIOLATION,
    AtomicityViolationError,
    ClusterError,
    FrameError,
    LiveConfigError,
    LiveTimeoutError,
    TerminationError,
    TransportError,
    exit_code,
)
from repro.live.clock import TimeoutClock
from repro.live.node import LiveConfig, parse_pause_after
from repro.metrics import WALL_MS_BUCKETS
from repro.types import SiteId


class TestTimeoutClock:
    def test_now_starts_near_zero_and_advances(self):
        async def go():
            clock = TimeoutClock()
            start = clock.now()
            assert start < 1.0
            await asyncio.sleep(0.02)
            assert clock.now() >= start + 0.015

        asyncio.run(go())

    def test_call_later_fires_and_marks(self):
        async def go():
            clock = TimeoutClock()
            fired = asyncio.Event()
            timer = clock.call_later(0.01, fired.set, label="t")
            assert not timer.fired and not timer.cancelled
            await asyncio.wait_for(fired.wait(), 2.0)
            assert timer.fired

        asyncio.run(go())

    def test_cancel_prevents_firing(self):
        async def go():
            clock = TimeoutClock()
            hits = []
            timer = clock.call_later(0.01, lambda: hits.append(1))
            timer.cancel()
            timer.cancel()  # idempotent
            assert timer.cancelled
            await asyncio.sleep(0.05)
            assert hits == []

        asyncio.run(go())

    def test_negative_delay_clamped(self):
        async def go():
            clock = TimeoutClock()
            fired = asyncio.Event()
            clock.call_later(-5.0, fired.set)
            await asyncio.wait_for(fired.wait(), 2.0)

        asyncio.run(go())


class TestParsePauseAfter:
    def test_parses_kind_and_count(self):
        assert parse_pause_after("prepare:2") == ("prepare", 2)

    @pytest.mark.parametrize("text", ["prepare", "prepare:zero", ":2", "prepare:0"])
    def test_rejects_malformed(self, text):
        with pytest.raises(LiveConfigError):
            parse_pause_after(text)


class TestLiveConfigValidation:
    def _config(self, **overrides):
        base = dict(
            site=SiteId(1),
            spec_name="3pc-central",
            n_sites=3,
            port=19000,
            peers={SiteId(2): ("127.0.0.1", 19001), SiteId(3): ("127.0.0.1", 19002)},
            data_dir=Path("/tmp/x"),
        )
        base.update(overrides)
        return LiveConfig(**base)

    def test_valid(self):
        config = self._config()
        assert config.site == SiteId(1)

    def test_rejects_wrong_peer_set(self):
        with pytest.raises(LiveConfigError):
            self._config(peers={SiteId(2): ("127.0.0.1", 19001)})

    def test_rejects_self_in_peers(self):
        with pytest.raises(LiveConfigError):
            self._config(
                peers={
                    SiteId(1): ("127.0.0.1", 19000),
                    SiteId(2): ("127.0.0.1", 19001),
                }
            )

    def test_rejects_bad_vote(self):
        with pytest.raises(LiveConfigError):
            self._config(vote="maybe")


class TestExitCodes:
    @pytest.mark.parametrize(
        ("error", "code"),
        [
            (LiveTimeoutError("slow"), EXIT_TIMEOUT),
            (TransportError("down"), EXIT_TRANSPORT),
            (FrameError("torn"), EXIT_TRANSPORT),  # most-derived wins
            (ClusterError("spawn"), EXIT_TRANSPORT),
            (LiveConfigError("bad"), EXIT_CONFIG),
            (ValueError("bad arg"), EXIT_CONFIG),
            (AtomicityViolationError("split"), EXIT_VIOLATION),
            (TerminationError("stuck"), EXIT_VIOLATION),
            (RuntimeError("other"), EXIT_VIOLATION),
        ],
    )
    def test_mapping(self, error, code):
        assert exit_code(error) == code

    def test_codes_are_distinct(self):
        codes = {EXIT_OK, EXIT_VIOLATION, EXIT_CONFIG, EXIT_TRANSPORT, EXIT_TIMEOUT}
        assert len(codes) == 5


class TestWallClockBuckets:
    def test_strictly_increasing(self):
        assert list(WALL_MS_BUCKETS) == sorted(set(WALL_MS_BUCKETS))

    def test_covers_loopback_to_ci_timeouts(self):
        # Sub-millisecond loopback hops up through tens of seconds.
        assert WALL_MS_BUCKETS[0] <= 0.25
        assert WALL_MS_BUCKETS[-1] >= 30_000.0
