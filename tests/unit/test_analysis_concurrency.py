"""Unit tests for concurrency sets and committable states.

The key assertions reproduce the paper's tables directly: slide 32's
concurrency sets for the canonical 2PC and slide 20's committable-state
counts.
"""

import pytest

from repro.analysis.committable import committable_labels, committable_states
from repro.analysis.concurrency import (
    concurrency_labels,
    concurrency_set,
    concurrency_table,
    format_concurrency_table,
)
from repro.errors import AnalysisError
from repro.types import SiteId

S1, S2 = SiteId(1), SiteId(2)


class TestPaperTable:
    """Slide 32, verified cell by cell."""

    def test_cs_q(self, graph_2pc_canonical):
        assert concurrency_labels(graph_2pc_canonical, S1, "q") == {"q", "w", "a"}

    def test_cs_w(self, graph_2pc_canonical):
        assert concurrency_labels(graph_2pc_canonical, S1, "w") == {
            "q", "w", "a", "c",
        }

    def test_cs_a(self, graph_2pc_canonical):
        assert concurrency_labels(graph_2pc_canonical, S1, "a") == {"q", "w", "a"}

    def test_cs_c(self, graph_2pc_canonical):
        assert concurrency_labels(graph_2pc_canonical, S1, "c") == {"w", "c"}

    def test_symmetric_for_peer_sites(self, graph_2pc_canonical):
        for state in ("q", "w", "a", "c"):
            assert concurrency_labels(
                graph_2pc_canonical, S1, state
            ) == concurrency_labels(graph_2pc_canonical, S2, state)


class TestCanonical3PC:
    def test_cs_w_has_no_commit(self, graph_3pc_canonical):
        # The fix that makes 3PC nonblocking: w no longer coexists with c.
        assert "c" not in concurrency_labels(graph_3pc_canonical, S1, "w")

    def test_cs_p_contains_commit_but_no_abort(self, graph_3pc_canonical):
        labels = concurrency_labels(graph_3pc_canonical, S1, "p")
        assert "c" in labels
        assert "a" not in labels

    def test_cs_table_complete(self, graph_3pc_canonical):
        table = concurrency_table(graph_3pc_canonical, S1)
        assert set(table) == {"q", "w", "a", "p", "c"}


class TestMechanics:
    def test_concurrency_set_returns_site_pairs(self, graph_2pc_canonical):
        pairs = concurrency_set(graph_2pc_canonical, S1, "w")
        assert all(site == S2 for site, _ in pairs)

    def test_unreachable_state_raises(self, graph_2pc_canonical):
        with pytest.raises(AnalysisError):
            concurrency_set(graph_2pc_canonical, S1, "zzz")

    def test_format_renders_paper_style(self, graph_2pc_canonical):
        text = format_concurrency_table(concurrency_table(graph_2pc_canonical, S1))
        assert "CS(w) = {a, c, q, w}" in text

    def test_central_protocol_asymmetry(self, graph_2pc_central):
        # The coordinator's w never coexists with a commit state (it is
        # the only site that can create one), unlike the slaves' w.
        coord_w = concurrency_labels(graph_2pc_central, SiteId(1), "w")
        slave_w = concurrency_labels(graph_2pc_central, SiteId(2), "w")
        assert "c" not in coord_w
        assert "c" in slave_w


class TestCommittable:
    def test_2pc_single_committable_state(self, graph_2pc_canonical):
        assert committable_labels(graph_2pc_canonical, S1) == {"c"}

    def test_3pc_two_committable_states(self, graph_3pc_canonical):
        assert committable_labels(graph_3pc_canonical, S1) == {"p", "c"}

    def test_blocking_vs_nonblocking_signature(
        self, graph_2pc_canonical, graph_3pc_canonical
    ):
        # Slide 20: "A blocking protocol usually has only one committable
        # state, while nonblocking protocols always have more than one."
        assert len(committable_labels(graph_2pc_canonical, S1)) == 1
        assert len(committable_labels(graph_3pc_canonical, S1)) > 1

    def test_classification_covers_all_reachable_states(
        self, graph_3pc_canonical
    ):
        table = committable_states(graph_3pc_canonical)
        for site in graph_3pc_canonical.sites:
            for state in graph_3pc_canonical.reachable_local_states(site):
                assert (site, state) in table

    def test_initial_state_never_committable(self, graph_3pc_canonical):
        table = committable_states(graph_3pc_canonical)
        assert table[(S1, "q")] is False

    def test_abort_state_never_committable(self, graph_3pc_canonical):
        table = committable_states(graph_3pc_canonical)
        assert table[(S1, "a")] is False

    def test_central_3pc_coordinator_p_committable(self, graph_3pc_central):
        table = committable_states(graph_3pc_central)
        assert table[(SiteId(1), "p")] is True
        assert table[(SiteId(2), "p")] is True

    def test_1pc_slave_commit_state_noncommittable(self):
        # 1PC slaves never vote, so even their commit state cannot imply
        # "all sites voted yes" — the degenerate case behind 1PC's
        # inadequacy.
        from repro.analysis.reachability import build_state_graph
        from repro.protocols import catalog

        graph = build_state_graph(catalog.build("1pc", 3))
        table = committable_states(graph)
        assert table[(SiteId(2), "c")] is False
