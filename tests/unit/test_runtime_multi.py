"""Unit tests for the multi-transaction runtime."""

import pytest

from repro.protocols import catalog
from repro.runtime.decision import TerminationRule
from repro.runtime.multi import MultiCommitRun, Tagged
from repro.runtime.policies import FixedVotes
from repro.types import Outcome, SiteId, TransactionId, Vote
from repro.workload.crashes import CrashAt, CrashDuringTransition


@pytest.fixture(scope="module")
def spec_3pc():
    return catalog.build("3pc-central", 4)


@pytest.fixture(scope="module")
def rule_3pc(spec_3pc):
    return TerminationRule(spec_3pc)


@pytest.fixture(scope="module")
def spec_2pc():
    return catalog.build("2pc-central", 4)


@pytest.fixture(scope="module")
def rule_2pc(spec_2pc):
    return TerminationRule(spec_2pc)


class TestHappyMultiplexing:
    def test_all_transactions_commit(self, spec_3pc, rule_3pc):
        run = MultiCommitRun(
            spec_3pc, start_times=[0.0, 1.0, 2.0], rule=rule_3pc
        ).execute()
        assert run.atomic
        for xid, result in run.per_transaction.items():
            assert set(result.outcomes().values()) == {Outcome.COMMIT}

    def test_transactions_are_isolated(self, spec_3pc, rule_3pc):
        # One transaction's no-vote must not affect another.
        run = MultiCommitRun(
            spec_3pc,
            start_times=[0.0, 0.0],
            vote_policies={
                TransactionId(2): FixedVotes({SiteId(3): Vote.NO})
            },
            rule=rule_3pc,
        ).execute()
        assert set(
            run.per_transaction[TransactionId(1)].outcomes().values()
        ) == {Outcome.COMMIT}
        assert set(
            run.per_transaction[TransactionId(2)].outcomes().values()
        ) == {Outcome.ABORT}

    def test_message_multiplexing_scales_linearly(self, spec_3pc, rule_3pc):
        one = MultiCommitRun(spec_3pc, start_times=[0.0], rule=rule_3pc).execute()
        three = MultiCommitRun(
            spec_3pc, start_times=[0.0, 0.0, 0.0], rule=rule_3pc
        ).execute()
        assert three.messages_sent == 3 * one.messages_sent

    def test_staggered_starts_delay_decisions(self, spec_3pc, rule_3pc):
        run = MultiCommitRun(
            spec_3pc, start_times=[0.0, 5.0], rule=rule_3pc
        ).execute()
        t1 = run.per_transaction[TransactionId(1)].decision_times()
        t2 = run.per_transaction[TransactionId(2)].decision_times()
        assert min(t2.values()) >= min(t1.values()) + 5.0


class TestCrashBlastRadius:
    def test_2pc_blocks_the_inflight_window(self, spec_2pc, rule_2pc):
        run = MultiCommitRun(
            spec_2pc,
            start_times=[float(i) for i in range(6)],
            crashes=[CrashAt(site=1, at=4.0)],
            rule=rule_2pc,
        ).execute()
        assert run.atomic
        assert len(run.blocked_transactions()) >= 2

    def test_3pc_blocks_nothing(self, spec_3pc, rule_3pc):
        run = MultiCommitRun(
            spec_3pc,
            start_times=[float(i) for i in range(6)],
            crashes=[CrashAt(site=1, at=4.0)],
            rule=rule_3pc,
        ).execute()
        assert run.atomic
        assert run.blocked_transactions() == []
        for result in run.per_transaction.values():
            for site in (2, 3, 4):
                assert result.reports[site].outcome.is_final

    def test_completed_transactions_unaffected(self, spec_3pc, rule_3pc):
        run = MultiCommitRun(
            spec_3pc,
            start_times=[0.0, 20.0],
            crashes=[CrashAt(site=1, at=30.0)],
            rule=rule_3pc,
        ).execute()
        # Both transactions finished before the crash.
        for result in run.per_transaction.values():
            assert Outcome.COMMIT in result.decided_outcomes()

    def test_crash_and_recovery_resolves_every_transaction(
        self, spec_3pc, rule_3pc
    ):
        run = MultiCommitRun(
            spec_3pc,
            start_times=[0.0, 1.0, 2.0],
            crashes=[CrashAt(site=2, at=2.5, restart_at=40.0)],
            rule=rule_3pc,
        ).execute()
        assert run.atomic
        for xid, result in run.per_transaction.items():
            finals = {
                r.outcome for r in result.reports.values() if r.outcome.is_final
            }
            assert len(finals) == 1, (xid, result.outcomes())
            # The recovered site converged too.
            assert result.reports[2].outcome in finals


class TestValidation:
    def test_only_timed_crashes_supported(self, spec_3pc, rule_3pc):
        with pytest.raises(ValueError, match="CrashAt"):
            MultiCommitRun(
                spec_3pc,
                start_times=[0.0],
                crashes=[
                    CrashDuringTransition(
                        site=1, transition_number=1, after_writes=0
                    )
                ],
                rule=rule_3pc,
            )

    def test_tagged_payload_str(self):
        assert str(Tagged(TransactionId(3), "hello")) == "x3:hello"
