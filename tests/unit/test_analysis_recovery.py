"""Unit tests for independent recovery analysis."""

import pytest

from repro.analysis.recovery_analysis import (
    independent_recovery_map,
    post_crash_outcomes,
)
from repro.errors import AnalysisError
from repro.protocols import catalog
from repro.types import Outcome, SiteId

SLAVE = SiteId(2)


@pytest.fixture(scope="module")
def map_2pc_central():
    return independent_recovery_map(catalog.build("2pc-central", 3), SLAVE)


@pytest.fixture(scope="module")
def map_3pc_central():
    return independent_recovery_map(catalog.build("3pc-central", 3), SLAVE)


@pytest.fixture(scope="module")
def map_3pc_decentralized():
    return independent_recovery_map(
        catalog.build("3pc-decentralized", 3), SLAVE
    )


class TestSlideSixRule:
    """Slide 6: failure before the commit point → abort upon recovery."""

    @pytest.mark.parametrize(
        "fixture_name",
        ["map_2pc_central", "map_3pc_central", "map_3pc_decentralized"],
    )
    def test_pre_vote_crash_is_independently_abortable(
        self, fixture_name, request
    ):
        verdicts = request.getfixturevalue(fixture_name)
        assert verdicts["q"].independent is Outcome.ABORT

    @pytest.mark.parametrize(
        "fixture_name",
        ["map_2pc_central", "map_3pc_central", "map_3pc_decentralized"],
    )
    def test_final_states_recover_to_themselves(self, fixture_name, request):
        verdicts = request.getfixturevalue(fixture_name)
        assert verdicts["a"].independent is Outcome.ABORT
        assert verdicts["c"].independent is Outcome.COMMIT


class TestInDoubtStates:
    def test_2pc_wait_state_is_in_doubt(self, map_2pc_central):
        verdict = map_2pc_central["w"]
        assert verdict.independent is None
        assert verdict.outcomes == {Outcome.COMMIT, Outcome.ABORT}

    def test_3pc_prepared_state_is_in_doubt(self, map_3pc_central):
        # p is committable — but a crashed site in p cannot know whether
        # termination committed (backup in p) or aborted (backup in w).
        verdict = map_3pc_central["p"]
        assert verdict.independent is None

    def test_decentralized_wait_is_in_doubt(self, map_3pc_decentralized):
        # A decentralized peer's w allows commit via termination (a peer
        # backup in p commits), so the victim must ask.
        verdict = map_3pc_decentralized["w"]
        assert verdict.outcomes == {Outcome.COMMIT, Outcome.ABORT}


class TestCentralDecentralizedAsymmetry:
    def test_central_3pc_wait_is_independently_abortable(
        self, map_3pc_central
    ):
        # The asymmetry: a central-site slave crashed in w blocks the
        # commit path forever (the coordinator can never collect its
        # ack, and the coordinator-backup's rule aborts from w1/p1), so
        # abort is forced.
        assert map_3pc_central["w"].independent is Outcome.ABORT

    def test_decentralized_3pc_wait_is_not(self, map_3pc_decentralized):
        assert map_3pc_decentralized["w"].independent is None


class TestImplementationConsistency:
    """The runtime's recovery controller must never contradict the map.

    The implementation unilaterally aborts only without a yes vote —
    i.e. only from pre-vote states — and those are all independently
    abortable.  In-doubt states (yes voted) are exactly where it
    queries; the map shows querying is necessary in every such state
    except central-3PC's w, where the implementation is conservative
    but still consistent (the answer it gets is the forced abort).
    """

    @pytest.mark.parametrize(
        "name", ["2pc-central", "3pc-central", "3pc-decentralized"]
    )
    def test_unilateral_abort_states_are_safe(self, name):
        spec = catalog.build(name, 3)
        automaton = spec.automaton(SLAVE)
        verdicts = independent_recovery_map(spec, SLAVE)
        pre_vote = {
            state
            for state, implies in automaton.implies_yes_vote.items()
            if not implies and state in verdicts
            and state not in automaton.final_states
        }
        for state in pre_vote:
            # The implementation would abort here on recovery; abort
            # must be among (indeed, equal to) the forced outcomes.
            assert verdicts[state].outcomes == {Outcome.ABORT}, (name, state)


class TestBlockedPossibility:
    def test_slave_crash_never_blocks_others_in_these_protocols(
        self, map_2pc_central, map_3pc_central
    ):
        # Blocking arises from a COORDINATOR crash; a slave crash leaves
        # a coordinator-led termination that always decides.
        for verdicts in (map_2pc_central, map_3pc_central):
            for verdict in verdicts.values():
                assert not verdict.blocked_possible

    def test_coordinator_crash_blocks_2pc(self):
        spec = catalog.build("2pc-central", 3)
        verdict = post_crash_outcomes(spec, SiteId(1), "w")
        # With the coordinator dead in w1, slave backups can be in w —
        # blocked — while commit/abort futures also exist.
        assert verdict.blocked_possible

    def test_coordinator_crash_never_blocks_3pc(self):
        spec = catalog.build("3pc-central", 3)
        for state in ("q", "w", "p", "a", "c"):
            verdict = post_crash_outcomes(spec, SiteId(1), state)
            assert not verdict.blocked_possible, state


class TestMechanics:
    def test_unreachable_state_rejected(self):
        spec = catalog.build("2pc-central", 3)
        with pytest.raises(AnalysisError):
            post_crash_outcomes(spec, SLAVE, "p")

    def test_map_covers_all_reachable_states(self, map_3pc_central):
        assert set(map_3pc_central) == {"q", "w", "a", "p", "c"}
