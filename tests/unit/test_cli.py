"""Unit tests for the command-line interface."""

import json

import pytest

from repro.cli import main
from repro.errors import ReproError


class TestList:
    def test_lists_protocols_and_experiments(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "3pc-central" in out
        assert "T1" in out


class TestShow:
    def test_renders_automata(self, capsys):
        assert main(["show", "2pc-central", "3"]) == 0
        out = capsys.readouterr().out
        assert "coordinator" in out
        assert "slave" in out

    def test_unknown_protocol_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["show", "9pc", "3"])


class TestAnalyze:
    def test_blocking_verdict(self, capsys):
        assert main(["analyze", "2pc-central", "3"]) == 0
        out = capsys.readouterr().out
        assert "nonblocking: NO" in out
        assert "synchronous within one transition: YES" in out

    def test_nonblocking_verdict(self, capsys):
        assert main(["analyze", "3pc-decentralized", "3"]) == 0
        assert "nonblocking: YES" in capsys.readouterr().out


class TestExperiment:
    def test_single_experiment(self, capsys):
        assert main(["experiment", "T1"]) == 0
        out = capsys.readouterr().out
        assert "Concurrency sets" in out

    def test_lowercase_id(self, capsys):
        assert main(["experiment", "t3"]) == 0
        assert "decision" in capsys.readouterr().out.lower()


class TestRun:
    def test_happy_run(self, capsys):
        assert main(["run", "3pc-central", "3"]) == 0
        out = capsys.readouterr().out
        assert "atomic   : yes" in out
        assert "commit" in out

    def test_crash_flag(self, capsys):
        assert main(["run", "3pc-central", "4", "--crash", "1@2.0"]) == 0
        out = capsys.readouterr().out
        assert "termination" in out
        assert "[down]" in out

    def test_crash_with_restart(self, capsys):
        assert main(["run", "3pc-central", "4", "--crash", "1@2.0@40.0"]) == 0
        assert "recovery" in capsys.readouterr().out

    def test_no_vote_flag(self, capsys):
        assert main(["run", "2pc-central", "3", "--no-vote", "2"]) == 0
        assert "abort" in capsys.readouterr().out

    def test_trace_flag(self, capsys):
        assert main(["run", "2pc-central", "2", "--trace"]) == 0
        assert "engine.transition" in capsys.readouterr().out

    def test_bad_crash_spec_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "3pc-central", "3", "--crash", "nonsense"])

    def test_swimlanes_flag(self, capsys):
        assert main(["run", "3pc-central", "3", "--swimlanes"]) == 0
        out = capsys.readouterr().out
        assert "site 1" in out and "COMMIT!" in out

    def test_termination_mode_flag(self, capsys):
        assert main(
            [
                "run",
                "3pc-central",
                "4",
                "--crash",
                "1@2.0",
                "--termination",
                "cooperative",
            ]
        ) == 0
        assert "termination" in capsys.readouterr().out

    def test_quorum_mode_flag(self, capsys):
        assert main(
            ["run", "3pc-central", "4", "--crash", "1@2.0",
             "--termination", "quorum"]
        ) == 0

    def test_unknown_termination_mode_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "3pc-central", "3", "--termination", "bogus"])


class TestAuditFlag:
    def test_clean_audit(self, capsys):
        assert main(["run", "3pc-central", "3", "--crash", "1@2.0", "--audit"]) == 0
        assert "conformance audit: clean" in capsys.readouterr().out


class TestCampaign:
    def test_campaign_prints_summary(self, capsys):
        assert main(["campaign", "3pc-central", "3", "--count", "10"]) == 0
        out = capsys.readouterr().out
        assert "atomicity violations" in out
        assert "runs" in out

    def test_campaign_save_and_replay(self, capsys, tmp_path):
        path = tmp_path / "campaign.json"
        assert (
            main(
                [
                    "campaign",
                    "3pc-central",
                    "3",
                    "--count",
                    "5",
                    "--save",
                    str(path),
                ]
            )
            == 0
        )
        saved_out = capsys.readouterr().out
        assert path.exists()
        assert (
            main(["campaign", "3pc-central", "3", "--replay", str(path)]) == 0
        )
        replay_out = capsys.readouterr().out
        assert "replaying 5 transactions" in replay_out
        # Replay reproduces the identical summary table.
        assert saved_out.split("runs")[1] in replay_out

    def test_campaign_parameters(self, capsys):
        assert (
            main(
                [
                    "campaign",
                    "2pc-central",
                    "3",
                    "--count",
                    "8",
                    "--p-no",
                    "0.0",
                    "--p-crash",
                    "0.0",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "outcome: commit       | 8" in out.replace("  ", "  ")


class TestTraceOut:
    def test_run_writes_trace_file(self, capsys, tmp_path):
        path = tmp_path / "t.jsonl"
        assert (
            main(["run", "3pc-central", "3", "--trace-out", str(path)]) == 0
        )
        out = capsys.readouterr().out
        assert f"wrote" in out and str(path) in out
        assert path.exists()
        lines = path.read_text().splitlines()
        assert lines, "trace file should not be empty"
        import json

        record = json.loads(lines[0])
        assert list(record) == ["time", "category", "site", "detail", "data"]

    def test_fixed_seed_trace_round_trips_byte_identically(self, tmp_path):
        from repro.sim.tracing import TraceLog

        path = tmp_path / "t.jsonl"
        main(
            ["run", "3pc-central", "4", "--crash", "1@2.0",
             "--seed", "7", "--trace-out", str(path)]
        )
        text = path.read_text()
        assert TraceLog.from_jsonl(text).to_jsonl() == text

    def test_same_seed_same_bytes(self, tmp_path):
        a, b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        argv = ["run", "3pc-central", "4", "--crash", "1@2.0", "--seed", "3"]
        main(argv + ["--trace-out", str(a)])
        main(argv + ["--trace-out", str(b)])
        assert a.read_bytes() == b.read_bytes()


class TestTraceCommand:
    @pytest.fixture()
    def trace_file(self, tmp_path, capsys):
        path = tmp_path / "t.jsonl"
        main(["run", "3pc-central", "4", "--crash", "1@2.0",
              "--trace-out", str(path)])
        capsys.readouterr()  # Discard the run output.
        return str(path)

    def test_prints_timeline_with_footer(self, capsys, trace_file):
        assert main(["trace", trace_file]) == 0
        out = capsys.readouterr().out
        assert "net.send" in out
        assert "shown" in out and "total entries" in out

    def test_category_prefix_filter(self, capsys, trace_file):
        assert main(["trace", trace_file, "--category", "phase."]) == 0
        out = capsys.readouterr().out
        assert "phase.enter" in out and "phase.exit" in out
        assert "net.send" not in out

    def test_site_filter(self, capsys, trace_file):
        assert main(["trace", trace_file, "--site", "2"]) == 0
        lines = capsys.readouterr().out.splitlines()
        entry_lines = [line for line in lines if line.startswith("[")]
        assert entry_lines
        # The site column (detail text may mention other sites).
        assert all("site 2" in line[:42] for line in entry_lines)
        assert not any("site 3" in line[:42] for line in entry_lines)

    def test_span_lookup(self, capsys, trace_file):
        assert main(["trace", trace_file, "--span", "0"]) == 0
        out = capsys.readouterr().out
        assert "span #0" in out
        assert "latency=" in out
        assert "net.send" in out and "net.deliver" in out

    def test_dropped_span_shows_drop(self, capsys, trace_file):
        # Find a dropped message id, then ask for its span.
        from repro.sim.spans import SpanIndex
        from repro.sim.tracing import TraceLog

        index = SpanIndex.from_trace(TraceLog.load(trace_file))
        dropped = index.dropped()
        assert dropped
        assert main(["trace", trace_file, "--span",
                     str(dropped[0].msg_id)]) == 0
        out = capsys.readouterr().out
        assert "[dropped]" in out and "net.drop" in out

    def test_unknown_span_is_error(self, capsys, trace_file):
        assert main(["trace", trace_file, "--span", "99999"]) == 1
        assert "no message with id 99999" in capsys.readouterr().out

    def test_limit(self, capsys, trace_file):
        assert main(["trace", trace_file, "--limit", "3"]) == 0
        out = capsys.readouterr().out
        assert "3 shown" in out


class TestStatsCommand:
    @pytest.fixture()
    def trace_file(self, tmp_path, capsys):
        path = tmp_path / "t.jsonl"
        main(["run", "3pc-central", "4", "--crash", "1@2.0",
              "--trace-out", str(path)])
        capsys.readouterr()
        return str(path)

    def test_stats_prints_message_counts(self, capsys, trace_file):
        assert main(["stats", trace_file]) == 0
        out = capsys.readouterr().out
        assert "messages" in out
        assert "sent" in out and "delivered" in out and "dropped" in out

    def test_stats_prints_phase_latency_percentiles(self, capsys, trace_file):
        assert main(["stats", trace_file]) == 0
        out = capsys.readouterr().out
        assert "phase latency" in out
        assert "p50" in out and "p99" in out
        assert "termination" in out

    def test_stats_prints_decision_outcome(self, capsys, trace_file):
        assert main(["stats", trace_file]) == 0
        out = capsys.readouterr().out
        assert "decision outcome" in out
        assert "abort" in out
        assert "decision latency" in out

    def test_stats_reports_blocking(self, capsys, tmp_path):
        path = tmp_path / "blocked.jsonl"
        main(["run", "2pc-central", "3", "--crash", "1@2.0",
              "--trace-out", str(path)])
        capsys.readouterr()
        assert main(["stats", str(path)]) == 0
        assert "blocking" in capsys.readouterr().out


class TestSweep:
    def test_sweep_prints_report_and_timing(self, capsys):
        assert main(["sweep", "Q2"]) == 0
        captured = capsys.readouterr()
        assert "Q2" in captured.out
        assert "sweep:" in captured.err  # Timing is stderr-only.
        assert "sweep:" not in captured.out

    def test_sweep_output_is_deterministic(self, capsys):
        main(["sweep", "Q2"])
        first = capsys.readouterr().out
        main(["sweep", "Q2"])
        second = capsys.readouterr().out
        assert first == second

    def test_sweep_cache_dir_skips_finished_work(self, capsys, tmp_path):
        cache_dir = str(tmp_path / "cache")
        main(["sweep", "Q2", "--cache-dir", cache_dir])
        cold = capsys.readouterr()
        assert "(0 cached)" in cold.err
        main(["sweep", "Q2", "--cache-dir", cache_dir])
        warm = capsys.readouterr()
        assert "(7 cached)" in warm.err
        assert warm.out == cold.out

    def test_sweep_writes_artifacts(self, capsys, tmp_path):
        trace = tmp_path / "sweep.jsonl"
        metrics = tmp_path / "metrics.json"
        sidecar = tmp_path / "sweep.json"
        assert main([
            "sweep", "Q2",
            "--trace-out", str(trace),
            "--metrics-out", str(metrics),
            "--json", str(sidecar),
        ]) == 0
        capsys.readouterr()
        assert trace.read_text().strip()
        assert "runs_total" in metrics.read_text()
        document = json.loads(sidecar.read_text())
        assert document["tasks"]
        assert "metrics" in document

    def test_sweep_unknown_experiment_rejected(self):
        with pytest.raises(ReproError):
            main(["sweep", "NOPE"])
