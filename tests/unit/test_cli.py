"""Unit tests for the command-line interface."""

import pytest

from repro.cli import main


class TestList:
    def test_lists_protocols_and_experiments(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "3pc-central" in out
        assert "T1" in out


class TestShow:
    def test_renders_automata(self, capsys):
        assert main(["show", "2pc-central", "3"]) == 0
        out = capsys.readouterr().out
        assert "coordinator" in out
        assert "slave" in out

    def test_unknown_protocol_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["show", "9pc", "3"])


class TestAnalyze:
    def test_blocking_verdict(self, capsys):
        assert main(["analyze", "2pc-central", "3"]) == 0
        out = capsys.readouterr().out
        assert "nonblocking: NO" in out
        assert "synchronous within one transition: YES" in out

    def test_nonblocking_verdict(self, capsys):
        assert main(["analyze", "3pc-decentralized", "3"]) == 0
        assert "nonblocking: YES" in capsys.readouterr().out


class TestExperiment:
    def test_single_experiment(self, capsys):
        assert main(["experiment", "T1"]) == 0
        out = capsys.readouterr().out
        assert "Concurrency sets" in out

    def test_lowercase_id(self, capsys):
        assert main(["experiment", "t3"]) == 0
        assert "decision" in capsys.readouterr().out.lower()


class TestRun:
    def test_happy_run(self, capsys):
        assert main(["run", "3pc-central", "3"]) == 0
        out = capsys.readouterr().out
        assert "atomic   : yes" in out
        assert "commit" in out

    def test_crash_flag(self, capsys):
        assert main(["run", "3pc-central", "4", "--crash", "1@2.0"]) == 0
        out = capsys.readouterr().out
        assert "termination" in out
        assert "[down]" in out

    def test_crash_with_restart(self, capsys):
        assert main(["run", "3pc-central", "4", "--crash", "1@2.0@40.0"]) == 0
        assert "recovery" in capsys.readouterr().out

    def test_no_vote_flag(self, capsys):
        assert main(["run", "2pc-central", "3", "--no-vote", "2"]) == 0
        assert "abort" in capsys.readouterr().out

    def test_trace_flag(self, capsys):
        assert main(["run", "2pc-central", "2", "--trace"]) == 0
        assert "engine.transition" in capsys.readouterr().out

    def test_bad_crash_spec_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "3pc-central", "3", "--crash", "nonsense"])

    def test_swimlanes_flag(self, capsys):
        assert main(["run", "3pc-central", "3", "--swimlanes"]) == 0
        out = capsys.readouterr().out
        assert "site 1" in out and "COMMIT!" in out

    def test_termination_mode_flag(self, capsys):
        assert main(
            [
                "run",
                "3pc-central",
                "4",
                "--crash",
                "1@2.0",
                "--termination",
                "cooperative",
            ]
        ) == 0
        assert "termination" in capsys.readouterr().out

    def test_quorum_mode_flag(self, capsys):
        assert main(
            ["run", "3pc-central", "4", "--crash", "1@2.0",
             "--termination", "quorum"]
        ) == 0

    def test_unknown_termination_mode_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "3pc-central", "3", "--termination", "bogus"])


class TestAuditFlag:
    def test_clean_audit(self, capsys):
        assert main(["run", "3pc-central", "3", "--crash", "1@2.0", "--audit"]) == 0
        assert "conformance audit: clean" in capsys.readouterr().out


class TestCampaign:
    def test_campaign_prints_summary(self, capsys):
        assert main(["campaign", "3pc-central", "3", "--count", "10"]) == 0
        out = capsys.readouterr().out
        assert "atomicity violations" in out
        assert "runs" in out

    def test_campaign_save_and_replay(self, capsys, tmp_path):
        path = tmp_path / "campaign.json"
        assert (
            main(
                [
                    "campaign",
                    "3pc-central",
                    "3",
                    "--count",
                    "5",
                    "--save",
                    str(path),
                ]
            )
            == 0
        )
        saved_out = capsys.readouterr().out
        assert path.exists()
        assert (
            main(["campaign", "3pc-central", "3", "--replay", str(path)]) == 0
        )
        replay_out = capsys.readouterr().out
        assert "replaying 5 transactions" in replay_out
        # Replay reproduces the identical summary table.
        assert saved_out.split("runs")[1] in replay_out

    def test_campaign_parameters(self, capsys):
        assert (
            main(
                [
                    "campaign",
                    "2pc-central",
                    "3",
                    "--count",
                    "8",
                    "--p-no",
                    "0.0",
                    "--p-crash",
                    "0.0",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "outcome: commit       | 8" in out.replace("  ", "  ")
