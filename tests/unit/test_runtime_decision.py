"""Unit tests for the termination decision rule (slide 39/40)."""

import pytest

from repro.errors import TerminationError
from repro.protocols import catalog
from repro.runtime.decision import TerminationRule
from repro.types import Outcome, SiteId


@pytest.fixture(scope="module")
def rule_3pc_dec():
    return TerminationRule(catalog.build("3pc-decentralized", 3))


@pytest.fixture(scope="module")
def rule_2pc_dec():
    return TerminationRule(catalog.build("2pc-decentralized", 3))


class TestCanonical3PCRule:
    """Slide 40: commit iff s in {p, c}."""

    @pytest.mark.parametrize("state", ["q", "w", "a"])
    def test_abort_states(self, rule_3pc_dec, state):
        assert rule_3pc_dec.decide(SiteId(1), state) is Outcome.ABORT

    @pytest.mark.parametrize("state", ["p", "c"])
    def test_commit_states(self, rule_3pc_dec, state):
        assert rule_3pc_dec.decide(SiteId(1), state) is Outcome.COMMIT

    def test_never_blocked(self, rule_3pc_dec):
        assert rule_3pc_dec.blocked_states() == []
        rule_3pc_dec.verify_nonblocking()  # Must not raise.

    def test_symmetric_across_peers(self, rule_3pc_dec):
        for site in (1, 2, 3):
            table = rule_3pc_dec.table(SiteId(site))
            assert table["p"] is Outcome.COMMIT
            assert table["w"] is Outcome.ABORT


class TestCanonical2PCRule:
    def test_wait_state_blocked(self, rule_2pc_dec):
        # The essence of 2PC's blocking: w has a commit AND an abort in
        # its concurrency set, so neither decision is safe.
        assert rule_2pc_dec.decide(SiteId(1), "w") is Outcome.BLOCKED

    def test_final_states_decide_themselves(self, rule_2pc_dec):
        assert rule_2pc_dec.decide(SiteId(1), "c") is Outcome.COMMIT
        assert rule_2pc_dec.decide(SiteId(1), "a") is Outcome.ABORT

    def test_initial_state_aborts(self, rule_2pc_dec):
        assert rule_2pc_dec.decide(SiteId(1), "q") is Outcome.ABORT

    def test_verify_nonblocking_raises(self, rule_2pc_dec):
        with pytest.raises(TerminationError, match="blocked"):
            rule_2pc_dec.verify_nonblocking()


class TestCentral3PCAsymmetry:
    def test_coordinator_p_aborts_but_slave_p_commits(self, rule_3pc_central):
        # The coordinator in p has not sent commit, so no commit state
        # can coexist with it — the rule aborts.  A slave in p can
        # coexist with the coordinator's c — the rule commits.
        assert rule_3pc_central.decide(SiteId(1), "p") is Outcome.ABORT
        assert rule_3pc_central.decide(SiteId(2), "p") is Outcome.COMMIT

    def test_central_3pc_never_blocked(self, rule_3pc_central):
        rule_3pc_central.verify_nonblocking()

    def test_2pc_central_slave_w_blocked(self, rule_2pc_central):
        assert rule_2pc_central.decide(SiteId(2), "w") is Outcome.BLOCKED

    def test_2pc_central_coordinator_w_aborts(self, rule_2pc_central):
        assert rule_2pc_central.decide(SiteId(1), "w") is Outcome.ABORT


class TestMechanics:
    def test_unreachable_state_raises(self, rule_3pc_central):
        with pytest.raises(TerminationError, match="unreachable"):
            rule_3pc_central.decide(SiteId(1), "zzz")

    def test_table_covers_reachable_states(self, rule_3pc_central):
        assert set(rule_3pc_central.table(SiteId(2))) == {"q", "w", "a", "p", "c"}

    def test_decisions_never_unsafe(self, rule_2pc_central, graph_2pc_central):
        # Safety cross-check: an ABORT decision requires no commit state
        # in the concurrency set; a COMMIT decision requires no abort.
        from repro.analysis.concurrency import concurrency_set

        spec = graph_2pc_central.spec
        for site in graph_2pc_central.sites:
            for state in graph_2pc_central.reachable_local_states(site):
                decision = rule_2pc_central.decide(site, state)
                if spec.is_final_state(site, state):
                    continue
                cs = concurrency_set(graph_2pc_central, site, state)
                has_commit = any(
                    spec.is_commit_state(o, l) for o, l in cs
                )
                has_abort = any(spec.is_abort_state(o, l) for o, l in cs)
                if decision is Outcome.ABORT:
                    assert not has_commit
                elif decision is Outcome.COMMIT:
                    assert not has_abort
