"""Unit tests for the distributed database layer."""

import pytest

from repro.db.distributed import DistributedDB
from repro.types import Outcome, SiteId, Vote
from repro.workload.crashes import CrashAt, CrashDuringTransition

PLACEMENT = {"x": SiteId(1), "y": SiteId(2), "z": SiteId(3)}


def make_db(protocol="3pc-central", n=4):
    return DistributedDB(n, protocol=protocol, placement=PLACEMENT)


class TestBasics:
    def test_multi_site_commit(self):
        db = make_db()
        outcome = db.run_transaction(1, [("w", "x", 1), ("w", "y", 2)])
        assert outcome.committed
        assert outcome.participants == (1, 2)
        assert db.get("x") == 1 and db.get("y") == 2

    def test_single_site_txn_needs_no_protocol(self):
        db = make_db()
        outcome = db.run_transaction(1, [("w", "x", 5)])
        assert outcome.committed
        assert outcome.commit_run is None

    def test_read_only_transaction(self):
        db = make_db()
        db.run_transaction(1, [("w", "x", 7)])
        outcome = db.run_transaction(2, [("r", "x"), ("r", "y")])
        assert outcome.committed

    def test_placement_hash_fallback(self):
        db = DistributedDB(4)
        site = db.place("unmapped-key")
        assert site in db.sites
        assert db.place("unmapped-key") == site  # Stable.

    def test_explicit_placement(self):
        db = make_db()
        assert db.place("x") == SiteId(1)

    def test_unknown_op_kind_rejected(self):
        db = make_db()
        with pytest.raises(ValueError, match="unknown op"):
            db.run_transaction(1, [("touch", "x")])

    def test_votes_recorded(self):
        db = make_db()
        outcome = db.run_transaction(1, [("w", "x", 1), ("w", "y", 2)])
        assert outcome.votes == {SiteId(1): Vote.YES, SiteId(2): Vote.YES}

    def test_snapshot_merges_sites(self):
        db = make_db()
        db.run_transaction(1, [("w", "x", 1), ("w", "y", 2)])
        assert db.snapshot() == {"x": 1, "y": 2}


class TestCommitPhaseFailures:
    def test_3pc_coordinator_crash_aborts_and_rolls_back(self):
        db = make_db("3pc-central")
        db.run_transaction(1, [("w", "x", 1), ("w", "y", 2)])
        outcome = db.run_transaction(
            2, [("w", "x", 10), ("w", "y", 20)], crashes=[CrashAt(site=1, at=2.0)]
        )
        assert outcome.outcome is Outcome.ABORT
        assert db.get("x") == 1 and db.get("y") == 2

    def test_3pc_releases_locks_after_termination(self):
        db = make_db("3pc-central")
        db.run_transaction(1, [("w", "x", 1), ("w", "y", 2)])
        db.run_transaction(
            2, [("w", "x", 10), ("w", "y", 20)], crashes=[CrashAt(site=1, at=2.0)]
        )
        follow_up = db.run_transaction(3, [("w", "x", 99), ("w", "y", 98)])
        assert follow_up.committed
        assert db.get("x") == 99

    def test_2pc_coordinator_crash_blocks_and_holds_locks(self):
        db = make_db("2pc-central")
        db.run_transaction(1, [("w", "x", 1), ("w", "y", 2)])
        outcome = db.run_transaction(
            2, [("w", "x", 10), ("w", "y", 20)], crashes=[CrashAt(site=1, at=2.0)]
        )
        assert outcome.outcome is Outcome.BLOCKED
        # The crashed coordinator's own site rolled back (its recovery
        # would unilaterally abort — it never voted), so "x" is free;
        # the *blocked slave* at site 2 keeps its lock on "y".
        follow_up = db.run_transaction(3, [("w", "y", 99)])
        assert follow_up.outcome is Outcome.ABORT
        assert follow_up.reason == "stalled"
        # Steal policy: the blocked transaction's uncommitted write is
        # in the store, guarded by its still-held exclusive lock
        # (db.get is a lock-free dirty read).
        assert db.get("y") == 20

    def test_crashed_slave_post_vote_commits_via_global_decision(self):
        db = make_db("3pc-central")
        outcome = db.run_transaction(
            1,
            [("w", "x", 1), ("w", "y", 2), ("w", "z", 3)],
            crashes=[CrashAt(site=3, at=3.5)],
        )
        assert outcome.committed
        assert db.get("z") == 3  # Applied at the crashed site via WAL.

    def test_2pc_partial_commit_fanout_commits_everywhere(self):
        db = make_db("2pc-central")
        outcome = db.run_transaction(
            1,
            [("w", "x", 1), ("w", "y", 2), ("w", "z", 3)],
            crashes=[
                CrashDuringTransition(site=1, transition_number=2, after_writes=1)
            ],
        )
        assert outcome.committed
        assert db.get("x") == 1 and db.get("y") == 2 and db.get("z") == 3

    def test_crash_of_nonparticipant_rejected(self):
        db = make_db()
        with pytest.raises(ValueError, match="not a participant"):
            db.run_transaction(
                1, [("w", "x", 1), ("w", "y", 2)], crashes=[CrashAt(site=4, at=1.0)]
            )


class TestConcurrent:
    def test_disjoint_txns_all_commit(self):
        db = make_db()
        results = db.run_concurrent(
            {1: [("w", "x", 1)], 2: [("w", "y", 2)], 3: [("w", "z", 3)]}
        )
        assert all(r.committed for r in results.values())

    def test_distributed_deadlock_resolved(self):
        db = make_db()
        results = db.run_concurrent(
            {
                10: [("w", "x", 1), ("w", "y", 1)],
                11: [("w", "y", 2), ("w", "x", 2)],
            }
        )
        outcomes = {t: r.outcome for t, r in results.items()}
        assert outcomes[10] is Outcome.COMMIT
        assert outcomes[11] is Outcome.ABORT
        assert results[11].reason == "deadlock"
        # Survivor's writes are in place.
        assert db.get("x") == 1 and db.get("y") == 1

    def test_victim_is_youngest(self):
        db = make_db()
        results = db.run_concurrent(
            {
                5: [("w", "x", 1), ("w", "y", 1)],
                9: [("w", "y", 2), ("w", "x", 2)],
            }
        )
        assert results[9].reason == "deadlock"
        assert results[5].committed

    def test_lock_conflict_without_deadlock_serializes(self):
        db = make_db()
        results = db.run_concurrent(
            {
                1: [("w", "x", 1), ("w", "x", 11)],
                2: [("w", "x", 2)],
            }
        )
        assert all(r.committed for r in results.values())
        assert db.get("x") in (2, 11)

    def test_same_site_deadlock_also_detected(self):
        db = DistributedDB(1)
        results = db.run_concurrent(
            {
                1: [("w", "a", 1), ("w", "b", 1)],
                2: [("w", "b", 2), ("w", "a", 2)],
            }
        )
        reasons = sorted(r.reason or "" for r in results.values())
        assert "deadlock" in reasons


class TestDataPlaneCrash:
    def test_crash_site_replays_wal(self):
        db = make_db()
        db.run_transaction(1, [("w", "x", "v1")])
        classification = db.crash_site(SiteId(1))
        assert classification["committed"] == [1]
        assert db.get("x") == "v1"
