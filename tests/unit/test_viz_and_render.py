"""Unit tests for the visualization helpers and FSA renderers."""

import pytest

from repro.analysis.reachability import build_state_graph
from repro.fsa.render import automaton_to_dot, format_automaton, format_spec, spec_to_dot
from repro.protocols import catalog
from repro.runtime.harness import CommitRun
from repro.types import SiteId
from repro.viz import render_run, render_swimlanes
from repro.workload.crashes import CrashAt


class TestFormatAutomaton:
    def test_contains_states_and_finals(self, spec_3pc_central):
        text = format_automaton(spec_3pc_central.automaton(SiteId(1)))
        assert "states : a, c, p, q, w" in text
        assert "commit : c" in text
        assert "abort  : a" in text

    def test_transitions_in_paper_notation(self, spec_2pc_central):
        text = format_automaton(spec_2pc_central.automaton(SiteId(2)))
        assert "q --(" in text
        assert "--> w [vote yes]" in text

    def test_format_spec_collapses_roles(self, spec_3pc_central):
        text = format_spec(spec_3pc_central)
        assert text.count("(coordinator)") == 1
        assert text.count("(slave)") == 1  # Not one per slave site.

    def test_format_spec_uncollapsed(self, spec_3pc_central):
        text = format_spec(spec_3pc_central, collapse_roles=False)
        assert text.count("(slave)") == 2

    def test_format_spec_headers(self, spec_3pc_central):
        text = format_spec(spec_3pc_central)
        assert "coordinator: site 1" in text
        assert "initial inputs:" in text


class TestDotRenderers:
    def test_automaton_dot_structure(self, spec_3pc_central):
        dot = automaton_to_dot(spec_3pc_central.automaton(SiteId(1)))
        assert dot.startswith("digraph")
        assert dot.rstrip().endswith("}")
        assert '"q" [shape=circle style="bold"];' in dot.replace("  ", " ") or "q" in dot
        assert "doublecircle" in dot  # Final states highlighted.

    def test_spec_dot_has_one_cluster_per_role(self, spec_3pc_central):
        dot = spec_to_dot(spec_3pc_central)
        assert dot.count("subgraph cluster_site_") == 2  # Two roles.

    def test_graph_dot_marks_final_states(self, graph_2pc_canonical):
        dot = graph_2pc_canonical.to_dot()
        assert "shape=box" in dot      # Finals.
        assert "shape=ellipse" in dot  # Non-finals.


class TestSwimlanes:
    @pytest.fixture(scope="class")
    def crash_run(self, rule_3pc_central, spec_3pc_central):
        return CommitRun(
            spec_3pc_central,
            crashes=[CrashAt(site=1, at=2.0)],
            rule=rule_3pc_central,
        ).execute()

    def test_header_has_one_lane_per_site(self, crash_run):
        text = render_run(crash_run)
        header = text.splitlines()[0]
        assert "site 1" in header and "site 3" in header

    def test_crash_and_decisions_visible(self, crash_run):
        text = render_run(crash_run)
        assert "CRASH" in text
        assert "ABORT!" in text

    def test_termination_round_annotated(self, crash_run):
        assert "[round]" in render_run(crash_run)

    def test_times_monotone(self, crash_run):
        times = []
        for line in render_run(crash_run).splitlines()[2:]:
            times.append(float(line.split()[0]))
        assert times == sorted(times)

    def test_category_filter(self, crash_run):
        text = render_swimlanes(
            crash_run.trace, sorted(crash_run.reports), categories=["site.crash"]
        )
        assert "CRASH" in text
        assert "ABORT!" not in text

    def test_custom_width(self, crash_run):
        narrow = render_run(crash_run, width=8)
        wide = render_run(crash_run, width=20)
        assert len(wide.splitlines()[0]) > len(narrow.splitlines()[0])

    def test_happy_path_shows_commit(self, spec_2pc_central, rule_2pc_central):
        run = CommitRun(spec_2pc_central, rule=rule_2pc_central).execute()
        text = render_run(run)
        assert "COMMIT!" in text
        assert "CRASH" not in text

    def test_global_state_describe(self, graph_2pc_canonical):
        text = graph_2pc_canonical.initial.describe(graph_2pc_canonical.sites)
        assert text.startswith("(q1, q2)")
        # Final state without outstanding messages renders bare.
        finals = graph_2pc_canonical.final_states()
        rendered = [s.describe(graph_2pc_canonical.sites) for s in finals]
        assert any("c1, c2" in r for r in rendered)
