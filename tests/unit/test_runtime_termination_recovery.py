"""Unit tests for termination and recovery behaviours (via the harness,
inspecting traces and reports for protocol-level details)."""

import pytest

from repro.election.bully import bully_strategy
from repro.protocols import catalog
from repro.runtime.harness import CommitRun
from repro.runtime.termination import lowest_id_election
from repro.types import Outcome, SiteId, Vote
from repro.workload.crashes import CrashAt, CrashDuringTransition


class TestBackupElection:
    def test_default_backup_is_lowest_operational(
        self, spec_3pc_central, rule_3pc_central
    ):
        run = CommitRun(
            spec_3pc_central,
            crashes=[CrashAt(site=1, at=2.0)],
            rule=rule_3pc_central,
        ).execute()
        rounds = run.trace.select(category="term.round")
        assert rounds
        assert all(entry.data["backup"] == 2 for entry in rounds)

    def test_bully_strategy_elects_highest(self, spec_3pc_central, rule_3pc_central):
        run = CommitRun(
            spec_3pc_central,
            crashes=[CrashAt(site=1, at=2.0)],
            rule=rule_3pc_central,
            elect=bully_strategy,
        ).execute()
        rounds = run.trace.select(category="term.round")
        assert all(entry.data["backup"] == 3 for entry in rounds)
        assert run.atomic
        assert all(
            run.reports[s].outcome.is_final for s in (2, 3)
        )

    def test_lowest_id_election_function(self):
        assert lowest_id_election([SiteId(3), SiteId(1), SiteId(2)]) == 1
        assert bully_strategy([SiteId(3), SiteId(1)]) == 3


class TestBackupProtocolPhases:
    def test_phase1_move_to_issued(self, spec_3pc_central, rule_3pc_central):
        run = CommitRun(
            spec_3pc_central,
            crashes=[CrashAt(site=1, at=3.5)],  # Slaves are in p.
            rule=rule_3pc_central,
        ).execute()
        assert run.trace.count("term.phase1") >= 1

    def test_phase1_skipped_when_backup_final(
        self, spec_2pc_central, rule_2pc_central
    ):
        # Coordinator crashes mid commit fan-out: slave 2 receives the
        # commit, becomes backup, and broadcasts directly (slide 39's
        # omission case) — no phase-1 trace.
        run = CommitRun(
            spec_2pc_central,
            crashes=[CrashDuringTransition(site=1, transition_number=2, after_writes=1)],
            rule=rule_2pc_central,
        ).execute()
        assert set(run.outcomes().values()) == {Outcome.COMMIT}
        assert run.trace.count("term.phase1") == 0

    def test_cascading_backup_failures_terminate(self):
        spec = catalog.build("3pc-central", 5)
        run = CommitRun(
            spec,
            crashes=[
                CrashAt(site=1, at=2.0),
                CrashAt(site=2, at=4.5),
                CrashAt(site=3, at=7.0),
            ],
        ).execute()
        assert run.atomic
        for site in (4, 5):
            assert run.reports[site].outcome.is_final
        # At least one round per failure.
        assert run.trace.count("term.round") >= 3

    def test_single_survivor_terminates(self):
        spec = catalog.build("3pc-central", 4)
        run = CommitRun(
            spec,
            crashes=[
                CrashAt(site=1, at=2.0),
                CrashAt(site=2, at=4.0),
                CrashAt(site=3, at=6.0),
            ],
        ).execute()
        survivor = run.reports[4]
        assert survivor.alive and survivor.outcome.is_final
        assert run.atomic

    def test_blocked_broadcast_reaches_all(self, spec_2pc_central, rule_2pc_central):
        run = CommitRun(
            spec_2pc_central,
            crashes=[CrashAt(site=1, at=2.0)],
            rule=rule_2pc_central,
        ).execute()
        assert run.blocked_sites == [2, 3]
        assert run.trace.count("term.blocked") >= 1

    def test_decentralized_peer_crash_terminates(self):
        spec = catalog.build("3pc-decentralized", 4)
        run = CommitRun(spec, crashes=[CrashAt(site=2, at=0.5)]).execute()
        assert run.atomic
        for site in (1, 3, 4):
            assert run.reports[site].outcome.is_final


class TestRecovery:
    def test_pre_vote_crash_recovers_by_unilateral_abort(
        self, spec_3pc_central, rule_3pc_central
    ):
        run = CommitRun(
            spec_3pc_central,
            crashes=[CrashAt(site=3, at=0.5, restart_at=30.0)],
            rule=rule_3pc_central,
        ).execute()
        report = run.reports[3]
        assert report.outcome is Outcome.ABORT
        assert report.via == "recovery"
        assert run.trace.count("recovery.unilateral_abort") == 1

    def test_in_doubt_crash_recovers_by_query(
        self, spec_3pc_central, rule_3pc_central
    ):
        # Crash after the yes vote: the site is in doubt and must ask.
        run = CommitRun(
            spec_3pc_central,
            crashes=[CrashAt(site=3, at=1.5, restart_at=30.0)],
            rule=rule_3pc_central,
        ).execute()
        report = run.reports[3]
        assert report.vote is Vote.YES
        assert report.outcome.is_final
        assert report.via == "recovery"
        assert run.trace.count("recovery.in_doubt") == 1
        assert run.trace.count("recovery.resolved") == 1
        assert run.atomic

    def test_post_decision_crash_recovers_from_own_log(
        self, spec_3pc_central, rule_3pc_central
    ):
        run = CommitRun(
            spec_3pc_central,
            crashes=[CrashAt(site=3, at=6.5, restart_at=30.0)],
            rule=rule_3pc_central,
        ).execute()
        report = run.reports[3]
        assert report.outcome is Outcome.COMMIT
        assert run.trace.count("recovery.known") == 1

    def test_recovered_outcome_always_matches_survivors(
        self, spec_3pc_central, rule_3pc_central
    ):
        for crash_time in (0.5, 1.5, 3.5, 4.5, 5.5, 6.5):
            run = CommitRun(
                spec_3pc_central,
                crashes=[CrashAt(site=2, at=crash_time, restart_at=40.0)],
                rule=rule_3pc_central,
            ).execute()
            outcomes = {
                r.outcome for r in run.reports.values() if r.outcome.is_final
            }
            assert len(outcomes) == 1, f"crash at {crash_time}: {run.outcomes()}"

    def test_1pc_recovered_slave_queries_instead_of_aborting(self):
        # A 1PC slave cannot unilaterally abort (it has no vote), so a
        # pre-decision crash must resolve by asking the coordinator.
        spec = catalog.build("1pc", 3)
        run = CommitRun(
            spec,
            crashes=[CrashAt(site=2, at=0.5, restart_at=20.0)],
        ).execute()
        report = run.reports[2]
        assert report.outcome is Outcome.COMMIT
        assert report.via == "recovery"
        assert run.atomic

    def test_total_failure_leaves_in_doubt_sites_undecided(self):
        # All sites crash after voting; the first to restart finds no
        # one who knows.  With nobody able to answer, it stays undecided
        # (the paper's acknowledged total-failure limitation).
        spec = catalog.build("3pc-decentralized", 2)
        run = CommitRun(
            spec,
            crashes=[
                CrashAt(site=1, at=1.5, restart_at=20.0),
                CrashAt(site=2, at=1.5),
            ],
            max_time=60.0,
        ).execute()
        assert run.reports[1].outcome is Outcome.UNDECIDED
        assert run.atomic
