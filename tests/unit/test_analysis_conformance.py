"""Unit tests for the run auditor (runtime verification)."""

import pytest

from repro.analysis.conformance import AuditFinding, audit_run
from repro.protocols import catalog
from repro.runtime.decision import TerminationRule
from repro.runtime.harness import CommitRun
from repro.runtime.policies import FixedVotes
from repro.sim.tracing import TraceEntry
from repro.types import Outcome, SiteId, Vote
from repro.workload.crashes import CrashAt, CrashDuringTransition


class TestCleanRunsAudit:
    @pytest.mark.parametrize("name", catalog.protocol_names())
    def test_happy_path_is_conformant(self, name):
        spec = catalog.build(name, 3)
        run = CommitRun(spec, termination_enabled=False).execute()
        assert audit_run(run, spec) == []

    def test_abort_path_is_conformant(self, spec_3pc_central, rule_3pc_central):
        run = CommitRun(
            spec_3pc_central,
            vote_policy=FixedVotes({SiteId(2): Vote.NO}),
            rule=rule_3pc_central,
        ).execute()
        assert audit_run(run, spec_3pc_central) == []

    def test_crash_and_termination_is_conformant(
        self, spec_3pc_central, rule_3pc_central
    ):
        run = CommitRun(
            spec_3pc_central,
            crashes=[CrashAt(site=1, at=2.0)],
            rule=rule_3pc_central,
        ).execute()
        assert audit_run(run, spec_3pc_central) == []

    def test_recovery_is_conformant(self, spec_3pc_central, rule_3pc_central):
        run = CommitRun(
            spec_3pc_central,
            crashes=[CrashAt(site=2, at=1.5, restart_at=40.0)],
            rule=rule_3pc_central,
        ).execute()
        assert audit_run(run, spec_3pc_central) == []

    def test_partial_send_crash_is_conformant(
        self, spec_2pc_central, rule_2pc_central
    ):
        run = CommitRun(
            spec_2pc_central,
            crashes=[
                CrashDuringTransition(site=1, transition_number=2, after_writes=1)
            ],
            rule=rule_2pc_central,
        ).execute()
        assert audit_run(run, spec_2pc_central) == []

    def test_campaign_audits_clean(self):
        from repro.workload.generator import WorkloadGenerator

        spec = catalog.build("3pc-central", 4)
        generator = WorkloadGenerator(spec, seed=17, p_no=0.2, p_crash=0.35)
        for result in generator.campaign(40):
            assert audit_run(result, spec) == []


class TestAuditCatchesViolations:
    def test_fabricated_mixed_outcomes_flagged(
        self, spec_3pc_central, rule_3pc_central
    ):
        run = CommitRun(spec_3pc_central, rule=rule_3pc_central).execute()
        run.reports[2].outcome = Outcome.ABORT
        findings = audit_run(run, spec_3pc_central)
        assert any(f.kind == "atomicity" for f in findings)

    def test_fabricated_illegal_transition_flagged(
        self, spec_3pc_central, rule_3pc_central
    ):
        run = CommitRun(spec_3pc_central, rule=rule_3pc_central).execute()
        run.trace.record(
            99.0,
            "engine.transition",
            "a --(ghost→2 / —)--> c",
            site=2,
            state="c",
        )
        findings = audit_run(run, spec_3pc_central)
        assert any(f.kind == "path" for f in findings)

    def test_fabricated_wrong_vote_flagged(
        self, spec_3pc_central, rule_3pc_central
    ):
        run = CommitRun(spec_3pc_central, rule=rule_3pc_central).execute()
        # Claim the slave's yes-vote transition carried a NO vote.
        run.trace.record(
            99.0,
            "engine.transition",
            "q --(xact[1→2] / yes[2→1])--> w [vote no]",
            site=2,
            state="w",
        )
        findings = audit_run(run, spec_3pc_central)
        assert any(f.kind == "vote" for f in findings)

    def test_finding_str(self):
        finding = AuditFinding(site=SiteId(2), kind="path", detail="boom")
        assert "site 2" in str(finding)
        assert "[path]" in str(finding)
        assert "global" in str(AuditFinding(None, "atomicity", "x"))
