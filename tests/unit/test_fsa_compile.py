"""Differential proof that compiled FSA tables equal the interpreted spec.

:mod:`repro.fsa.compile` claims compilation is *structural only*: an
engine running on integer-keyed tables fires the exact same transitions
in the exact same order as one interpreting the spec, so every trace,
decision, and violation is bit-identical.  This suite holds it to that:
structural checks of the tables themselves, then full-run differentials
— every catalog protocol through happy paths, crashes, mid-transition
crashes, restarts, and the entire ``tests/corpus`` explorer artifact
set — executed once compiled and once interpreted, asserting identical
transition sequences, outcomes, and schedule hashes.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.explore import Explorer, ReplayArtifact, replay
from repro.fsa.compile import (
    CompiledTransition,
    compile_automaton,
    engine_compiled,
    interpreted_engine,
    set_engine_compiled,
)
from repro.protocols import catalog
from repro.runtime.engine import Engine
from repro.runtime.harness import CommitRun
from repro.sim.tracing import TraceLog
from repro.types import SiteId
from repro.workload.crashes import CrashAt, CrashDuringTransition

CORPUS_DIR = pathlib.Path(__file__).parent.parent / "corpus"
CORPUS_FILES = sorted(CORPUS_DIR.glob("*.json"))

PROTOCOLS = (
    "1pc",
    "2pc-central",
    "2pc-decentralized",
    "3pc-central",
    "3pc-decentralized",
)

_SPECS: dict[str, object] = {}
_EXPLORERS: dict = {}


def spec_for(protocol: str):
    spec = _SPECS.get(protocol)
    if spec is None:
        spec = _SPECS[protocol] = catalog.build(protocol, 3)
    return spec


@pytest.fixture(autouse=True)
def _compiled_switch_guard():
    """Never let a failing test leak the interpreted mode to others."""
    previous = engine_compiled()
    yield
    set_engine_compiled(previous)


# ----------------------------------------------------------------------
# Table structure
# ----------------------------------------------------------------------


class TestCompiledTables:
    @pytest.mark.parametrize("protocol", PROTOCOLS)
    def test_tables_mirror_the_automaton(self, protocol):
        for automaton in spec_for(protocol).automata.values():
            compiled = compile_automaton(automaton)
            assert compiled.states == tuple(sorted(automaton.states))
            assert all(
                compiled.index[state] == i
                for i, state in enumerate(compiled.states)
            )
            assert compiled.states[compiled.initial_idx] == automaton.initial
            for state in compiled.states:
                row = compiled.out[compiled.index[state]]
                interpreted = automaton.out_transitions(state)
                assert len(row) == len(interpreted)
                for ct, it in zip(row, interpreted):
                    # The tie-break order and every effect-bearing field
                    # must be the interpreted transition's, verbatim.
                    assert ct.origin is it
                    assert (ct.source, ct.target) == (it.source, it.target)
                    assert ct.reads == it.reads
                    assert ct.writes == it.writes
                    assert ct.vote == it.vote
                    assert ct.describe() == it.describe()
                    assert compiled.states[ct.target_idx] == it.target
                    assert ct.target_final == automaton.is_final(it.target)
                    assert ct.reads_keys == frozenset(
                        compiled.msg_keys[msg] for msg in it.reads
                    )

    @pytest.mark.parametrize("protocol", PROTOCOLS)
    def test_msg_keys_are_dense_and_cover_all_reads(self, protocol):
        for automaton in spec_for(protocol).automata.values():
            compiled = compile_automaton(automaton)
            every_read = {
                msg
                for row in compiled.out
                for transition in row
                for msg in transition.reads
            }
            assert set(compiled.msg_keys) == every_read
            assert sorted(compiled.msg_keys.values()) == list(
                range(len(compiled.msg_keys))
            )

    def test_compilation_is_memoized(self):
        automaton = next(iter(spec_for("3pc-central").automata.values()))
        assert compile_automaton(automaton) is compile_automaton(automaton)

    @pytest.mark.parametrize("protocol", PROTOCOLS)
    def test_specs_compile_eagerly_at_load_time(self, protocol):
        spec = spec_for(protocol)
        assert set(spec.compiled) == set(spec.automata)
        for site, compiled in spec.compiled.items():
            assert compiled is compile_automaton(spec.automata[site])


class TestModeSwitch:
    def test_interpreted_engine_restores_on_exit_and_error(self):
        assert engine_compiled()
        with interpreted_engine():
            assert not engine_compiled()
        assert engine_compiled()
        with pytest.raises(RuntimeError):
            with interpreted_engine():
                raise RuntimeError("boom")
        assert engine_compiled()

    def test_engines_capture_the_mode_at_construction(self):
        spec = spec_for("2pc-central")
        automaton = next(iter(spec.automata.values()))

        def build():
            # Effects never fire in this test, so the callbacks are inert.
            return Engine(
                automaton,
                vote_policy=None,
                log=None,
                send=lambda msg: None,
                now=lambda: 0.0,
                on_final=lambda outcome, via: None,
                on_trace=lambda *a, **k: None,
            )

        compiled = build()
        with interpreted_engine():
            interpreted = build()
        assert compiled._compiled is not None
        assert interpreted._compiled is None


# ----------------------------------------------------------------------
# Full-run trace differential
# ----------------------------------------------------------------------


def run_fingerprint(protocol: str, **kwargs):
    """One CommitRun's complete observable behavior, as comparable data.

    The trace is serialized entry-by-entry (fixed field order, sorted
    data keys), so two runs compare equal only if every event — engine
    transitions included — happened at the same time with the same
    content.
    """
    trace = TraceLog()
    result = CommitRun(spec_for(protocol), trace=trace, **kwargs).execute()
    return {
        "outcomes": {int(s): o.value for s, o in result.outcomes().items()},
        "blocked": [int(s) for s in result.blocked_sites],
        "duration": result.duration,
        "messages": (
            result.messages_sent,
            result.messages_delivered,
            result.messages_dropped,
        ),
        "events": result.events_fired,
        "trace": [entry.to_json() for entry in trace.entries],
    }


def assert_differential(protocol: str, **kwargs):
    compiled = run_fingerprint(protocol, **kwargs)
    with interpreted_engine():
        interpreted = run_fingerprint(protocol, **kwargs)
    assert compiled["trace"] == interpreted["trace"]
    assert compiled == interpreted


class TestRunDifferential:
    @pytest.mark.parametrize("protocol", PROTOCOLS)
    @pytest.mark.parametrize("seed", [0, 7, 1234])
    def test_happy_path_traces_are_identical(self, protocol, seed):
        assert_differential(protocol, seed=seed)

    @pytest.mark.parametrize("protocol", ["2pc-central", "3pc-central"])
    def test_coordinator_crash_traces_are_identical(self, protocol):
        assert_differential(
            protocol, seed=3, crashes=[CrashAt(site=SiteId(1), at=2.0)]
        )

    @pytest.mark.parametrize("protocol", ["2pc-central", "3pc-central"])
    def test_mid_transition_crash_traces_are_identical(self, protocol):
        # Slide 21's non-atomic transition: the compiled engine must
        # interrupt the same firing after the same write prefix.
        assert_differential(
            protocol,
            seed=5,
            crashes=[
                CrashDuringTransition(
                    site=SiteId(1), transition_number=2, after_writes=1
                )
            ],
        )

    def test_crash_restart_recovery_traces_are_identical(self):
        assert_differential(
            "3pc-central",
            seed=11,
            crashes=[CrashAt(site=SiteId(1), at=2.0, restart_at=30.0)],
        )

    def test_slave_crash_traces_are_identical(self):
        assert_differential(
            "3pc-decentralized",
            seed=2,
            crashes=[CrashAt(site=SiteId(3), at=1.5)],
        )


# ----------------------------------------------------------------------
# Explorer corpus differential
# ----------------------------------------------------------------------


def _explorer_for(artifact: ReplayArtifact) -> Explorer:
    explorer = _EXPLORERS.get(artifact.config)
    if explorer is None:
        explorer = _EXPLORERS[artifact.config] = Explorer(artifact.config)
    return explorer


def outcome_fingerprint(outcome):
    return {
        "trail": outcome.trail,
        "canonical": outcome.canonical,
        "hash": outcome.hash,
        "violations": [
            (v.kind, v.detail) for v in outcome.violations
        ],
        "blocked": outcome.blocked,
        "outcomes": outcome.outcomes,
    }


@pytest.mark.parametrize(
    "path", CORPUS_FILES, ids=[path.stem for path in CORPUS_FILES]
)
def test_corpus_replays_identically_in_both_modes(path):
    # The corpus is the hardest schedule set this repo owns — every
    # minimized counterexample and witness must take the exact same
    # decision trail, hash, and verdict through the compiled tables.
    artifact = ReplayArtifact.load(str(path))
    explorer = _explorer_for(artifact)
    compiled = replay(artifact, explorer=explorer)
    with interpreted_engine():
        interpreted = replay(artifact, explorer=explorer)
    assert compiled.ok and interpreted.ok
    assert compiled.verdict == interpreted.verdict
    assert outcome_fingerprint(compiled.outcome) == outcome_fingerprint(
        interpreted.outcome
    )
