"""Unit tests for the network substrate."""

import pytest

from repro.errors import UnknownSiteError
from repro.net.latency import FixedLatency, PerLinkLatency, UniformLatency
from repro.net.network import Network
from repro.sim.simulator import Simulator


class Sink:
    """Collects delivered envelopes."""

    def __init__(self):
        self.received = []

    def deliver(self, envelope):
        self.received.append(envelope)


@pytest.fixture()
def sim():
    return Simulator(seed=1)


@pytest.fixture()
def net(sim):
    return Network(sim, latency=FixedLatency(1.0), detection_delay=1.0)


def attach(net, *sites):
    sinks = {}
    for site in sites:
        sinks[site] = Sink()
        net.attach(site, sinks[site])
    return sinks


class TestDelivery:
    def test_send_delivers_after_latency(self, sim, net):
        sinks = attach(net, 1, 2)
        net.send(1, 2, "hello")
        sim.run()
        assert len(sinks[2].received) == 1
        assert sinks[2].received[0].payload == "hello"
        assert sim.now == 1.0

    def test_envelope_metadata(self, sim, net):
        sinks = attach(net, 1, 2)
        envelope = net.send(1, 2, "x")
        assert envelope.src == 1 and envelope.dst == 2
        assert envelope.sent_at == 0.0
        assert envelope.deliver_at == 1.0
        assert envelope.latency == 1.0

    def test_message_ids_unique_and_increasing(self, net):
        attach(net, 1, 2)
        a = net.send(1, 2, "a")
        b = net.send(1, 2, "b")
        assert b.msg_id == a.msg_id + 1

    def test_broadcast_sends_to_each(self, sim, net):
        sinks = attach(net, 1, 2, 3, 4)
        net.broadcast(1, [2, 3, 4], "hi")
        sim.run()
        assert all(len(sinks[i].received) == 1 for i in (2, 3, 4))

    def test_send_to_self_goes_through_network(self, sim, net):
        sinks = attach(net, 1)
        net.send(1, 1, "self")
        sim.run()
        assert len(sinks[1].received) == 1
        assert sim.now == 1.0

    def test_unknown_destination_rejected(self, net):
        attach(net, 1)
        with pytest.raises(UnknownSiteError):
            net.send(1, 9, "x")

    def test_unknown_source_rejected(self, net):
        attach(net, 1)
        with pytest.raises(UnknownSiteError):
            net.send(9, 1, "x")

    def test_counters(self, sim, net):
        attach(net, 1, 2)
        net.send(1, 2, "a")
        net.send(2, 1, "b")
        sim.run()
        assert net.messages_sent == 2
        assert net.messages_delivered == 2
        assert net.messages_dropped == 0


class TestCrashSemantics:
    def test_message_to_down_site_dropped(self, sim, net):
        sinks = attach(net, 1, 2)
        net.send(1, 2, "x")
        net.crash(2)
        sim.run()
        assert sinks[2].received == []
        assert net.messages_dropped == 1

    def test_in_flight_to_live_site_from_dead_sender_delivered(self, sim, net):
        sinks = attach(net, 1, 2)
        net.send(1, 2, "x")
        net.crash(1)  # Sender dies after sending; network is reliable.
        sim.run()
        assert len(sinks[2].received) == 1

    def test_crash_is_idempotent(self, sim, net):
        attach(net, 1, 2)
        net.crash(2)
        net.crash(2)
        assert not net.is_up(2)

    def test_restart_resumes_delivery(self, sim, net):
        sinks = attach(net, 1, 2)
        net.crash(2)
        net.restart(2)
        net.send(1, 2, "x")
        sim.run()
        assert len(sinks[2].received) == 1

    def test_operational_sites_reflect_crashes(self, net):
        attach(net, 1, 2, 3)
        net.crash(2)
        assert net.operational_sites() == [1, 3]


class TestFailureDetection:
    def test_failure_reported_to_operational_sites(self, sim, net):
        attach(net, 1, 2, 3)
        seen = []
        net.add_failure_listener(1, lambda s: seen.append((1, s)))
        net.add_failure_listener(3, lambda s: seen.append((3, s)))
        net.crash(2)
        sim.run()
        assert sorted(seen) == [(1, 2), (3, 2)]

    def test_detection_delay_applies(self, sim):
        net = Network(sim, detection_delay=4.0)
        attach(net, 1, 2)
        times = []
        net.add_failure_listener(1, lambda s: times.append(sim.now))
        net.crash(2)
        sim.run()
        assert times == [4.0]

    def test_crashed_site_not_notified(self, sim, net):
        attach(net, 1, 2, 3)
        seen = []
        net.add_failure_listener(3, lambda s: seen.append(s))
        net.crash(3)
        net.crash(2)
        sim.run()
        assert seen == []

    def test_site_crashing_before_notification_misses_it(self, sim, net):
        attach(net, 1, 2, 3)
        seen = []
        net.add_failure_listener(3, lambda s: seen.append(s))
        net.crash(2)
        sim.schedule(0.5, lambda: net.crash(3))  # Before detection at 1.0.
        sim.run()
        assert seen == []

    def test_recovery_reported(self, sim, net):
        attach(net, 1, 2)
        seen = []
        net.add_recovery_listener(1, lambda s: seen.append(s))
        net.crash(2)
        sim.run()
        net.restart(2)
        sim.run()
        assert seen == [2]


class TestLatencyModels:
    def test_fixed_rejects_negative(self):
        with pytest.raises(ValueError):
            FixedLatency(-1.0)

    def test_uniform_bounds(self):
        model = UniformLatency(1.0, 3.0)
        sim = Simulator(seed=5)
        rng = sim.streams.stream("net.latency")
        for _ in range(100):
            assert 1.0 <= model.delay(1, 2, rng) <= 3.0

    def test_uniform_rejects_inverted_bounds(self):
        with pytest.raises(ValueError):
            UniformLatency(3.0, 1.0)

    def test_per_link_overrides_and_default(self):
        model = PerLinkLatency({(1, 2): 5.0}, default=1.0)
        rng = Simulator().streams.stream("net.latency")
        assert model.delay(1, 2, rng) == 5.0
        assert model.delay(2, 1, rng) == 1.0

    def test_per_link_rejects_negative(self):
        with pytest.raises(ValueError):
            PerLinkLatency({(1, 2): -1.0})

    def test_randomized_latency_is_deterministic_per_seed(self):
        def run(seed):
            sim = Simulator(seed=seed)
            net = Network(sim, latency=UniformLatency(0.5, 2.0))
            sinks = attach(net, 1, 2)
            for _ in range(5):
                net.send(1, 2, "x")
            sim.run()
            return [e.deliver_at for e in sinks[2].received]

        assert run(3) == run(3)
        assert run(3) != run(4)


class TestStaleDetection:
    """Failure reports whose subject came back before the report fired."""

    def test_fast_restart_suppresses_failure_report(self, sim, net):
        attach(net, 1, 2)
        seen = []
        net.add_failure_listener(1, lambda s: seen.append(s))
        net.crash(2)
        sim.schedule(0.5, lambda: net.restart(2))  # Inside the 1.0 window.
        sim.run()
        assert seen == []
        assert sim.trace.count("net.stale_detect") == 1

    def test_restart_after_window_still_reports(self, sim, net):
        attach(net, 1, 2)
        failures, recoveries = [], []
        net.add_failure_listener(1, lambda s: failures.append(s))
        net.add_recovery_listener(1, lambda s: recoveries.append(s))
        net.crash(2)
        sim.schedule(1.5, lambda: net.restart(2))  # After the 1.0 window.
        sim.run()
        assert failures == [2]
        assert recoveries == [2]
        assert sim.trace.count("net.stale_detect") == 0

    def test_partition_healed_before_suspicion_is_suppressed(self, sim, net):
        attach(net, 1, 2)
        seen = []
        net.add_failure_listener(1, lambda s: seen.append(s))
        net.partition([{1}, {2}])
        sim.schedule(0.5, lambda: net.heal())  # Inside the 1.0 window.
        sim.run()
        assert seen == []
        assert sim.trace.count("net.stale_detect") == 1

    def test_partition_does_not_double_report_crashed_site(self, sim, net):
        attach(net, 1, 2, 3)
        seen = []
        net.add_failure_listener(1, lambda s: seen.append(s))
        net.crash(3)
        net.partition([{1, 2}, {3}])
        sim.run()
        # Exactly one report for site 3: the crash's own notification.
        # The partition suspicion sweep must not repeat it.
        assert seen.count(3) == 1


class TestPartitionHealRecovery:
    """heal() mirrors the suspicion sweep with a recovery sweep."""

    def test_heal_notifies_recovery_across_sides(self, sim, net):
        attach(net, 1, 2)
        failures, recoveries = [], []
        net.add_failure_listener(1, lambda s: failures.append(s))
        net.add_recovery_listener(1, lambda s: recoveries.append(s))
        net.partition([{1}, {2}])
        sim.run()  # Suspicion sweep: 1 suspects 2.
        assert failures == [2]
        net.heal()
        sim.run()
        assert recoveries == [2]
        assert sim.trace.count("net.heal") == 1

    def test_heal_skips_really_dead_sites(self, sim, net):
        attach(net, 1, 2, 3)
        recoveries = []
        net.add_recovery_listener(1, lambda s: recoveries.append(s))
        net.partition([{1}, {2, 3}])
        net.crash(3)
        sim.run()
        net.heal()
        sim.run()
        assert recoveries == [2]  # 3 stays suspected until it restarts.

    def test_heal_without_partition_is_noop(self, sim, net):
        attach(net, 1, 2)
        net.heal()
        assert sim.pending_events == 0
        assert sim.trace.count("net.heal") == 0

    def test_repartition_before_recovery_sweep_suppresses_split_pairs(
        self, sim, net
    ):
        attach(net, 1, 2)
        recoveries = []
        net.add_recovery_listener(1, lambda s: recoveries.append(s))
        net.partition([{1}, {2}])
        sim.run()
        net.heal()
        # Split again before the recovery sweep fires at +1.0.
        sim.schedule(0.5, lambda: net.partition([{1}, {2}]))
        sim.run()
        assert recoveries == []
