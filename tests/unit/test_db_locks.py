"""Unit tests for the lock manager and deadlock detection."""

import pytest

from repro.db.locks import LockManager, LockMode
from repro.errors import DeadlockError, LockError
from repro.types import TransactionId

T1, T2, T3 = TransactionId(1), TransactionId(2), TransactionId(3)


@pytest.fixture()
def locks():
    return LockManager()


class TestGranting:
    def test_exclusive_grant(self, locks):
        assert locks.acquire(T1, "k", LockMode.EXCLUSIVE)
        assert locks.holders("k") == {T1: LockMode.EXCLUSIVE}

    def test_shared_locks_coexist(self, locks):
        assert locks.acquire(T1, "k", LockMode.SHARED)
        assert locks.acquire(T2, "k", LockMode.SHARED)
        assert set(locks.holders("k")) == {T1, T2}

    def test_exclusive_blocks_shared(self, locks):
        locks.acquire(T1, "k", LockMode.EXCLUSIVE)
        assert not locks.acquire(T2, "k", LockMode.SHARED)
        assert locks.waiters("k") == [T2]

    def test_shared_blocks_exclusive(self, locks):
        locks.acquire(T1, "k", LockMode.SHARED)
        assert not locks.acquire(T2, "k", LockMode.EXCLUSIVE)

    def test_reentrant_same_mode(self, locks):
        locks.acquire(T1, "k", LockMode.EXCLUSIVE)
        assert locks.acquire(T1, "k", LockMode.EXCLUSIVE)

    def test_shared_rerequest_while_exclusive_held(self, locks):
        locks.acquire(T1, "k", LockMode.EXCLUSIVE)
        assert locks.acquire(T1, "k", LockMode.SHARED)  # Already stronger.

    def test_upgrade_when_sole_holder(self, locks):
        locks.acquire(T1, "k", LockMode.SHARED)
        assert locks.acquire(T1, "k", LockMode.EXCLUSIVE)
        assert locks.holders("k")[T1] is LockMode.EXCLUSIVE

    def test_upgrade_blocked_by_other_sharer(self, locks):
        locks.acquire(T1, "k", LockMode.SHARED)
        locks.acquire(T2, "k", LockMode.SHARED)
        assert not locks.acquire(T1, "k", LockMode.EXCLUSIVE)

    def test_fifo_fairness_no_overtaking(self, locks):
        locks.acquire(T1, "k", LockMode.EXCLUSIVE)
        locks.acquire(T2, "k", LockMode.EXCLUSIVE)  # Queued.
        # T3's shared request must not jump over T2.
        assert not locks.acquire(T3, "k", LockMode.SHARED)
        assert locks.waiters("k") == [T2, T3]


class TestRelease:
    def test_release_wakes_next_waiter(self, locks):
        locks.acquire(T1, "k", LockMode.EXCLUSIVE)
        locks.acquire(T2, "k", LockMode.EXCLUSIVE)
        woken = locks.release_all(T1)
        assert woken == [T2]
        assert locks.holders("k") == {T2: LockMode.EXCLUSIVE}

    def test_release_wakes_multiple_sharers(self, locks):
        locks.acquire(T1, "k", LockMode.EXCLUSIVE)
        locks.acquire(T2, "k", LockMode.SHARED)
        locks.acquire(T3, "k", LockMode.SHARED)
        woken = locks.release_all(T1)
        assert woken == [T2, T3]
        assert set(locks.holders("k")) == {T2, T3}

    def test_release_drops_queued_requests_too(self, locks):
        locks.acquire(T1, "k", LockMode.EXCLUSIVE)
        locks.acquire(T2, "k", LockMode.EXCLUSIVE)
        locks.release_all(T2)
        assert locks.waiters("k") == []

    def test_release_all_spans_keys(self, locks):
        locks.acquire(T1, "a", LockMode.EXCLUSIVE)
        locks.acquire(T1, "b", LockMode.SHARED)
        locks.release_all(T1)
        assert locks.locks_held(T1) == {}

    def test_unlock_single_key(self, locks):
        locks.acquire(T1, "k", LockMode.EXCLUSIVE)
        locks.unlock(T1, "k")
        assert locks.holders("k") == {}

    def test_unlock_not_held_raises(self, locks):
        with pytest.raises(LockError):
            locks.unlock(T1, "k")


class TestDeadlockDetection:
    def test_two_txn_cycle_detected(self, locks):
        locks.acquire(T1, "a", LockMode.EXCLUSIVE)
        locks.acquire(T2, "b", LockMode.EXCLUSIVE)
        assert not locks.acquire(T1, "b", LockMode.EXCLUSIVE)  # T1 waits T2.
        with pytest.raises(DeadlockError):
            locks.acquire(T2, "a", LockMode.EXCLUSIVE)

    def test_three_txn_cycle_detected(self, locks):
        locks.acquire(T1, "a", LockMode.EXCLUSIVE)
        locks.acquire(T2, "b", LockMode.EXCLUSIVE)
        locks.acquire(T3, "c", LockMode.EXCLUSIVE)
        assert not locks.acquire(T1, "b", LockMode.EXCLUSIVE)
        assert not locks.acquire(T2, "c", LockMode.EXCLUSIVE)
        with pytest.raises(DeadlockError):
            locks.acquire(T3, "a", LockMode.EXCLUSIVE)

    def test_victim_not_enqueued(self, locks):
        locks.acquire(T1, "a", LockMode.EXCLUSIVE)
        locks.acquire(T2, "b", LockMode.EXCLUSIVE)
        locks.acquire(T1, "b", LockMode.EXCLUSIVE)
        with pytest.raises(DeadlockError):
            locks.acquire(T2, "a", LockMode.EXCLUSIVE)
        assert T2 not in locks.waiters("a")

    def test_chain_without_cycle_allowed(self, locks):
        locks.acquire(T1, "a", LockMode.EXCLUSIVE)
        locks.acquire(T2, "b", LockMode.EXCLUSIVE)
        assert not locks.acquire(T2, "a", LockMode.EXCLUSIVE)  # T2 -> T1.
        assert not locks.acquire(T3, "b", LockMode.EXCLUSIVE)  # T3 -> T2.
        # No cycle: T1 holds everything it wants.

    def test_waits_for_graph(self, locks):
        locks.acquire(T1, "a", LockMode.EXCLUSIVE)
        locks.acquire(T2, "a", LockMode.EXCLUSIVE)
        graph = locks.waits_for()
        assert graph == {T2: {T1}}

    def test_shared_waiters_do_not_block_each_other(self, locks):
        locks.acquire(T1, "k", LockMode.EXCLUSIVE)
        locks.acquire(T2, "k", LockMode.SHARED)
        locks.acquire(T3, "k", LockMode.SHARED)
        graph = locks.waits_for()
        assert graph[T2] == {T1}
        assert graph[T3] == {T1}
