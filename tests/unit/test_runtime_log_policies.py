"""Unit tests for the DT log and vote policies."""

import pytest

from repro.errors import WALError
from repro.runtime.log import DTLog
from repro.runtime.policies import BernoulliVotes, FixedVotes, UnanimousYes
from repro.types import Outcome, SiteId, Vote


class TestDTLog:
    def test_empty_log(self):
        log = DTLog()
        assert log.vote() is None
        assert log.decision() is None
        assert log.outcome() is Outcome.UNDECIDED
        assert len(log) == 0

    def test_vote_round_trip(self):
        log = DTLog()
        log.write_vote(Vote.YES, at=1.5)
        record = log.vote()
        assert record.vote is Vote.YES
        assert record.at == 1.5

    def test_double_vote_rejected(self):
        log = DTLog()
        log.write_vote(Vote.YES, at=1.0)
        with pytest.raises(WALError, match="already logged"):
            log.write_vote(Vote.NO, at=2.0)

    def test_decision_round_trip(self):
        log = DTLog()
        log.write_decision(Outcome.COMMIT, at=3.0, via="protocol")
        record = log.decision()
        assert record.outcome is Outcome.COMMIT
        assert record.via == "protocol"
        assert log.outcome() is Outcome.COMMIT

    def test_non_final_decision_rejected(self):
        with pytest.raises(WALError, match="non-final"):
            DTLog().write_decision(Outcome.UNDECIDED, at=1.0, via="x")

    def test_same_decision_relog_is_noop(self):
        log = DTLog()
        log.write_decision(Outcome.ABORT, at=1.0, via="protocol")
        log.write_decision(Outcome.ABORT, at=2.0, via="recovery")
        assert log.decision().at == 1.0  # First write wins.
        assert len(log) == 1

    def test_conflicting_decision_rejected(self):
        log = DTLog()
        log.write_decision(Outcome.COMMIT, at=1.0, via="protocol")
        with pytest.raises(WALError, match="conflicting"):
            log.write_decision(Outcome.ABORT, at=2.0, via="termination")

    def test_vote_after_decision_rejected(self):
        log = DTLog()
        log.write_decision(Outcome.ABORT, at=1.0, via="protocol")
        with pytest.raises(WALError, match="after a decision"):
            log.write_vote(Vote.YES, at=2.0)

    def test_records_preserve_order(self):
        log = DTLog()
        log.write_vote(Vote.YES, at=1.0)
        log.write_decision(Outcome.COMMIT, at=2.0, via="protocol")
        assert [type(r).__name__ for r in log.records] == [
            "VoteRecord",
            "DecisionRecord",
        ]


class TestPolicies:
    def test_unanimous_yes(self):
        policy = UnanimousYes()
        assert all(policy.vote(SiteId(i)) is Vote.YES for i in range(1, 6))

    def test_fixed_votes_with_default(self):
        policy = FixedVotes({SiteId(2): Vote.NO})
        assert policy.vote(SiteId(2)) is Vote.NO
        assert policy.vote(SiteId(1)) is Vote.YES

    def test_fixed_votes_custom_default(self):
        policy = FixedVotes({}, default=Vote.NO)
        assert policy.vote(SiteId(7)) is Vote.NO

    def test_bernoulli_bounds_checked(self):
        with pytest.raises(ValueError):
            BernoulliVotes(1.5)

    def test_bernoulli_extremes(self):
        always_no = BernoulliVotes(1.0, seed=1)
        never_no = BernoulliVotes(0.0, seed=1)
        for i in range(1, 10):
            assert always_no.vote(SiteId(i)) is Vote.NO
            assert never_no.vote(SiteId(i)) is Vote.YES

    def test_bernoulli_memoizes_per_site(self):
        policy = BernoulliVotes(0.5, seed=3)
        first = [policy.vote(SiteId(i)) for i in range(1, 20)]
        second = [policy.vote(SiteId(i)) for i in range(1, 20)]
        assert first == second

    def test_bernoulli_reproducible_by_seed(self):
        a = [BernoulliVotes(0.5, seed=9).vote(SiteId(i)) for i in range(1, 20)]
        b = [BernoulliVotes(0.5, seed=9).vote(SiteId(i)) for i in range(1, 20)]
        assert a == b
