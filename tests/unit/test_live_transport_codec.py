"""Per-connection codec negotiation on real loopback transports.

The hello handshake is always JSON; its ``codec`` field tells the
receiver how to decode everything after it on that connection.  Each
direction is its own TCP connection, so a binary-speaking site and a
JSON-speaking site interoperate: each sender picks its own codec, each
receiver honours the announced one.  A hello announcing a codec the
receiver does not implement is traced and the connection closed —
never guessed at.
"""

from __future__ import annotations

import asyncio
import socket
import time

import pytest

from repro.errors import TransportError
from repro.live.clock import TimeoutClock
from repro.live.transport import Transport
from repro.live.wire import encode_frame, read_frame
from repro.types import SiteId

S1, S2 = SiteId(1), SiteId(2)


def free_ports(count: int) -> list[int]:
    sockets = []
    try:
        for _ in range(count):
            sock = socket.socket()
            sock.bind(("127.0.0.1", 0))
            sockets.append(sock)
        return [sock.getsockname()[1] for sock in sockets]
    finally:
        for sock in sockets:
            sock.close()


class Harness:
    """One in-process transport endpoint with recording callbacks."""

    def __init__(
        self,
        site: SiteId,
        port: int,
        peers: dict[SiteId, tuple[str, int]],
        codec: str = "json",
        suspect_after: float = 10.0,
    ) -> None:
        self.frames: list[tuple[SiteId, dict]] = []
        self.traces: list[str] = []
        self.suspects: list[SiteId] = []

        async def on_frame(peer, frame):
            self.frames.append((peer, frame))

        async def on_client(first, reader, writer):
            writer.close()

        self.transport = Transport(
            site=site,
            host="127.0.0.1",
            port=port,
            peers=peers,
            clock=TimeoutClock(),
            on_frame=on_frame,
            on_client=on_client,
            on_suspect=self.suspects.append,
            on_recover=lambda peer: None,
            hb_interval=0.05,
            suspect_after=suspect_after,
            trace=lambda category, detail="", **data: self.traces.append(
                category
            ),
            codec=codec,
        )


async def wait_for(predicate, timeout: float = 5.0, what: str = "condition"):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        await asyncio.sleep(0.005)
    raise AssertionError(f"timed out waiting for {what}")


def payload(txn: int) -> dict:
    return {"t": "payload", "txn": txn, "d": {"p": "proto", "kind": "prepare"}}


class TestCodecValidation:
    def test_unknown_codec_rejected_at_construction(self):
        with pytest.raises(TransportError, match="codec"):
            Harness(S1, 1, {}, codec="msgpack")

    @pytest.mark.parametrize("codec", ["json", "bin"])
    def test_known_codecs_accepted(self, codec):
        harness = Harness(S1, 1, {}, codec=codec)
        assert harness.transport.codec == codec


class TestMixedCodecCluster:
    def test_bin_and_json_sites_interoperate(self):
        # S1 speaks binary, S2 speaks JSON.  Each direction negotiates
        # independently via its hello; both deliver identical dicts.
        async def go():
            p1, p2 = free_ports(2)
            peers1 = {S2: ("127.0.0.1", p2)}
            peers2 = {S1: ("127.0.0.1", p1)}
            a = Harness(S1, p1, peers1, codec="bin")
            b = Harness(S2, p2, peers2, codec="json")
            await a.transport.start()
            await b.transport.start()
            try:
                sent = [payload(i) for i in range(4)]
                for frame in sent:
                    a.transport.send(S2, dict(frame))
                    b.transport.send(S1, dict(frame))
                await wait_for(
                    lambda: len(a.frames) >= 4 and len(b.frames) >= 4,
                    what="both directions delivering",
                )
                assert [f for _, f in b.frames[:4]] == sent
                assert [f for _, f in a.frames[:4]] == sent
                assert all(peer == S1 for peer, _ in b.frames)
                assert all(peer == S2 for peer, _ in a.frames)
            finally:
                await a.transport.stop()
                await b.transport.stop()

        asyncio.run(go())

    def test_bin_cluster_heartbeats_keep_liveness(self):
        # Heartbeats ride the negotiated codec too — with a suspicion
        # window a few hb intervals wide, a healthy bin/bin pair must
        # never suspect each other.
        async def go():
            p1, p2 = free_ports(2)
            a = Harness(
                S1, p1, {S2: ("127.0.0.1", p2)}, codec="bin",
                suspect_after=0.4,
            )
            b = Harness(
                S2, p2, {S1: ("127.0.0.1", p1)}, codec="bin",
                suspect_after=0.4,
            )
            await a.transport.start()
            await b.transport.start()
            try:
                await asyncio.sleep(1.2)
                assert a.suspects == []
                assert b.suspects == []
            finally:
                await a.transport.stop()
                await b.transport.stop()

        asyncio.run(go())


class TestBadCodecHello:
    def test_unknown_codec_hello_is_traced_and_closed(self):
        async def go():
            (port,) = free_ports(1)
            h = Harness(S1, port, {}, codec="json")
            await h.transport.start()
            try:
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", port
                )
                writer.write(
                    encode_frame(
                        {"t": "hello", "site": 2, "boot": 1, "codec": "gzip"}
                    )
                )
                await writer.drain()
                # The server must close without decoding anything more.
                assert await read_frame(reader) is None
                writer.close()
                await wait_for(
                    lambda: "live.bad_codec" in h.traces,
                    what="bad-codec trace",
                )
                assert h.frames == []
            finally:
                await h.transport.stop()

        asyncio.run(go())
