"""Unit tests for workload serialization."""

import pytest

from repro.errors import ReproError
from repro.protocols import catalog
from repro.types import SiteId, Vote
from repro.workload.crashes import (
    CrashAfterPayloads,
    CrashAt,
    CrashDuringTransition,
)
from repro.workload.generator import TransactionSpec, WorkloadGenerator
from repro.workload.serialize import (
    campaign_from_json,
    campaign_to_json,
    crash_from_dict,
    crash_to_dict,
)


class TestCrashRoundTrip:
    @pytest.mark.parametrize(
        "event",
        [
            CrashAt(site=SiteId(1), at=2.5),
            CrashAt(site=SiteId(2), at=1.0, restart_at=50.0),
            CrashDuringTransition(
                site=SiteId(3), transition_number=2, after_writes=1
            ),
            CrashDuringTransition(
                site=SiteId(1),
                transition_number=1,
                after_writes=0,
                restart_at=33.0,
            ),
            CrashAfterPayloads(site=SiteId(2), payload_number=3),
        ],
    )
    def test_round_trip(self, event):
        assert crash_from_dict(crash_to_dict(event)) == event

    def test_unknown_type_rejected(self):
        with pytest.raises(ReproError, match="unknown crash event"):
            crash_from_dict({"type": "meteor", "site": 1})


class TestCampaignRoundTrip:
    def test_generated_campaign_round_trips(self):
        spec = catalog.build("3pc-central", 3)
        generator = WorkloadGenerator(spec, seed=9, p_no=0.2, p_crash=0.5)
        original = list(generator.transactions(15))
        decoded = campaign_from_json(campaign_to_json(original))
        assert decoded == original

    def test_empty_campaign(self):
        assert campaign_from_json(campaign_to_json([])) == []

    def test_votes_preserved(self):
        txn = TransactionSpec(
            txn_id=7,
            seed=123,
            votes={SiteId(1): Vote.YES, SiteId(2): Vote.NO},
            crashes=(),
        )
        decoded = campaign_from_json(campaign_to_json([txn]))[0]
        assert decoded.votes == txn.votes

    def test_version_mismatch_rejected(self):
        with pytest.raises(ReproError, match="format version"):
            campaign_from_json('{"format_version": 99, "transactions": []}')

    def test_malformed_json_rejected(self):
        with pytest.raises(ReproError, match="malformed"):
            campaign_from_json("not json at all {")

    def test_replay_reproduces_results(self):
        # The real point: a serialized campaign replays identically.
        spec = catalog.build("3pc-central", 3)
        generator = WorkloadGenerator(spec, seed=4, p_no=0.2, p_crash=0.4)
        original = list(generator.transactions(5))
        replayed = campaign_from_json(campaign_to_json(original))
        for txn_a, txn_b in zip(original, replayed):
            result_a = generator.run(txn_a)
            result_b = generator.run(txn_b)
            assert result_a.outcomes() == result_b.outcomes()
            assert result_a.duration == result_b.duration
