"""Unit tests for execution-path enumeration."""

import pytest

from repro.analysis.paths import (
    enumerate_executions,
    execution_statistics,
)
from repro.analysis.reachability import build_state_graph
from repro.errors import AnalysisError
from repro.protocols import catalog
from repro.types import Outcome


class TestEnumeration:
    def test_paths_start_at_initial(self, graph_2pc_canonical):
        for path in enumerate_executions(graph_2pc_canonical):
            assert path.states[0] == graph_2pc_canonical.initial

    def test_paths_end_terminal(self, graph_2pc_canonical):
        for path in enumerate_executions(graph_2pc_canonical):
            assert graph_2pc_canonical.is_terminal(path.states[-1])

    def test_path_steps_are_edges(self, graph_2pc_canonical):
        for path in enumerate_executions(graph_2pc_canonical):
            for before, after in zip(path.states, path.states[1:]):
                targets = {
                    e.target for e in graph_2pc_canonical.successors(before)
                }
                assert after in targets

    def test_length_matches_states(self, graph_2pc_canonical):
        for path in enumerate_executions(graph_2pc_canonical):
            assert path.length == len(path.states) - 1

    def test_limit_enforced(self, graph_2pc_canonical):
        with pytest.raises(AnalysisError, match="raise the limit"):
            list(enumerate_executions(graph_2pc_canonical, limit=1))

    def test_deterministic(self, graph_2pc_canonical):
        a = [p.fired for p in enumerate_executions(graph_2pc_canonical)]
        b = [p.fired for p in enumerate_executions(graph_2pc_canonical)]
        assert a == b


class TestLivenessAndSafety:
    @pytest.mark.parametrize("name", catalog.protocol_names())
    def test_every_execution_terminates_unanimously(self, name):
        # The liveness half of the correctness story: no failure-free
        # interleaving can wedge or split.
        graph = build_state_graph(catalog.build(name, 2))
        stats = execution_statistics(graph)
        assert stats.all_terminate_finally
        assert stats.paths == stats.commit_paths + stats.abort_paths

    def test_both_outcomes_reachable(self, graph_2pc_canonical):
        stats = execution_statistics(graph_2pc_canonical)
        assert stats.commit_paths > 0
        assert stats.abort_paths > 0

    def test_single_commit_course_in_canonical_2pc(self, graph_2pc_canonical):
        # Unanimous yes is the only way to commit; each commit path is
        # one interleaving of the same vote course.
        for path in enumerate_executions(graph_2pc_canonical):
            if path.outcome(graph_2pc_canonical) is Outcome.COMMIT:
                votes = [step for step in path.fired if step[1] == "q->w"]
                assert len(votes) == 2  # Both sites voted yes.

    def test_3pc_paths_longer_than_2pc(
        self, graph_2pc_canonical, graph_3pc_canonical
    ):
        two = execution_statistics(graph_2pc_canonical)
        three = execution_statistics(graph_3pc_canonical)
        assert three.lengths.maximum > two.lengths.maximum

    def test_commit_path_length_equals_total_transitions(
        self, graph_3pc_canonical
    ):
        # A unanimous 3PC commit fires 3 transitions per site.
        commit_lengths = {
            path.length
            for path in enumerate_executions(graph_3pc_canonical)
            if path.outcome(graph_3pc_canonical) is Outcome.COMMIT
        }
        assert commit_lengths == {6}

    def test_statistics_across_three_sites(self):
        graph = build_state_graph(catalog.build("2pc-central", 3))
        stats = execution_statistics(graph)
        assert stats.all_terminate_finally
        assert stats.paths > 10  # Interleaving explosion is real.
