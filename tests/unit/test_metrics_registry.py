"""Unit tests for the labelled metrics registry (repro.metrics.registry)."""

import json
import math

import pytest

from repro.metrics.registry import (
    Histogram,
    MetricsRegistry,
    json_sidecar,
    observe_run,
    observe_trace,
)
from repro.protocols import catalog
from repro.runtime.harness import CommitRun
from repro.workload.crashes import CrashAt


class TestHistogram:
    def test_bucketing_places_values_on_boundaries(self):
        hist = Histogram(buckets=(1.0, 2.0, 5.0))
        for value in (0.5, 1.0, 1.5, 2.0, 4.0, 100.0):
            hist.observe(value)
        # Cumulative counts: <=1: 2, <=2: 4, <=5: 5, +Inf: 6.
        assert hist.to_dict()["buckets"] == {"1": 2, "2": 4, "5": 5, "+Inf": 6}
        assert hist.count == 6
        assert hist.sum == pytest.approx(109.0)

    def test_boundary_value_falls_in_its_bucket(self):
        # A value equal to a bound belongs to that bucket (le semantics).
        hist = Histogram(buckets=(1.0, 2.0))
        hist.observe(1.0)
        bounds = dict(hist.bucket_counts())
        assert bounds[1.0] == 1
        assert bounds[2.0] == 0

    def test_quantile_returns_bucket_upper_bound(self):
        hist = Histogram(buckets=(1.0, 2.0, 5.0))
        for value in (0.1, 0.2, 0.3, 4.0):
            hist.observe(value)
        assert hist.quantile(50) == 1.0
        assert hist.quantile(100) == 5.0

    def test_quantile_overflow_is_inf(self):
        hist = Histogram(buckets=(1.0,))
        hist.observe(99.0)
        assert math.isinf(hist.quantile(50))

    def test_quantile_empty_and_bounds(self):
        hist = Histogram(buckets=(1.0,))
        assert hist.quantile(50) == 0.0
        with pytest.raises(ValueError):
            hist.quantile(101)

    def test_mean(self):
        hist = Histogram(buckets=(10.0,))
        hist.observe(2.0)
        hist.observe(4.0)
        assert hist.mean == 3.0

    def test_merge_requires_identical_buckets(self):
        a = Histogram(buckets=(1.0, 2.0))
        b = Histogram(buckets=(1.0, 3.0))
        with pytest.raises(ValueError):
            a.merge(b)

    def test_merge_adds_counts(self):
        a = Histogram(buckets=(1.0, 2.0))
        b = Histogram(buckets=(1.0, 2.0))
        a.observe(0.5)
        b.observe(1.5)
        b.observe(9.0)
        a.merge(b)
        assert a.count == 3
        assert a.to_dict()["buckets"] == {"1": 1, "2": 2, "+Inf": 3}

    def test_empty_bounds_rejected(self):
        with pytest.raises(ValueError):
            Histogram(buckets=())


class TestMetricsRegistry:
    def test_counters_with_labels_are_distinct_series(self):
        registry = MetricsRegistry()
        registry.inc("runs_total", protocol="2pc")
        registry.inc("runs_total", 2, protocol="3pc")
        assert registry.counter("runs_total", protocol="2pc") == 1
        assert registry.counter("runs_total", protocol="3pc") == 2
        assert registry.counter("runs_total") == 0

    def test_label_order_is_irrelevant(self):
        registry = MetricsRegistry()
        registry.inc("x", a="1", b="2")
        assert registry.counter("x", b="2", a="1") == 1

    def test_histogram_series(self):
        registry = MetricsRegistry()
        registry.observe("latency", 1.0, phase="w")
        registry.observe("latency", 2.0, phase="w")
        registry.observe("latency", 9.0, phase="p")
        assert registry.histogram("latency", phase="w").count == 2
        assert registry.histogram("latency", phase="p").count == 1
        assert registry.histogram("latency", phase="zzz") is None

    def test_ratio(self):
        registry = MetricsRegistry()
        registry.inc("runs_total", 4, protocol="2pc")
        registry.inc("runs_blocked", 1, protocol="2pc")
        assert registry.ratio("runs_blocked", "runs_total", protocol="2pc") == 0.25
        assert registry.ratio("runs_blocked", "runs_total", protocol="none") == 0.0

    def test_merge_folds_counters_and_histograms(self):
        a = MetricsRegistry()
        b = MetricsRegistry()
        a.inc("n", 1)
        b.inc("n", 2)
        b.inc("only_b")
        a.observe("h", 1.0)
        b.observe("h", 2.0)
        a.merge(b)
        assert a.counter("n") == 3
        assert a.counter("only_b") == 1
        assert a.histogram("h").count == 2

    def test_gauges_set_and_snapshot(self):
        registry = MetricsRegistry()
        assert registry.gauge("inflight_txns") == 0.0
        registry.set_gauge("inflight_txns", 7)
        registry.set_gauge("inflight_txns", 3)  # gauges overwrite
        assert registry.gauge("inflight_txns") == 3.0
        snapshot = registry.to_dict()
        assert snapshot["gauges"] == {"inflight_txns": 3.0}

    def test_gauge_free_snapshot_has_no_gauges_key(self):
        registry = MetricsRegistry()
        registry.inc("n")
        assert "gauges" not in registry.to_dict()

    def test_batched_records_histogram_shape(self):
        """The group-commit batch-size histogram the live site records."""
        registry = MetricsRegistry()
        for batch in (1, 4, 4, 16):
            registry.observe("batched_records_per_fsync", batch)
        histogram = registry.histogram("batched_records_per_fsync")
        assert histogram.count == 4
        assert histogram.sum == 25.0

    def test_to_dict_keys_sorted_and_rendered(self):
        registry = MetricsRegistry()
        registry.inc("zeta")
        registry.inc("alpha", protocol="3pc", phase="w")
        snapshot = registry.to_dict()
        keys = list(snapshot["counters"])
        assert keys == sorted(keys)
        assert "alpha{phase=w,protocol=3pc}" in keys

    def test_to_json_is_deterministic(self):
        def build():
            registry = MetricsRegistry()
            registry.inc("b")
            registry.inc("a")
            registry.observe("h", 1.5, phase="w")
            return registry.to_json()

        assert build() == build()
        json.loads(build())  # Valid JSON.


class TestRollups:
    @pytest.fixture(scope="class")
    def crash_run(self):
        spec = catalog.build("3pc-central", 4)
        return CommitRun(spec, crashes=[CrashAt(site=1, at=2.0)]).execute()

    def test_observe_trace_message_counters(self, crash_run):
        registry = MetricsRegistry()
        observe_trace(registry, crash_run.trace)
        assert registry.counter("messages_sent_total") == crash_run.messages_sent
        assert (
            registry.counter("messages_delivered_total")
            == crash_run.messages_delivered
        )
        assert (
            registry.counter("messages_dropped_total")
            == crash_run.messages_dropped
        )

    def test_observe_trace_phase_latency(self, crash_run):
        registry = MetricsRegistry()
        observe_trace(registry, crash_run.trace)
        termination = registry.histogram("phase_latency", phase="termination")
        assert termination is not None and termination.count > 0

    def test_observe_trace_decisions(self, crash_run):
        registry = MetricsRegistry()
        observe_trace(registry, crash_run.trace)
        decided = registry.counter(
            "decisions_total", outcome="abort", via="termination"
        )
        assert decided == 3  # Sites 2, 3, 4 abort via termination.
        assert registry.histogram("decision_latency").count == 3

    def test_observe_run_adds_run_level_counters(self, crash_run):
        registry = MetricsRegistry()
        observe_run(registry, crash_run)
        protocol = crash_run.protocol
        assert registry.counter("runs_total", protocol=protocol) == 1
        assert (
            registry.counter(
                "run_outcomes_total", outcome="abort", protocol=protocol
            )
            == 1
        )
        assert registry.counter("runs_violation", protocol=protocol) == 0

    def test_blocking_rate_rollup_across_runs(self):
        spec = catalog.build("2pc-central", 3)
        registry = MetricsRegistry()
        for seed in range(3):
            run = CommitRun(
                spec, seed=seed, crashes=[CrashAt(site=1, at=2.0)]
            ).execute()
            observe_run(registry, run)
        rate = registry.ratio(
            "runs_blocked", "runs_total", protocol=spec.name
        )
        assert rate == 1.0  # 2PC blocks on a badly timed coordinator crash.


class TestJsonSidecar:
    def test_sidecar_is_valid_sorted_json(self):
        from repro.experiments import run_experiment

        result = run_experiment("T2")
        document = json.loads(json_sidecar(result))
        assert document["experiment_id"] == "T2"
        assert "data" in document and "title" in document
        # Deterministic: same result renders byte-identically.
        assert json_sidecar(result) == json_sidecar(result)
