"""Adversarial byte-stream tests for both wire codecs.

A codec's job under fire is to fail *cleanly*: torn tails stay
buffered, malformed bytes raise :class:`~repro.errors.FrameError`
(never a hang, never a silently wrong frame), and a frame cut by a
dropped connection is redelivered intact by the sender's outbox — the
mid-frame reconnect contract the transport's peek-then-pop drain
provides.  This suite drives the JSON and binary decoders with torn,
truncated, duplicated, oversized, interleaved, and random hostile
inputs, plus the zero-length-frame reject.
"""

import asyncio
import random
import struct

import pytest

from repro.errors import FrameError
from repro.live.wire import (
    MAX_FRAME,
    FrameDecoder,
    decode_frame_bytes,
    encode_frame,
    encode_payload,
    read_frame,
)
from repro.live.wire_bin import (
    BinFrameDecoder,
    decode_frame_bin_bytes,
    encode_frame_bin,
    frame_decoder_for,
)
from repro.runtime.messages import ProtoMsg, TermMoveTo, TermStateReply
from repro.types import Outcome, SiteId

PAYLOAD_FRAME = {
    "t": "payload",
    "txn": 42,
    "d": encode_payload(ProtoMsg("prepare")),
    "sid": 1_002_000_007,
    "pid": 3_001_000_001,
}
MOVE_FRAME = {
    "t": "payload",
    "txn": 9,
    "d": encode_payload(TermMoveTo(SiteId(2), "w", 1)),
}
REPLY_FRAME = {
    "t": "payload",
    "txn": 9,
    "d": encode_payload(TermStateReply("p", Outcome.UNDECIDED, 1)),
}
HB_FRAME = {"t": "hb", "site": 3}
FRAMES = [PAYLOAD_FRAME, MOVE_FRAME, REPLY_FRAME, HB_FRAME]


def read_one(data: bytes):
    """Drive the async single-frame reader over a canned byte string."""

    async def go():
        reader = asyncio.StreamReader()
        reader.feed_data(data)
        reader.feed_eof()
        return await read_frame(reader)

    return asyncio.run(go())


def bin_body(frame) -> bytearray:
    """The body bytes of one binary frame (length prefix stripped)."""
    return bytearray(encode_frame_bin(frame)[4:])


def reframe(body: bytes) -> bytes:
    """Wrap raw body bytes in a length prefix."""
    return struct.pack(">I", len(body)) + bytes(body)


# ----------------------------------------------------------------------
# Torn and truncated frames
# ----------------------------------------------------------------------


class TestTornFrames:
    @pytest.mark.parametrize("frame", FRAMES, ids=lambda f: f["t"])
    def test_bin_torn_at_every_boundary(self, frame):
        wire = encode_frame_bin(frame)
        for cut in range(len(wire)):
            decoder = BinFrameDecoder()
            assert decoder.feed(wire[:cut]) == []
            assert decoder.pending == cut
            assert decoder.feed(wire[cut:]) == [frame]
            assert decoder.pending == 0

    def test_json_torn_tail_stays_buffered(self):
        wire = encode_frame(PAYLOAD_FRAME)
        decoder = FrameDecoder()
        assert decoder.feed(wire[:-3]) == []
        assert decoder.pending == len(wire) - 3
        assert decoder.feed(wire[-3:]) == [PAYLOAD_FRAME]

    def test_bin_sync_decode_rejects_truncation(self):
        wire = encode_frame_bin(PAYLOAD_FRAME)
        for cut in range(4, len(wire)):
            with pytest.raises(FrameError):
                decode_frame_bin_bytes(wire[:cut])

    def test_byte_at_a_time_feed_decodes_everything(self):
        blob = b"".join(encode_frame_bin(f) for f in FRAMES)
        decoder = BinFrameDecoder()
        out = []
        for i in range(len(blob)):
            out.extend(decoder.feed(blob[i : i + 1]))
        assert out == FRAMES

    def test_hwm_tracks_worst_backlog(self):
        decoder = BinFrameDecoder()
        wire = encode_frame_bin(PAYLOAD_FRAME)
        decoder.feed(wire * 3)
        assert decoder.hwm == 3 * len(wire)
        decoder.feed(wire)
        assert decoder.hwm == 3 * len(wire)  # monotonic


# ----------------------------------------------------------------------
# Zero-length and oversized length prefixes
# ----------------------------------------------------------------------


class TestLengthPrefixHostility:
    ZERO = struct.pack(">I", 0)
    HUGE = struct.pack(">I", MAX_FRAME + 1)

    @pytest.mark.parametrize("codec", ["json", "bin"])
    def test_zero_length_frame_rejected_incrementally(self, codec):
        decoder = frame_decoder_for(codec)
        with pytest.raises(FrameError, match="zero-length"):
            decoder.feed(self.ZERO)

    def test_zero_length_frame_rejected_by_sync_decoders(self):
        with pytest.raises(FrameError, match="zero-length"):
            decode_frame_bytes(self.ZERO)
        with pytest.raises(FrameError, match="zero-length"):
            decode_frame_bin_bytes(self.ZERO)

    def test_zero_length_frame_rejected_by_stream_reader(self):
        with pytest.raises(FrameError, match="zero-length"):
            read_one(self.ZERO + b"junk")

    @pytest.mark.parametrize("codec", ["json", "bin"])
    def test_oversized_prefix_rejected_before_buffering_body(self, codec):
        # The decoder must refuse immediately — waiting for MAX_FRAME+1
        # bytes that never come is the hang this suite exists to catch.
        decoder = frame_decoder_for(codec)
        with pytest.raises(FrameError, match="MAX_FRAME"):
            decoder.feed(self.HUGE + b"x")

    def test_oversized_prefix_rejected_by_sync_decoders(self):
        with pytest.raises(FrameError, match="MAX_FRAME"):
            decode_frame_bytes(self.HUGE)
        with pytest.raises(FrameError, match="MAX_FRAME"):
            decode_frame_bin_bytes(self.HUGE)


# ----------------------------------------------------------------------
# Interleaved codecs on one connection
# ----------------------------------------------------------------------


class TestInterleavedCodecs:
    def test_json_frame_on_binary_decoder_errors_cleanly(self):
        # '{' is 0x7b — no such binary frame kind.
        with pytest.raises(FrameError):
            BinFrameDecoder().feed(encode_frame(PAYLOAD_FRAME))

    def test_binary_frame_on_json_decoder_errors_cleanly(self):
        with pytest.raises(FrameError):
            FrameDecoder().feed(encode_frame_bin(PAYLOAD_FRAME))

    def test_codec_switch_mid_stream_is_an_error_not_corruption(self):
        # A peer must never change codec after its hello.  The valid
        # prefix decodes; the foreign frame raises instead of yielding
        # a wrong dict.
        decoder = BinFrameDecoder()
        assert decoder.feed(encode_frame_bin(MOVE_FRAME)) == [MOVE_FRAME]
        with pytest.raises(FrameError):
            decoder.feed(encode_frame(MOVE_FRAME))

    def test_json_decoder_recovers_nothing_from_mixed_blob(self):
        blob = encode_frame_bin(HB_FRAME) + encode_frame(HB_FRAME)
        with pytest.raises(FrameError):
            FrameDecoder().feed(blob)


# ----------------------------------------------------------------------
# Mid-frame reconnect redelivery
# ----------------------------------------------------------------------


class TestReconnectRedelivery:
    def test_partial_frame_never_surfaces_and_redelivery_decodes(self):
        # Transport contract: frames leave the sender's outbox only
        # after their bytes drained, so a connection cut mid-frame
        # redelivers the whole frame on a *fresh* connection (and a
        # fresh decoder).  The cut connection's decoder must have
        # emitted nothing for the torn tail.
        wire = encode_frame_bin(PAYLOAD_FRAME)
        dying = BinFrameDecoder()
        assert dying.feed(wire[: len(wire) // 2]) == []
        assert dying.pending > 0  # torn tail buffered, never surfaced

        fresh = BinFrameDecoder()
        assert fresh.feed(wire) == [PAYLOAD_FRAME]

    def test_duplicated_redelivery_is_two_identical_frames(self):
        # Peek-then-pop can legitimately re-send a frame whose bytes
        # drained right as the connection died; dedup is the protocol
        # layer's job (engines tolerate duplicate messages), the codec
        # must just decode both copies identically.
        wire = encode_frame_bin(MOVE_FRAME)
        decoder = BinFrameDecoder()
        assert decoder.feed(wire + wire) == [MOVE_FRAME, MOVE_FRAME]

    def test_redelivery_after_torn_tail_on_same_decoder_is_rejected(self):
        # If a buggy sender re-sends on the SAME connection after a
        # torn frame, the decoder sees garbage mid-frame — that must be
        # an error, not a resynchronization guess.
        wire = encode_frame_bin(REPLY_FRAME)
        decoder = BinFrameDecoder()
        decoder.feed(wire[:-2])
        with pytest.raises(FrameError):
            decoder.feed(wire)


# ----------------------------------------------------------------------
# Hostile bodies
# ----------------------------------------------------------------------


class TestHostileBodies:
    def test_unknown_frame_kind(self):
        with pytest.raises(FrameError, match="kind"):
            decode_frame_bin_bytes(reframe(b"\x09\x00"))

    def test_unknown_flag_bits(self):
        body = bin_body(HB_FRAME)
        body[1] |= 0x40
        with pytest.raises(FrameError, match="flag"):
            decode_frame_bin_bytes(reframe(body))

    def test_unknown_payload_tag(self):
        body = bin_body(MOVE_FRAME)
        body[10] = 0x63  # tag byte sits after kind+flags+txn(u64)
        with pytest.raises(FrameError, match="payload tag"):
            decode_frame_bin_bytes(reframe(body))

    def test_unknown_interned_token(self):
        body = bin_body({"t": "payload", "txn": 1, "d": encode_payload(ProtoMsg("xact"))})
        body[-1] = 0xEE
        with pytest.raises(FrameError, match="token"):
            decode_frame_bin_bytes(reframe(body))

    def test_bad_outcome_byte(self):
        frame = {"t": "payload", "txn": 1, "d": encode_payload(TermStateReply("w", Outcome.ABORT, 0))}
        body = bin_body(frame)
        body[11] = 0x7F  # outcome byte right after the payload tag
        with pytest.raises(FrameError, match="outcome"):
            decode_frame_bin_bytes(reframe(body))

    def test_stray_high_bit_on_decision_outcome(self):
        from repro.runtime.messages import TermDecision

        frame = {"t": "payload", "txn": 1, "d": encode_payload(TermDecision(Outcome.COMMIT, 0))}
        body = bin_body(frame)
        body[11] |= 0x80  # in_doubt bit is outcome-reply-only
        with pytest.raises(FrameError, match="high bit"):
            decode_frame_bin_bytes(reframe(body))

    def test_invalid_utf8_in_literal_string(self):
        body = bytearray((2, 0))  # payload frame, no header ints
        body.append(1)  # proto tag
        body.append(0)  # literal string escape
        body += struct.pack(">H", 2) + b"\xff\xfe"
        with pytest.raises(FrameError, match="UTF-8"):
            decode_frame_bin_bytes(reframe(body))

    def test_trailing_garbage_rejected(self):
        body = bin_body(HB_FRAME) + b"\x00"
        with pytest.raises(FrameError, match="trailing"):
            decode_frame_bin_bytes(reframe(body))

    def test_truncated_header_int(self):
        body = bytearray((2, 0x01))  # payload frame claiming a txn...
        body += b"\x00\x00"  # ...but only two bytes of it
        with pytest.raises(FrameError, match="truncated"):
            decode_frame_bin_bytes(reframe(body))

    def test_empty_payload_record(self):
        with pytest.raises(FrameError, match="payload"):
            decode_frame_bin_bytes(reframe(b"\x02\x00"))


# ----------------------------------------------------------------------
# Seeded random fuzz: clean errors or clean frames, nothing else
# ----------------------------------------------------------------------


class TestRandomFuzz:
    @pytest.mark.parametrize("codec", ["json", "bin"])
    def test_random_streams_never_hang_or_leak_exceptions(self, codec):
        for seed in range(200):
            rng = random.Random(seed)
            blob = bytes(rng.randrange(256) for _ in range(rng.randrange(1, 120)))
            decoder = frame_decoder_for(codec)
            try:
                while blob:
                    cut = rng.randrange(1, len(blob) + 1)
                    for frame in decoder.feed(blob[:cut]):
                        assert isinstance(frame, dict)
                    blob = blob[cut:]
            except FrameError:
                continue  # the only acceptable failure mode

    def test_random_bodies_with_valid_prefix(self):
        # Force the length prefix to be plausible so the fuzz actually
        # exercises body parsing rather than dying on the prefix.
        for seed in range(300):
            rng = random.Random(10_000 + seed)
            body = bytes(rng.randrange(256) for _ in range(rng.randrange(1, 40)))
            try:
                frame, rest = decode_frame_bin_bytes(reframe(body))
            except FrameError:
                continue
            assert rest == b""
            assert frame["t"] in ("hb", "payload", "external")

    def test_bitflip_fuzz_on_valid_frames(self):
        # Every single-bit corruption of a valid frame either still
        # decodes to a dict (length/ints can absorb flips) or raises
        # FrameError — never any other exception, never a hang.
        for frame in FRAMES:
            wire = bytearray(encode_frame_bin(frame))
            for bit in range(len(wire) * 8):
                mutated = bytearray(wire)
                mutated[bit // 8] ^= 1 << (bit % 8)
                decoder = BinFrameDecoder()
                try:
                    for decoded in decoder.feed(bytes(mutated)):
                        assert isinstance(decoded, dict)
                except FrameError:
                    pass
