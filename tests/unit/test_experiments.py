"""Unit tests for the experiment suite: every figure/table's key claims.

These are the paper-vs-measured assertions that EXPERIMENTS.md records;
if any of them fails, the reproduction has drifted from the paper.
"""

import pytest

from repro.errors import ReproError
from repro.experiments import EXPERIMENTS, run_experiment
from repro.experiments.e_f1_fsa_2pc_central import run_f1
from repro.experiments.e_f2_global_graph import run_f2
from repro.experiments.e_f3_fsa_2pc_decentralized import run_f3
from repro.experiments.e_f4_buffer_synthesis import run_f4
from repro.experiments.e_f5_fsa_3pc_central import run_f5
from repro.experiments.e_f6_fsa_3pc_decentralized import run_f6
from repro.experiments.e_q1_blocking_frequency import run_q1
from repro.experiments.e_q2_message_complexity import run_q2
from repro.experiments.e_q3_graph_growth import run_q3
from repro.experiments.e_q4_cascading_termination import run_q4
from repro.experiments.e_q5_recovery_matrix import run_q5
from repro.experiments.e_q6_db_throughput import run_q6
from repro.experiments.e_t1_concurrency_sets import run_t1
from repro.experiments.e_t2_blocking_verdicts import run_t2
from repro.experiments.e_t3_termination_rule import run_t3
from repro.experiments.e_t4_k_resiliency import run_t4


class TestRegistry:
    def test_all_experiments_registered(self):
        # 17 paper-claim artifacts + 7 extension/ablation experiments.
        assert len(EXPERIMENTS) == 24
        assert {"A1", "A2", "A3", "A4", "A5", "A6", "A7", "Q7"} <= set(
            EXPERIMENTS
        )

    def test_run_by_id_case_insensitive(self):
        assert run_experiment("t1").experiment_id == "T1"

    def test_unknown_id_raises(self):
        with pytest.raises(ReproError, match="unknown experiment"):
            run_experiment("Z9")

    @pytest.mark.parametrize("experiment_id", sorted(EXPERIMENTS))
    def test_every_experiment_renders(self, experiment_id):
        result = EXPERIMENTS[experiment_id]()
        text = result.render()
        assert result.experiment_id == experiment_id
        assert result.tables
        assert experiment_id in text


class TestFigures:
    def test_f1_shapes_match_slide_15(self):
        data = run_f1().data
        assert data["coordinator_states"] == ["a", "c", "q", "w"]
        assert data["slave_states"] == ["a", "c", "q", "w"]
        assert data["coordinator_phases"] == 2

    def test_f2_graph_clean(self):
        data = run_f2().data
        assert data["deadlocked"] == 0
        assert data["inconsistent"] == 0
        assert data["states"] > 0
        assert "digraph" in data["dot"]

    def test_f3_single_role_with_self_messages(self):
        data = run_f3().data
        assert data["single_role"]
        assert data["sends_to_self"]
        assert data["phases"] == 2

    def test_f4_synthesis_reproduces_3pc(self):
        data = run_f4().data
        assert data["2pc-central"]["equals_3pc"]
        assert data["2pc-decentralized"]["equals_3pc"]
        assert data["2pc-central"]["nonblocking"]
        assert data["lemma_violations_before"] > 0
        assert data["lemma_violations_after"] == 0
        assert data["one_pc_rejected"]

    def test_f5_central_3pc_verified(self):
        data = run_f5().data
        assert data["coordinator_states"] == ["a", "c", "p", "q", "w"]
        assert data["phases"] == 3
        assert data["nonblocking"]
        assert data["synchronous"]

    def test_f6_decentralized_3pc_verified(self):
        data = run_f6().data
        assert data["states"] == ["a", "c", "p", "q", "w"]
        assert data["nonblocking"]
        assert data["tolerated_failures"] == 2


class TestTables:
    def test_t1_matches_paper_exactly(self):
        data = run_t1().data
        assert data["all_match"]
        assert data["committable_2pc"] == ["c"]
        assert data["committable_3pc"] == ["c", "p"]

    def test_t2_verdict_partition(self):
        data = run_t2().data
        assert data["blocking"] == ["1pc", "2pc-central", "2pc-decentralized"]
        assert data["nonblocking"] == ["3pc-central", "3pc-decentralized"]
        assert data["w_violates_both_conditions"]

    def test_t3_rule_matches_slide_40(self):
        data = run_t3().data
        assert data["all_match"]
        assert data["two_pc_blocks_at_w"]
        assert data["rule_3pc"] == {
            "q": "abort", "w": "abort", "a": "abort",
            "p": "commit", "c": "commit",
        }

    def test_t4_resilience(self):
        tolerated = run_t4().data["tolerated"]
        for n in (2, 3, 4):
            assert tolerated["3pc-central"][n] == n - 1
            assert tolerated["3pc-decentralized"][n] == n - 1
            assert tolerated["2pc-central"][n] == 0
            assert tolerated["1pc"][n] == 0


class TestQuantitative:
    def test_q1_shape(self):
        data = run_q1(n_sites=4, grid=8)
        two = data.data["2pc-central"]
        three = data.data["3pc-central"]
        assert two["blocked"] > 0
        assert three["blocked"] == 0
        assert two["violations"] == 0 and three["violations"] == 0

    def test_q2_measured_equals_analytic(self):
        data = run_q2(site_counts=(2, 4, 8)).data
        for protocol, per_n in data.items():
            for n, row in per_n.items():
                assert row["messages"] == row["expected_messages"], (protocol, n)
                assert row["latency"] == row["expected_latency"], (protocol, n)

    def test_q3_growth_is_multiplicative(self):
        data = run_q3(
            {"2pc-central": (2, 3, 4), "2pc-decentralized": (2, 3)}
        ).data
        assert data["min_growth_factor"] > 1.5

    def test_q4_always_consistent_down_to_one_survivor(self):
        data = run_q4(n_sites=4).data
        for extra, row in data.items():
            assert row["all_decided"], f"cascade {extra}"
            assert row["atomic"], f"cascade {extra}"
        assert data[max(data)]["survivors"] == 1

    def test_q4_latency_grows_with_failures(self):
        data = run_q4(n_sites=5).data
        assert data[3]["duration"] > data[0]["duration"]

    def test_q5_every_cell_consistent(self):
        data = run_q5().data
        for protocol, rows in data.items():
            for row in rows:
                assert row["consistent"], (protocol, row["label"])

    def test_q5_recovery_mechanisms(self):
        rows = {row["label"]: row for row in run_q5().data["3pc-central"]}
        pre_vote = rows["before voting (during vote transition, nothing sent)"]
        assert pre_vote["recovered"] == "abort"

    def test_q6_blocking_kills_throughput(self):
        data = run_q6(n_txns=12, crash_txn=4).data
        assert data["3pc-central"]["after_crash_commits"] > 0
        assert data["2pc-central"]["after_crash_commits"] == 0
        assert data["2pc-central"]["stalled"] > 0
        assert data["3pc-central"]["stalled"] == 0


class TestExtensions:
    def test_a1_phase1_is_load_bearing(self):
        from repro.experiments.e_a1_phase1_ablation import run_a1

        data = run_a1().data
        assert data["standard"]["atomic"]
        assert not data["unsafe-skip-phase1"]["atomic"]

    def test_a2_partition_splits_3pc(self):
        from repro.experiments.e_a2_partition import run_a2

        data = run_a2().data
        assert data["crash"]["atomic"]
        assert not data["partition"]["atomic"]

    def test_a3_total_failure_extension_resolves(self):
        from repro.experiments.e_a3_total_failure import run_a3

        data = run_a3().data
        assert not data["disabled"]["resolved"]
        assert data["enabled"]["resolved"] and data["enabled"]["atomic"]

    def test_a4_cooperative_reduces_blocking(self):
        from repro.experiments.e_a4_cooperative_termination import run_a4

        data = run_a4(grid=8).data
        assert data["cooperative"]["blocked"] < data["standard"]["blocked"]
        assert data["cooperative"]["violations"] == 0

    def test_a5_quorum_tradeoff(self):
        from repro.experiments.e_a5_quorum_tradeoff import run_a5

        data = run_a5().data
        assert data["partition"]["quorum"]["atomic"]
        assert not data["partition"]["standard"]["atomic"]
        assert data["cascade"]["standard"]["survivor_decided"]
        assert not data["cascade"]["quorum"]["survivor_decided"]
