"""Unit tests for the shared types and the exception hierarchy."""

import pytest

from repro import errors
from repro.types import Outcome, ProtocolClass, StateKind, Vote


class TestOutcome:
    def test_final_partition(self):
        assert Outcome.COMMIT.is_final
        assert Outcome.ABORT.is_final
        assert not Outcome.UNDECIDED.is_final
        assert not Outcome.BLOCKED.is_final

    def test_values_stable(self):
        # Values appear in logs, reports, and EXPERIMENTS.md: keep them.
        assert Outcome.COMMIT.value == "commit"
        assert Outcome.ABORT.value == "abort"
        assert Outcome.UNDECIDED.value == "undecided"
        assert Outcome.BLOCKED.value == "blocked"


class TestVoteAndKinds:
    def test_vote_values(self):
        assert Vote.YES.value == "yes"
        assert Vote.NO.value == "no"

    def test_state_kind_finality(self):
        assert StateKind.COMMIT.is_final
        assert StateKind.ABORT.is_final
        assert not StateKind.INITIAL.is_final
        assert not StateKind.INTERMEDIATE.is_final

    def test_protocol_classes(self):
        assert ProtocolClass.CENTRAL_SITE.value == "central-site"
        assert ProtocolClass.DECENTRALIZED.value == "decentralized"


class TestErrorHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [
            errors.ClockError,
            errors.ProcessError,
            errors.UnknownSiteError,
            errors.SiteDownError,
            errors.InvalidAutomatonError,
            errors.InvalidProtocolError,
            errors.InstantiationError,
            errors.StateGraphTooLargeError,
            errors.NotSynchronousError,
            errors.SynthesisError,
            errors.TransitionError,
            errors.TerminationError,
            errors.RecoveryError,
            errors.AtomicityViolationError,
            errors.TransactionAborted,
            errors.LockError,
            errors.DeadlockError,
            errors.WALError,
        ],
    )
    def test_everything_is_a_repro_error(self, exc):
        assert issubclass(exc, errors.ReproError)

    def test_domain_bases(self):
        assert issubclass(errors.ClockError, errors.SimulationError)
        assert issubclass(errors.UnknownSiteError, errors.NetworkError)
        assert issubclass(errors.InvalidAutomatonError, errors.SpecError)
        assert issubclass(errors.StateGraphTooLargeError, errors.AnalysisError)
        assert issubclass(errors.TerminationError, errors.RuntimeProtocolError)
        assert issubclass(errors.DeadlockError, errors.DatabaseError)

    def test_deadlock_is_an_abort(self):
        # A deadlock victim is an aborted transaction: one except clause
        # catches both.
        assert issubclass(errors.DeadlockError, errors.TransactionAborted)

    def test_catchable_as_base(self):
        with pytest.raises(errors.ReproError):
            raise errors.WALError("x")
