"""Unit tests for the termination/recovery extensions and their
failure-injection substrate."""

import pytest

from repro.election.bully import bully_strategy
from repro.protocols import catalog
from repro.runtime.decision import TerminationRule
from repro.runtime.harness import CommitRun
from repro.runtime.termination import TERMINATION_MODES
from repro.types import Outcome, SiteId
from repro.workload.crashes import (
    CrashAfterPayloads,
    CrashAt,
    CrashDuringTransition,
)


class TestPayloadCrashInjector:
    def test_validation(self):
        with pytest.raises(ValueError):
            CrashAfterPayloads(site=1, payload_number=0)

    def test_backup_dies_before_first_broadcast(
        self, spec_3pc_central, rule_3pc_central
    ):
        run = CommitRun(
            spec_3pc_central,
            crashes=[
                CrashAt(site=1, at=2.0),
                CrashAfterPayloads(site=2, payload_number=1),
            ],
            rule=rule_3pc_central,
        ).execute()
        assert run.reports[2].crashed
        assert run.atomic
        # The remaining survivor still terminates (cascading election).
        assert run.reports[3].outcome.is_final

    def test_payload_crash_with_restart(self, spec_3pc_central, rule_3pc_central):
        run = CommitRun(
            spec_3pc_central,
            crashes=[
                CrashAt(site=1, at=2.0),
                CrashAfterPayloads(site=2, payload_number=1, restart_at=40.0),
            ],
            rule=rule_3pc_central,
        ).execute()
        assert run.atomic
        assert run.reports[2].outcome.is_final  # Recovered.


class TestTerminationModes:
    def test_mode_names(self):
        assert TERMINATION_MODES == (
            "standard",
            "cooperative",
            "unsafe-skip-phase1",
            "quorum",
        )

    def test_unknown_mode_rejected(self, spec_3pc_central, rule_3pc_central):
        with pytest.raises(ValueError, match="unknown termination mode"):
            CommitRun(
                spec_3pc_central,
                rule=rule_3pc_central,
                termination_mode="bogus",
            ).execute()

    def test_cooperative_mode_handles_plain_coordinator_crash(
        self, spec_3pc_central, rule_3pc_central
    ):
        run = CommitRun(
            spec_3pc_central,
            crashes=[CrashAt(site=1, at=2.0)],
            rule=rule_3pc_central,
            termination_mode="cooperative",
        ).execute()
        assert run.atomic
        for site in (2, 3):
            assert run.reports[site].outcome.is_final

    def test_cooperative_rescues_blocked_2pc(self):
        # Coordinator crashes mid commit fan-out; only the lowest slave
        # holds the commit; the bully election picks the HIGHEST slave
        # as backup, which is in w.  Standard mode blocks; cooperative
        # mode polls, finds the commit, and adopts it.
        spec = catalog.build("2pc-central", 4)
        rule = TerminationRule(spec)
        crashes = [
            CrashDuringTransition(site=1, transition_number=2, after_writes=1)
        ]
        standard = CommitRun(
            spec,
            crashes=crashes,
            rule=rule,
            termination_mode="standard",
            elect=bully_strategy,
        ).execute()
        cooperative = CommitRun(
            spec,
            crashes=crashes,
            rule=rule,
            termination_mode="cooperative",
            elect=bully_strategy,
        ).execute()
        assert standard.blocked_sites  # The paper's rule blocks here.
        assert cooperative.blocked_sites == []
        assert set(cooperative.outcomes().values()) == {Outcome.COMMIT}
        assert cooperative.atomic

    def test_cooperative_still_blocks_when_nobody_knows(
        self, rule_2pc_central, spec_2pc_central
    ):
        # Every survivor in w: polling cannot help — the fundamental
        # theorem's genuinely undecidable case.
        run = CommitRun(
            spec_2pc_central,
            crashes=[CrashAt(site=1, at=2.0)],
            rule=rule_2pc_central,
            termination_mode="cooperative",
        ).execute()
        assert run.blocked_sites == [2, 3]
        assert run.atomic

    def test_skip_phase1_is_equivalent_when_backup_survives(
        self, spec_3pc_central, rule_3pc_central
    ):
        # The ablation only misbehaves when the backup dies mid-round;
        # otherwise it reaches the same outcomes.
        safe = CommitRun(
            spec_3pc_central,
            crashes=[CrashAt(site=1, at=2.0)],
            rule=rule_3pc_central,
            termination_mode="unsafe-skip-phase1",
        ).execute()
        assert safe.atomic
        assert set(safe.outcomes().values()) >= {Outcome.ABORT}

    def test_skip_phase1_violates_atomicity_under_backup_crash(self):
        spec = catalog.build("3pc-central", 4)
        rule = TerminationRule(spec)
        crashes = [
            CrashDuringTransition(site=1, transition_number=2, after_writes=1),
            CrashAfterPayloads(site=2, payload_number=1),
        ]
        run = CommitRun(
            spec,
            crashes=crashes,
            rule=rule,
            termination_mode="unsafe-skip-phase1",
        ).execute()
        assert not run.atomic  # The documented, intentional failure.

    def test_standard_mode_survives_the_same_schedule(self):
        spec = catalog.build("3pc-central", 4)
        rule = TerminationRule(spec)
        crashes = [
            CrashDuringTransition(site=1, transition_number=2, after_writes=1),
            CrashAfterPayloads(site=2, payload_number=1),
        ]
        run = CommitRun(
            spec, crashes=crashes, rule=rule, termination_mode="standard"
        ).execute()
        assert run.atomic


class TestQuorumMode:
    def test_even_partition_blocks_both_sides(self):
        spec = catalog.build("3pc-central", 4)
        rule = TerminationRule(spec)
        run = CommitRun(
            spec,
            rule=rule,
            termination_mode="quorum",
            partition_at=3.2,
            partition_groups=[{1, 2}, {3, 4}],
        ).execute()
        assert run.atomic
        assert run.blocked_sites == [1, 2, 3, 4]

    def test_majority_side_decides_minority_blocks(self):
        spec = catalog.build("3pc-central", 4)
        rule = TerminationRule(spec)
        run = CommitRun(
            spec,
            rule=rule,
            termination_mode="quorum",
            partition_at=3.2,
            partition_groups=[{1}, {2, 3, 4}],
        ).execute()
        assert run.atomic
        for site in (2, 3, 4):
            assert run.reports[site].outcome.is_final
        assert run.blocked_sites == [1]

    def test_lone_survivor_of_real_crashes_blocks(self):
        spec = catalog.build("3pc-central", 4)
        rule = TerminationRule(spec)
        crashes = [
            CrashAt(site=1, at=2.0),
            CrashAt(site=2, at=4.0),
            CrashAt(site=3, at=6.0),
        ]
        run = CommitRun(
            spec, crashes=crashes, rule=rule, termination_mode="quorum"
        ).execute()
        assert run.reports[4].outcome is Outcome.UNDECIDED
        assert 4 in run.blocked_sites
        assert run.atomic

    def test_single_crash_with_majority_terminates_normally(self):
        spec = catalog.build("3pc-central", 4)
        rule = TerminationRule(spec)
        run = CommitRun(
            spec,
            crashes=[CrashAt(site=1, at=2.0)],
            rule=rule,
            termination_mode="quorum",
        ).execute()
        assert run.atomic
        for site in (2, 3, 4):
            assert run.reports[site].outcome.is_final


class TestPartition:
    def test_partition_args_validated(self, spec_3pc_central, rule_3pc_central):
        with pytest.raises(ValueError, match="together"):
            CommitRun(
                spec_3pc_central, rule=rule_3pc_central, partition_at=3.0
            )

    def test_3pc_splits_under_partition(self):
        spec = catalog.build("3pc-central", 4)
        rule = TerminationRule(spec)
        run = CommitRun(
            spec,
            rule=rule,
            partition_at=3.2,
            partition_groups=[{1, 2}, {3, 4}],
        ).execute()
        assert not run.atomic  # Split-brain: the known 3PC weakness.
        assert set(run.decided_outcomes()) == {Outcome.COMMIT, Outcome.ABORT}

    def test_partition_before_votes_is_harmless(self):
        # Partition while everyone is still in q/w with no commit
        # possible: both sides abort — consistent.
        spec = catalog.build("3pc-central", 4)
        rule = TerminationRule(spec)
        run = CommitRun(
            spec,
            rule=rule,
            partition_at=0.5,
            partition_groups=[{1, 2}, {3, 4}],
        ).execute()
        assert run.atomic

    def test_heal_restores_delivery(self):
        from repro.net.network import Network
        from repro.sim.simulator import Simulator

        class Sink:
            def __init__(self):
                self.n = 0

            def deliver(self, envelope):
                self.n += 1

        sim = Simulator()
        net = Network(sim)
        a, b = Sink(), Sink()
        net.attach(SiteId(1), a)
        net.attach(SiteId(2), b)
        net.partition([{SiteId(1)}, {SiteId(2)}])
        net.send(SiteId(1), SiteId(2), "lost")
        sim.run()
        assert b.n == 0
        net.heal()
        net.send(SiteId(1), SiteId(2), "arrives")
        sim.run()
        assert b.n == 1


class TestTotalFailureRecovery:
    def _crashes(self, spec):
        return [
            CrashAt(site=site, at=1.5, restart_at=20.0 + site)
            for site in spec.sites
        ]

    def test_disabled_stays_undecided(self):
        spec = catalog.build("3pc-decentralized", 3)
        rule = TerminationRule(spec)
        run = CommitRun(
            spec, crashes=self._crashes(spec), rule=rule, max_time=120.0
        ).execute()
        assert all(
            r.outcome is Outcome.UNDECIDED for r in run.reports.values()
        )

    def test_enabled_aborts_unanimously(self):
        spec = catalog.build("3pc-decentralized", 3)
        rule = TerminationRule(spec)
        run = CommitRun(
            spec,
            crashes=self._crashes(spec),
            rule=rule,
            total_failure_recovery=True,
            max_time=120.0,
        ).execute()
        assert set(run.outcomes().values()) == {Outcome.ABORT}
        assert run.atomic

    def test_not_triggered_while_some_site_never_crashed(self):
        # One survivor keeps running the protocol: the recovered sites
        # must NOT self-abort on its 'undecided' answers (it could
        # still commit).  They resolve through it once it decides.
        spec = catalog.build("3pc-central", 3)
        rule = TerminationRule(spec)
        run = CommitRun(
            spec,
            crashes=[
                CrashAt(site=2, at=1.5, restart_at=20.0),
                CrashAt(site=3, at=1.5, restart_at=21.0),
            ],
            rule=rule,
            total_failure_recovery=True,
            max_time=120.0,
        ).execute()
        assert run.atomic
        final = {r.outcome for r in run.reports.values() if r.outcome.is_final}
        assert len(final) == 1

    def test_decision_surviving_total_failure_is_adopted(self):
        # Site 3 logs the commit decision before the wave of crashes:
        # recovered peers must adopt it, never invent an abort.
        spec = catalog.build("3pc-central", 3)
        rule = TerminationRule(spec)
        run = CommitRun(
            spec,
            crashes=[
                CrashAt(site=1, at=6.5, restart_at=20.0),
                CrashAt(site=2, at=6.5, restart_at=21.0),
                CrashAt(site=3, at=6.5, restart_at=22.0),
            ],
            rule=rule,
            total_failure_recovery=True,
            max_time=120.0,
        ).execute()
        assert run.atomic
        assert set(run.outcomes().values()) == {Outcome.COMMIT}
