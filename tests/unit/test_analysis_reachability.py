"""Unit tests for global-state enumeration and classification."""

import pytest

from repro.analysis.reachability import build_state_graph
from repro.errors import StateGraphTooLargeError
from repro.protocols import catalog
from repro.types import SiteId


class TestTwoSiteCanonical2PC:
    """The graph the paper draws on slide 18."""

    def test_initial_state(self, graph_2pc_canonical):
        graph = graph_2pc_canonical
        assert graph.initial.locals == ("q", "q")
        assert len(graph.initial.messages) == 2  # both xact inputs

    def test_no_deadlocks(self, graph_2pc_canonical):
        assert graph_2pc_canonical.deadlocked_states() == []

    def test_no_inconsistent_states(self, graph_2pc_canonical):
        assert graph_2pc_canonical.inconsistent_states() == []

    def test_terminal_states_are_final(self, graph_2pc_canonical):
        graph = graph_2pc_canonical
        for state in graph.terminal_states():
            assert graph.is_final(state)

    def test_final_local_vectors(self, graph_2pc_canonical):
        vectors = {s.locals for s in graph_2pc_canonical.final_states()}
        # Unanimous yes -> (c, c); any no -> (a, a); mixed never.
        assert ("c", "c") in vectors
        assert ("a", "a") in vectors
        assert all(v in {("c", "c"), ("a", "a")} for v in vectors)

    def test_reachable_local_states(self, graph_2pc_canonical):
        assert graph_2pc_canonical.reachable_local_states(SiteId(1)) == {
            "q", "w", "a", "c",
        }

    def test_occupancy_consistent_with_states(self, graph_2pc_canonical):
        graph = graph_2pc_canonical
        for state in graph.states:
            for site, local in zip(graph.sites, state.locals):
                assert state in graph.occupancy(site, local)

    def test_local_of(self, graph_2pc_canonical):
        graph = graph_2pc_canonical
        assert graph.local_of(graph.initial, SiteId(2)) == "q"

    def test_edges_conserve_messages(self, graph_2pc_canonical):
        graph = graph_2pc_canonical
        for state in graph.states:
            for edge in graph.successors(state):
                consumed = edge.transition.reads
                produced = frozenset(edge.transition.writes)
                assert consumed <= state.messages
                assert edge.target.messages == (
                    (state.messages - consumed) | produced
                )

    def test_edges_change_exactly_one_site(self, graph_2pc_canonical):
        graph = graph_2pc_canonical
        for state in graph.states:
            for edge in graph.successors(state):
                diffs = [
                    i
                    for i in range(len(state.locals))
                    if state.locals[i] != edge.target.locals[i]
                ]
                assert len(diffs) == 1

    def test_describe_renders_paper_notation(self, graph_2pc_canonical):
        text = graph_2pc_canonical.initial.describe(graph_2pc_canonical.sites)
        assert text.startswith("(q1, q2)")
        assert "xact" in text

    def test_dot_output_contains_all_states(self, graph_2pc_canonical):
        dot = graph_2pc_canonical.to_dot()
        assert dot.count("label=") >= len(graph_2pc_canonical)
        assert dot.startswith("digraph")


class TestAcrossCatalog:
    @pytest.mark.parametrize("name", catalog.protocol_names())
    @pytest.mark.parametrize("n", [2, 3])
    def test_no_deadlock_no_inconsistency(self, name, n):
        graph = build_state_graph(catalog.build(name, n))
        assert graph.deadlocked_states() == []
        assert graph.inconsistent_states() == []

    def test_3pc_graph_strictly_larger_than_2pc(self):
        two = build_state_graph(catalog.build("2pc-central", 3))
        three = build_state_graph(catalog.build("3pc-central", 3))
        assert len(three) > len(two)

    def test_graph_len_and_contains(self, graph_2pc_canonical):
        assert len(graph_2pc_canonical) > 0
        assert graph_2pc_canonical.initial in graph_2pc_canonical

    def test_budget_enforced(self):
        spec = catalog.build("2pc-decentralized", 3)
        with pytest.raises(StateGraphTooLargeError):
            build_state_graph(spec, budget=5)

    def test_budget_none_disables_limit(self):
        spec = catalog.build("2pc-decentralized", 2)
        graph = build_state_graph(spec, budget=None)
        assert len(graph) > 0

    def test_deterministic_construction(self):
        spec = catalog.build("3pc-decentralized", 3)
        a = build_state_graph(spec)
        b = build_state_graph(spec)
        assert set(a.states) == set(b.states)
        assert a.edge_count == b.edge_count
