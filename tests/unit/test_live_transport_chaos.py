"""In-process transport tests: chaos delivery, suspicion epochs, flush.

Two real :class:`Transport` instances over loopback TCP, no site
subprocesses — fast enough for the unit tier while still exercising
the actual socket path the chaos seam lives on.
"""

from __future__ import annotations

import asyncio
import socket
import time

import pytest

from repro.errors import LiveTimeoutError
from repro.live.chaos import ChaosPolicy, ChaosRule, LinkChaos
from repro.live.clock import TimeoutClock
from repro.live.transport import Transport
from repro.types import SiteId

S1, S2 = SiteId(1), SiteId(2)


def free_ports(count: int) -> list[int]:
    sockets = []
    try:
        for _ in range(count):
            sock = socket.socket()
            sock.bind(("127.0.0.1", 0))
            sockets.append(sock)
        return [sock.getsockname()[1] for sock in sockets]
    finally:
        for sock in sockets:
            sock.close()


class Harness:
    """One in-process transport endpoint with recording callbacks."""

    def __init__(
        self,
        site: SiteId,
        port: int,
        peers: dict[SiteId, tuple[str, int]],
        hb_interval: float = 0.05,
        suspect_after: float = 10.0,
        chaos: LinkChaos | None = None,
        wait_durable=None,
    ) -> None:
        self.frames: list[tuple[SiteId, dict]] = []
        self.suspects: list[SiteId] = []
        self.recoveries: list[SiteId] = []
        self.traces: list[str] = []
        self.clock = TimeoutClock()

        async def on_frame(peer, frame):
            self.frames.append((peer, frame))

        async def on_client(first, reader, writer):
            writer.close()

        self.transport = Transport(
            site=site,
            host="127.0.0.1",
            port=port,
            peers=peers,
            clock=self.clock,
            on_frame=on_frame,
            on_client=on_client,
            on_suspect=self.suspects.append,
            on_recover=self.recoveries.append,
            hb_interval=hb_interval,
            suspect_after=suspect_after,
            trace=lambda category, detail="", **data: self.traces.append(
                category
            ),
            wait_durable=wait_durable,
            chaos=chaos,
        )


async def wait_for(predicate, timeout: float = 5.0, what: str = "condition"):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        await asyncio.sleep(0.005)
    raise AssertionError(f"timed out waiting for {what}")


def payload(txn: int) -> dict:
    return {"t": "payload", "d": {"p": "proto", "kind": "prepare", "txn": txn}}


class TestChaosDelivery:
    def test_dropped_frames_never_deliver_and_are_traced(self):
        async def go():
            p1, p2 = free_ports(2)
            policy = ChaosPolicy(
                links=(ChaosRule(src=2, dst=1, kinds=("prepare",), drop=1.0),)
            )
            a = Harness(
                S1,
                p1,
                {S2: ("127.0.0.1", p2)},
                chaos=LinkChaos(policy, 1),
            )
            b = Harness(S2, p2, {S1: ("127.0.0.1", p1)})
            await a.transport.start()
            await b.transport.start()
            try:
                await wait_for(
                    lambda: a.transport.all_peers_seen()
                    and b.transport.all_peers_seen(),
                    what="mesh up",
                )
                b.transport.send(S1, payload(7))
                b.transport.send(
                    S1, {"t": "payload", "d": {"p": "proto", "kind": "ok"}}
                )
                await wait_for(lambda: a.frames, what="surviving frame")
                kinds = [f["d"]["kind"] for _, f in a.frames]
                assert kinds == ["ok"]  # the prepare died, order held
                assert a.transport.chaos_drops == 1
                assert "live.chaos_drop" in a.traces
            finally:
                await a.transport.stop()
                await b.transport.stop()

        asyncio.run(go())

    def test_delay_preserves_per_link_fifo(self):
        async def go():
            p1, p2 = free_ports(2)
            # Only "slow" frames are delayed; a later "fast" frame must
            # still arrive after them (FIFO per link is the contract).
            policy = ChaosPolicy(
                links=(
                    ChaosRule(src=2, dst=1, kinds=("slow",), delay_ms=150.0),
                )
            )
            a = Harness(
                S1, p1, {S2: ("127.0.0.1", p2)}, chaos=LinkChaos(policy, 1)
            )
            b = Harness(S2, p2, {S1: ("127.0.0.1", p1)})
            await a.transport.start()
            await b.transport.start()
            try:
                await wait_for(
                    lambda: a.transport.all_peers_seen()
                    and b.transport.all_peers_seen(),
                    what="mesh up",
                )
                b.transport.send(
                    S1, {"t": "payload", "d": {"p": "proto", "kind": "slow"}}
                )
                b.transport.send(
                    S1, {"t": "payload", "d": {"p": "proto", "kind": "fast"}}
                )
                await wait_for(lambda: len(a.frames) >= 2, what="both frames")
                kinds = [f["d"]["kind"] for _, f in a.frames]
                assert kinds == ["slow", "fast"]
                assert a.transport.chaos_delays >= 1
            finally:
                await a.transport.stop()
                await b.transport.stop()

        asyncio.run(go())


class TestSuspicionEpoch:
    def test_stale_delayed_frame_does_not_clear_suspicion(self):
        """Regression: clearing suspicion on *any* inbound frame.

        A frame that was already chaos-delayed in flight when the peer
        went quiet is stamped before the suspicion epoch; delivering it
        must not un-suspect the peer.  Only a frame that arrived at the
        socket after the suspicion was raised counts as proof of life.
        """

        async def go():
            p1, p2 = free_ports(2)
            # Site 1 drops site 2's heartbeats outright and delays its
            # protocol frames past the suspicion threshold.
            policy = ChaosPolicy(
                links=(
                    ChaosRule(src=2, dst=1, kinds=("@hb",), drop=1.0),
                    ChaosRule(
                        src=2, dst=1, kinds=("@payload",), delay_ms=500.0
                    ),
                )
            )
            a = Harness(
                S1,
                p1,
                {S2: ("127.0.0.1", p2)},
                hb_interval=0.05,
                suspect_after=0.25,
                chaos=LinkChaos(policy, 1),
            )
            b = Harness(S2, p2, {S1: ("127.0.0.1", p1)})
            await a.transport.start()
            await b.transport.start()
            try:
                await wait_for(
                    lambda: a.transport.all_peers_seen(), what="first contact"
                )
                # In flight before the silence is noticed...
                b.transport.send(S1, payload(1))
                await wait_for(
                    lambda: S2 in a.transport.suspected, what="suspicion"
                )
                epoch = a.transport.suspected_at[S2]
                # ...delivered after the epoch, stamped before it.
                await wait_for(lambda: a.frames, what="delayed delivery")
                assert S2 in a.transport.suspected, (
                    "stale pre-epoch frame cleared the suspicion"
                )
                assert "live.stale_liveness" in a.traces
                assert a.recoveries == []
                # Fresh evidence (socket arrival after the epoch) does
                # clear it — the detector still recovers.
                b.transport.send(S1, payload(2))
                await wait_for(
                    lambda: S2 not in a.transport.suspected,
                    what="recovery on fresh frame",
                )
                assert a.recoveries == [S2]
                assert a.transport.suspected_at.get(S2) is None
                assert a.transport.last_seen[S2] > epoch
            finally:
                await a.transport.stop()
                await b.transport.stop()

        asyncio.run(go())


class TestFlush:
    def test_flush_returns_once_outbox_drains(self):
        async def go():
            p1, p2 = free_ports(2)
            a = Harness(S1, p1, {S2: ("127.0.0.1", p2)})
            b = Harness(S2, p2, {S1: ("127.0.0.1", p1)})
            await a.transport.start()
            await b.transport.start()
            try:
                for txn in range(20):
                    a.transport.send(S2, payload(txn))
                await a.transport.flush(timeout=5.0)
                assert not any(a.transport._outbox.values())
            finally:
                await a.transport.stop()
                await b.transport.stop()

        asyncio.run(go())

    def test_flush_blocks_on_slow_durability_gate_without_polling(self):
        """The waiter resolves when the sender drains, not on a poll tick."""

        async def go():
            p1, p2 = free_ports(2)
            release = asyncio.Event()

            async def gate(lsn: int) -> None:
                await release.wait()

            a = Harness(S1, p1, {S2: ("127.0.0.1", p2)}, wait_durable=gate)
            b = Harness(S2, p2, {S1: ("127.0.0.1", p1)})
            await a.transport.start()
            await b.transport.start()
            try:
                a.transport.send(S2, payload(1), barrier=10)
                flusher = asyncio.create_task(a.transport.flush(timeout=5.0))
                await asyncio.sleep(0.05)
                assert not flusher.done()  # held by the barrier
                release.set()
                await asyncio.wait_for(flusher, timeout=2.0)
            finally:
                await a.transport.stop()
                await b.transport.stop()

        asyncio.run(go())

    def test_flush_timeout_reports_stuck_peer(self):
        async def go():
            p1, dead = free_ports(2)
            # Peer address nobody listens on: the outbox cannot drain.
            a = Harness(S1, p1, {S2: ("127.0.0.1", dead)})
            await a.transport.start()
            try:
                a.transport.send(S2, payload(1))
                with pytest.raises(LiveTimeoutError, match="flush timed out"):
                    await a.transport.flush(timeout=0.2)
                assert not a.transport._flush_waiters  # waiter cleaned up
            finally:
                await a.transport.stop()

        asyncio.run(go())

    def test_flush_timer_is_cancelled_on_success(self):
        """The deadline timer must not linger after a clean flush."""

        async def go():
            p1, p2 = free_ports(2)
            a = Harness(S1, p1, {S2: ("127.0.0.1", p2)})
            b = Harness(S2, p2, {S1: ("127.0.0.1", p1)})
            await a.transport.start()
            await b.transport.start()
            try:
                a.transport.send(S2, payload(1))
                await a.transport.flush(timeout=0.3)
                # Outlive the timeout: a leaked timer would fire into a
                # resolved waiter (and a bug there would raise).
                await asyncio.sleep(0.4)
                assert not a.transport._flush_waiters
            finally:
                await a.transport.stop()
                await b.transport.stop()

        asyncio.run(go())
