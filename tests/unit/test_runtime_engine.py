"""Unit tests for the FSA interpreter engine (in isolation)."""

import pytest

from repro.errors import TransitionError
from repro.fsa.messages import EXTERNAL, Msg
from repro.protocols.three_phase_central import central_three_phase
from repro.protocols.two_phase_central import central_two_phase
from repro.runtime.engine import Engine
from repro.runtime.log import DTLog
from repro.runtime.policies import FixedVotes, UnanimousYes
from repro.types import Outcome, SiteId, Vote


class Harness:
    """Drives one automaton's engine without a network."""

    def __init__(self, automaton, policy=None):
        self.sent = []
        self.finals = []
        self.traces = []
        self.log = DTLog()
        self.clock = [0.0]
        self.engine = Engine(
            automaton=automaton,
            vote_policy=policy or UnanimousYes(),
            log=self.log,
            send=self.sent.append,
            now=lambda: self.clock[0],
            on_final=lambda outcome, via: self.finals.append((outcome, via)),
            on_trace=lambda category, detail, **data: self.traces.append(category),
        )

    def feed(self, *msgs):
        for msg in msgs:
            self.engine.receive(msg)


def coordinator_2pc(n=3):
    return central_two_phase(n).automaton(SiteId(1))


def slave_2pc(n=3):
    return central_two_phase(n).automaton(SiteId(2))


def coordinator_3pc(n=3):
    return central_three_phase(n).automaton(SiteId(1))


REQUEST = Msg("request", EXTERNAL, SiteId(1))
XACT = Msg("xact", SiteId(1), SiteId(2))


class TestBasicExecution:
    def test_starts_in_initial_state(self):
        h = Harness(coordinator_2pc())
        assert h.engine.state == "q"
        assert not h.engine.finished

    def test_transition_fires_on_read_set(self):
        h = Harness(coordinator_2pc())
        h.feed(REQUEST)
        assert h.engine.state == "w"
        assert [m.kind for m in h.sent] == ["xact", "xact"]

    def test_waits_for_full_read_set(self):
        h = Harness(coordinator_2pc())
        h.feed(REQUEST, Msg("yes", SiteId(2), SiteId(1)))
        assert h.engine.state == "w"  # Still missing site 3's vote.
        h.feed(Msg("yes", SiteId(3), SiteId(1)))
        assert h.engine.state == "c"

    def test_decision_fanout_sent(self):
        h = Harness(coordinator_2pc())
        h.feed(
            REQUEST,
            Msg("yes", SiteId(2), SiteId(1)),
            Msg("yes", SiteId(3), SiteId(1)),
        )
        assert [m.kind for m in h.sent[-2:]] == ["commit", "commit"]

    def test_final_callback_and_outcome(self):
        h = Harness(slave_2pc())
        h.feed(XACT, Msg("commit", SiteId(1), SiteId(2)))
        assert h.engine.finished
        assert h.engine.outcome is Outcome.COMMIT
        assert h.finals == [(Outcome.COMMIT, "protocol")]

    def test_out_of_order_delivery_buffers(self):
        # Votes arriving before the request: buffered, then consumed.
        h = Harness(coordinator_2pc())
        h.feed(Msg("yes", SiteId(2), SiteId(1)), Msg("yes", SiteId(3), SiteId(1)))
        assert h.engine.state == "q"
        h.feed(REQUEST)
        assert h.engine.state == "c"

    def test_transitions_fired_counter(self):
        h = Harness(slave_2pc())
        h.feed(XACT, Msg("commit", SiteId(1), SiteId(2)))
        assert h.engine.transitions_fired == 2


class TestVoteResolution:
    def test_yes_policy_moves_to_wait(self):
        h = Harness(slave_2pc(), policy=UnanimousYes())
        h.feed(XACT)
        assert h.engine.state == "w"
        assert h.sent[0].kind == "yes"

    def test_no_policy_aborts_unilaterally(self):
        h = Harness(slave_2pc(), policy=FixedVotes({SiteId(2): Vote.NO}))
        h.feed(XACT)
        assert h.engine.state == "a"
        assert h.engine.outcome is Outcome.ABORT
        assert h.sent[0].kind == "no"

    def test_vote_logged_before_messages_sent(self):
        h = Harness(slave_2pc())
        h.feed(XACT)
        vote = h.log.vote()
        assert vote is not None and vote.vote is Vote.YES

    def test_coordinator_unilateral_no(self):
        h = Harness(coordinator_2pc(), policy=FixedVotes({SiteId(1): Vote.NO}))
        h.feed(
            REQUEST,
            Msg("yes", SiteId(2), SiteId(1)),
            Msg("yes", SiteId(3), SiteId(1)),
        )
        assert h.engine.state == "a"
        assert [m.kind for m in h.sent[-2:]] == ["abort", "abort"]

    def test_ambiguous_transitions_raise(self):
        # Craft an automaton with two enabled un-voted transitions that
        # disagree: the engine must refuse to guess.
        from repro.fsa.automaton import SiteAutomaton, Transition

        site = SiteId(1)
        automaton = SiteAutomaton(
            site=site,
            role="x",
            initial="q",
            commit_states=["c"],
            abort_states=["a"],
            transitions=[
                Transition("q", "c", frozenset({Msg("m", EXTERNAL, site)})),
                Transition("q", "a", frozenset({Msg("m", EXTERNAL, site)})),
            ],
        )
        h = Harness(automaton)
        with pytest.raises(TransitionError, match="ambiguous"):
            h.feed(Msg("m", EXTERNAL, site))


class TestDecisionLogging:
    def test_decision_logged_on_final_entry(self):
        h = Harness(slave_2pc())
        h.feed(XACT, Msg("abort", SiteId(1), SiteId(2)))
        decision = h.log.decision()
        assert decision.outcome is Outcome.ABORT
        assert decision.via == "protocol"

    def test_coordinator_logs_commit_before_fanout(self):
        h = Harness(coordinator_2pc())
        h.feed(
            REQUEST,
            Msg("yes", SiteId(2), SiteId(1)),
            Msg("yes", SiteId(3), SiteId(1)),
        )
        assert h.log.decision().outcome is Outcome.COMMIT


class TestPartialCrash:
    def test_partial_send_stops_after_prefix(self):
        h = Harness(coordinator_2pc())
        crashed = []
        h.engine.arm_partial_crash(2, after_writes=1, crash=lambda: crashed.append(True))
        h.feed(
            REQUEST,
            Msg("yes", SiteId(2), SiteId(1)),
            Msg("yes", SiteId(3), SiteId(1)),
        )
        # Transition 2 (w->c): only 1 of 2 commit messages got out.
        assert crashed == [True]
        assert [m.kind for m in h.sent] == ["xact", "xact", "commit"]

    def test_state_does_not_advance_on_partial_crash(self):
        h = Harness(coordinator_2pc())
        h.engine.arm_partial_crash(2, after_writes=0, crash=h.engine.halt)
        h.feed(
            REQUEST,
            Msg("yes", SiteId(2), SiteId(1)),
            Msg("yes", SiteId(3), SiteId(1)),
        )
        assert h.engine.state == "w"

    def test_decision_logged_even_if_sends_cut_short(self):
        # Write-ahead: the commit record is forced before transmission.
        h = Harness(coordinator_2pc())
        h.engine.arm_partial_crash(2, after_writes=0, crash=h.engine.halt)
        h.feed(
            REQUEST,
            Msg("yes", SiteId(2), SiteId(1)),
            Msg("yes", SiteId(3), SiteId(1)),
        )
        assert h.log.decision().outcome is Outcome.COMMIT

    def test_halted_engine_ignores_messages(self):
        h = Harness(slave_2pc())
        h.engine.halt()
        h.feed(XACT)
        assert h.engine.state == "q"
        assert h.sent == []


class TestForcedMoves:
    def test_force_state(self):
        h = Harness(coordinator_3pc())
        h.feed(REQUEST)
        h.engine.force_state("p")
        assert h.engine.state == "p"

    def test_force_unknown_state_raises(self):
        h = Harness(coordinator_3pc())
        with pytest.raises(TransitionError, match="unknown state"):
            h.engine.force_state("zzz")

    def test_force_state_on_finished_engine_is_noop(self):
        h = Harness(slave_2pc())
        h.feed(XACT, Msg("commit", SiteId(1), SiteId(2)))
        h.engine.force_state("q")
        assert h.engine.state == "c"

    def test_force_outcome_commit(self):
        h = Harness(coordinator_3pc())
        h.feed(REQUEST)
        h.engine.force_outcome(Outcome.COMMIT, via="termination")
        assert h.engine.state == "c"
        assert h.log.decision().via == "termination"
        assert h.finals == [(Outcome.COMMIT, "termination")]

    def test_force_outcome_non_final_raises(self):
        h = Harness(coordinator_3pc())
        with pytest.raises(TransitionError):
            h.engine.force_outcome(Outcome.BLOCKED, via="x")

    def test_force_outcome_idempotent_when_finished(self):
        h = Harness(slave_2pc())
        h.feed(XACT, Msg("commit", SiteId(1), SiteId(2)))
        h.engine.force_outcome(Outcome.ABORT, via="termination")  # Ignored.
        assert h.engine.outcome is Outcome.COMMIT
