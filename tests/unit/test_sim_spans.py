"""Unit tests for causal span reconstruction (repro.sim.spans)."""

import pytest

from repro.protocols import catalog
from repro.runtime.harness import CommitRun
from repro.sim.spans import SpanIndex
from repro.sim.tracing import TraceLog
from repro.workload.crashes import CrashAt


class TestSpanIndexSynthetic:
    def _trace(self):
        log = TraceLog()
        log.record(0.0, "net.send", "#0 1->2: m", site=1, msg_id=0, src=1, dst=2)
        log.record(1.5, "net.deliver", "#0 1->2: m", site=2, msg_id=0, src=1, dst=2, sent_at=0.0)
        log.record(2.0, "net.send", "#1 2->3: m", site=2, msg_id=1, src=2, dst=3)
        log.record(3.0, "net.drop", "#1 2->3: m", site=3, msg_id=1, src=2, dst=3, sent_at=2.0)
        log.record(4.0, "net.send", "#2 1->3: m", site=1, msg_id=2, src=1, dst=3)
        return log

    def test_delivered_span_latency(self):
        span = SpanIndex.from_trace(self._trace()).span(0)
        assert span.status == "delivered"
        assert span.latency == 1.5
        assert (span.src, span.dst) == (1, 2)

    def test_dropped_span(self):
        span = SpanIndex.from_trace(self._trace()).span(1)
        assert span.status == "dropped"
        assert span.latency == 1.0  # Transit time until the drop.

    def test_inflight_span(self):
        span = SpanIndex.from_trace(self._trace()).span(2)
        assert span.status == "inflight"
        assert span.latency is None

    def test_status_queries(self):
        index = SpanIndex.from_trace(self._trace())
        assert [s.msg_id for s in index.delivered()] == [0]
        assert [s.msg_id for s in index.dropped()] == [1]
        assert [s.msg_id for s in index.inflight()] == [2]
        assert len(index) == 3

    def test_latencies_cover_delivered_only(self):
        assert SpanIndex.from_trace(self._trace()).latencies() == [1.5]

    def test_site_order_interleaves_sends_and_receives(self):
        index = SpanIndex.from_trace(self._trace())
        assert index.site_order(2) == [(1.5, "recv", 0), (2.0, "send", 1)]
        assert index.site_order(1) == [(0.0, "send", 0), (4.0, "send", 2)]

    def test_missing_span(self):
        assert SpanIndex.from_trace(self._trace()).span(99) is None

    def test_terminal_without_send_recovers_sent_at(self):
        # A ring-bounded trace may have evicted the send entry; the
        # terminal event's sent_at still yields a full span.
        log = TraceLog()
        log.record(9.0, "net.deliver", "#7 1->2: m", site=2, msg_id=7, src=1, dst=2, sent_at=8.0)
        span = SpanIndex.from_trace(log).span(7)
        assert span.status == "delivered"
        assert span.latency == pytest.approx(1.0)
        assert span.src == 1

    def test_describe_mentions_id_status_latency(self):
        text = SpanIndex.from_trace(self._trace()).span(0).describe()
        assert "#0" in text and "delivered" in text and "latency=1.5" in text


class TestSpanIndexFromRuns:
    def test_happy_run_all_spans_delivered(self):
        spec = catalog.build("3pc-central", 3)
        run = CommitRun(spec).execute()
        index = SpanIndex.from_trace(run.trace)
        assert len(index) == run.messages_sent
        assert len(index.delivered()) == run.messages_delivered
        assert index.dropped() == []
        assert all(latency > 0 for latency in index.latencies())

    def test_crash_run_reconstructs_dropped_spans(self):
        spec = catalog.build("3pc-central", 4)
        run = CommitRun(spec, crashes=[CrashAt(site=1, at=2.0)]).execute()
        index = SpanIndex.from_trace(run.trace)
        dropped = index.dropped()
        assert len(dropped) == run.messages_dropped
        assert all(span.dst == 1 for span in dropped)
        assert all(span.status == "dropped" for span in dropped)

    def test_partition_run_marks_partition_drops(self):
        spec = catalog.build("3pc-central", 4)
        run = CommitRun(
            spec,
            partition_at=1.5,
            partition_groups=[{1, 2}, {3, 4}],
        ).execute()
        index = SpanIndex.from_trace(run.trace)
        cross = [s for s in index.all() if s.status == "partition_drop"]
        assert cross, "expected cross-partition messages to be dropped"
        assert all(
            (span.src in {1, 2}) != (span.dst in {1, 2}) for span in cross
        )

    def test_round_trip_preserves_spans(self):
        spec = catalog.build("3pc-central", 4)
        run = CommitRun(spec, crashes=[CrashAt(site=1, at=2.0)]).execute()
        restored = TraceLog.from_jsonl(run.trace.to_jsonl())
        original = SpanIndex.from_trace(run.trace)
        reloaded = SpanIndex.from_trace(restored)
        assert len(reloaded) == len(original)
        assert reloaded.latencies() == original.latencies()
