"""Schedule identity, choice model, and replay-artifact format."""

from __future__ import annotations

import json

import pytest

from repro.errors import ExploreConfigError, ReplayDivergenceError
from repro.explore import (
    Choice,
    ChoiceController,
    ExploreConfig,
    ReplayArtifact,
    schedule_hash,
    strip_defaults,
)


# ----------------------------------------------------------------------
# Choice / prefix canonicalization
# ----------------------------------------------------------------------


def test_choice_validates_index_and_arity():
    Choice("order", 0, 1)
    Choice("order", 2, 3)
    with pytest.raises(ExploreConfigError):
        Choice("order", 3, 3)
    with pytest.raises(ExploreConfigError):
        Choice("order", -1, 3)
    with pytest.raises(ExploreConfigError):
        Choice("order", 0, 0)


def test_choice_json_round_trip():
    choice = Choice("crash:2", 1, 2)
    assert Choice.from_json(choice.to_json()) == choice


def test_strip_defaults_drops_only_trailing():
    c0 = Choice("order", 0, 3)
    c1 = Choice("order", 1, 3)
    assert strip_defaults(()) == ()
    assert strip_defaults((c0, c0)) == ()
    assert strip_defaults((c0, c1, c0, c0)) == (c0, c1)
    assert strip_defaults((c1,)) == (c1,)


def test_controller_defaults_and_trail():
    controller = ChoiceController()
    assert controller.choose("order", 3) == 0
    assert controller.choose("crash:1", 2) == 0
    assert [c.describe() for c in controller.trail] == [
        "order=0/3",
        "crash:1=0/2",
    ]


def test_controller_forces_prefix_then_defaults():
    prefix = (Choice("order", 2, 3), Choice("crash:1", 1, 2))
    controller = ChoiceController(prefix=prefix)
    assert controller.choose("order", 3) == 2
    assert controller.choose("crash:1", 2) == 1
    assert controller.choose("order", 3) == 0  # beyond prefix: default
    assert controller.finished_prefix()


def test_controller_tolerant_clamps_divergent_prefix():
    # Recorded index 2 of arity 3, but live arity is only 2.
    controller = ChoiceController(prefix=(Choice("order", 2, 3),))
    assert controller.choose("order", 2) == 0  # 2 % 2
    assert controller.trail[0] == Choice("order", 0, 2)


@pytest.mark.parametrize(
    "point,arity",
    [("crash:1", 3), ("order", 2)],
)
def test_controller_strict_raises_on_divergence(point, arity):
    controller = ChoiceController(
        prefix=(Choice("order", 2, 3),), strict=True
    )
    with pytest.raises(ReplayDivergenceError):
        controller.choose(point, arity)


def test_controller_strict_accepts_exact_replay():
    prefix = (Choice("order", 2, 3), Choice("partition", 0, 4))
    controller = ChoiceController(prefix=prefix, strict=True)
    assert controller.choose("order", 3) == 2
    assert controller.choose("partition", 4) == 0


# ----------------------------------------------------------------------
# ExploreConfig
# ----------------------------------------------------------------------


def test_config_validation():
    with pytest.raises(ExploreConfigError):
        ExploreConfig(protocol="3pc-central", n_sites=1)
    with pytest.raises(ExploreConfigError):
        ExploreConfig(protocol="3pc-central", n_sites=3, budget=0)
    with pytest.raises(ExploreConfigError):
        ExploreConfig(protocol="3pc-central", n_sites=3, mode="bogus")
    with pytest.raises(ExploreConfigError):
        ExploreConfig(protocol="3pc-central", n_sites=3, shards=0)
    with pytest.raises(ExploreConfigError):
        ExploreConfig(protocol="3pc-central", n_sites=3, max_branch=1)


def test_config_json_round_trip_and_unknown_keys():
    config = ExploreConfig(
        protocol="3pc-central", n_sites=3, seed=7, mutant="skip-buffer"
    )
    assert ExploreConfig.from_json(config.to_json()) == config
    with pytest.raises(ExploreConfigError):
        ExploreConfig.from_json({**config.to_json(), "bogus": 1})


def test_schedule_hash_ignores_exploration_bookkeeping():
    base = ExploreConfig(protocol="3pc-central", n_sites=3, seed=7)
    rebudgeted = ExploreConfig(
        protocol="3pc-central",
        n_sites=3,
        seed=7,
        budget=999,
        shards=8,
        mode="random",
    )
    reseeded = ExploreConfig(protocol="3pc-central", n_sites=3, seed=8)
    prefix = (Choice("order", 1, 2),)
    assert schedule_hash(base, prefix) == schedule_hash(rebudgeted, prefix)
    assert schedule_hash(base, prefix) != schedule_hash(reseeded, prefix)
    assert schedule_hash(base, prefix) != schedule_hash(base, ())


# ----------------------------------------------------------------------
# ReplayArtifact
# ----------------------------------------------------------------------


def _artifact() -> ReplayArtifact:
    return ReplayArtifact(
        config=ExploreConfig(protocol="3pc-central", n_sites=3, seed=7),
        schedule=(Choice("order", 1, 2), Choice("crash:2", 1, 2)),
        expect_verdict="violation",
        expect_kinds=("atomicity",),
        note="test artifact",
    )


def test_artifact_round_trip(tmp_path):
    artifact = _artifact()
    path = tmp_path / "artifact.json"
    artifact.save(str(path))
    assert ReplayArtifact.load(str(path)) == artifact


def test_artifact_serialization_is_deterministic():
    assert _artifact().to_json() == _artifact().to_json()
    record = json.loads(_artifact().to_json())
    assert record["schema"] == 1
    assert record["kind"] == "repro.explore.replay"


def test_artifact_rejects_tampered_schedule():
    record = json.loads(_artifact().to_json())
    record["schedule"][0]["index"] = 0  # hash no longer matches
    with pytest.raises(ExploreConfigError, match="hash mismatch"):
        ReplayArtifact.from_json(json.dumps(record))


def test_artifact_note_is_not_identity():
    # Provenance notes are editable without invalidating the hash.
    record = json.loads(_artifact().to_json())
    record["note"] = "edited after the fact"
    assert ReplayArtifact.from_json(json.dumps(record)).hash == _artifact().hash


def test_artifact_rejects_wrong_kind_and_schema():
    record = json.loads(_artifact().to_json())
    record["kind"] = "something-else"
    with pytest.raises(ExploreConfigError, match="not a replay artifact"):
        ReplayArtifact.from_json(json.dumps(record))
    record = json.loads(_artifact().to_json())
    record["schema"] = 99
    del record["hash"]
    with pytest.raises(ExploreConfigError, match="schema"):
        ReplayArtifact.from_json(json.dumps(record))


def test_artifact_rejects_bad_verdict():
    with pytest.raises(ExploreConfigError):
        ReplayArtifact(
            config=ExploreConfig(protocol="3pc-central", n_sites=3),
            schedule=(),
            expect_verdict="maybe",
        )
