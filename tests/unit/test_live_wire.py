"""Wire-format round-trips and rejection paths (`repro.live.wire`)."""

from __future__ import annotations

import asyncio
import json
import struct

import pytest

from repro.errors import FrameError
from repro.live.wire import (
    MAX_FRAME,
    FrameDecoder,
    decode_frame_bytes,
    decode_payload,
    encode_frame,
    encode_payload,
    read_frame,
    stamp_trace_context,
    trace_context,
)
from repro.runtime.messages import (
    OutcomeQuery,
    OutcomeReply,
    ProtoMsg,
    TermAck,
    TermBlocked,
    TermDecision,
    TermMoveTo,
    TermStateQuery,
    TermStateReply,
)
from repro.types import Outcome, SiteId


def _read(data: bytes):
    """Run read_frame against an in-memory stream fed with `data` + EOF."""

    async def go():
        reader = asyncio.StreamReader()
        reader.feed_data(data)
        reader.feed_eof()
        return await read_frame(reader)

    return asyncio.run(go())


class TestFrameLayer:
    def test_round_trip(self):
        frame = {"t": "begin", "txn": 7, "wait": True}
        obj, rest = decode_frame_bytes(encode_frame(frame))
        assert obj == frame
        assert rest == b""

    def test_deterministic_encoding(self):
        a = encode_frame({"b": 1, "a": 2})
        b = encode_frame({"a": 2, "b": 1})
        assert a == b  # sorted keys

    def test_two_frames_concatenated(self):
        data = encode_frame({"t": "hb"}) + encode_frame({"t": "hello", "site": 2})
        first, rest = decode_frame_bytes(data)
        second, rest = decode_frame_bytes(rest)
        assert first == {"t": "hb"}
        assert second == {"t": "hello", "site": 2}
        assert rest == b""

    def test_oversized_frame_rejected_on_encode(self):
        with pytest.raises(FrameError):
            encode_frame({"blob": "x" * (MAX_FRAME + 1)})

    def test_oversized_length_prefix_rejected_on_decode(self):
        data = struct.pack(">I", MAX_FRAME + 1) + b"{}"
        with pytest.raises(FrameError):
            decode_frame_bytes(data)

    def test_zero_length_frame_rejected_on_decode(self):
        # A frame body is always at least "{}" — a zero-length prefix
        # is corruption, and must say so rather than surface a JSON
        # parse error (or, worse, an empty frame).
        with pytest.raises(FrameError, match="zero-length"):
            decode_frame_bytes(struct.pack(">I", 0) + b"{}")

    def test_zero_length_frame_rejected_by_read_frame(self):
        with pytest.raises(FrameError, match="zero-length"):
            _read(struct.pack(">I", 0))

    def test_truncated_frame_rejected(self):
        data = encode_frame({"t": "hb"})[:-1]
        with pytest.raises(FrameError):
            decode_frame_bytes(data)

    def test_non_object_body_rejected(self):
        body = json.dumps([1, 2, 3]).encode()
        data = struct.pack(">I", len(body)) + body
        with pytest.raises(FrameError):
            decode_frame_bytes(data)

    def test_read_frame_clean_eof_returns_none(self):
        assert _read(b"") is None

    def test_read_frame_round_trip(self):
        assert _read(encode_frame({"t": "status", "txn": 1})) == {
            "t": "status",
            "txn": 1,
        }

    def test_read_frame_torn_prefix(self):
        with pytest.raises(FrameError):
            _read(b"\x00\x00")

    def test_read_frame_torn_body(self):
        with pytest.raises(FrameError):
            _read(encode_frame({"t": "hb"})[:-2])

    def test_read_frame_garbage_json(self):
        data = struct.pack(">I", 4) + b"}{}{"
        with pytest.raises(FrameError):
            _read(data)


class TestFrameDecoder:
    """The receive-side complement of sender coalescing."""

    def test_coalesced_batch_splits_in_order(self):
        frames = [{"t": "payload", "txn": n} for n in range(5)]
        data = b"".join(encode_frame(f) for f in frames)
        decoder = FrameDecoder()
        assert decoder.feed(data) == frames
        assert decoder.pending == 0

    def test_byte_by_byte_delivery(self):
        frame = {"t": "hello", "site": 3}
        data = encode_frame(frame)
        decoder = FrameDecoder()
        for byte in data[:-1]:
            assert decoder.feed(bytes([byte])) == []
        assert decoder.feed(data[-1:]) == [frame]

    def test_partial_frame_stays_pending_across_feeds(self):
        first, second = {"t": "hb"}, {"t": "begin", "txn": 9}
        data = encode_frame(first) + encode_frame(second)
        split = len(encode_frame(first)) + 3  # mid-second-frame
        decoder = FrameDecoder()
        assert decoder.feed(data[:split]) == [first]
        assert decoder.pending == 3
        assert decoder.feed(data[split:]) == [second]
        assert decoder.pending == 0

    def test_oversized_length_prefix_rejected(self):
        decoder = FrameDecoder()
        with pytest.raises(FrameError):
            decoder.feed(struct.pack(">I", MAX_FRAME + 1) + b"{}")

    def test_zero_length_frame_rejected(self):
        decoder = FrameDecoder()
        with pytest.raises(FrameError, match="zero-length"):
            decoder.feed(struct.pack(">I", 0))

    def test_garbage_json_rejected(self):
        decoder = FrameDecoder()
        with pytest.raises(FrameError):
            decoder.feed(struct.pack(">I", 4) + b"}{}{")

    def test_non_object_body_rejected(self):
        body = json.dumps([1]).encode()
        decoder = FrameDecoder()
        with pytest.raises(FrameError):
            decoder.feed(struct.pack(">I", len(body)) + body)

    def test_hwm_tracks_largest_backlog(self):
        frame = {"t": "payload", "txn": 1, "d": {"p": "proto", "kind": "x"}}
        data = encode_frame(frame)
        decoder = FrameDecoder()
        assert decoder.hwm == 0
        decoder.feed(data[:7])
        assert decoder.hwm == 7  # partial frame buffered
        decoder.feed(data[7:])
        assert decoder.hwm == len(data)  # peak, even though drained
        assert decoder.pending == 0
        decoder.feed(data[:2])
        assert decoder.hwm == len(data)  # monotonic: never shrinks

    def test_hwm_counts_coalesced_batch(self):
        frames = [{"t": "hb", "n": i} for i in range(4)]
        data = b"".join(encode_frame(f) for f in frames)
        decoder = FrameDecoder()
        decoder.feed(data)
        assert decoder.hwm == len(data)


PAYLOADS = [
    ProtoMsg("prepare"),
    ProtoMsg("ro"),  # the read-only one-phase exit's phase-1 reply
    TermMoveTo(SiteId(2), "p", 3),
    TermAck(3),
    TermDecision(Outcome.COMMIT, 1),
    TermBlocked(2),
    TermStateQuery(SiteId(3), 4),
    TermStateReply("w", Outcome.UNDECIDED, 4),
    OutcomeQuery(),
    OutcomeReply(Outcome.ABORT, recovered_in_doubt=True),
]


class TestPayloadCodec:
    @pytest.mark.parametrize("payload", PAYLOADS, ids=lambda p: type(p).__name__)
    def test_round_trip(self, payload):
        assert decode_payload(encode_payload(payload)) == payload

    @pytest.mark.parametrize("payload", PAYLOADS, ids=lambda p: type(p).__name__)
    def test_json_safe(self, payload):
        # The encoded dict must survive a JSON round-trip unchanged.
        encoded = encode_payload(payload)
        assert json.loads(json.dumps(encoded)) == encoded

    def test_unknown_type_rejected(self):
        with pytest.raises(FrameError):
            encode_payload(object())  # type: ignore[arg-type]

    def test_unknown_tag_rejected(self):
        with pytest.raises(FrameError):
            decode_payload({"p": "no-such-tag"})

    def test_missing_field_rejected(self):
        with pytest.raises(FrameError):
            decode_payload({"p": "term-move-to", "backup": 1})

    def test_bad_outcome_rejected(self):
        with pytest.raises(FrameError):
            decode_payload({"p": "term-decision", "outcome": "maybe", "round": 1})

    def test_outcome_reply_in_doubt_defaults_false(self):
        decoded = decode_payload({"p": "outcome-reply", "outcome": "commit"})
        assert decoded == OutcomeReply(Outcome.COMMIT, recovered_in_doubt=False)


class TestTraceContext:
    """Span context stamped into frames and recovered on the far side."""

    def test_round_trip_through_codec(self):
        frame = stamp_trace_context(
            {"t": "payload", "txn": 7, "d": encode_payload(ProtoMsg("prepare"))},
            span_id=1_000_000_042,
            parent=2_000_000_007,
        )
        decoded, rest = decode_frame_bytes(encode_frame(frame))
        assert rest == b""
        assert trace_context(decoded) == (1_000_000_042, 2_000_000_007)
        assert decode_payload(decoded["d"]) == ProtoMsg("prepare")

    def test_root_span_omits_parent_key(self):
        frame = stamp_trace_context({"t": "external", "txn": 1, "kind": "x"}, 9)
        assert "pid" not in frame
        decoded, _ = decode_frame_bytes(encode_frame(frame))
        assert trace_context(decoded) == (9, None)

    def test_unstamped_frame_has_no_context(self):
        assert trace_context({"t": "hb"}) == (None, None)

    def test_context_survives_reconnect_redelivery(self):
        # The transport's peek-then-pop outbox re-sends a frame whose
        # connection died mid-write.  The torn half buffers in the old
        # connection's decoder (discarded with it); the fresh
        # connection re-delivers the whole frame, trace context intact.
        frame = stamp_trace_context(
            {"t": "payload", "txn": 3, "d": encode_payload(ProtoMsg("commit"))},
            span_id=5_000_000_001,
            parent=5_000_000_000,
        )
        data = encode_frame(frame)
        torn = FrameDecoder()
        assert torn.feed(data[: len(data) // 2]) == []  # connection dies here
        fresh = FrameDecoder()
        (redelivered,) = fresh.feed(data)
        assert trace_context(redelivered) == (5_000_000_001, 5_000_000_000)

    def test_context_survives_split_across_coalesced_feeds(self):
        frames = [
            stamp_trace_context(
                {"t": "payload", "txn": n, "d": encode_payload(ProtoMsg("ack"))},
                span_id=100 + n,
            )
            for n in range(3)
        ]
        data = b"".join(encode_frame(f) for f in frames)
        decoder = FrameDecoder()
        out = decoder.feed(data[:-4]) + decoder.feed(data[-4:])
        assert [trace_context(f)[0] for f in out] == [100, 101, 102]
