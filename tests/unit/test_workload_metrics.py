"""Unit tests for the workload generator and metric primitives."""

import pytest

from repro.metrics.collector import Counter, StatSeries
from repro.metrics.tables import Table
from repro.protocols import catalog
from repro.workload.crashes import CrashAt, CrashDuringTransition
from repro.workload.generator import WorkloadGenerator


class TestWorkloadGenerator:
    @pytest.fixture(scope="class")
    def generator(self):
        return WorkloadGenerator(
            catalog.build("3pc-central", 3), seed=11, p_no=0.2, p_crash=0.4
        )

    def test_reproducible_campaigns(self, generator):
        first = list(generator.transactions(10))
        second = list(generator.transactions(10))
        assert first == second

    def test_different_seeds_differ(self):
        spec = catalog.build("3pc-central", 3)
        rule = WorkloadGenerator(spec, seed=1).rule
        a = list(WorkloadGenerator(spec, seed=1, rule=rule).transactions(10))
        b = list(WorkloadGenerator(spec, seed=2, rule=rule).transactions(10))
        assert a != b

    def test_votes_cover_all_sites(self, generator):
        for txn in generator.transactions(5):
            assert set(txn.votes) == {1, 2, 3}

    def test_crash_sites_are_participants(self, generator):
        for txn in generator.transactions(30):
            for crash in txn.crashes:
                assert crash.site in (1, 2, 3)

    def test_zero_crash_probability(self):
        spec = catalog.build("2pc-central", 3)
        gen = WorkloadGenerator(spec, seed=1, p_crash=0.0)
        assert all(not txn.crashes for txn in gen.transactions(20))

    def test_run_executes_transaction(self, generator):
        txn = next(iter(generator.transactions(1)))
        result = generator.run(txn)
        assert result.n_sites == 3

    def test_campaign_length(self, generator):
        assert len(generator.campaign(4)) == 4

    def test_describe_mentions_votes(self, generator):
        txn = next(iter(generator.transactions(1)))
        assert "votes[" in txn.describe()


class TestCounter:
    def test_add_and_get(self):
        counter = Counter()
        counter.add("a")
        counter.add("a", 2)
        assert counter.get("a") == 3
        assert counter.get("missing") == 0

    def test_total_and_fraction(self):
        counter = Counter()
        counter.add("x", 3)
        counter.add("y", 1)
        assert counter.total == 4
        assert counter.fraction("x") == 0.75

    def test_empty_fraction_is_zero(self):
        assert Counter().fraction("x") == 0.0

    def test_as_dict_sorted(self):
        counter = Counter()
        counter.add("b")
        counter.add("a")
        assert list(counter.as_dict()) == ["a", "b"]


class TestStatSeries:
    def test_mean_min_max(self):
        series = StatSeries([1.0, 2.0, 3.0])
        assert series.mean == 2.0
        assert series.minimum == 1.0
        assert series.maximum == 3.0

    def test_empty_series_degrades_gracefully(self):
        series = StatSeries()
        assert series.mean == 0.0
        assert series.percentile(50) == 0.0

    def test_stddev(self):
        series = StatSeries([2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0])
        assert series.stddev == pytest.approx(2.0)

    def test_stddev_single_value_zero(self):
        assert StatSeries([5.0]).stddev == 0.0

    def test_percentiles(self):
        series = StatSeries(float(i) for i in range(1, 101))
        assert series.percentile(50) == 50.0
        assert series.percentile(99) == 99.0
        assert series.percentile(100) == 100.0

    def test_percentile_bounds_checked(self):
        with pytest.raises(ValueError):
            StatSeries([1.0]).percentile(101)
        with pytest.raises(ValueError):
            StatSeries([1.0]).percentile(-1)

    def test_percentile_nearest_rank_single_value(self):
        # With one observation every percentile is that observation.
        series = StatSeries([42.0])
        for q in (0, 1, 50, 99, 100):
            assert series.percentile(q) == 42.0

    def test_percentile_zero_is_minimum(self):
        # q=0 is defined as the minimum, not an incidental rank clamp.
        series = StatSeries([5.0, 1.0, 9.0])
        assert series.percentile(0) == 1.0
        assert series.percentile(0) == series.minimum

    def test_percentile_hundred_is_maximum(self):
        series = StatSeries([5.0, 1.0, 9.0])
        assert series.percentile(100) == 9.0
        assert series.percentile(100) == series.maximum

    def test_percentile_duplicates_counted_per_occurrence(self):
        # Nearest-rank over [1, 1, 9]: rank(50) = ceil(1.5) = 2 -> 1.0.
        series = StatSeries([1.0, 1.0, 9.0])
        assert series.percentile(50) == 1.0
        assert series.percentile(67) == 9.0

    def test_percentile_result_is_an_observed_value(self):
        # Nearest-rank never interpolates.
        series = StatSeries([1.0, 2.0, 4.0, 8.0])
        for q in range(0, 101, 5):
            assert series.percentile(q) in series.values

    def test_summary_keys(self):
        summary = StatSeries([1.0, 2.0]).summary()
        assert set(summary) == {"n", "mean", "min", "p50", "p99", "max"}

    def test_add_and_extend(self):
        series = StatSeries()
        series.add(1.0)
        series.extend([2.0, 3.0])
        assert len(series) == 3


class TestTable:
    def test_render_aligns_columns(self):
        table = Table(["name", "value"], title="t")
        table.add_row("a", 1)
        table.add_row("long-name", 22)
        lines = table.render().splitlines()
        assert lines[0] == "t"
        assert all("|" in line for line in lines[1:] if "-+-" not in line)

    def test_arity_checked(self):
        table = Table(["a", "b"])
        with pytest.raises(ValueError):
            table.add_row(1)

    def test_bool_formatting(self):
        table = Table(["x"])
        table.add_row(True)
        table.add_row(False)
        assert table.rows == [["yes"], ["no"]]

    def test_float_formatting(self):
        table = Table(["x"])
        table.add_row(3.14159265)
        assert table.rows == [["3.142"]]
