"""Cluster-trace stitching: determinism, orphan hygiene, CLI contract."""

from __future__ import annotations

import asyncio
import json
from pathlib import Path

import pytest

from repro.cli import main
from repro.errors import EXIT_OK, EXIT_VIOLATION, LiveConfigError
from repro.live.stitch import (
    CANONICAL_CATEGORIES,
    load_site_traces,
    stitch,
    stitch_data_dir,
)
from repro.live.wire import encode_frame, stamp_trace_context
from repro.sim.spans import SpanIndex
from repro.sim.tracing import TraceLog
from repro.types import SiteId


def _line(time: float, category: str, site: int, detail: str = "", **data) -> str:
    """One site-trace JSONL line in the live writer's format."""
    record = {
        "time": time,
        "category": category,
        "site": site,
        "detail": detail,
        "data": dict(sorted(data.items())),
    }
    return json.dumps(record, separators=(",", ":"), default=str)


def _write_site(data_dir: Path, site: int, lines: list[str]) -> None:
    path = data_dir / f"site-{site}.trace.jsonl"
    path.write_text("".join(line + "\n" for line in lines))


def _vote_round(data_dir: Path, swap_arrivals: bool = False) -> None:
    """A 3-site vote round; optionally swap the coordinator's arrivals.

    Site 1 broadcasts a vote-request; sites 2 and 3 reply.  The two
    vote arrivals at site 1 race — ``swap_arrivals`` flips the order
    they appear in site 1's file, which is exactly the run-to-run
    nondeterminism canonical stitching must normalize away.
    """
    arrivals = [
        _line(0.4, "net.deliver", 1, msg_id=2_001_000_001, src=2, dst=1, txn=1),
        _line(0.5, "net.deliver", 1, msg_id=3_001_000_001, src=3, dst=1, txn=1),
    ]
    if swap_arrivals:
        arrivals.reverse()
    _write_site(
        data_dir,
        1,
        [
            _line(0.0, "live.boot", 1, boot=1, restarted=False),
            _line(0.1, "live.begin", 1, txn=1),
            _line(
                0.2, "net.send", 1,
                msg_id=1_001_000_001, src=1, dst=2, txn=1, kind="vote-req",
            ),
            _line(
                0.3, "net.send", 1,
                msg_id=1_001_000_002, src=1, dst=3, txn=1, kind="vote-req",
            ),
            *arrivals,
            _line(
                0.6, "txn.decided", 1,
                txn=1, outcome="commit", via="protocol", state="c",
            ),
        ],
    )
    for site in (2, 3):
        request = 1_001_000_001 if site == 2 else 1_001_000_002
        reply = site * 1_000_000_000 + 1_000_001
        _write_site(
            data_dir,
            site,
            [
                _line(0.0, "live.boot", site, boot=1, restarted=False),
                _line(
                    0.2, "net.deliver", site,
                    msg_id=request, src=1, dst=site, txn=1,
                ),
                _line(
                    0.3, "net.send", site,
                    msg_id=reply, src=site, dst=1, txn=1, kind="yes",
                    parent=request,
                ),
            ],
        )


class TestStitchDeterminism:
    def test_canonical_byte_stable_under_arrival_races(self, tmp_path):
        run_a, run_b = tmp_path / "a", tmp_path / "b"
        run_a.mkdir()
        run_b.mkdir()
        _vote_round(run_a, swap_arrivals=False)
        _vote_round(run_b, swap_arrivals=True)
        stitched_a = stitch_data_dir(run_a, canonical=True)
        stitched_b = stitch_data_dir(run_b, canonical=True)
        assert stitched_a.trace.to_jsonl() == stitched_b.trace.to_jsonl()
        assert stitched_a.orphan_spans == []
        assert stitched_a.orphan_parents == []
        assert stitched_a.cycles_broken == 0

    def test_canonical_remaps_span_ids_densely(self, tmp_path):
        _vote_round(tmp_path)
        result = stitch_data_dir(tmp_path, canonical=True)
        ids = sorted(
            entry.data["msg_id"]
            for entry in result.trace.select(category="net.send")
        )
        assert ids == [1, 2, 3, 4]
        # Parent attribution names whichever racing arrival's handler
        # emitted the entry — scheduler noise, stripped from canonical.
        assert all("parent" not in entry.data for entry in result.trace)
        full = stitch_data_dir(tmp_path)
        parents = [
            entry.data["parent"]
            for entry in full.trace
            if "parent" in entry.data
        ]
        assert parents  # full mode keeps raw parent references

    def test_canonical_strips_volatile_and_racy_content(self, tmp_path):
        _write_site(
            tmp_path,
            1,
            [
                _line(0.0, "live.boot", 1, boot=1, restarted=False),
                _line(0.1, "live.ready", 1),  # racy: excluded
                _line(0.2, "log.fsync", 1, batch=3, duration_ms=1.5),  # excluded
                _line(0.3, "phase.exit", 1, txn=1, phase="q", elapsed=0.0021),
            ],
        )
        result = stitch_data_dir(tmp_path, canonical=True)
        categories = {entry.category for entry in result.trace}
        assert categories == {"live.boot", "phase.exit"}
        assert all(c in CANONICAL_CATEGORIES for c in categories)
        (phase_exit,) = result.trace.select(category="phase.exit")
        assert "elapsed" not in phase_exit.data
        assert phase_exit.detail == ""

    def test_causal_order_send_before_deliver(self, tmp_path):
        _vote_round(tmp_path)
        result = stitch_data_dir(tmp_path)
        position = {
            (entry.category, entry.data.get("msg_id")): index
            for index, entry in enumerate(result.trace)
            if entry.data.get("msg_id") is not None
        }
        for msg in (1_001_000_001, 1_001_000_002, 2_001_000_001, 3_001_000_001):
            assert position[("net.send", msg)] < position[("net.deliver", msg)]

    def test_program_order_within_txn_preserved(self, tmp_path):
        _vote_round(tmp_path)
        result = stitch_data_dir(tmp_path)
        entries = [e for e in result.trace if e.site == 1]
        decided = next(i for i, e in enumerate(entries) if e.category == "txn.decided")
        # The decision follows both vote arrivals at site 1.
        arrivals = [i for i, e in enumerate(entries) if e.category == "net.deliver"]
        assert arrivals and max(arrivals) < decided


class TestStitchFullMode:
    def test_times_are_emission_indices_with_site_time_kept(self, tmp_path):
        _vote_round(tmp_path)
        result = stitch_data_dir(tmp_path)
        assert [entry.time for entry in result.trace] == [
            float(i) for i in range(len(result.trace))
        ]
        assert all("site_time" in entry.data for entry in result.trace)

    def test_output_readable_by_span_index(self, tmp_path):
        _vote_round(tmp_path)
        result = stitch_data_dir(tmp_path)
        reloaded = TraceLog.from_jsonl(result.trace.to_jsonl())
        index = SpanIndex.from_trace(reloaded)
        assert len(index.delivered()) == 4
        assert index.orphans() == []


class TestStitchHygiene:
    def test_orphan_span_detected(self, tmp_path):
        _write_site(
            tmp_path,
            2,
            [
                _line(0.0, "live.boot", 2, boot=1, restarted=False),
                _line(0.1, "net.deliver", 2, msg_id=777, src=1, dst=2, txn=1),
            ],
        )
        result = stitch_data_dir(tmp_path)
        assert result.orphan_spans == [777]

    def test_orphan_parent_detected(self, tmp_path):
        _write_site(
            tmp_path,
            2,
            [
                _line(0.0, "live.boot", 2, boot=1, restarted=False),
                _line(0.1, "engine.transition", 2, txn=1, state="w", parent=999),
            ],
        )
        result = stitch_data_dir(tmp_path)
        assert result.orphan_parents == [999]

    def test_inflight_send_is_not_an_orphan(self, tmp_path):
        # A send whose receiver died is expected; only a *terminal*
        # without a send is lost instrumentation.
        _write_site(
            tmp_path,
            1,
            [
                _line(0.0, "live.boot", 1, boot=1, restarted=False),
                _line(0.1, "net.send", 1, msg_id=5, src=1, dst=2, txn=1, kind="x"),
            ],
        )
        result = stitch_data_dir(tmp_path)
        assert result.inflight == 1
        assert result.orphan_spans == []

    def test_torn_trace_tail_is_lenient(self, tmp_path):
        _vote_round(tmp_path)
        path = tmp_path / "site-3.trace.jsonl"
        path.write_text(path.read_text() + '{"time":9.9,"categ')  # torn by kill -9
        result = stitch_data_dir(tmp_path)
        assert result.sites[3]["malformed"] == 1
        assert result.cycles_broken == 0

    def test_empty_dir_is_config_error(self, tmp_path):
        with pytest.raises(LiveConfigError):
            load_site_traces(tmp_path)

    def test_stitch_accepts_in_memory_logs(self):
        log = TraceLog()
        log.record(0.0, "live.boot", "", site=1, boot=1)
        result = stitch({1: log})
        assert len(result.trace) == 1


class TestStaleIncarnationDrop:
    def test_fenced_frame_closes_span_with_reason(self):
        """An incarnation-fenced frame ends as a *closed* span, never
        an orphan: the receiver's transport emits ``net.drop`` carrying
        the sender's span id and the fence reason."""
        from repro.live.clock import TimeoutClock
        from repro.live.transport import Transport

        events: list[tuple[str, dict]] = []
        received: list[dict] = []

        async def on_frame(peer, frame):
            received.append(frame)

        async def on_client(first, reader, writer):  # pragma: no cover
            pass

        transport = Transport(
            site=SiteId(1),
            host="127.0.0.1",
            port=0,
            peers={SiteId(2): ("127.0.0.1", 0)},
            clock=TimeoutClock(),
            on_frame=on_frame,
            on_client=on_client,
            on_suspect=lambda p: None,
            on_recover=lambda p: None,
            boot=2,  # this incarnation outlived the frame's target
            trace=lambda category, detail, **data: events.append(
                (category, data)
            ),
        )
        frame = stamp_trace_context(
            {
                "t": "payload",
                "txn": 5,
                "d": {"p": "proto", "kind": "prepare"},
                "dst_boot": 1,
            },
            42,
        )

        class _Writer:
            def close(self) -> None:
                pass

        async def go() -> None:
            reader = asyncio.StreamReader()
            reader.feed_data(encode_frame(frame))
            reader.feed_eof()
            await transport._peer_receiver(SiteId(2), 1, "json", reader, _Writer())

        asyncio.run(go())
        assert received == []  # fenced, never delivered
        (drop,) = [data for category, data in events if category == "net.drop"]
        assert drop == {
            "msg_id": 42,
            "src": 2,
            "dst": 1,
            "txn": 5,
            "reason": "stale_incarnation",
        }

        # Span-level view: send + fence-drop pair into a closed span.
        log = TraceLog()
        log.record(
            0.0, "net.send", "", site=2,
            msg_id=42, src=2, dst=1, txn=5, kind="prepare",
        )
        log.record(1.0, "net.drop", "", site=1, **drop)
        index = SpanIndex.from_trace(log)
        span = index.span(42)
        assert span is not None
        assert span.status == "dropped"
        assert span.drop_reason == "stale_incarnation"
        assert not span.orphan
        assert index.orphans() == []


class TestStitchCli:
    def test_cli_writes_trace_and_report(self, tmp_path, capsys):
        _vote_round(tmp_path)
        out = tmp_path / "cluster.jsonl"
        sidecar = tmp_path / "stitch.json"
        code = main(
            [
                "stitch", str(tmp_path),
                "--canonical",
                "--out", str(out),
                "--json", str(sidecar),
                "--strict",
            ]
        )
        assert code == EXIT_OK
        report = json.loads(sidecar.read_text())
        assert report["orphan_spans"] == []
        assert report["orphan_parents"] == []
        assert report["cycles_broken"] == 0
        assert report["canonical"] is True
        reloaded = TraceLog.load(str(out))
        assert len(reloaded) == report["entries"]
        capsys.readouterr()

    def test_cli_strict_fails_on_orphans(self, tmp_path, capsys):
        _write_site(
            tmp_path,
            2,
            [_line(0.1, "net.deliver", 2, msg_id=777, src=1, dst=2, txn=1)],
        )
        assert main(["stitch", str(tmp_path), "--strict"]) == EXIT_VIOLATION
        assert main(["stitch", str(tmp_path)]) == EXIT_OK  # advisory by default
        capsys.readouterr()
