"""Unit tests for the simulated process base class."""

import pytest

from repro.errors import ProcessError
from repro.sim.process import Process
from repro.sim.simulator import Simulator


@pytest.fixture()
def sim():
    return Simulator()


@pytest.fixture()
def proc(sim):
    return Process(sim, "p1")


class TestLifecycle:
    def test_starts_alive(self, proc):
        assert proc.alive

    def test_crash_marks_dead(self, proc):
        proc.crash()
        assert not proc.alive

    def test_double_crash_is_noop(self, proc):
        proc.crash()
        proc.crash()
        assert not proc.alive

    def test_restart_revives(self, proc):
        proc.crash()
        proc.restart()
        assert proc.alive

    def test_restart_while_alive_raises(self, proc):
        with pytest.raises(ProcessError):
            proc.restart()

    def test_crash_and_restart_hooks_called(self, sim):
        calls = []

        class Hooked(Process):
            def on_crash(self):
                calls.append("crash")

            def on_restart(self):
                calls.append("restart")

        p = Hooked(sim, "h")
        p.crash()
        p.restart()
        assert calls == ["crash", "restart"]


class TestTimers:
    def test_timer_fires(self, sim, proc):
        fired = []
        proc.set_timer("t", 2.0, lambda: fired.append(sim.now))
        sim.run()
        assert fired == [2.0]

    def test_rearming_replaces_previous(self, sim, proc):
        fired = []
        proc.set_timer("t", 1.0, lambda: fired.append("first"))
        proc.set_timer("t", 2.0, lambda: fired.append("second"))
        sim.run()
        assert fired == ["second"]

    def test_cancel_timer(self, sim, proc):
        fired = []
        proc.set_timer("t", 1.0, lambda: fired.append(True))
        assert proc.cancel_timer("t")
        sim.run()
        assert fired == []

    def test_cancel_missing_timer_returns_false(self, proc):
        assert not proc.cancel_timer("nope")

    def test_crash_cancels_all_timers(self, sim, proc):
        fired = []
        proc.set_timer("a", 1.0, lambda: fired.append("a"))
        proc.set_timer("b", 2.0, lambda: fired.append("b"))
        proc.crash()
        sim.run()
        assert fired == []

    def test_timer_does_not_fire_after_crash(self, sim, proc):
        fired = []
        proc.set_timer("t", 5.0, lambda: fired.append(True))
        sim.schedule(1.0, proc.crash)
        sim.run()
        assert fired == []

    def test_timer_armed_query(self, sim, proc):
        proc.set_timer("t", 1.0, lambda: None)
        assert proc.timer_armed("t")
        sim.run()
        assert not proc.timer_armed("t")

    def test_rearm_from_inside_callback(self, sim, proc):
        fired = []

        def tick():
            fired.append(sim.now)
            if len(fired) < 3:
                proc.set_timer("tick", 1.0, tick)

        proc.set_timer("tick", 1.0, tick)
        sim.run()
        assert fired == [1.0, 2.0, 3.0]

    def test_active_timers_sorted(self, proc):
        proc.set_timer("b", 1.0, lambda: None)
        proc.set_timer("a", 1.0, lambda: None)
        assert proc.active_timers() == ["a", "b"]


class TestTracing:
    def test_trace_records_current_time(self, sim, proc):
        sim.schedule(3.0, lambda: proc.trace("cat", "hello", site=7))
        sim.run()
        entry = sim.trace.entries[-1]
        assert entry.time == 3.0
        assert entry.category == "cat"
        assert entry.site == 7
