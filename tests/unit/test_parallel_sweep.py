"""Unit tests for the parallel sweep runner subsystem.

The two hard guarantees under test:

* determinism — the parallel path, the cached path, and any task
  ordering all produce byte-identical merged artifacts, and
* the cache — completed payloads persist, reload, and survive
  corruption as misses (never as wrong answers).

The spawn-based tests require ``repro`` to be importable by a fresh
interpreter (run the suite with ``PYTHONPATH=src``, as CI does).
"""

import json

import pytest

from repro.errors import (
    ReproError,
    SweepConfigError,
    SweepTaskError,
    SweepTimeoutError,
)
from repro.experiments.registry import EXPERIMENTS
from repro.metrics.registry import MetricsRegistry
from repro.parallel import (
    SweepCache,
    SweepRunner,
    SweepTask,
    code_version,
    merge_traces,
    plan_sweep,
    sweep_tasks,
)
from repro.parallel.worker import build_payload
from repro.sim.tracing import TraceLog

# Two tiny Q2 shards (n=2 and n=3 sites): enough to exercise traces,
# registries, and merging while staying fast.
SMALL_TASKS = [
    SweepTask.make("Q2", config={"site_counts": (2,), "capture_traces": True}),
    SweepTask.make("Q2", config={"site_counts": (3,), "capture_traces": True}),
]


class TestSweepTask:
    def test_make_uppercases_and_freezes_config(self):
        task = SweepTask.make("q2", config={"site_counts": [4, 2]})
        assert task.experiment_id == "Q2"
        assert task.config_dict() == {"site_counts": (4, 2)}
        assert hash(task) is not None  # Frozen dataclass, usable as a key.

    def test_task_key_is_order_insensitive_in_config(self):
        a = SweepTask.make("Q2", config={"site_counts": (2,), "capture_traces": True})
        b = SweepTask.make("Q2", config={"capture_traces": True, "site_counts": (2,)})
        assert a == b
        assert a.task_key == b.task_key
        assert a.cache_key() == b.cache_key()

    def test_list_and_tuple_configs_are_equivalent(self):
        a = SweepTask.make("Q2", config={"site_counts": [2, 4]})
        b = SweepTask.make("Q2", config={"site_counts": (2, 4)})
        assert a.cache_key() == b.cache_key()

    def test_cache_key_separates_experiment_seed_and_config(self):
        base = SweepTask.make("Q2", config={"site_counts": (2,)})
        keys = {
            base.cache_key(),
            SweepTask.make("Q1").cache_key(),
            SweepTask.make("Q2", seed=1, config={"site_counts": (2,)}).cache_key(),
            SweepTask.make("Q2", config={"site_counts": (4,)}).cache_key(),
        }
        assert len(keys) == 4
        assert all(len(key) == 16 for key in keys)

    def test_code_version_is_stable_within_a_process(self):
        assert code_version() == code_version()
        assert len(code_version()) == 12

    def test_describe_names_experiment_seed_and_config(self):
        task = SweepTask.make("Q2", seed=3, config={"site_counts": (2,)})
        text = task.describe()
        assert "Q2" in text and "seed=3" in text and "site_counts" in text


class TestPlans:
    def test_q2_plan_shards_by_site_count(self):
        tasks = sweep_tasks("q2")
        assert len(tasks) > 1
        assert all(task.experiment_id == "Q2" for task in tasks)
        keys = [task.task_key for task in tasks]
        assert len(set(keys)) == len(keys)

    def test_unknown_experiment_rejected(self):
        with pytest.raises(ReproError):
            sweep_tasks("nope")

    def test_plan_all_covers_every_experiment(self):
        tasks = plan_sweep(["all"])
        assert {task.experiment_id for task in tasks} == set(EXPERIMENTS)


class TestWorkerPayload:
    def test_payload_is_canonical_json(self):
        payload = build_payload(SMALL_TASKS[0])
        assert payload == json.loads(json.dumps(payload, sort_keys=True))
        assert payload["experiment_id"] == "Q2"
        assert isinstance(payload["render"], str) and payload["render"]
        assert payload["registry"] is not None
        assert len(payload["traces"]) >= 1  # One per protocol run.

    def test_nonzero_seed_rejected_when_runner_lacks_seed(self):
        task = SweepTask.make("Q2", seed=7, config={"site_counts": (2,)})
        with pytest.raises(SweepConfigError):
            build_payload(task)

    def test_unknown_config_key_fails_the_task(self):
        task = SweepTask.make("Q2", config={"bogus_knob": 1})
        with pytest.raises(SweepTaskError):
            SweepRunner(workers=1).run([task])


class TestRunnerSerial:
    def test_empty_plan_rejected(self):
        with pytest.raises(SweepConfigError):
            SweepRunner(workers=1).run([])

    def test_duplicate_tasks_rejected(self):
        with pytest.raises(SweepConfigError):
            SweepRunner(workers=1).run([SMALL_TASKS[0], SMALL_TASKS[0]])

    def test_zero_workers_rejected(self):
        with pytest.raises(SweepConfigError):
            SweepRunner(workers=0)

    def test_task_order_does_not_matter(self):
        forward = SweepRunner(workers=1).run(SMALL_TASKS)
        backward = SweepRunner(workers=1).run(list(reversed(SMALL_TASKS)))
        assert forward.report == backward.report
        assert forward.merged.sidecar_json() == backward.merged.sidecar_json()
        assert forward.merged.trace.to_jsonl() == backward.merged.trace.to_jsonl()


class TestCache:
    def test_store_then_hit_round_trips_byte_identically(self, tmp_path):
        cache = SweepCache(tmp_path / "cache")
        cold = SweepRunner(workers=1, cache=cache).run(SMALL_TASKS)
        assert [o.cached for o in cold.outcomes] == [False, False]
        assert cache.entry_count() == 2

        warm = SweepRunner(workers=1, cache=cache).run(SMALL_TASKS)
        assert [o.cached for o in warm.outcomes] == [True, True]
        assert all(o.elapsed_s == 0.0 for o in warm.outcomes)
        assert warm.report == cold.report
        assert warm.merged.sidecar_json() == cold.merged.sidecar_json()
        assert warm.merged.trace.to_jsonl() == cold.merged.trace.to_jsonl()

    def test_corrupt_artifact_is_a_miss_not_an_error(self, tmp_path):
        cache = SweepCache(tmp_path / "cache")
        task = SMALL_TASKS[0]
        path = cache.store(task, build_payload(task))
        path.write_text("{not json")
        assert cache.load(task) is None
        result = SweepRunner(workers=1, cache=cache).run([task])
        assert result.outcomes[0].cached is False  # Re-ran, re-stored.
        assert cache.load(task) is not None

    def test_wrong_cache_key_in_file_is_a_miss(self, tmp_path):
        cache = SweepCache(tmp_path / "cache")
        task = SMALL_TASKS[0]
        path = cache.store(task, build_payload(task))
        document = json.loads(path.read_text())
        document["cache_key"] = "0" * 16
        path.write_text(json.dumps(document))
        assert cache.load(task) is None


class TestMergeTraces:
    def _chunk(self, msg_ids):
        log = TraceLog()
        for msg_id in msg_ids:
            log.record(0.0, "net.send", f"msg {msg_id}", site=1, msg_id=msg_id)
        return log.to_jsonl()

    def test_msg_ids_are_rebased_into_disjoint_spans(self):
        merged = merge_traces(
            [("a", self._chunk([0, 1, 2])), ("b", self._chunk([0, 1]))]
        )
        ids = [entry.data["msg_id"] for entry in merged.entries]
        assert ids == [0, 1, 2, 3, 4]  # Chunk b rebased past chunk a.
        assert [entry.data["task"] for entry in merged.entries] == [
            "a", "a", "a", "b", "b",
        ]

    def test_chunks_without_msg_ids_merge_untouched(self):
        log = TraceLog()
        log.record(1.0, "site.crash", "site 1 crashed", site=1)
        merged = merge_traces([("only", log.to_jsonl())])
        assert merged.entries[0].data == {"task": "only"}


class TestRegistryRoundTrip:
    def test_from_dict_inverts_to_dict(self):
        registry = MetricsRegistry()
        registry.inc("runs_total", protocol="3pc-central")
        registry.inc("runs_total", 2, protocol="2pc-central")
        for value in (0.5, 1.5, 120.0):
            registry.observe("duration", value, protocol="3pc-central")
        rebuilt = MetricsRegistry.from_dict(registry.to_dict())
        assert rebuilt.to_dict() == registry.to_dict()
        assert rebuilt.counter("runs_total", protocol="2pc-central") == 2


class TestParallelExecution:
    """Spawn-based tests — each worker freshly imports ``repro``."""

    def test_parallel_is_byte_identical_to_serial(self):
        serial = SweepRunner(workers=1).run(SMALL_TASKS)
        parallel = SweepRunner(workers=2).run(SMALL_TASKS)
        assert parallel.report == serial.report
        assert parallel.merged.sidecar_json() == serial.merged.sidecar_json()
        assert (
            parallel.merged.registry.to_dict() == serial.merged.registry.to_dict()
        )
        assert parallel.merged.trace.to_jsonl() == serial.merged.trace.to_jsonl()

    def test_hung_worker_bounded_by_task_timeout(self):
        # Spawn startup alone takes far longer than 1ms, so the wait is
        # guaranteed to trip; the pool must be torn down, not joined.
        runner = SweepRunner(workers=2, task_timeout=0.001)
        with pytest.raises(SweepTimeoutError):
            runner.run(SMALL_TASKS)
