"""Durable DT log: file framing, torn tails, restart replay, forcing,
and the group-commit flusher's durability ordering."""

from __future__ import annotations

import asyncio
import time

import pytest

from repro.errors import WALError
from repro.live.dtlog import (
    DurableDTLog,
    SiteLogStore,
    _encode_line,
    read_log_file,
)
from repro.runtime.log import DecisionRecord, VoteRecord
from repro.types import Outcome, Vote


@pytest.fixture
def log_path(tmp_path):
    return tmp_path / "site-1.dtlog"


class TestFileFraming:
    def test_empty_or_missing_file(self, log_path):
        assert read_log_file(log_path) == ([], False)
        log_path.write_bytes(b"")
        assert read_log_file(log_path) == ([], False)

    def test_round_trip(self, log_path):
        bodies = [{"r": "boot", "boot": 1}, {"r": "vote", "txn": 1, "vote": "yes", "at": 0.5}]
        log_path.write_bytes(b"".join(_encode_line(b) for b in bodies))
        records, torn = read_log_file(log_path)
        assert records == bodies
        assert torn is False

    def test_torn_tail_dropped(self, log_path):
        good = _encode_line({"r": "boot", "boot": 1})
        torn = _encode_line({"r": "vote", "txn": 1, "vote": "yes", "at": 1.0})[:-5]
        log_path.write_bytes(good + torn)
        records, dropped = read_log_file(log_path)
        assert records == [{"r": "boot", "boot": 1}]
        assert dropped is True

    def test_tail_with_bad_crc_dropped(self, log_path):
        good = _encode_line({"r": "boot", "boot": 1})
        bad = bytearray(_encode_line({"r": "vote", "txn": 1, "vote": "yes", "at": 1.0}))
        bad[10] ^= 0xFF  # flip a byte inside the body
        log_path.write_bytes(good + bytes(bad))
        records, dropped = read_log_file(log_path)
        assert records == [{"r": "boot", "boot": 1}]
        assert dropped is True

    def test_mid_log_corruption_raises(self, log_path):
        good = _encode_line({"r": "boot", "boot": 1})
        bad = b"garbage that is not a framed record\n"
        log_path.write_bytes(good + bad + good)
        with pytest.raises(WALError):
            read_log_file(log_path)


class TestSiteLogStore:
    def test_fresh_boot(self, log_path):
        store = SiteLogStore(log_path)
        assert store.boot_count == 1
        assert store.restarted is False
        assert store.txn_ids() == []
        assert store.forced_writes == 1  # the boot record
        store.close()

    def test_records_survive_restart(self, log_path):
        store = SiteLogStore(log_path)
        store.append_record(7, VoteRecord(vote=Vote.YES, at=1.0))
        store.append_record(7, DecisionRecord(outcome=Outcome.COMMIT, at=2.0, via="protocol"))
        store.close()

        reborn = SiteLogStore(log_path)
        assert reborn.boot_count == 2
        assert reborn.restarted is True
        assert reborn.txn_ids() == [7]
        assert reborn.records_for(7) == [
            VoteRecord(vote=Vote.YES, at=1.0),
            DecisionRecord(outcome=Outcome.COMMIT, at=2.0, via="protocol"),
        ]
        reborn.close()

    def test_torn_tail_record_never_replayed(self, log_path):
        store = SiteLogStore(log_path)
        store.append_record(1, VoteRecord(vote=Vote.YES, at=1.0))
        store.close()
        # Simulate a crash mid-append: a torn record at the tail.
        with open(log_path, "ab") as handle:
            handle.write(
                _encode_line({"r": "decision", "txn": 1, "outcome": "commit", "at": 2.0, "via": "protocol"})[:-7]
            )
        reborn = SiteLogStore(log_path)
        assert reborn.torn_tail_dropped is True
        assert reborn.records_for(1) == [VoteRecord(vote=Vote.YES, at=1.0)]
        reborn.close()

    def test_append_after_close_raises(self, log_path):
        store = SiteLogStore(log_path)
        store.close()
        with pytest.raises(WALError):
            store.append_record(1, VoteRecord(vote=Vote.YES, at=1.0))

    def test_many_boots_counted(self, log_path):
        for expected in (1, 2, 3):
            store = SiteLogStore(log_path)
            assert store.boot_count == expected
            store.close()


class TestGroupCommit:
    def test_nonforced_append_buffers_without_io(self, log_path):
        """``force=False`` must not flush or fsync — it only buffers."""
        fsyncs = []
        store = SiteLogStore(log_path, fsync=fsyncs.append)
        after_boot = len(fsyncs)
        lsn = store.append_record(1, VoteRecord(vote=Vote.YES, at=1.0), force=False)
        assert len(fsyncs) == after_boot
        assert store.durable_lsn < lsn == store.pending_lsn
        # close() writes the buffered record out (no fsync — it never
        # promised durability) so a clean shutdown loses nothing.
        store.close()
        assert len(fsyncs) == after_boot
        reborn = SiteLogStore(log_path)
        assert reborn.records_for(1) == [VoteRecord(vote=Vote.YES, at=1.0)]
        reborn.close()

    def test_forced_append_is_durable_on_return_in_sync_mode(self, log_path):
        fsyncs = []
        store = SiteLogStore(log_path, fsync=fsyncs.append)
        after_boot = len(fsyncs)
        lsn = store.append_record(1, VoteRecord(vote=Vote.YES, at=1.0))
        assert len(fsyncs) == after_boot + 1
        assert store.durable_lsn == lsn
        store.close()

    def test_one_fsync_covers_a_whole_batch(self, log_path):
        """Appends that queue before the flusher wakes share one fsync."""

        async def main():
            batches = []
            store = SiteLogStore(log_path)
            store.on_batch = batches.append
            store.start_group_commit()
            base_fsyncs = store.fsync_calls
            lsns = [
                store.append_record(txn, VoteRecord(vote=Vote.YES, at=1.0))
                for txn in range(1, 9)
            ]
            await store.wait_durable(lsns[-1])
            assert store.fsync_calls == base_fsyncs + 1
            assert batches == [8]
            assert store.durable_lsn >= lsns[-1]
            await store.stop_group_commit()
            store.close()
            assert store.forced_writes == 9  # boot + 8, each demanding durability
            assert store.fsync_calls < store.forced_writes

        asyncio.run(main())

    @pytest.mark.parametrize("slow_device", [False, True])
    def test_waiter_resolves_only_after_fsync(self, log_path, slow_device):
        """The group-commit contract: durability waiters never resolve
        before the batch's fsync returns — on both flusher paths
        (inline for a fast device, worker thread for a slow one)."""
        order = []

        def fake_fsync(fileno):
            if slow_device:
                time.sleep(0.003)  # pushes the EMA over the inline threshold
            order.append("fsync")

        async def main():
            store = SiteLogStore(log_path, fsync=fake_fsync)
            store.start_group_commit()
            lsn = store.append_record(1, VoteRecord(vote=Vote.YES, at=1.0))

            async def waiter():
                await store.wait_durable(lsn)
                order.append("durable")

            task = asyncio.get_running_loop().create_task(waiter())
            assert not task.done()  # nothing fsynced yet
            await task
            await store.stop_group_commit()
            store.close()

        asyncio.run(main())
        assert order[-2:] == ["fsync", "durable"]

    def test_on_durable_watermark_advances(self, log_path):
        store = SiteLogStore(log_path)
        watermarks = []
        store.on_durable = watermarks.append
        store.append_record(1, VoteRecord(vote=Vote.YES, at=1.0))
        store.append_record(2, VoteRecord(vote=Vote.YES, at=2.0))
        assert watermarks == [2, 3]  # LSN 1 is the boot record
        store.close()

    def test_torn_tail_mid_batch_drops_only_the_tail(self, log_path):
        """kill -9 during a batched flush tears at most the last record;
        the batch's earlier records replay intact."""

        async def main():
            store = SiteLogStore(log_path)
            store.start_group_commit()
            last = 0
            for txn in (1, 2, 3):
                last = store.append_record(
                    txn, VoteRecord(vote=Vote.YES, at=float(txn))
                )
            await store.wait_durable(last)
            await store.stop_group_commit()
            store.close()

        asyncio.run(main())
        data = log_path.read_bytes()
        log_path.write_bytes(data[:-7])  # tear the batch's final record

        reborn = SiteLogStore(log_path)
        assert reborn.torn_tail_dropped is True
        assert reborn.txn_ids() == [1, 2]
        assert reborn.records_for(3) == []
        reborn.close()


class TestDurableDTLog:
    def test_writes_are_forced_to_the_store(self, log_path):
        store = SiteLogStore(log_path)
        log = DurableDTLog(store, txn=1)
        base = store.forced_writes
        log.write_vote(Vote.YES, at=1.0)
        assert store.forced_writes == base + 1
        log.write_decision(Outcome.COMMIT, at=2.0, via="protocol")
        assert store.forced_writes == base + 2
        store.close()

    def test_same_outcome_relog_not_reforced(self, log_path):
        store = SiteLogStore(log_path)
        log = DurableDTLog(store, txn=1)
        log.write_vote(Vote.YES, at=1.0)
        log.write_decision(Outcome.COMMIT, at=2.0, via="protocol")
        forced = store.forced_writes
        log.write_decision(Outcome.COMMIT, at=3.0, via="recovery")  # no-op
        assert store.forced_writes == forced
        assert len(log) == 2
        store.close()

    def test_conflicting_decision_raises_and_not_forced(self, log_path):
        store = SiteLogStore(log_path)
        log = DurableDTLog(store, txn=1)
        log.write_decision(Outcome.ABORT, at=1.0, via="recovery")
        forced = store.forced_writes
        with pytest.raises(WALError):
            log.write_decision(Outcome.COMMIT, at=2.0, via="protocol")
        assert store.forced_writes == forced
        store.close()

    def test_restart_resumes_where_crash_left_off(self, log_path):
        store = SiteLogStore(log_path)
        DurableDTLog(store, txn=1).write_vote(Vote.YES, at=1.0)
        store.close()  # "crash" after the vote force

        reborn_store = SiteLogStore(log_path)
        log = DurableDTLog(reborn_store, txn=1)
        assert log.vote() == VoteRecord(vote=Vote.YES, at=1.0)
        assert log.decision() is None  # in doubt — recovery must query
        with pytest.raises(WALError):
            log.write_vote(Vote.YES, at=5.0)  # invariants re-armed by replay
        log.write_decision(Outcome.COMMIT, at=6.0, via="recovery")
        reborn_store.close()

        final = SiteLogStore(log_path)
        assert [type(r).__name__ for r in final.records_for(1)] == [
            "VoteRecord",
            "DecisionRecord",
        ]
        final.close()

    def test_transactions_are_isolated(self, log_path):
        store = SiteLogStore(log_path)
        DurableDTLog(store, txn=1).write_vote(Vote.YES, at=1.0)
        DurableDTLog(store, txn=2).write_vote(Vote.NO, at=1.5)
        store.close()
        reborn = SiteLogStore(log_path)
        assert reborn.txn_ids() == [1, 2]
        assert DurableDTLog(reborn, txn=1).vote().vote is Vote.YES
        assert DurableDTLog(reborn, txn=2).vote().vote is Vote.NO
        reborn.close()


class TestPresumptionForcing:
    def test_lazy_appends_counted_not_fsynced(self, log_path):
        fsyncs = []
        store = SiteLogStore(log_path, fsync=fsyncs.append)
        after_boot = len(fsyncs)
        log = DurableDTLog(store, txn=1)
        log.write_vote(Vote.NO, at=1.0, forced=False)
        log.write_decision(Outcome.ABORT, at=2.0, via="protocol", forced=False)
        assert len(fsyncs) == after_boot
        assert store.forced_writes_skipped == 2
        store.close()

    def test_last_forced_lsn_tracks_forced_appends_only(self, log_path):
        store = SiteLogStore(log_path)
        log = DurableDTLog(store, txn=1)
        log.write_vote(Vote.YES, at=1.0, forced=True)
        watermark = store.last_forced_lsn
        assert watermark == store.pending_lsn
        log.write_decision(Outcome.COMMIT, at=2.0, via="protocol", forced=False)
        # The lazy decision grew the pending log but not the forced
        # watermark — a send barrier on it must not wait for an fsync
        # nobody asked for.
        assert store.pending_lsn > store.last_forced_lsn == watermark
        store.close()

    def test_lazy_records_survive_clean_shutdown(self, log_path):
        store = SiteLogStore(log_path)
        log = DurableDTLog(store, txn=1)
        log.write_vote(Vote.NO, at=1.0, forced=False)
        log.write_decision(Outcome.ABORT, at=2.0, via="protocol", forced=False)
        store.close()
        reborn = SiteLogStore(log_path)
        assert [type(r).__name__ for r in reborn.records_for(1)] == [
            "VoteRecord",
            "DecisionRecord",
        ]
        reborn.close()

    def test_membership_round_trips_and_is_always_forced(self, log_path):
        from repro.runtime.log import MembershipRecord
        from repro.types import SiteId

        fsyncs = []
        store = SiteLogStore(log_path, fsync=fsyncs.append)
        after_boot = len(fsyncs)
        log = DurableDTLog(store, txn=1)
        log.write_membership((SiteId(2), SiteId(3)), at=0.5)
        assert len(fsyncs) == after_boot + 1
        store.close()

        reborn = SiteLogStore(log_path)
        replayed = DurableDTLog(reborn, txn=1)
        assert replayed.membership() == MembershipRecord(
            members=(SiteId(2), SiteId(3)), at=0.5
        )
        with pytest.raises(WALError):
            replayed.write_membership((SiteId(2),), at=5.0)
        reborn.close()
