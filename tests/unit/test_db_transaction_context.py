"""Unit tests for the transaction context-manager API."""

import pytest

from repro.db.distributed import DistributedDB
from repro.errors import TransactionAborted
from repro.types import Outcome, SiteId
from repro.workload.crashes import CrashAt

PLACEMENT = {"a": SiteId(1), "b": SiteId(2)}


@pytest.fixture()
def db():
    return DistributedDB(3, placement=PLACEMENT)


class TestHappyPath:
    def test_commit_on_clean_exit(self, db):
        with db.transaction() as txn:
            txn.write("a", 1)
            txn.write("b", 2)
        assert txn.outcome.committed
        assert db.get("a") == 1 and db.get("b") == 2

    def test_reads_see_own_writes(self, db):
        with db.transaction() as txn:
            txn.write("a", 42)
            assert txn.read("a") == 42

    def test_reads_see_committed_state(self, db):
        with db.transaction() as txn:
            txn.write("a", 7)
        with db.transaction() as txn2:
            assert txn2.read("a") == 7
        assert txn2.outcome.committed

    def test_auto_ids_are_unique(self, db):
        with db.transaction() as t1:
            t1.write("a", 1)
        with db.transaction() as t2:
            t2.write("b", 2)
        assert t1.txn != t2.txn

    def test_explicit_id_respected(self, db):
        with db.transaction(txn=77) as txn:
            txn.write("a", 1)
        assert txn.txn == 77

    def test_read_only_transaction_commits(self, db):
        with db.transaction() as txn:
            txn.read("a")
        assert txn.outcome.committed


class TestAbortPaths:
    def test_exception_aborts_and_reraises(self, db):
        with db.transaction() as setup:
            setup.write("a", 1)
        with pytest.raises(RuntimeError):
            with db.transaction() as txn:
                txn.write("a", 999)
                raise RuntimeError("boom")
        assert txn.outcome.outcome is Outcome.ABORT
        assert db.get("a") == 1  # Rolled back.

    def test_locks_released_after_exception(self, db):
        with pytest.raises(RuntimeError):
            with db.transaction() as txn:
                txn.write("a", 5)
                raise RuntimeError
        with db.transaction() as follow_up:
            follow_up.write("a", 6)
        assert follow_up.outcome.committed

    def test_ops_outside_with_raise(self, db):
        txn = db.transaction()
        with pytest.raises(TransactionAborted, match="not open"):
            txn.read("a")
        with pytest.raises(TransactionAborted, match="not open"):
            txn.write("a", 1)

    def test_ops_after_exit_raise(self, db):
        with db.transaction() as txn:
            txn.write("a", 1)
        with pytest.raises(TransactionAborted, match="not open"):
            txn.write("a", 2)


class TestCommitPhaseIntegration:
    def test_crash_schedule_passes_through(self, db):
        with db.transaction(crashes=[CrashAt(site=1, at=2.0)]) as txn:
            txn.write("a", 10)
            txn.write("b", 20)
        # 3PC termination resolves the crash: abort, data rolled back.
        assert txn.outcome.outcome is Outcome.ABORT
        assert db.get("a") is None

    def test_outcome_carries_commit_run(self, db):
        with db.transaction() as txn:
            txn.write("a", 1)
            txn.write("b", 2)
        assert txn.outcome.commit_run is not None
        assert txn.outcome.commit_run.atomic

    def test_single_site_skips_protocol(self, db):
        with db.transaction() as txn:
            txn.write("a", 1)
        assert txn.outcome.commit_run is None
        assert txn.outcome.committed
