"""Unit tests for campaign summaries."""

import pytest

from repro.metrics import summarize_runs
from repro.protocols import catalog
from repro.runtime.decision import TerminationRule
from repro.runtime.harness import CommitRun
from repro.runtime.policies import FixedVotes
from repro.types import Outcome, SiteId, Vote
from repro.workload.crashes import CrashAt
from repro.workload.generator import WorkloadGenerator


@pytest.fixture(scope="module")
def spec():
    return catalog.build("3pc-central", 3)


@pytest.fixture(scope="module")
def rule(spec):
    return TerminationRule(spec)


class TestSummarizeRuns:
    def test_empty_campaign(self):
        summary = summarize_runs([])
        assert summary.runs == 0
        assert summary.blocked_fraction == 0.0

    def test_commit_and_abort_tallied(self, spec, rule):
        commit_run = CommitRun(spec, rule=rule).execute()
        abort_run = CommitRun(
            spec, vote_policy=FixedVotes({SiteId(2): Vote.NO}), rule=rule
        ).execute()
        summary = summarize_runs([commit_run, abort_run])
        assert summary.runs == 2
        assert summary.outcomes.get("commit") == 1
        assert summary.outcomes.get("abort") == 1
        assert summary.violations == 0

    def test_blocked_runs_counted(self):
        spec2 = catalog.build("2pc-central", 3)
        rule2 = TerminationRule(spec2)
        blocked = CommitRun(
            spec2, crashes=[CrashAt(site=1, at=2.0)], rule=rule2
        ).execute()
        summary = summarize_runs([blocked])
        assert summary.blocked_runs == 1
        assert summary.blocked_fraction == 1.0
        assert summary.outcomes.get("undecided") == 1

    def test_violation_counted(self, spec, rule):
        run = CommitRun(spec, rule=rule).execute()
        run.reports[2].outcome = Outcome.ABORT  # Fabricated violation.
        summary = summarize_runs([run])
        assert summary.violations == 1
        assert summary.outcomes.get("VIOLATION") == 1

    def test_crash_and_latency_statistics(self, spec, rule):
        run = CommitRun(
            spec, crashes=[CrashAt(site=3, at=1.5)], rule=rule
        ).execute()
        summary = summarize_runs([run])
        assert summary.crashed_sites_total == 1
        assert len(summary.decision_latency) == 2  # Two operational sites.
        assert summary.messages.mean > 0

    def test_to_table_renders(self, spec, rule):
        summary = summarize_runs([CommitRun(spec, rule=rule).execute()])
        text = summary.to_table("my campaign").render()
        assert "my campaign" in text
        assert "atomicity violations" in text

    def test_full_generator_campaign(self):
        spec = catalog.build("3pc-central", 3)
        generator = WorkloadGenerator(spec, seed=5, p_no=0.2, p_crash=0.3)
        summary = summarize_runs(generator.campaign(30))
        assert summary.runs == 30
        assert summary.violations == 0
        assert summary.blocked_runs == 0  # 3PC never blocks.
        assert summary.outcomes.total == 30
