"""Unit tests for structural validation of automata and specs."""

import pytest

from repro.errors import InvalidAutomatonError, InvalidProtocolError
from repro.fsa.automaton import SiteAutomaton, Transition
from repro.fsa.messages import EXTERNAL, Msg
from repro.fsa.spec import ProtocolSpec
from repro.fsa.validate import validate_automaton, validate_spec
from repro.protocols import catalog
from repro.types import ProtocolClass, SiteId


S1, S2 = SiteId(1), SiteId(2)


def minimal_automaton(site, **overrides):
    """A tiny valid automaton: q -> c on 'go', q -> a on 'no'."""
    kwargs = dict(
        site=site,
        role="peer",
        initial="q",
        commit_states=["c"],
        abort_states=["a"],
        transitions=[
            Transition("q", "c", frozenset({Msg("go", EXTERNAL, site)})),
            Transition("q", "a", frozenset({Msg("no", EXTERNAL, site)})),
        ],
    )
    kwargs.update(overrides)
    return SiteAutomaton(**kwargs)


class TestAutomatonValidation:
    def test_minimal_is_valid(self):
        validate_automaton(minimal_automaton(S1))

    def test_catalog_automata_all_valid(self):
        for name in catalog.protocol_names():
            spec = catalog.build(name, 4)
            for automaton in spec.automata.values():
                validate_automaton(automaton)

    def test_overlapping_final_sets_rejected(self):
        bad = minimal_automaton(S1, abort_states=["c"])
        with pytest.raises(InvalidAutomatonError, match="both commit and abort"):
            validate_automaton(bad)

    def test_missing_commit_state_rejected(self):
        bad = SiteAutomaton(
            site=S1, role="x", initial="q", commit_states=[],
            abort_states=["a"],
            transitions=[Transition("q", "a", frozenset({Msg("x", EXTERNAL, S1)}))],
        )
        with pytest.raises(InvalidAutomatonError, match="no commit state"):
            validate_automaton(bad)

    def test_missing_abort_state_rejected(self):
        bad = SiteAutomaton(
            site=S1, role="x", initial="q", commit_states=["c"],
            abort_states=[],
            transitions=[Transition("q", "c", frozenset({Msg("x", EXTERNAL, S1)}))],
        )
        with pytest.raises(InvalidAutomatonError, match="no abort state"):
            validate_automaton(bad)

    def test_empty_reads_rejected(self):
        bad = minimal_automaton(
            S1,
            transitions=[
                Transition("q", "c", frozenset()),
                Transition("q", "a", frozenset({Msg("no", EXTERNAL, S1)})),
            ],
        )
        with pytest.raises(InvalidAutomatonError, match="reads nothing"):
            validate_automaton(bad)

    def test_read_addressed_elsewhere_rejected(self):
        bad = minimal_automaton(
            S1,
            transitions=[
                Transition("q", "c", frozenset({Msg("go", EXTERNAL, S2)})),
                Transition("q", "a", frozenset({Msg("no", EXTERNAL, S1)})),
            ],
        )
        with pytest.raises(InvalidAutomatonError, match="addressed"):
            validate_automaton(bad)

    def test_write_claiming_other_sender_rejected(self):
        bad = minimal_automaton(
            S1,
            transitions=[
                Transition(
                    "q", "c", frozenset({Msg("go", EXTERNAL, S1)}),
                    writes=(Msg("m", S2, S1),),
                ),
                Transition("q", "a", frozenset({Msg("no", EXTERNAL, S1)})),
            ],
        )
        with pytest.raises(InvalidAutomatonError, match="claims sender"):
            validate_automaton(bad)

    def test_outgoing_from_final_state_rejected(self):
        bad = minimal_automaton(
            S1,
            transitions=[
                Transition("q", "c", frozenset({Msg("go", EXTERNAL, S1)})),
                Transition("q", "a", frozenset({Msg("no", EXTERNAL, S1)})),
                Transition("c", "a", frozenset({Msg("undo", EXTERNAL, S1)})),
            ],
        )
        with pytest.raises(InvalidAutomatonError, match="irreversible"):
            validate_automaton(bad)

    def test_unreachable_state_rejected(self):
        bad = minimal_automaton(S1)
        orphan = SiteAutomaton(
            site=S1, role="x", initial="q",
            commit_states=["c"], abort_states=["a", "orphan"],
            transitions=bad.transitions,
        )
        with pytest.raises(InvalidAutomatonError, match="unreachable"):
            validate_automaton(orphan)


def two_site_spec(automata=None, initial=None, **overrides):
    """A tiny valid decentralized spec over sites 1 and 2."""
    if automata is None:
        automata = {}
        for site in (S1, S2):
            automata[site] = SiteAutomaton(
                site=site,
                role="peer",
                initial="q",
                commit_states=["c"],
                abort_states=["a"],
                transitions=[
                    Transition("q", "c", frozenset({Msg("go", EXTERNAL, site)})),
                    Transition("q", "a", frozenset({Msg("no", EXTERNAL, site)})),
                ],
            )
    if initial is None:
        initial = [
            Msg("go", EXTERNAL, S1),
            Msg("no", EXTERNAL, S1),
            Msg("go", EXTERNAL, S2),
            Msg("no", EXTERNAL, S2),
        ]
    kwargs = dict(
        name="tiny",
        protocol_class=ProtocolClass.DECENTRALIZED,
        automata=automata,
        initial_messages=initial,
        validate=False,
    )
    kwargs.update(overrides)
    return ProtocolSpec(**kwargs)


class TestSpecValidation:
    def test_tiny_spec_valid(self):
        validate_spec(two_site_spec())

    def test_catalog_specs_all_valid(self):
        for name in catalog.protocol_names():
            for n in (2, 3, 5):
                validate_spec(catalog.build(name, n))

    def test_empty_spec_rejected(self):
        with pytest.raises(InvalidProtocolError, match="no participating"):
            validate_spec(two_site_spec(automata={}, initial=[]))

    def test_mismatched_site_key_rejected(self):
        spec = two_site_spec()
        spec.automata[SiteId(9)] = spec.automata.pop(S2)
        with pytest.raises(InvalidProtocolError, match="claims site"):
            validate_spec(spec)

    def test_internal_initial_message_rejected(self):
        spec = two_site_spec(
            initial=[Msg("go", S1, S2), Msg("go", EXTERNAL, S1)]
        )
        with pytest.raises(InvalidProtocolError, match="external world"):
            validate_spec(spec)

    def test_initial_message_to_nonparticipant_rejected(self):
        spec = two_site_spec(
            initial=[
                Msg("go", EXTERNAL, S1),
                Msg("go", EXTERNAL, S2),
                Msg("go", EXTERNAL, SiteId(9)),
            ]
        )
        with pytest.raises(InvalidProtocolError, match="non-participant"):
            validate_spec(spec)

    def test_unproducible_read_rejected(self):
        automata = two_site_spec().automata
        automata[S1] = SiteAutomaton(
            site=S1, role="peer", initial="q",
            commit_states=["c"], abort_states=["a"],
            transitions=[
                Transition("q", "c", frozenset({Msg("ghost", S2, S1)})),
                Transition("q", "a", frozenset({Msg("no", EXTERNAL, S1)})),
            ],
        )
        spec = two_site_spec(automata=automata)
        with pytest.raises(InvalidProtocolError, match="can produce"):
            validate_spec(spec)

    def test_write_to_nonparticipant_rejected(self):
        automata = two_site_spec().automata
        automata[S1] = SiteAutomaton(
            site=S1, role="peer", initial="q",
            commit_states=["c"], abort_states=["a"],
            transitions=[
                Transition(
                    "q", "c", frozenset({Msg("go", EXTERNAL, S1)}),
                    writes=(Msg("m", S1, SiteId(9)),),
                ),
                Transition("q", "a", frozenset({Msg("no", EXTERNAL, S1)})),
            ],
        )
        spec = two_site_spec(automata=automata)
        with pytest.raises(InvalidProtocolError, match="non-participant"):
            validate_spec(spec)

    def test_central_without_coordinator_rejected(self):
        spec = two_site_spec(protocol_class=ProtocolClass.CENTRAL_SITE)
        with pytest.raises(InvalidProtocolError, match="coordinator"):
            validate_spec(spec)

    def test_sequential_duplicate_emission_rejected(self):
        # q --go/m--> w --no/m--> c emits the same message twice on one path.
        automata = two_site_spec().automata
        automata[S1] = SiteAutomaton(
            site=S1, role="peer", initial="q",
            commit_states=["c"], abort_states=["a"],
            transitions=[
                Transition(
                    "q", "w", frozenset({Msg("go", EXTERNAL, S1)}),
                    writes=(Msg("m", S1, S2),),
                ),
                Transition(
                    "w", "c", frozenset({Msg("no", EXTERNAL, S1)}),
                    writes=(Msg("m", S1, S2),),
                ),
                Transition("q", "a", frozenset({Msg("no", EXTERNAL, S1)})),
            ],
        )
        automata[S2] = SiteAutomaton(
            site=S2, role="peer", initial="q",
            commit_states=["c"], abort_states=["a"],
            transitions=[
                Transition("q", "c", frozenset({Msg("m", S1, S2)})),
                Transition("q", "a", frozenset({Msg("go", EXTERNAL, S2)})),
            ],
        )
        spec = two_site_spec(
            automata=automata,
            initial=[
                Msg("go", EXTERNAL, S1),
                Msg("no", EXTERNAL, S1),
                Msg("go", EXTERNAL, S2),
            ],
        )
        with pytest.raises(InvalidProtocolError, match="twice along one path"):
            validate_spec(spec)

    def test_alternative_branch_duplicates_allowed(self):
        # Two transitions out of the same state writing the same message
        # are mutually exclusive — exactly the 2PC coordinator's abort
        # fan-outs — and must validate.
        validate_spec(catalog.build("2pc-central", 4))


class TestSpecAccessors:
    def test_sites_sorted(self, spec_3pc_central):
        assert spec_3pc_central.sites == [1, 2, 3]

    def test_automaton_for_unknown_site_raises(self, spec_3pc_central):
        with pytest.raises(InvalidProtocolError):
            spec_3pc_central.automaton(SiteId(99))

    def test_initial_state_vector(self, spec_3pc_central):
        assert spec_3pc_central.initial_state_vector() == ("q", "q", "q")

    def test_state_kind_queries(self, spec_3pc_central):
        assert spec_3pc_central.is_commit_state(SiteId(1), "c")
        assert spec_3pc_central.is_abort_state(SiteId(2), "a")
        assert spec_3pc_central.is_final_state(SiteId(1), "c")
        assert not spec_3pc_central.is_final_state(SiteId(1), "w")

    def test_message_kinds(self, spec_3pc_central):
        kinds = spec_3pc_central.message_kinds()
        assert {"request", "xact", "yes", "no", "prepare", "ack",
                "commit", "abort"} <= kinds

    def test_phase_counts_match_names(self, all_specs):
        assert all_specs["1pc"].max_phase_count() == 1
        assert all_specs["2pc-central"].max_phase_count() == 2
        assert all_specs["2pc-decentralized"].max_phase_count() == 2
        assert all_specs["3pc-central"].max_phase_count() == 3
        assert all_specs["3pc-decentralized"].max_phase_count() == 3
