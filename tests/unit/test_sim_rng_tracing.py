"""Unit tests for random streams and the trace log."""

from repro.sim.rng import RandomStreams
from repro.sim.tracing import TraceLog


class TestRandomStreams:
    def test_same_name_returns_same_generator(self):
        streams = RandomStreams(1)
        assert streams.stream("net") is streams.stream("net")

    def test_different_names_are_independent(self):
        streams = RandomStreams(1)
        a = streams.stream("a")
        b = streams.stream("b")
        assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]

    def test_adding_consumer_does_not_perturb_existing(self):
        lone = RandomStreams(7)
        values_alone = [lone.stream("net").random() for _ in range(5)]

        crowded = RandomStreams(7)
        crowded.stream("other")  # New consumer created first.
        values_crowded = [crowded.stream("net").random() for _ in range(5)]
        assert values_alone == values_crowded

    def test_reproducible_across_instances(self):
        a = RandomStreams(3).stream("x").random()
        b = RandomStreams(3).stream("x").random()
        assert a == b

    def test_fork_derives_independent_namespace(self):
        root = RandomStreams(5)
        child = root.fork("site-1")
        assert child.stream("x").random() != root.stream("x").random()

    def test_fork_is_deterministic(self):
        a = RandomStreams(5).fork("site-1").stream("x").random()
        b = RandomStreams(5).fork("site-1").stream("x").random()
        assert a == b

    def test_seed_property(self):
        assert RandomStreams(9).seed == 9


class TestTraceLog:
    def test_record_and_len(self):
        log = TraceLog()
        log.record(1.0, "cat", "detail")
        log.record(2.0, "cat", "detail2")
        assert len(log) == 2

    def test_entries_are_immutable_snapshot(self):
        log = TraceLog()
        log.record(1.0, "a", "x")
        snapshot = log.entries
        log.record(2.0, "b", "y")
        assert len(snapshot) == 1

    def test_select_by_exact_category(self):
        log = TraceLog()
        log.record(1.0, "net.send", "a")
        log.record(2.0, "net.deliver", "b")
        assert len(log.select(category="net.send")) == 1

    def test_select_by_category_prefix(self):
        log = TraceLog()
        log.record(1.0, "net.send", "a")
        log.record(2.0, "net.deliver", "b")
        log.record(3.0, "engine.transition", "c")
        assert len(log.select(category="net.")) == 2

    def test_select_by_site(self):
        log = TraceLog()
        log.record(1.0, "x", "a", site=1)
        log.record(2.0, "x", "b", site=2)
        assert [e.detail for e in log.select(site=2)] == ["b"]

    def test_select_by_predicate(self):
        log = TraceLog()
        log.record(1.0, "x", "a", value=10)
        log.record(2.0, "x", "b", value=20)
        hits = log.select(predicate=lambda e: e.data["value"] > 15)
        assert [e.detail for e in hits] == ["b"]

    def test_count(self):
        log = TraceLog()
        log.record(1.0, "x", "a")
        log.record(2.0, "x", "b")
        log.record(3.0, "y", "c")
        assert log.count("x") == 2

    def test_data_payload_round_trips(self):
        log = TraceLog()
        entry = log.record(1.0, "x", "a", key="value", n=3)
        assert entry.data == {"key": "value", "n": 3}

    def test_format_timeline_has_one_line_per_entry(self):
        log = TraceLog()
        log.record(1.0, "x", "a")
        log.record(2.0, "y", "b", site=4)
        text = log.format_timeline()
        assert len(text.splitlines()) == 2
        assert "site 4" in text

    def test_format_timeline_limit(self):
        log = TraceLog()
        for i in range(5):
            log.record(float(i), "x", str(i))
        assert len(log.format_timeline(limit=2).splitlines()) == 2

    def test_getitem(self):
        log = TraceLog()
        log.record(1.0, "x", "a")
        assert log[0].detail == "a"
