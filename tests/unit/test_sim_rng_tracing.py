"""Unit tests for random streams and the trace log."""

import pytest

from repro.sim.rng import RandomStreams
from repro.sim.tracing import TraceEntry, TraceLog


class TestRandomStreams:
    def test_same_name_returns_same_generator(self):
        streams = RandomStreams(1)
        assert streams.stream("net") is streams.stream("net")

    def test_different_names_are_independent(self):
        streams = RandomStreams(1)
        a = streams.stream("a")
        b = streams.stream("b")
        assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]

    def test_adding_consumer_does_not_perturb_existing(self):
        lone = RandomStreams(7)
        values_alone = [lone.stream("net").random() for _ in range(5)]

        crowded = RandomStreams(7)
        crowded.stream("other")  # New consumer created first.
        values_crowded = [crowded.stream("net").random() for _ in range(5)]
        assert values_alone == values_crowded

    def test_reproducible_across_instances(self):
        a = RandomStreams(3).stream("x").random()
        b = RandomStreams(3).stream("x").random()
        assert a == b

    def test_fork_derives_independent_namespace(self):
        root = RandomStreams(5)
        child = root.fork("site-1")
        assert child.stream("x").random() != root.stream("x").random()

    def test_fork_is_deterministic(self):
        a = RandomStreams(5).fork("site-1").stream("x").random()
        b = RandomStreams(5).fork("site-1").stream("x").random()
        assert a == b

    def test_seed_property(self):
        assert RandomStreams(9).seed == 9


class TestTraceLog:
    def test_record_and_len(self):
        log = TraceLog()
        log.record(1.0, "cat", "detail")
        log.record(2.0, "cat", "detail2")
        assert len(log) == 2

    def test_entries_are_immutable_snapshot(self):
        log = TraceLog()
        log.record(1.0, "a", "x")
        snapshot = log.entries
        log.record(2.0, "b", "y")
        assert len(snapshot) == 1

    def test_select_by_exact_category(self):
        log = TraceLog()
        log.record(1.0, "net.send", "a")
        log.record(2.0, "net.deliver", "b")
        assert len(log.select(category="net.send")) == 1

    def test_select_by_category_prefix(self):
        log = TraceLog()
        log.record(1.0, "net.send", "a")
        log.record(2.0, "net.deliver", "b")
        log.record(3.0, "engine.transition", "c")
        assert len(log.select(category="net.")) == 2

    def test_select_by_site(self):
        log = TraceLog()
        log.record(1.0, "x", "a", site=1)
        log.record(2.0, "x", "b", site=2)
        assert [e.detail for e in log.select(site=2)] == ["b"]

    def test_select_by_predicate(self):
        log = TraceLog()
        log.record(1.0, "x", "a", value=10)
        log.record(2.0, "x", "b", value=20)
        hits = log.select(predicate=lambda e: e.data["value"] > 15)
        assert [e.detail for e in hits] == ["b"]

    def test_count(self):
        log = TraceLog()
        log.record(1.0, "x", "a")
        log.record(2.0, "x", "b")
        log.record(3.0, "y", "c")
        assert log.count("x") == 2

    def test_data_payload_round_trips(self):
        log = TraceLog()
        entry = log.record(1.0, "x", "a", key="value", n=3)
        assert entry.data == {"key": "value", "n": 3}

    def test_format_timeline_has_one_line_per_entry(self):
        log = TraceLog()
        log.record(1.0, "x", "a")
        log.record(2.0, "y", "b", site=4)
        text = log.format_timeline()
        assert len(text.splitlines()) == 2
        assert "site 4" in text

    def test_format_timeline_limit(self):
        log = TraceLog()
        for i in range(5):
            log.record(float(i), "x", str(i))
        assert len(log.format_timeline(limit=2).splitlines()) == 2

    def test_getitem(self):
        log = TraceLog()
        log.record(1.0, "x", "a")
        assert log[0].detail == "a"

    def test_select_prefix_requires_trailing_dot(self):
        # "net" (no dot) is an exact match, not a prefix.
        log = TraceLog()
        log.record(1.0, "net.send", "a")
        log.record(2.0, "network.other", "b")
        assert log.select(category="net") == []
        assert len(log.select(category="net.")) == 1

    def test_select_prefix_does_not_match_bare_category(self):
        log = TraceLog()
        log.record(1.0, "net", "bare")
        log.record(2.0, "net.send", "a")
        assert [e.detail for e in log.select(category="net.")] == ["a"]


class TestBoundedTraceLog:
    def test_unbounded_by_default(self):
        log = TraceLog()
        for i in range(1000):
            log.record(float(i), "x", str(i))
        assert len(log) == 1000
        assert log.dropped == 0

    def test_ring_keeps_newest(self):
        log = TraceLog(max_entries=3)
        for i in range(5):
            log.record(float(i), "x", str(i))
        assert len(log) == 3
        assert [e.detail for e in log] == ["2", "3", "4"]
        assert log.dropped == 2

    def test_drop_keeps_oldest(self):
        log = TraceLog(max_entries=3, overflow="drop")
        for i in range(5):
            log.record(float(i), "x", str(i))
        assert len(log) == 3
        assert [e.detail for e in log] == ["0", "1", "2"]
        assert log.dropped == 2

    def test_record_still_returns_entry_when_dropped(self):
        log = TraceLog(max_entries=1, overflow="drop")
        log.record(1.0, "x", "kept")
        entry = log.record(2.0, "x", "lost")
        assert entry.detail == "lost"
        assert [e.detail for e in log] == ["kept"]

    def test_bounded_log_still_selects(self):
        log = TraceLog(max_entries=4)
        for i in range(8):
            log.record(float(i), "even" if i % 2 == 0 else "odd", str(i))
        assert [e.detail for e in log.select(category="even")] == ["4", "6"]

    def test_invalid_policy_rejected(self):
        with pytest.raises(ValueError):
            TraceLog(max_entries=2, overflow="bogus")

    def test_invalid_bound_rejected(self):
        with pytest.raises(ValueError):
            TraceLog(max_entries=0)


class TestTraceJsonl:
    def _sample(self):
        log = TraceLog()
        log.record(0.0, "net.send", "#0 1->2: yes", site=1, msg_id=0, src=1, dst=2)
        log.record(1.0, "net.deliver", "#0 1->2: yes", site=2, msg_id=0, src=1, dst=2, sent_at=0.0)
        log.record(2.5, "engine.transition", "w -> p", site=2, state="p", fired=2)
        log.record(3.0, "net.partition", "partitioned")  # site=None
        return log

    def test_round_trip_preserves_entries(self):
        log = self._sample()
        restored = TraceLog.from_jsonl(log.to_jsonl())
        assert restored.entries == log.entries

    def test_round_trip_is_byte_identical(self):
        text = self._sample().to_jsonl()
        assert TraceLog.from_jsonl(text).to_jsonl() == text

    def test_export_is_one_line_per_entry(self):
        log = self._sample()
        assert len(log.to_jsonl().splitlines()) == len(log)

    def test_field_order_is_fixed(self):
        line = self._sample().to_jsonl().splitlines()[0]
        assert line.index('"time"') < line.index('"category"')
        assert line.index('"category"') < line.index('"site"')
        assert line.index('"detail"') < line.index('"data"')

    def test_data_keys_sorted_for_determinism(self):
        log = TraceLog()
        log.record(1.0, "x", "d", zeta=1, alpha=2)
        line = log.to_jsonl()
        assert line.index('"alpha"') < line.index('"zeta"')

    def test_non_json_values_coerced_to_str(self):
        class Opaque:
            def __str__(self):
                return "opaque!"

        log = TraceLog()
        log.record(1.0, "x", "d", obj=Opaque(), ok=3)
        restored = TraceLog.from_jsonl(log.to_jsonl())
        assert restored[0].data == {"obj": "opaque!", "ok": 3}

    def test_blank_lines_skipped(self):
        text = self._sample().to_jsonl() + "\n\n"
        assert len(TraceLog.from_jsonl(text)) == 4

    def test_save_and_load(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        log = self._sample()
        assert log.save(str(path)) == len(log)
        assert TraceLog.load(str(path)).entries == log.entries

    def test_entry_json_symmetry(self):
        entry = TraceEntry(1.5, "cat", 3, "detail", {"a": 1})
        assert TraceEntry.from_json(entry.to_json()) == entry
