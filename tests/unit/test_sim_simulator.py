"""Unit tests for the discrete-event simulator core."""

import pytest

from repro.errors import ClockError
from repro.sim.simulator import Simulator


class TestScheduling:
    def test_starts_at_time_zero(self):
        assert Simulator().now == 0.0

    def test_schedule_fires_at_offset(self):
        sim = Simulator()
        fired = []
        sim.schedule(2.5, lambda: fired.append(sim.now))
        sim.run()
        assert fired == [2.5]

    def test_schedule_at_absolute_time(self):
        sim = Simulator()
        fired = []
        sim.schedule_at(4.0, lambda: fired.append(sim.now))
        sim.run()
        assert fired == [4.0]

    def test_negative_delay_rejected(self):
        with pytest.raises(ClockError):
            Simulator().schedule(-0.1, lambda: None)

    def test_schedule_in_past_rejected(self):
        sim = Simulator()
        sim.schedule(5.0, lambda: None)
        sim.run()
        with pytest.raises(ClockError):
            sim.schedule_at(1.0, lambda: None)

    def test_zero_delay_allowed(self):
        sim = Simulator()
        fired = []
        sim.schedule(0.0, lambda: fired.append(True))
        sim.run()
        assert fired == [True]


class TestOrdering:
    def test_events_fire_in_time_order(self):
        sim = Simulator()
        order = []
        sim.schedule(3.0, lambda: order.append("c"))
        sim.schedule(1.0, lambda: order.append("a"))
        sim.schedule(2.0, lambda: order.append("b"))
        sim.run()
        assert order == ["a", "b", "c"]

    def test_ties_break_fifo_by_schedule_order(self):
        sim = Simulator()
        order = []
        for tag in "abcde":
            sim.schedule(1.0, lambda t=tag: order.append(t))
        sim.run()
        assert order == list("abcde")

    def test_nested_scheduling_during_callback(self):
        sim = Simulator()
        order = []

        def outer():
            order.append("outer")
            sim.schedule(1.0, lambda: order.append("inner"))

        sim.schedule(1.0, outer)
        sim.run()
        assert order == ["outer", "inner"]
        assert sim.now == 2.0

    def test_same_time_nested_event_fires_after_existing(self):
        sim = Simulator()
        order = []
        sim.schedule(1.0, lambda: (order.append("a"), sim.schedule(0, lambda: order.append("nested")))[0])
        sim.schedule(1.0, lambda: order.append("b"))
        sim.run()
        assert order == ["a", "b", "nested"]


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        sim = Simulator()
        fired = []
        handle = sim.schedule(1.0, lambda: fired.append(True))
        handle.cancel()
        sim.run()
        assert fired == []
        assert handle.cancelled

    def test_cancel_after_fire_is_noop(self):
        sim = Simulator()
        handle = sim.schedule(1.0, lambda: None)
        sim.run()
        handle.cancel()  # Must not raise.

    def test_double_cancel_is_noop(self):
        sim = Simulator()
        handle = sim.schedule(1.0, lambda: None)
        handle.cancel()
        handle.cancel()
        assert handle.cancelled

    def test_pending_events_excludes_cancelled(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        handle = sim.schedule(2.0, lambda: None)
        handle.cancel()
        assert sim.pending_events == 1


class TestRunControls:
    def test_run_until_stops_clock_at_deadline(self):
        sim = Simulator()
        sim.schedule(10.0, lambda: None)
        end = sim.run(until=5.0)
        assert end == 5.0
        assert sim.pending_events == 1

    def test_run_until_resumes_later(self):
        sim = Simulator()
        fired = []
        sim.schedule(10.0, lambda: fired.append(True))
        sim.run(until=5.0)
        sim.run()
        assert fired == [True]

    def test_run_advances_clock_to_until_when_queue_empty(self):
        sim = Simulator()
        sim.run(until=7.0)
        assert sim.now == 7.0

    def test_last_event_time_ignores_deadline(self):
        sim = Simulator()
        sim.schedule(2.0, lambda: None)
        sim.run(until=100.0)
        assert sim.last_event_time == 2.0
        assert sim.now == 100.0

    def test_max_events_budget(self):
        sim = Simulator()
        fired = []
        for i in range(10):
            sim.schedule(float(i + 1), lambda i=i: fired.append(i))
        sim.run(max_events=3)
        assert fired == [0, 1, 2]

    def test_step_fires_single_event(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: fired.append(1))
        sim.schedule(2.0, lambda: fired.append(2))
        assert sim.step()
        assert fired == [1]

    def test_step_on_empty_queue_returns_false(self):
        assert not Simulator().step()

    def test_events_fired_counter(self):
        sim = Simulator()
        for i in range(4):
            sim.schedule(1.0, lambda: None)
        sim.run()
        assert sim.events_fired == 4


class TestDeterminism:
    def test_identical_seeds_identical_streams(self):
        a = Simulator(seed=42).streams.stream("x")
        b = Simulator(seed=42).streams.stream("x")
        assert [a.random() for _ in range(10)] == [b.random() for _ in range(10)]

    def test_different_seeds_differ(self):
        a = Simulator(seed=1).streams.stream("x")
        b = Simulator(seed=2).streams.stream("x")
        assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]


class TestPendingCounter:
    """pending_events is an O(1) counter, not a heap scan."""

    def test_counter_tracks_schedule_cancel_and_fire(self):
        sim = Simulator()
        handles = [sim.schedule(float(t), lambda: None) for t in range(1, 4)]
        assert sim.pending_events == 3
        handles[1].cancel()
        assert sim.pending_events == 2
        sim.step()  # Fires t=1.
        assert sim.pending_events == 1
        sim.run()
        assert sim.pending_events == 0

    def test_cancel_after_fire_does_not_underflow(self):
        sim = Simulator()
        handle = sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        sim.step()  # Fires the t=1 event.
        handle.cancel()  # Too late — must not decrement.
        assert sim.pending_events == 1

    def test_double_cancel_decrements_once(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        handle = sim.schedule(2.0, lambda: None)
        handle.cancel()
        handle.cancel()
        assert sim.pending_events == 1

    def test_counter_survives_many_cancelled_events_cheaply(self):
        sim = Simulator()
        handles = [sim.schedule(1.0, lambda: None) for _ in range(1000)]
        for handle in handles[:999]:
            handle.cancel()
        # Lazy deletion leaves 999 tombstones in the heap; the counter
        # must still be exact without scanning them.
        assert sim.pending_events == 1
        sim.run()
        assert sim.pending_events == 0
