"""Latency models: the randomized profiles and the fixed model's contract."""

from __future__ import annotations

import random

import pytest

from repro.net.latency import (
    ExponentialLatency,
    FixedLatency,
    UniformLatency,
    lan_profile,
)
from repro.types import SiteId

A, B = SiteId(1), SiteId(2)


class TestExponentialLatency:
    def test_validation(self):
        with pytest.raises(ValueError):
            ExponentialLatency(mean=0.0)
        with pytest.raises(ValueError):
            ExponentialLatency(mean=-1.0)
        with pytest.raises(ValueError):
            ExponentialLatency(mean=1.0, floor=-0.1)

    def test_floor_is_a_hard_lower_bound(self):
        model = ExponentialLatency(mean=0.5, floor=2.0)
        rng = random.Random(7)
        assert all(model.delay(A, B, rng) >= 2.0 for _ in range(500))

    def test_mean_of_the_tail(self):
        model = ExponentialLatency(mean=3.0, floor=1.0)
        rng = random.Random(42)
        samples = [model.delay(A, B, rng) - 1.0 for _ in range(20_000)]
        assert sum(samples) / len(samples) == pytest.approx(3.0, rel=0.05)

    def test_long_right_tail(self):
        # The defining property vs. uniform noise: p99 well above p50.
        model = ExponentialLatency(mean=1.0, floor=0.0)
        rng = random.Random(3)
        samples = sorted(model.delay(A, B, rng) for _ in range(10_000))
        p50 = samples[len(samples) // 2]
        p99 = samples[int(len(samples) * 0.99)]
        assert p99 > 3 * p50

    def test_deterministic_for_a_seeded_rng(self):
        model = ExponentialLatency(mean=1.0, floor=0.5)
        first = [model.delay(A, B, random.Random(9)) for _ in range(5)]
        second = [model.delay(A, B, random.Random(9)) for _ in range(5)]
        assert first == second


class TestLanProfile:
    def test_shape(self):
        model = lan_profile()
        assert isinstance(model, ExponentialLatency)
        assert model.floor == pytest.approx(0.75)
        assert model.mean == pytest.approx(0.5)

    def test_scale_is_linear(self):
        ms = lan_profile(scale=0.12)
        assert ms.floor == pytest.approx(0.75 * 0.12)
        assert ms.mean == pytest.approx(0.5 * 0.12)

    def test_median_hop_is_about_one_time_unit(self):
        # At scale=1 a median hop should land near 1.0 simulated units,
        # so phase counts read as round-trip counts.
        rng = random.Random(11)
        model = lan_profile()
        samples = sorted(model.delay(A, B, rng) for _ in range(10_000))
        median = samples[len(samples) // 2]
        assert 0.9 < median < 1.3


class TestFixedLatencyContract:
    def test_ignores_the_rng_by_design(self):
        # FixedLatency documents that it draws nothing: the rng's state
        # must be untouched, so swapping models never shifts other
        # consumers' named streams.
        model = FixedLatency(2.5)
        rng = random.Random(1234)
        before = rng.getstate()
        assert model.delay(A, B, rng) == 2.5
        assert rng.getstate() == before

    def test_uniform_does_draw(self):
        rng = random.Random(1234)
        before = rng.getstate()
        UniformLatency(0.0, 1.0).delay(A, B, rng)
        assert rng.getstate() != before
