"""Unit tests for the KV store and the write-ahead log."""

import pytest

from repro.db.kv import KVStore
from repro.db.wal import MISSING, WriteAheadLog
from repro.errors import WALError
from repro.types import TransactionId

T1, T2, T3 = TransactionId(1), TransactionId(2), TransactionId(3)


class TestKVStore:
    def test_put_get(self):
        store = KVStore()
        store.put("k", 1)
        assert store.get("k") == 1

    def test_get_default(self):
        assert KVStore().get("missing", 42) == 42

    def test_delete(self):
        store = KVStore()
        store.put("k", 1)
        assert store.delete("k")
        assert not store.delete("k")
        assert not store.exists("k")

    def test_keys_sorted(self):
        store = KVStore()
        store.put("b", 1)
        store.put("a", 2)
        assert store.keys() == ["a", "b"]

    def test_items_in_key_order(self):
        store = KVStore()
        store.put("b", 2)
        store.put("a", 1)
        assert list(store.items()) == [("a", 1), ("b", 2)]

    def test_snapshot_is_a_copy(self):
        store = KVStore()
        store.put("k", 1)
        snap = store.snapshot()
        store.put("k", 2)
        assert snap == {"k": 1}

    def test_wipe(self):
        store = KVStore()
        store.put("k", 1)
        store.wipe()
        assert len(store) == 0


class TestWALProtocol:
    def test_begin_twice_rejected(self):
        wal = WriteAheadLog()
        wal.log_begin(T1)
        with pytest.raises(WALError, match="already began"):
            wal.log_begin(T1)

    def test_update_without_begin_rejected(self):
        with pytest.raises(WALError, match="never began"):
            WriteAheadLog().log_update(T1, "k", 1, 2)

    def test_commit_after_abort_rejected(self):
        wal = WriteAheadLog()
        wal.log_begin(T1)
        wal.log_abort(T1)
        with pytest.raises(WALError, match="already aborted"):
            wal.log_commit(T1)

    def test_status_progression(self):
        wal = WriteAheadLog()
        assert wal.status(T1) == "unknown"
        wal.log_begin(T1)
        assert wal.status(T1) == "active"
        wal.log_commit(T1)
        assert wal.status(T1) == "committed"

    def test_transactions_listed(self):
        wal = WriteAheadLog()
        wal.log_begin(T2)
        wal.log_begin(T1)
        assert wal.transactions() == [T1, T2]

    def test_updates_of_in_order(self):
        wal = WriteAheadLog()
        wal.log_begin(T1)
        wal.log_update(T1, "a", MISSING, 1)
        wal.log_update(T1, "b", MISSING, 2)
        assert [r.key for r in wal.updates_of(T1)] == ["a", "b"]


class TestRecovery:
    def _store(self):
        from repro.db.kv import KVStore

        return KVStore()

    def test_committed_txn_redone(self):
        wal = WriteAheadLog()
        wal.log_begin(T1)
        wal.log_update(T1, "k", MISSING, "v")
        wal.log_commit(T1)
        store = self._store()
        classification = wal.recover(store)
        assert store.get("k") == "v"
        assert classification["committed"] == [T1]

    def test_active_txn_rolled_back(self):
        wal = WriteAheadLog()
        wal.log_begin(T1)
        wal.log_update(T1, "k", MISSING, "v")
        store = self._store()
        classification = wal.recover(store)
        assert not store.exists("k")
        assert classification["rolled_back"] == [T1]
        assert wal.status(T1) == "aborted"  # Compensation record.

    def test_rollback_restores_prior_value(self):
        wal = WriteAheadLog()
        wal.log_begin(T1)
        wal.log_update(T1, "k", MISSING, "old")
        wal.log_commit(T1)
        wal.log_begin(T2)
        wal.log_update(T2, "k", "old", "new")
        store = self._store()
        wal.recover(store)
        assert store.get("k") == "old"

    def test_aborted_txn_stays_undone(self):
        wal = WriteAheadLog()
        wal.log_begin(T1)
        wal.log_update(T1, "k", MISSING, "v")
        wal.log_abort(T1)
        store = self._store()
        classification = wal.recover(store)
        assert not store.exists("k")
        assert classification["aborted"] == [T1]

    def test_in_doubt_txn_preserved(self):
        wal = WriteAheadLog()
        wal.log_begin(T1)
        wal.log_update(T1, "k", MISSING, "v")
        store = self._store()
        classification = wal.recover(store, in_doubt=[T1])
        assert store.get("k") == "v"  # Updates kept, not rolled back.
        assert classification["in_doubt"] == [T1]
        assert wal.status(T1) == "active"

    def test_mixed_history(self):
        wal = WriteAheadLog()
        wal.log_begin(T1)
        wal.log_update(T1, "a", MISSING, 1)
        wal.log_commit(T1)
        wal.log_begin(T2)
        wal.log_update(T2, "b", MISSING, 2)
        wal.log_abort(T2)
        wal.log_begin(T3)
        wal.log_update(T3, "c", MISSING, 3)
        store = self._store()
        classification = wal.recover(store)
        assert store.get("a") == 1
        assert not store.exists("b")
        assert not store.exists("c")
        assert classification == {
            "committed": [T1],
            "aborted": [T2],
            "rolled_back": [T3],
            "in_doubt": [],
        }

    def test_recovery_is_idempotent(self):
        wal = WriteAheadLog()
        wal.log_begin(T1)
        wal.log_update(T1, "k", MISSING, "v")
        store = self._store()
        wal.recover(store)
        store.wipe()
        wal.recover(store)
        assert not store.exists("k")

    def test_interleaved_updates_undone_in_reverse(self):
        wal = WriteAheadLog()
        wal.log_begin(T1)
        wal.log_update(T1, "k", MISSING, 1)
        wal.log_update(T1, "k", 1, 2)
        wal.log_update(T1, "k", 2, 3)
        store = self._store()
        wal.recover(store)
        assert not store.exists("k")
