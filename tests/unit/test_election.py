"""Unit tests for the bully and ring election algorithms."""

import pytest

from repro.election.bully import bully_strategy, run_bully_election
from repro.election.ring import ring_strategy, run_ring_election


class TestBully:
    def test_all_up_highest_wins(self):
        winner, view = run_bully_election([1, 2, 3, 4, 5])
        assert winner == 5
        assert view == {i: 5 for i in range(1, 6)}

    def test_highest_down_next_wins(self):
        winner, view = run_bully_election([1, 2, 3, 4, 5], crashed=[5])
        assert winner == 4
        assert all(view[i] == 4 for i in (1, 2, 3, 4))
        assert view[5] is None

    def test_multiple_failures(self):
        winner, view = run_bully_election([1, 2, 3, 4, 5], crashed=[5, 4, 3])
        assert winner == 2
        assert view[1] == 2 and view[2] == 2

    def test_initiator_choice_does_not_change_winner(self):
        for initiator in (1, 2, 3):
            winner, view = run_bully_election([1, 2, 3, 4], initiator=initiator)
            assert winner == 4
            assert all(view[i] == 4 for i in (1, 2, 3, 4))

    def test_highest_node_initiating_self_elects(self):
        winner, view = run_bully_election([1, 2, 3], initiator=3)
        assert winner == 3
        assert view[1] == 3 and view[2] == 3

    def test_sole_survivor(self):
        winner, view = run_bully_election([1, 2, 3], crashed=[2, 3])
        assert winner == 1
        assert view[1] == 1

    def test_all_crashed(self):
        winner, view = run_bully_election([1, 2], crashed=[1, 2])
        assert winner is None
        assert view == {1: None, 2: None}

    def test_strategy_matches_algorithm(self):
        winner, _ = run_bully_election([1, 2, 3, 4], crashed=[4])
        assert bully_strategy([1, 2, 3]) == winner


class TestRing:
    def test_all_up_highest_wins(self):
        winner, view = run_ring_election([1, 2, 3, 4, 5])
        assert winner == 5
        assert view == {i: 5 for i in range(1, 6)}

    def test_crashed_nodes_skipped(self):
        winner, view = run_ring_election([1, 2, 3, 4, 5], crashed=[5, 2])
        assert winner == 4
        assert view[1] == 4 and view[3] == 4 and view[4] == 4
        assert view[2] is None and view[5] is None

    def test_any_initiator_converges(self):
        for initiator in (1, 3, 4):
            winner, view = run_ring_election([1, 2, 3, 4], initiator=initiator)
            assert winner == 4
            assert all(view[i] == 4 for i in (1, 2, 3, 4))

    def test_single_node_ring(self):
        winner, view = run_ring_election([3])
        assert winner == 3
        assert view == {3: 3}

    def test_sole_survivor(self):
        winner, view = run_ring_election([1, 2, 3], crashed=[1, 3])
        assert winner == 2
        assert view[2] == 2

    def test_strategy_matches_algorithm(self):
        winner, _ = run_ring_election([1, 2, 3, 4], crashed=[4])
        assert ring_strategy([1, 2, 3]) == winner

    def test_bully_and_ring_agree(self):
        for crashed in ([], [5], [5, 3], [1, 2]):
            b, _ = run_bully_election([1, 2, 3, 4, 5], crashed=crashed)
            r, _ = run_ring_election([1, 2, 3, 4, 5], crashed=crashed)
            assert b == r
