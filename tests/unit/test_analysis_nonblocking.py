"""Unit tests for the fundamental nonblocking theorem, corollary, and
lemma — the paper's central results."""

import pytest

from repro.analysis.nonblocking import check_lemma, check_nonblocking
from repro.protocols import catalog
from repro.types import SiteId


class TestTheoremVerdicts:
    @pytest.mark.parametrize("name", ["1pc", "2pc-central", "2pc-decentralized"])
    def test_blocking_protocols_flagged(self, name):
        report = check_nonblocking(catalog.build(name, 3))
        assert not report.nonblocking
        assert report.violations

    @pytest.mark.parametrize("name", ["3pc-central", "3pc-decentralized"])
    def test_nonblocking_protocols_pass(self, name):
        report = check_nonblocking(catalog.build(name, 3))
        assert report.nonblocking
        assert report.violations == ()

    @pytest.mark.parametrize("n", [2, 3, 4])
    def test_verdicts_stable_across_site_counts(self, n):
        assert not check_nonblocking(catalog.build("2pc-central", n)).nonblocking
        assert check_nonblocking(catalog.build("3pc-central", n)).nonblocking

    def test_2pc_wait_state_violates_both_conditions(self):
        # Slide 28: "both 2PC protocols can block for either reason."
        report = check_nonblocking(catalog.build("2pc-decentralized", 3))
        w_violations = {
            v.condition for v in report.violations if v.state == "w"
        }
        assert w_violations == {1, 2}

    def test_2pc_central_only_slaves_violate(self):
        report = check_nonblocking(catalog.build("2pc-central", 3))
        assert {v.site for v in report.violations} == {2, 3}

    def test_violation_witnesses_are_real_commit_abort_states(self):
        spec = catalog.build("2pc-central", 3)
        report = check_nonblocking(spec)
        for violation in report.violations:
            site, state = violation.commit_witness
            assert spec.is_commit_state(site, state)
            if violation.abort_witness is not None:
                site, state = violation.abort_witness
                assert spec.is_abort_state(site, state)

    def test_violation_describe_mentions_state(self):
        report = check_nonblocking(catalog.build("2pc-central", 3))
        text = report.violations[0].describe()
        assert "'w'" in text

    def test_report_describe_renders(self):
        report = check_nonblocking(catalog.build("3pc-central", 3))
        text = report.describe()
        assert "nonblocking: YES" in text


class TestCorollary:
    def test_3pc_tolerates_n_minus_1_failures(self):
        for n in (2, 3, 4):
            report = check_nonblocking(catalog.build("3pc-central", n))
            assert report.tolerated_failures == n - 1
            assert report.obeying_sites == frozenset(range(1, n + 1))

    def test_2pc_tolerates_none(self):
        report = check_nonblocking(catalog.build("2pc-decentralized", 3))
        assert report.tolerated_failures == 0

    def test_2pc_central_coordinator_obeys_alone(self):
        # The coordinator's own states never pair a commit with its wait
        # state, so it obeys the conditions — but one obeying site only
        # yields resilience to zero failures.
        report = check_nonblocking(catalog.build("2pc-central", 3))
        assert report.obeying_sites == frozenset({1})
        assert report.tolerated_failures == 0

    def test_violations_at_filter(self):
        report = check_nonblocking(catalog.build("2pc-central", 3))
        assert report.violations_at(SiteId(2))
        assert report.violations_at(SiteId(1)) == ()


class TestLemma:
    def test_2pc_violates_lemma(self, spec_2pc_central):
        violations = check_lemma(spec_2pc_central)
        assert violations
        states = {(v.site, v.state) for v in violations}
        assert (SiteId(2), "w") in states

    def test_2pc_wait_violates_both_lemma_conditions(self, spec_2pc_central):
        conditions = {
            v.condition
            for v in check_lemma(spec_2pc_central)
            if v.site == SiteId(2) and v.state == "w"
        }
        assert conditions == {1, 2}

    def test_3pc_satisfies_lemma(self, spec_3pc_central):
        assert check_lemma(spec_3pc_central) == ()

    def test_3pc_decentralized_satisfies_lemma(self, spec_3pc_decentralized):
        assert check_lemma(spec_3pc_decentralized) == ()

    def test_lemma_describe(self, spec_2pc_central):
        text = check_lemma(spec_2pc_central)[0].describe()
        assert "adjacent" in text

    def test_lemma_agrees_with_theorem_for_sync_protocols(self, all_specs):
        # For protocols synchronous within one transition, the lemma and
        # the theorem must agree on blocking vs nonblocking.
        for name, spec in all_specs.items():
            theorem = check_nonblocking(spec).nonblocking
            lemma = not check_lemma(spec)
            assert theorem == lemma, name
