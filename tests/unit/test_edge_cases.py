"""Edge-case batch: corners the main suites don't reach."""

import pytest

from repro.net.latency import UniformLatency
from repro.protocols import catalog
from repro.protocols.three_phase_decentralized import decentralized_three_phase
from repro.protocols.two_phase_decentralized import decentralized_two_phase
from repro.runtime.decision import TerminationRule
from repro.runtime.harness import CommitRun
from repro.runtime.policies import FixedVotes
from repro.types import Outcome, SiteId, Vote
from repro.workload.crashes import CrashAt, CrashDuringTransition


class TestTwoSiteMinimum:
    """n=2 is the smallest legal instance; off-by-ones hide here."""

    @pytest.mark.parametrize("name", catalog.protocol_names())
    def test_two_site_happy_path(self, name):
        run = CommitRun(
            catalog.build(name, 2), termination_enabled=False
        ).execute()
        assert set(run.outcomes().values()) == {Outcome.COMMIT}

    def test_two_site_3pc_coordinator_crash(self):
        spec = catalog.build("3pc-central", 2)
        run = CommitRun(spec, crashes=[CrashAt(site=1, at=2.0)]).execute()
        # The single slave is the lone survivor — and terminates.
        assert run.reports[2].outcome.is_final
        assert run.atomic

    def test_two_site_decentralized_peer_crash(self):
        spec = catalog.build("3pc-decentralized", 2)
        run = CommitRun(spec, crashes=[CrashAt(site=2, at=0.5)]).execute()
        assert run.reports[1].outcome.is_final
        assert run.atomic


class TestAllVotesNo:
    def test_everyone_votes_no_decentralized(self):
        spec = decentralized_two_phase(3)
        run = CommitRun(
            spec,
            vote_policy=FixedVotes({}, default=Vote.NO),
            termination_enabled=False,
        ).execute()
        assert set(run.outcomes().values()) == {Outcome.ABORT}
        # No-voters go straight to a; nobody consumes the vote flood.
        for report in run.reports.values():
            assert report.transitions_fired == 1

    def test_everyone_votes_no_3pc_decentralized(self):
        spec = decentralized_three_phase(3)
        run = CommitRun(
            spec,
            vote_policy=FixedVotes({}, default=Vote.NO),
            termination_enabled=False,
        ).execute()
        assert set(run.outcomes().values()) == {Outcome.ABORT}


class TestCrashTimingCorners:
    def test_crash_at_time_zero(self, spec_3pc_central, rule_3pc_central):
        run = CommitRun(
            spec_3pc_central,
            crashes=[CrashAt(site=1, at=0.0)],
            rule=rule_3pc_central,
        ).execute()
        # Coordinator dies before doing anything: slaves never even get
        # the transaction; termination aborts from q.
        assert run.atomic
        for site in (2, 3):
            assert run.reports[site].outcome is Outcome.ABORT

    def test_crash_after_everything_finished(
        self, spec_3pc_central, rule_3pc_central
    ):
        run = CommitRun(
            spec_3pc_central,
            crashes=[CrashAt(site=1, at=50.0)],
            rule=rule_3pc_central,
        ).execute()
        assert set(run.outcomes().values()) == {Outcome.COMMIT}
        assert run.reports[1].crashed

    def test_simultaneous_crashes(self, spec_3pc_central, rule_3pc_central):
        run = CommitRun(
            spec_3pc_central,
            crashes=[CrashAt(site=1, at=2.0), CrashAt(site=2, at=2.0)],
            rule=rule_3pc_central,
        ).execute()
        assert run.atomic
        assert run.reports[3].outcome.is_final

    def test_partial_crash_on_never_fired_transition(
        self, spec_3pc_central, rule_3pc_central
    ):
        # Armed for the coordinator's 5th transition — it only has 3.
        run = CommitRun(
            spec_3pc_central,
            crashes=[
                CrashDuringTransition(
                    site=1, transition_number=5, after_writes=0
                )
            ],
            rule=rule_3pc_central,
        ).execute()
        # The crash never triggers; the run completes normally.
        assert set(run.outcomes().values()) == {Outcome.COMMIT}
        assert not run.reports[1].crashed

    def test_crash_then_crash_again_after_restart(
        self, spec_3pc_central, rule_3pc_central
    ):
        run = CommitRun(
            spec_3pc_central,
            crashes=[
                CrashAt(site=2, at=1.5, restart_at=20.0),
                CrashAt(site=2, at=25.0, restart_at=45.0),
            ],
            rule=rule_3pc_central,
        ).execute()
        assert run.atomic
        assert run.reports[2].outcome.is_final


class TestLatencyExtremes:
    def test_zero_latency(self, spec_3pc_central):
        from repro.net.latency import FixedLatency

        run = CommitRun(
            spec_3pc_central,
            latency=FixedLatency(0.0),
            termination_enabled=False,
        ).execute()
        assert set(run.outcomes().values()) == {Outcome.COMMIT}
        assert run.duration == 0.0

    def test_highly_skewed_random_latency(self, spec_3pc_central, rule_3pc_central):
        run = CommitRun(
            spec_3pc_central,
            latency=UniformLatency(0.01, 10.0),
            seed=99,
            rule=rule_3pc_central,
        ).execute()
        assert set(run.outcomes().values()) == {Outcome.COMMIT}

    def test_detection_slower_than_everything(self, spec_2pc_central, rule_2pc_central):
        # Detection so slow the protocol would have finished; a crash in
        # the window still blocks 2PC once detected.
        run = CommitRun(
            spec_2pc_central,
            crashes=[CrashAt(site=1, at=2.0)],
            detection_delay=30.0,
            rule=rule_2pc_central,
        ).execute()
        assert run.blocked_sites == [2, 3]
        # Blocking was only announced after the late detection.
        blocked_entries = run.trace.select(category="term.blocked")
        assert blocked_entries and blocked_entries[0].time >= 32.0


class TestVotePolicyCorners:
    def test_coordinator_no_with_slave_no(self, spec_2pc_central, rule_2pc_central):
        run = CommitRun(
            spec_2pc_central,
            vote_policy=FixedVotes({}, default=Vote.NO),
            rule=rule_2pc_central,
        ).execute()
        assert set(run.outcomes().values()) == {Outcome.ABORT}

    def test_strict_coordinator_waits_for_all_votes(self):
        # With one slow slave, the strict coordinator must not abort on
        # the early no — it needs the full vector.
        from repro.net.latency import PerLinkLatency

        spec = catalog.build("2pc-central", 3)
        rule = TerminationRule(spec)
        latency = PerLinkLatency({(SiteId(3), SiteId(1)): 7.0}, default=1.0)
        run = CommitRun(
            spec,
            latency=latency,
            vote_policy=FixedVotes({SiteId(2): Vote.NO}),
            rule=rule,
            termination_enabled=False,
        ).execute()
        times = run.decision_times()
        assert times[1] >= 8.0  # Waited for the straggler's vote.
        assert set(run.outcomes().values()) == {Outcome.ABORT}
