"""Unit tests for the synchronicity check and buffer-state synthesis."""

import pytest

from repro.analysis.synchronicity import check_synchronicity
from repro.analysis.synthesis import insert_buffer_states, specs_structurally_equal
from repro.errors import StateGraphTooLargeError, SynthesisError
from repro.protocols import catalog
from repro.protocols.three_phase_central import central_three_phase
from repro.protocols.three_phase_decentralized import decentralized_three_phase
from repro.protocols.two_phase_central import central_two_phase
from repro.protocols.two_phase_decentralized import decentralized_two_phase
from repro.types import SiteId


class TestSynchronicity:
    @pytest.mark.parametrize("name", catalog.protocol_names())
    def test_catalog_protocols_synchronous_within_one(self, name):
        # Slide 24 for the central model, slide 26 for the decentralized:
        # all of the paper's protocols have this property.
        report = check_synchronicity(catalog.build(name, 3))
        assert report.synchronous_within_one
        assert report.max_lead <= 1

    def test_eager_abort_variant_loses_the_property(self):
        # Aborting on the first no lets a decided site race two
        # transitions ahead of a lagging voter.
        spec = central_two_phase(3, eager_abort=True)
        report = check_synchronicity(spec)
        assert not report.synchronous_within_one
        assert report.max_lead == 2

    def test_eager_decentralized_also_loses_it(self):
        spec = decentralized_two_phase(3, eager_abort=True)
        assert not check_synchronicity(spec).synchronous_within_one

    def test_two_sites_eager_equals_strict(self):
        # With one peer there is only one vote to wait for, so the
        # eager optimization changes nothing.
        assert check_synchronicity(
            decentralized_two_phase(2, eager_abort=True)
        ).synchronous_within_one

    def test_budget_enforced(self):
        with pytest.raises(StateGraphTooLargeError):
            check_synchronicity(catalog.build("3pc-decentralized", 3), budget=5)

    def test_report_metadata(self):
        report = check_synchronicity(catalog.build("2pc-central", 2))
        assert report.annotated_states > 0
        assert report.witness is not None


class TestSynthesis:
    def test_central_2pc_becomes_central_3pc(self):
        synthesized = insert_buffer_states(central_two_phase(3))
        assert specs_structurally_equal(synthesized, central_three_phase(3))

    def test_decentralized_2pc_becomes_decentralized_3pc(self):
        synthesized = insert_buffer_states(decentralized_two_phase(3))
        assert specs_structurally_equal(
            synthesized, decentralized_three_phase(3)
        )

    @pytest.mark.parametrize("n", [2, 3, 4])
    def test_equality_holds_across_site_counts(self, n):
        assert specs_structurally_equal(
            insert_buffer_states(central_two_phase(n)), central_three_phase(n)
        )

    def test_synthesized_protocol_verified_nonblocking(self):
        from repro.analysis.nonblocking import check_nonblocking

        synthesized = insert_buffer_states(decentralized_two_phase(3))
        assert check_nonblocking(synthesized).nonblocking

    def test_already_nonblocking_returned_unchanged(self):
        spec = central_three_phase(3)
        assert insert_buffer_states(spec) is spec

    def test_1pc_synthesis_rejected(self):
        # Slaves cast no votes, so no buffer placement can create a
        # committable pre-commit state: the method must refuse.
        with pytest.raises(SynthesisError, match="1PC|vote"):
            insert_buffer_states(catalog.build("1pc", 3))

    def test_buffer_name_collision_is_primed(self):
        spec = central_two_phase(3)
        synthesized = insert_buffer_states(spec, buffer_name="w")
        coordinator = synthesized.automaton(SiteId(1))
        assert "w'" in coordinator.states

    def test_custom_message_kinds(self):
        synthesized = insert_buffer_states(
            central_two_phase(3), prepare_kind="precommit", ack_kind="ok"
        )
        kinds = synthesized.message_kinds()
        assert "precommit" in kinds and "ok" in kinds
        assert "prepare" not in kinds

    def test_name_marks_derivation(self):
        synthesized = insert_buffer_states(central_two_phase(3))
        assert synthesized.name.endswith("+buffer")

    def test_non_synchronous_input_rejected(self):
        # The lemma only covers protocols synchronous within one
        # transition; the eager-abort 2PC is not, so the method refuses.
        from repro.errors import NotSynchronousError

        with pytest.raises(NotSynchronousError, match="max lead 2"):
            insert_buffer_states(central_two_phase(3, eager_abort=True))

    def test_two_site_eager_still_accepted(self):
        # With one voter the eager variant IS synchronous, so the
        # method applies and produces the 2-site 3PC.
        synthesized = insert_buffer_states(
            central_two_phase(2, eager_abort=True)
        )
        assert specs_structurally_equal(synthesized, central_three_phase(2))


class TestStructuralEquality:
    def test_spec_equals_itself(self, spec_3pc_central):
        assert specs_structurally_equal(spec_3pc_central, spec_3pc_central)

    def test_different_protocols_differ(self, spec_2pc_central, spec_3pc_central):
        assert not specs_structurally_equal(spec_2pc_central, spec_3pc_central)

    def test_different_site_counts_differ(self):
        assert not specs_structurally_equal(
            central_three_phase(3), central_three_phase(4)
        )

    def test_names_are_ignored(self):
        a = central_three_phase(3)
        b = central_three_phase(3)
        b.name = "renamed"
        assert specs_structurally_equal(a, b)
