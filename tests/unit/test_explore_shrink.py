"""Shrinker unit tests over synthetic (no-runtime) oracles."""

from __future__ import annotations

from repro.explore import Choice, shrink, strip_defaults


def _prefix(*indices, arity=3):
    return tuple(Choice("order", index, arity) for index in indices)


def _subset_oracle(required):
    """Interesting iff every (position, index) in ``required`` is present.

    Mimics a violation that depends on a few specific decisions while
    everything else is noise.  The re-canonicalized trail is the
    candidate itself (the synthetic "runtime" follows the prefix).
    """

    def probe(candidate):
        padded = dict(enumerate(candidate))
        for position, index in required.items():
            choice = padded.get(position)
            if choice is None or choice.index != index:
                return None
        return candidate

    return probe


def test_shrink_removes_noise_positions():
    # Violation only needs decision 1 = 2; decisions 0, 2, 3 are noise.
    initial = _prefix(1, 2, 1, 2)
    result = shrink(initial, _subset_oracle({1: 2}))
    assert result.prefix == _prefix(0, 2)
    assert not result.exhausted


def test_shrink_keeps_required_combination():
    required = {0: 1, 3: 2}
    initial = _prefix(1, 2, 2, 2, 1)
    result = shrink(initial, _subset_oracle(required))
    assert result.prefix == _prefix(1, 0, 0, 2)


def test_shrink_of_already_minimal_is_identity():
    minimal = _prefix(0, 2)
    result = shrink(minimal, _subset_oracle({1: 2}))
    assert result.prefix == minimal


def test_shrink_is_idempotent():
    initial = _prefix(2, 1, 2, 1, 2)
    probe = _subset_oracle({0: 2, 2: 2})
    once = shrink(initial, probe)
    twice = shrink(once.prefix, probe)
    assert twice.prefix == once.prefix


def test_shrink_is_deterministic():
    initial = _prefix(2, 2, 2, 2)
    probe = _subset_oracle({1: 2})
    assert shrink(initial, probe) == shrink(initial, probe)


def test_shrink_lowers_indices_when_any_nondefault_works():
    # Interesting whenever position 0 is non-default; 1 is "simpler"
    # than 2, so the lowering pass must land on 1.
    def probe(candidate):
        if candidate and candidate[0].index != 0:
            return candidate
        return None

    result = shrink(_prefix(2, 1), probe)
    assert result.prefix == _prefix(1)


def test_shrink_respects_probe_budget():
    calls = 0

    def probe(candidate):
        nonlocal calls
        calls += 1
        return None  # nothing ever shrinks

    initial = _prefix(*([2] * 10))
    result = shrink(initial, probe, max_probes=5)
    assert result.prefix == initial
    assert result.probes == 5
    assert calls == 5
    assert result.exhausted


def test_shrink_result_is_canonical():
    # Oracle accepts anything whose position-1 choice is index 1; the
    # adopted result must never carry trailing defaults.
    def probe(candidate):
        if len(candidate) >= 2 and candidate[1].index == 1:
            return candidate + (Choice("order", 0, 3),)
        return None

    result = shrink(_prefix(1, 1, 1), probe)
    assert result.prefix == strip_defaults(result.prefix)
