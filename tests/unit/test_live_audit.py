"""Continuous atomicity audit over durable site artifacts."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.cli import main
from repro.errors import EXIT_CONFIG, EXIT_OK, EXIT_VIOLATION, LiveConfigError
from repro.live.audit import audit_data_dir
from repro.live.dtlog import SiteLogStore, _encode_line
from repro.runtime.log import DecisionRecord, VoteRecord
from repro.types import Outcome, Vote


def _vote(vote: str = "yes", at: float = 0.1) -> VoteRecord:
    return VoteRecord(vote=Vote(vote), at=at)


def _decision(
    outcome: str = "commit", at: float = 0.2, via: str = "protocol"
) -> DecisionRecord:
    return DecisionRecord(outcome=Outcome(outcome), at=at, via=via)


def _write_log(data_dir: Path, site: int, records) -> Path:
    """One site DT log written through the real store (boot record,
    CRC framing, fsync path) — the audit must read production bytes."""
    path = data_dir / f"site-{site}.dtlog"
    store = SiteLogStore(path)
    for txn, record in records:
        store.append_record(txn, record)
    store.close()
    return path


def _trace_line(category: str, site: int, **data) -> str:
    record = {
        "time": 0.0,
        "category": category,
        "site": site,
        "detail": "",
        "data": dict(sorted(data.items())),
    }
    return json.dumps(record, separators=(",", ":"))


def _clean_cluster(data_dir: Path, sites=(1, 2, 3)) -> None:
    for site in sites:
        _write_log(data_dir, site, [(1, _vote("yes")), (1, _decision("commit"))])


class TestCleanCluster:
    def test_unanimous_commit_passes(self, tmp_path):
        _clean_cluster(tmp_path)
        report = audit_data_dir(tmp_path)
        assert report.ok()
        assert report.violations == []
        assert report.sites == [1, 2, 3]
        assert report.txns == 1
        assert report.decisions == 3

    def test_unilateral_abort_is_consistent(self, tmp_path):
        # A No voter aborts unilaterally; others abort via the protocol.
        _write_log(tmp_path, 1, [(1, _vote("no")), (1, _decision("abort"))])
        _write_log(tmp_path, 2, [(1, _vote("yes")), (1, _decision("abort"))])
        assert audit_data_dir(tmp_path).ok()

    def test_undecided_site_is_not_a_violation(self, tmp_path):
        # A site killed before deciding has a vote and nothing else —
        # that is blocking, not an atomicity breach.
        _write_log(tmp_path, 1, [(1, _vote("yes")), (1, _decision("commit"))])
        _write_log(tmp_path, 2, [(1, _vote("yes"))])
        assert audit_data_dir(tmp_path).ok()


class TestSiteTimeline:
    def test_vote_after_decision_flagged(self, tmp_path):
        _write_log(tmp_path, 1, [(1, _decision("commit")), (1, _vote("yes"))])
        report = audit_data_dir(tmp_path)
        assert any("write-ahead timeline" in v for v in report.violations)

    def test_commit_after_no_vote_flagged(self, tmp_path):
        _write_log(tmp_path, 1, [(1, _vote("no")), (1, _decision("commit"))])
        report = audit_data_dir(tmp_path)
        assert any("committed after voting no" in v for v in report.violations)

    def test_conflicting_decisions_at_one_site_flagged(self, tmp_path):
        _write_log(
            tmp_path, 1,
            [(1, _vote("yes")), (1, _decision("commit")), (1, _decision("abort"))],
        )
        report = audit_data_dir(tmp_path)
        assert any("conflicting decision" in v for v in report.violations)

    def test_redundant_same_decision_allowed(self, tmp_path):
        # Termination and recovery may re-log the same outcome; only a
        # *different* outcome is a violation.
        _write_log(
            tmp_path, 1,
            [
                (1, _vote("yes")),
                (1, _decision("commit", via="protocol")),
                (1, _decision("commit", via="recovery")),
            ],
        )
        assert audit_data_dir(tmp_path).ok()


class TestAc1:
    def test_cross_site_disagreement_flagged(self, tmp_path):
        _write_log(tmp_path, 1, [(1, _vote("yes")), (1, _decision("commit"))])
        _write_log(tmp_path, 2, [(1, _vote("yes")), (1, _decision("abort"))])
        report = audit_data_dir(tmp_path)
        assert not report.ok()
        assert any("AC1 violated" in v for v in report.violations)

    def test_hand_corrupted_outcome_caught(self, tmp_path):
        """The acceptance check: flip one durable decision's outcome
        (CRC recomputed, so the record is *valid*) and the audit must
        flag it — integrity checking alone would never notice."""
        _clean_cluster(tmp_path, sites=(1, 2))
        victim = tmp_path / "site-2.dtlog"
        lines = victim.read_bytes().splitlines(keepends=True)
        rewritten = []
        for line in lines:
            body = json.loads(line.split(b" ", 1)[1])
            if body.get("r") == "decision":
                body["outcome"] = "abort"
                line = _encode_line(body)
            rewritten.append(line)
        victim.write_bytes(b"".join(rewritten))

        report = audit_data_dir(tmp_path)
        assert any("AC1 violated" in v for v in report.violations)
        assert main(["audit", str(tmp_path)]) == EXIT_VIOLATION


class TestLogIntegrity:
    def test_mid_log_corruption_is_violation(self, tmp_path):
        path = _write_log(
            tmp_path, 1, [(1, _vote("yes")), (1, _decision("commit"))]
        )
        lines = path.read_bytes().splitlines(keepends=True)
        assert len(lines) >= 3  # boot + vote + decision
        lines[1] = b"00000000" + lines[1][8:]  # break the vote's CRC
        path.write_bytes(b"".join(lines))
        report = audit_data_dir(tmp_path)
        assert any("corrupt DT log" in v for v in report.violations)

    def test_torn_tail_is_note_not_violation(self, tmp_path):
        path = _write_log(
            tmp_path, 1, [(1, _vote("yes")), (1, _decision("commit"))]
        )
        with path.open("ab") as handle:
            handle.write(b'deadbeef {"r":"dec')  # kill -9 mid-append
        report = audit_data_dir(tmp_path)
        assert report.ok()
        assert any("torn tail" in note for note in report.notes)
        assert report.decisions == 1  # the intact decision still counts

    def test_no_logs_is_config_error(self, tmp_path):
        with pytest.raises(LiveConfigError):
            audit_data_dir(tmp_path)


class TestMidAppendRetry:
    def test_transient_parse_failure_is_clean_on_retry(
        self, tmp_path, monkeypatch
    ):
        """A reader racing a live appender re-reads before escalating."""
        from repro.errors import WALError
        from repro.live import audit as audit_module
        from repro.live.dtlog import read_log_file

        _clean_cluster(tmp_path)
        failures = {"left": 1}

        def flaky_read(path):
            if failures["left"]:
                failures["left"] -= 1
                raise WALError("corrupt record 1 of 3 (not the tail)")
            return read_log_file(path)

        monkeypatch.setattr(audit_module, "read_log_file", flaky_read)
        report = audit_data_dir(tmp_path, include_traces=False)
        assert report.ok()
        assert any("clean on retry" in note for note in report.notes)

    def test_repeatable_parse_failure_still_escalates(
        self, tmp_path, monkeypatch
    ):
        from repro.errors import WALError
        from repro.live import audit as audit_module

        _clean_cluster(tmp_path, sites=(1,))

        def broken_read(path):
            raise WALError("corrupt record 1 of 3 (not the tail)")

        monkeypatch.setattr(audit_module, "read_log_file", broken_read)
        report = audit_data_dir(tmp_path, include_traces=False)
        assert any("corrupt DT log" in v for v in report.violations)

    def test_audit_racing_live_appender_stays_clean(self, tmp_path):
        """Audit a log while a writer thread appends to it."""
        import threading

        path = tmp_path / "site-1.dtlog"
        store = SiteLogStore(path)
        stop = threading.Event()

        def appender():
            txn = 1
            while not stop.is_set():
                store.append_record(txn, _vote("yes"))
                store.append_record(txn, _decision("commit"))
                txn += 1

        writer = threading.Thread(target=appender)
        writer.start()
        try:
            for _ in range(25):
                report = audit_data_dir(tmp_path, include_traces=False)
                assert report.violations == []
        finally:
            stop.set()
            writer.join()
            store.close()


class TestTraceCrossCheck:
    def test_trace_disagreement_flagged(self, tmp_path):
        # DT logs alone are consistent (boot records only) — the
        # contradiction lives in the traces.
        _write_log(tmp_path, 1, [])
        _write_log(tmp_path, 2, [])
        (tmp_path / "site-1.trace.jsonl").write_text(
            _trace_line("txn.decided", 1, txn=1, outcome="commit") + "\n"
        )
        (tmp_path / "site-2.trace.jsonl").write_text(
            _trace_line("txn.decided", 2, txn=1, outcome="abort") + "\n"
        )
        report = audit_data_dir(tmp_path)
        assert any("traces disagree" in v for v in report.violations)
        # Advisory layer only: --no-traces must pass the same directory.
        assert audit_data_dir(tmp_path, include_traces=False).ok()
        assert main(["audit", str(tmp_path), "--no-traces"]) == EXIT_OK

    def test_missing_trace_events_are_not_violations(self, tmp_path):
        # Traces are lossy by design (bounded, block-buffered, torn by
        # kill -9): absence of a txn.decided event proves nothing.
        _clean_cluster(tmp_path, sites=(1, 2))
        (tmp_path / "site-1.trace.jsonl").write_text(
            _trace_line("txn.decided", 1, txn=1, outcome="commit") + "\n"
        )
        assert audit_data_dir(tmp_path).ok()

    def test_malformed_trace_lines_are_notes(self, tmp_path):
        _clean_cluster(tmp_path, sites=(1,))
        (tmp_path / "site-1.trace.jsonl").write_text('{"time":0.0,"cat\n')
        report = audit_data_dir(tmp_path)
        assert report.ok()
        assert any("malformed trace" in note for note in report.notes)


class TestAuditCli:
    def test_clean_exit_with_json_sidecar(self, tmp_path, capsys):
        _clean_cluster(tmp_path)
        sidecar = tmp_path / "audit.json"
        assert main(["audit", str(tmp_path), "--json", str(sidecar)]) == EXIT_OK
        report = json.loads(sidecar.read_text())
        assert report["ok"] is True
        assert report["violations"] == []
        assert report["decisions"] == 3
        out = capsys.readouterr().out
        assert "clean" in out

    def test_violation_exit_and_sidecar(self, tmp_path, capsys):
        _write_log(tmp_path, 1, [(1, _decision("commit"))])
        _write_log(tmp_path, 2, [(1, _decision("abort"))])
        sidecar = tmp_path / "audit.json"
        code = main(["audit", str(tmp_path), "--json", str(sidecar)])
        assert code == EXIT_VIOLATION
        assert json.loads(sidecar.read_text())["ok"] is False
        assert "VIOLATION" in capsys.readouterr().out

    def test_empty_dir_is_config_exit(self, tmp_path, capsys):
        assert main(["audit", str(tmp_path)]) == EXIT_CONFIG
        capsys.readouterr()

    def test_watch_window_passes_on_clean_logs(self, tmp_path, capsys):
        _clean_cluster(tmp_path, sites=(1,))
        code = main(
            ["audit", str(tmp_path), "--watch", "0.2", "--interval", "0.05"]
        )
        assert code == EXIT_OK
        capsys.readouterr()


class TestMembershipRecords:
    def test_membership_records_are_audit_neutral(self, tmp_path):
        from repro.runtime.log import MembershipRecord
        from repro.types import SiteId

        _write_log(
            tmp_path,
            1,
            [
                (1, MembershipRecord(members=(SiteId(2), SiteId(3)), at=0.05)),
                (1, _vote("yes")),
                (1, _decision("commit")),
            ],
        )
        for site in (2, 3):
            _write_log(
                tmp_path, site, [(1, _vote("yes")), (1, _decision("commit"))]
            )
        report = audit_data_dir(tmp_path)
        assert report.ok()
        assert report.txns == 1


class TestTraceDropNote:
    def _metrics(self, data_dir: Path, site: int, dropped: int) -> None:
        (data_dir / f"site-{site}.metrics.json").write_text(
            json.dumps({"live": {"site": site, "trace_dropped": dropped}})
        )

    def test_dropped_traces_noted(self, tmp_path):
        _clean_cluster(tmp_path)
        self._metrics(tmp_path, 1, dropped=7)
        self._metrics(tmp_path, 2, dropped=0)
        report = audit_data_dir(tmp_path)
        assert report.ok()
        notes = [n for n in report.notes if "trace cap" in n]
        assert len(notes) == 1 and "site 1" in notes[0] and "7" in notes[0]

    def test_no_note_without_drops(self, tmp_path):
        _clean_cluster(tmp_path)
        self._metrics(tmp_path, 1, dropped=0)
        report = audit_data_dir(tmp_path)
        assert all("trace cap" not in note for note in report.notes)

    def test_torn_metrics_snapshot_ignored(self, tmp_path):
        _clean_cluster(tmp_path)
        (tmp_path / "site-1.metrics.json").write_text("{not json")
        report = audit_data_dir(tmp_path)
        assert report.ok()
