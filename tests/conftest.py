"""Shared fixtures and failure-reproduction reporting.

Protocol specs, state graphs, and termination rules are expensive to
rebuild per test, immutable once constructed, and used across many test
modules — so the common instances are session-scoped.

Any test that executed simulation runs leaves breadcrumbs in
:mod:`repro.sim.lastrun` (protocol, RNG seed, schedule hash, ...).  When
such a test fails, the hook below attaches those breadcrumbs to the
failure report, so a flaking simulation test always prints the exact
seeds and schedule hashes needed to re-run it deterministically.
"""

from __future__ import annotations

import pytest

from repro.analysis.reachability import build_state_graph
from repro.protocols import catalog
from repro.runtime.decision import TerminationRule
from repro.sim import lastrun


@pytest.fixture(autouse=True)
def _fresh_lastrun():
    """Scope the simulation-run breadcrumbs to one test."""
    lastrun.clear()
    yield


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_makereport(item, call):
    """Attach recent simulation-run parameters to failure reports."""
    outcome = yield
    report = outcome.get_result()
    if report.when == "call" and report.failed:
        described = lastrun.describe()
        if described:
            report.sections.append(
                (
                    "simulation runs (most recent last; re-run with these "
                    "seeds/schedules)",
                    described,
                )
            )


@pytest.fixture(scope="session")
def spec_2pc_central():
    """A 3-site central-site 2PC."""
    return catalog.build("2pc-central", 3)


@pytest.fixture(scope="session")
def spec_2pc_decentralized():
    """A 3-site decentralized 2PC."""
    return catalog.build("2pc-decentralized", 3)


@pytest.fixture(scope="session")
def spec_3pc_central():
    """A 3-site central-site 3PC."""
    return catalog.build("3pc-central", 3)


@pytest.fixture(scope="session")
def spec_3pc_decentralized():
    """A 3-site decentralized 3PC."""
    return catalog.build("3pc-decentralized", 3)


@pytest.fixture(scope="session")
def spec_1pc():
    """A 3-site 1PC."""
    return catalog.build("1pc", 3)


@pytest.fixture(scope="session")
def all_specs(
    spec_1pc,
    spec_2pc_central,
    spec_2pc_decentralized,
    spec_3pc_central,
    spec_3pc_decentralized,
):
    """Every 3-site catalog protocol by name."""
    return {
        "1pc": spec_1pc,
        "2pc-central": spec_2pc_central,
        "2pc-decentralized": spec_2pc_decentralized,
        "3pc-central": spec_3pc_central,
        "3pc-decentralized": spec_3pc_decentralized,
    }


@pytest.fixture(scope="session")
def graph_2pc_canonical():
    """Reachable state graph of the 2-site canonical 2PC."""
    return build_state_graph(catalog.build("2pc-decentralized", 2))


@pytest.fixture(scope="session")
def graph_3pc_canonical():
    """Reachable state graph of the 2-site canonical 3PC."""
    return build_state_graph(catalog.build("3pc-decentralized", 2))


@pytest.fixture(scope="session")
def graph_2pc_central(spec_2pc_central):
    """Reachable state graph of the 3-site central 2PC."""
    return build_state_graph(spec_2pc_central)


@pytest.fixture(scope="session")
def graph_3pc_central(spec_3pc_central):
    """Reachable state graph of the 3-site central 3PC."""
    return build_state_graph(spec_3pc_central)


@pytest.fixture(scope="session")
def rule_3pc_central(spec_3pc_central, graph_3pc_central):
    """Termination rule for the 3-site central 3PC."""
    return TerminationRule(spec_3pc_central, graph=graph_3pc_central)


@pytest.fixture(scope="session")
def rule_2pc_central(spec_2pc_central, graph_2pc_central):
    """Termination rule for the 3-site central 2PC."""
    return TerminationRule(spec_2pc_central, graph=graph_2pc_central)
