"""Benchmark F5 — regenerate the central-site 3PC automata (slide 35)."""

from repro.experiments.e_f5_fsa_3pc_central import run_f5


def test_bench_f5(benchmark, record_report):
    result = benchmark(run_f5)
    record_report(result)
    assert result.data["coordinator_states"] == ["a", "c", "p", "q", "w"]
    assert result.data["phases"] == 3
    assert result.data["nonblocking"]
    assert result.data["synchronous"]
