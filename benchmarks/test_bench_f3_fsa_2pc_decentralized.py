"""Benchmark F3 — regenerate the decentralized 2PC automaton (slide 26)."""

from repro.experiments.e_f3_fsa_2pc_decentralized import run_f3


def test_bench_f3(benchmark, record_report):
    result = benchmark(run_f3)
    record_report(result)
    assert result.data["single_role"]
    assert result.data["sends_to_self"]
    assert result.data["states"] == ["a", "c", "q", "w"]
    assert result.data["phases"] == 2
