"""Benchmark F6 — regenerate the decentralized 3PC automaton (slide 36)."""

from repro.experiments.e_f6_fsa_3pc_decentralized import run_f6


def test_bench_f6(benchmark, record_report):
    result = benchmark(run_f6)
    record_report(result)
    assert result.data["states"] == ["a", "c", "p", "q", "w"]
    assert result.data["phases"] == 3
    assert result.data["nonblocking"]
    assert result.data["tolerated_failures"] == 2
