"""Benchmark Q1 — blocking frequency: 2PC blocks, 3PC never does."""

from repro.experiments.e_q1_blocking_frequency import run_q1


def test_bench_q1(benchmark, record_report):
    result = benchmark.pedantic(run_q1, rounds=3, iterations=1)
    record_report(result)
    two = result.data["2pc-central"]
    three = result.data["3pc-central"]
    # The paper's shape: 2PC has a real blocking window, 3PC none.
    assert two["blocked_fraction"] > 0.2
    assert three["blocked_fraction"] == 0.0
    assert two["violations"] == 0 and three["violations"] == 0
