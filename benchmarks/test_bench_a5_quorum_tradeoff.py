"""Benchmark A5 — the quorum termination tradeoff."""

from repro.experiments.e_a5_quorum_tradeoff import run_a5


def test_bench_a5(benchmark, record_report):
    result = benchmark.pedantic(run_a5, rounds=3, iterations=1)
    record_report(result)
    data = result.data
    # Partition: standard splits, quorum stays atomic.
    assert not data["partition"]["standard"]["atomic"]
    assert data["partition"]["quorum"]["atomic"]
    # Cascade: standard's lone survivor decides, quorum's blocks.
    assert data["cascade"]["standard"]["survivor_decided"]
    assert not data["cascade"]["quorum"]["survivor_decided"]
    # Nothing ever violates atomicity under quorum.
    assert data["cascade"]["quorum"]["atomic"]
