"""Benchmark A2 — 3PC splits under partition; the assumption matters."""

from repro.experiments.e_a2_partition import run_a2


def test_bench_a2(benchmark, record_report):
    result = benchmark.pedantic(run_a2, rounds=3, iterations=1)
    record_report(result)
    assert result.data["crash"]["atomic"]
    assert not result.data["partition"]["atomic"]
    outcomes = set(result.data["partition"]["outcomes"].values())
    assert outcomes == {"commit", "abort"}  # The split decision.
