"""Benchmark A4 — cooperative termination reduces 2PC blocking."""

from repro.experiments.e_a4_cooperative_termination import run_a4


def test_bench_a4(benchmark, record_report):
    result = benchmark.pedantic(run_a4, rounds=3, iterations=1)
    record_report(result)
    standard = result.data["standard"]
    cooperative = result.data["cooperative"]
    assert cooperative["blocked"] < standard["blocked"]
    assert cooperative["blocked"] > 0  # The theorem's residue remains.
    assert standard["violations"] == 0
    assert cooperative["violations"] == 0
