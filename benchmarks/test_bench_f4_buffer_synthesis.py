"""Benchmark F4 — regenerate the buffer-state construction (slide 34)."""

from repro.experiments.e_f4_buffer_synthesis import run_f4


def test_bench_f4(benchmark, record_report):
    result = benchmark(run_f4)
    record_report(result)
    assert result.data["2pc-central"]["equals_3pc"]
    assert result.data["2pc-decentralized"]["equals_3pc"]
    assert result.data["lemma_violations_after"] == 0
    assert result.data["one_pc_rejected"]
