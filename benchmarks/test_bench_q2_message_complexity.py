"""Benchmark Q2 — messages and latency: the price of resilience."""

from repro.experiments.e_q2_message_complexity import run_q2


def test_bench_q2(benchmark, record_report):
    result = benchmark.pedantic(run_q2, rounds=3, iterations=1)
    record_report(result)
    data = result.data
    for protocol, per_n in data.items():
        for n, row in per_n.items():
            assert row["messages"] == row["expected_messages"], (protocol, n)
            assert row["latency"] == row["expected_latency"], (protocol, n)
    # The paper's shape: 3PC costs 5/3x the central 2PC and 2x the
    # decentralized 2PC in messages.
    n = 8
    assert data["3pc-central"][n]["messages"] * 3 == (
        data["2pc-central"][n]["messages"] * 5
    )
    assert data["3pc-decentralized"][n]["messages"] == (
        2 * data["2pc-decentralized"][n]["messages"]
    )
