"""Benchmark LIVE — multi-client throughput of the live TCP cluster.

Unlike the simulator benches (virtual time), this one spawns real
`repro serve` processes on loopback and measures what closed-loop
clients see across a concurrency sweep: N ∈ {1, 4, 16, 64} workers
each running one transaction at a time against round-robin gateways.

Three contrasts are priced here in wall-clock time:

* **2PC vs 3PC** — the paper's message-complexity gap: 3PC's extra
  prepare phase costs more frames per transaction and a longer
  critical path, the price of nonblocking termination.
* **serial vs concurrent** — the commit pipeline's amortization:
  Skeen's protocols impose no cross-transaction ordering, so
  concurrent transactions share DT-log fsyncs (group commit), socket
  writes (frame coalescing), and metrics snapshots.  The serial
  client pays every one of those costs alone; ``fsync_calls``
  dropping below ``forced_writes`` is the direct observable.
* **JSON vs binary wire codec** — the packed peer-link codec
  (``--codec bin``) cuts frame bytes ~3x and decode CPU ~2.5x for
  protocol traffic; on a single-core host, where every site process
  and the client share the CPU, serialization savings convert
  directly into throughput.
* **commit presumptions and the read-only exit** — presumed abort /
  presumed commit elide forced writes the presumption can re-derive,
  and a READ-ONLY participant leaves after phase 1 with zero log
  writes and no phase-2/3 frames.  The presumption sweep runs every
  presumption x codec x protocol at c16 over a read-only-heavy mix
  (one of the two slaves is read-only) and prices the elision in
  fsyncs/txn and frames/txn against the PR 8 baseline.

``baseline_pr7`` embeds the committed txns/s of the pre-codec report
and ``baseline_pr8`` the committed c16 numbers of the previous report
(every record forced, all sites voting), so the before/after
trajectory rides inside the regenerated sidecar.
"""

from __future__ import annotations

import pytest

from repro.experiments.base import ExperimentResult
from repro.live.cluster import ClusterConfig, ClusterHarness
from repro.metrics.tables import Table

pytestmark = pytest.mark.slow

PROTOCOLS = ("2pc-central", "3pc-central")
CODECS = ("json", "bin")

#: Closed-loop worker counts, and transactions measured at each.  More
#: txns at higher concurrency keeps per-point wall time comparable.
SWEEP = ((1, 120), (4, 240), (16, 480), (64, 640))

#: txns/s from the report committed before the binary codec and the
#: compiled FSA tables landed (PR 5/7 state: JSON frames, interpreted
#: transition lookup), measured on this same container class.  Kept in
#: the regenerated report so the before/after comparison is auditable
#: without digging through git history.
BASELINE_PR7 = {
    "2pc-central": {"c1": 127.43, "c4": 313.2, "c16": 450.46, "c64": 625.72},
    "3pc-central": {"c1": 88.57, "c4": 242.05, "c16": 434.61, "c64": 462.65},
}

#: The previous report's c16 points (PR 8 state: binary codec and
#: compiled tables in, but every vote/decision force-logged and every
#: slave voting).  The presumption sweep's fsyncs/txn and frames/txn
#: must land strictly below these.
BASELINE_PR8 = {
    "2pc-central": {
        "json": {"txns_per_sec": 572.96, "fsyncs_per_txn": 0.57,
                 "forced_writes_per_txn": 6.0, "proto_frames_per_txn": 6.0},
        "bin": {"txns_per_sec": 641.14, "fsyncs_per_txn": 0.59,
                "forced_writes_per_txn": 6.0, "proto_frames_per_txn": 6.0},
    },
    "3pc-central": {
        "json": {"txns_per_sec": 455.11, "fsyncs_per_txn": 0.81,
                 "forced_writes_per_txn": 6.0, "proto_frames_per_txn": 10.0},
        "bin": {"txns_per_sec": 539.12, "fsyncs_per_txn": 0.88,
                "forced_writes_per_txn": 6.0, "proto_frames_per_txn": 10.0},
    },
}

#: Commit presumptions priced by the read-only-mix sweep.
PRESUMPTIONS = ("none", "abort", "commit")

#: The read-only-heavy mix: one of the two slaves takes the one-phase
#: exit, so half the participant set never writes or receives a
#: phase-2/3 frame.
RO_SITES = (3,)

#: Concurrency and transaction count for each presumption point.
PRESUMPTION_POINT = (16, 240)


def run_live_bench(tmp_dir) -> ExperimentResult:
    reports: dict[str, dict] = {}
    for spec_name in PROTOCOLS:
        by_codec: dict[str, dict] = {}
        for codec in CODECS:
            config = ClusterConfig(
                spec_name=spec_name,
                n_sites=3,
                data_dir=tmp_dir / f"{spec_name}-{codec}",
                codec=codec,
            )
            with ClusterHarness(config) as harness:
                harness.start()
                # Warm the pipeline (connections, code paths, allocator)
                # before the measured points.
                harness.bench(64, concurrency=16, first_txn=1)
                next_txn = 1001
                points = {}
                for concurrency, n_txns in SWEEP:
                    points[f"c{concurrency}"] = harness.bench(
                        n_txns, concurrency=concurrency, first_txn=next_txn
                    )
                    next_txn += n_txns
                by_codec[codec] = points
        reports[spec_name] = by_codec

    # Presumption x codec x protocol at c16 over the read-only mix.
    concurrency, n_txns = PRESUMPTION_POINT
    presumption_reports: dict[str, dict] = {}
    for spec_name in PROTOCOLS:
        by_codec = {}
        for codec in CODECS:
            by_presumption = {}
            for presumption in PRESUMPTIONS:
                config = ClusterConfig(
                    spec_name=spec_name,
                    n_sites=3,
                    data_dir=tmp_dir / f"{spec_name}-{codec}-{presumption}",
                    codec=codec,
                    presumption=presumption,
                    ro_sites=RO_SITES,
                )
                with ClusterHarness(config) as harness:
                    harness.start()
                    harness.bench(32, concurrency=8, first_txn=1)
                    by_presumption[presumption] = harness.bench(
                        n_txns, concurrency=concurrency, first_txn=101
                    )
            by_codec[codec] = by_presumption
        presumption_reports[spec_name] = by_codec

    table = Table(
        [
            "protocol",
            "codec",
            "conc",
            "txns/s",
            "p50 ms",
            "p99 ms",
            "fsyncs/txn",
            "writes/txn",
            "frames/write",
        ],
        title="live loopback cluster, 3 sites, closed-loop concurrency sweep",
    )
    for spec_name, by_codec in reports.items():
        for codec, points in by_codec.items():
            for conc, _ in SWEEP:
                report = points[f"c{conc}"]
                table.add_row(
                    spec_name,
                    codec,
                    conc,
                    report["txns_per_sec"],
                    report["latency_ms"]["p50"],
                    report["latency_ms"]["p99"],
                    report["fsyncs_per_txn"],
                    report["forced_writes_per_txn"],
                    report["frames_per_socket_write"],
                )

    ro_table = Table(
        [
            "protocol",
            "codec",
            "presumption",
            "txns/s",
            "p99 ms",
            "fsyncs/txn",
            "writes/txn",
            "skipped/txn",
            "frames/txn",
        ],
        title=(
            f"read-only mix (slave {RO_SITES[0]} takes the one-phase "
            f"exit), c{concurrency}, presumption sweep"
        ),
    )
    for spec_name, by_codec in presumption_reports.items():
        for codec, by_presumption in by_codec.items():
            for presumption in PRESUMPTIONS:
                report = by_presumption[presumption]
                ro_table.add_row(
                    spec_name,
                    codec,
                    presumption,
                    report["txns_per_sec"],
                    report["latency_ms"]["p99"],
                    report["fsyncs_per_txn"],
                    report["forced_writes_per_txn"],
                    round(report["forced_writes_skipped"] / report["txns"], 2),
                    report["proto_frames_per_txn"],
                )

    for spec_name, by_codec in reports.items():
        for codec, points in by_codec.items():
            points["speedup_c16_over_c1"] = round(
                points["c16"]["txns_per_sec"] / points["c1"]["txns_per_sec"], 2
            )
        by_codec["bin_vs_baseline_pr7_c16"] = round(
            by_codec["bin"]["c16"]["txns_per_sec"]
            / BASELINE_PR7[spec_name]["c16"],
            2,
        )
    reports["baseline_pr7"] = BASELINE_PR7
    reports["baseline_pr8"] = BASELINE_PR8
    reports["presumption_sweep"] = presumption_reports
    return ExperimentResult(
        experiment_id="LIVE",
        title="live cluster throughput under client concurrency (wall clock)",
        tables=[table, ro_table],
        data=reports,
        notes=[
            "closed loop: N workers, one in-flight txn each, gateways "
            "round-robin across the 3 sites; latencies are "
            "client-observed begin->decision over real TCP",
            "every vote/decision is force-logged before it is acted on; "
            "under concurrency the group-commit flusher batches forced "
            "records into shared fsyncs (fsyncs/txn < writes/txn) and "
            "the transport coalesces frames per socket write",
            "the serial (c1) row quiesces the cluster between every "
            "transaction, so it pays each fsync, snapshot, and syscall "
            "alone — that fixed cost is exactly what the concurrent "
            "pipeline amortizes",
            "codec json/bin selects the peer-link wire format (client "
            "traffic stays JSON); baseline_pr7 holds the committed "
            "txns/s before the binary codec, compiled FSA tables, "
            "TCP_NODELAY, and the fast trace serializer landed",
            "this container pins all site processes and the client to "
            "one CPU core with a ~0.1ms fsync, so the sweep measures "
            "batching efficiency, not parallel CPU; absolute numbers "
            "vary with the host and run (the shared core makes "
            "run-to-run variance substantial)",
            "the presumption sweep runs a read-only-heavy mix (slave 3 "
            "takes the one-phase exit: zero DT-log writes, pruned from "
            "phase-2/3 fan-out, so 2PC moves 5 frames/txn and 3PC 7 "
            "instead of 6 and 10); presumed abort lazily logs "
            "abort-side records, presumed commit adds a forced "
            "membership record but lets participants log decisions "
            "lazily — baseline_pr8 holds the previous report's c16 "
            "numbers with every record forced and every slave voting",
        ],
    )


def test_bench_live_throughput(benchmark, record_report, tmp_path):
    result = benchmark.pedantic(run_live_bench, args=(tmp_path,), rounds=1, iterations=1)
    record_report(result)
    data = result.data

    for spec_name in PROTOCOLS:
        for codec in CODECS:
            points = data[spec_name][codec]
            for concurrency, n_txns in SWEEP:
                report = points[f"c{concurrency}"]
                assert report["txns"] == n_txns
                assert report["concurrency"] == concurrency
                assert report["codec"] == codec
                assert report["txns_per_sec"] > 0
                assert 0 < report["latency_ms"]["p50"] <= report["latency_ms"]["p99"]
                # Latency decomposes into the pipeline's three stages, and
                # each reply's elapsed_ms is exactly its stage sum, so the
                # stage means must add up to the measured latency mean.
                breakdown = report["latency_breakdown"]
                assert set(breakdown) == {"queue_ms", "resolve_ms", "durable_ms"}
                mean = report["latency_ms"]["mean"]
                stage_sum = sum(stats["mean"] for stats in breakdown.values())
                assert stage_sum == pytest.approx(mean, abs=max(0.5, 0.05 * mean))
                # Every site forces its vote/decision records: at least two
                # writes per site per committed txn land in the DT logs.
                assert report["forced_writes_per_txn"] >= 2
            # Group commit under load: strictly fewer fsyncs than forced
            # records, and a concurrent pipeline that outruns the serial one.
            assert points["c16"]["fsync_calls"] < points["c16"]["forced_writes"]
            assert points["c16"]["txns_per_sec"] > points["c1"]["txns_per_sec"]
            assert points["c16"]["frames_per_socket_write"] > 1.0

        # The message-complexity contrast (paper table 2): 3PC's prepare
        # phase costs strictly more protocol messages per transaction.
        assert (
            data["3pc-central"]["json"]["c1"]["proto_frames_per_txn"]
            > data["2pc-central"]["json"]["c1"]["proto_frames_per_txn"]
        )
        # Codec invariant: frame *counts* are protocol properties, not
        # codec properties — both codecs move the same frames.
        for spec_name in PROTOCOLS:
            assert data[spec_name]["bin"]["c1"]["proto_frames_per_txn"] == (
                data[spec_name]["json"]["c1"]["proto_frames_per_txn"]
            )

    # The presumption sweep: for every protocol and codec, the
    # read-only mix must beat the PR 8 all-voting baseline on both
    # forced-write and frame volume, for every presumption.
    ro_frames = {"2pc-central": 5.0, "3pc-central": 7.0}
    for spec_name in PROTOCOLS:
        for codec in CODECS:
            baseline = BASELINE_PR8[spec_name][codec]
            points = data["presumption_sweep"][spec_name][codec]
            for presumption in PRESUMPTIONS:
                report = points[presumption]
                assert report["txns"] == PRESUMPTION_POINT[1]
                assert report["presumption"] == presumption
                assert report["ro_sites"] == [3]
                # Frame pruning is deterministic: the read-only slave
                # exchanges xact + ro only.
                assert report["proto_frames_per_txn"] == ro_frames[spec_name]
                assert (
                    report["proto_frames_per_txn"]
                    < baseline["proto_frames_per_txn"]
                )
                assert report["fsyncs_per_txn"] < baseline["fsyncs_per_txn"]
                assert (
                    report["forced_writes_per_txn"]
                    < baseline["forced_writes_per_txn"]
                )
            # Forcing elision only happens under a presumption.
            # Presumed abort forces strictly less than forcing all;
            # presumed commit trades the participants' lazy decisions
            # for one membership force, a wash at one voting slave (it
            # wins at larger participant counts) but never worse.
            assert points["none"]["forced_writes_skipped"] == 0
            for presumption in ("abort", "commit"):
                assert points[presumption]["forced_writes_skipped"] > 0
            assert (
                points["abort"]["forced_writes_per_txn"]
                < points["none"]["forced_writes_per_txn"]
            )
            assert (
                points["commit"]["forced_writes_per_txn"]
                <= points["none"]["forced_writes_per_txn"]
            )
