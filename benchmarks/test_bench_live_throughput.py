"""Benchmark LIVE — multi-client throughput of the live TCP cluster.

Unlike the simulator benches (virtual time), this one spawns real
`repro serve` processes on loopback and measures what closed-loop
clients see across a concurrency sweep: N ∈ {1, 4, 16, 64} workers
each running one transaction at a time against round-robin gateways.

Three contrasts are priced here in wall-clock time:

* **2PC vs 3PC** — the paper's message-complexity gap: 3PC's extra
  prepare phase costs more frames per transaction and a longer
  critical path, the price of nonblocking termination.
* **serial vs concurrent** — the commit pipeline's amortization:
  Skeen's protocols impose no cross-transaction ordering, so
  concurrent transactions share DT-log fsyncs (group commit), socket
  writes (frame coalescing), and metrics snapshots.  The serial
  client pays every one of those costs alone; ``fsync_calls``
  dropping below ``forced_writes`` is the direct observable.
* **JSON vs binary wire codec** — the packed peer-link codec
  (``--codec bin``) cuts frame bytes ~3x and decode CPU ~2.5x for
  protocol traffic; on a single-core host, where every site process
  and the client share the CPU, serialization savings convert
  directly into throughput.

``baseline_pr7`` embeds the committed txns/s of the previous report
(JSON codec, interpreted FSA hot path) so the before/after trajectory
rides inside the regenerated sidecar.
"""

from __future__ import annotations

import pytest

from repro.experiments.base import ExperimentResult
from repro.live.cluster import ClusterConfig, ClusterHarness
from repro.metrics.tables import Table

pytestmark = pytest.mark.slow

PROTOCOLS = ("2pc-central", "3pc-central")
CODECS = ("json", "bin")

#: Closed-loop worker counts, and transactions measured at each.  More
#: txns at higher concurrency keeps per-point wall time comparable.
SWEEP = ((1, 120), (4, 240), (16, 480), (64, 640))

#: txns/s from the report committed before the binary codec and the
#: compiled FSA tables landed (PR 5/7 state: JSON frames, interpreted
#: transition lookup), measured on this same container class.  Kept in
#: the regenerated report so the before/after comparison is auditable
#: without digging through git history.
BASELINE_PR7 = {
    "2pc-central": {"c1": 127.43, "c4": 313.2, "c16": 450.46, "c64": 625.72},
    "3pc-central": {"c1": 88.57, "c4": 242.05, "c16": 434.61, "c64": 462.65},
}


def run_live_bench(tmp_dir) -> ExperimentResult:
    reports: dict[str, dict] = {}
    for spec_name in PROTOCOLS:
        by_codec: dict[str, dict] = {}
        for codec in CODECS:
            config = ClusterConfig(
                spec_name=spec_name,
                n_sites=3,
                data_dir=tmp_dir / f"{spec_name}-{codec}",
                codec=codec,
            )
            with ClusterHarness(config) as harness:
                harness.start()
                # Warm the pipeline (connections, code paths, allocator)
                # before the measured points.
                harness.bench(64, concurrency=16, first_txn=1)
                next_txn = 1001
                points = {}
                for concurrency, n_txns in SWEEP:
                    points[f"c{concurrency}"] = harness.bench(
                        n_txns, concurrency=concurrency, first_txn=next_txn
                    )
                    next_txn += n_txns
                by_codec[codec] = points
        reports[spec_name] = by_codec

    table = Table(
        [
            "protocol",
            "codec",
            "conc",
            "txns/s",
            "p50 ms",
            "p99 ms",
            "fsyncs/txn",
            "writes/txn",
            "frames/write",
        ],
        title="live loopback cluster, 3 sites, closed-loop concurrency sweep",
    )
    for spec_name, by_codec in reports.items():
        for codec, points in by_codec.items():
            for concurrency, _ in SWEEP:
                report = points[f"c{concurrency}"]
                table.add_row(
                    spec_name,
                    codec,
                    concurrency,
                    report["txns_per_sec"],
                    report["latency_ms"]["p50"],
                    report["latency_ms"]["p99"],
                    report["fsyncs_per_txn"],
                    report["forced_writes_per_txn"],
                    report["frames_per_socket_write"],
                )
    for spec_name, by_codec in reports.items():
        for codec, points in by_codec.items():
            points["speedup_c16_over_c1"] = round(
                points["c16"]["txns_per_sec"] / points["c1"]["txns_per_sec"], 2
            )
        by_codec["bin_vs_baseline_pr7_c16"] = round(
            by_codec["bin"]["c16"]["txns_per_sec"]
            / BASELINE_PR7[spec_name]["c16"],
            2,
        )
    reports["baseline_pr7"] = BASELINE_PR7
    return ExperimentResult(
        experiment_id="LIVE",
        title="live cluster throughput under client concurrency (wall clock)",
        tables=[table],
        data=reports,
        notes=[
            "closed loop: N workers, one in-flight txn each, gateways "
            "round-robin across the 3 sites; latencies are "
            "client-observed begin->decision over real TCP",
            "every vote/decision is force-logged before it is acted on; "
            "under concurrency the group-commit flusher batches forced "
            "records into shared fsyncs (fsyncs/txn < writes/txn) and "
            "the transport coalesces frames per socket write",
            "the serial (c1) row quiesces the cluster between every "
            "transaction, so it pays each fsync, snapshot, and syscall "
            "alone — that fixed cost is exactly what the concurrent "
            "pipeline amortizes",
            "codec json/bin selects the peer-link wire format (client "
            "traffic stays JSON); baseline_pr7 holds the committed "
            "txns/s before the binary codec, compiled FSA tables, "
            "TCP_NODELAY, and the fast trace serializer landed",
            "this container pins all site processes and the client to "
            "one CPU core with a ~0.1ms fsync, so the sweep measures "
            "batching efficiency, not parallel CPU; absolute numbers "
            "vary with the host and run (the shared core makes "
            "run-to-run variance substantial)",
        ],
    )


def test_bench_live_throughput(benchmark, record_report, tmp_path):
    result = benchmark.pedantic(run_live_bench, args=(tmp_path,), rounds=1, iterations=1)
    record_report(result)
    data = result.data

    for spec_name in PROTOCOLS:
        for codec in CODECS:
            points = data[spec_name][codec]
            for concurrency, n_txns in SWEEP:
                report = points[f"c{concurrency}"]
                assert report["txns"] == n_txns
                assert report["concurrency"] == concurrency
                assert report["codec"] == codec
                assert report["txns_per_sec"] > 0
                assert 0 < report["latency_ms"]["p50"] <= report["latency_ms"]["p99"]
                # Latency decomposes into the pipeline's three stages, and
                # each reply's elapsed_ms is exactly its stage sum, so the
                # stage means must add up to the measured latency mean.
                breakdown = report["latency_breakdown"]
                assert set(breakdown) == {"queue_ms", "resolve_ms", "durable_ms"}
                mean = report["latency_ms"]["mean"]
                stage_sum = sum(stats["mean"] for stats in breakdown.values())
                assert stage_sum == pytest.approx(mean, abs=max(0.5, 0.05 * mean))
                # Every site forces its vote/decision records: at least two
                # writes per site per committed txn land in the DT logs.
                assert report["forced_writes_per_txn"] >= 2
            # Group commit under load: strictly fewer fsyncs than forced
            # records, and a concurrent pipeline that outruns the serial one.
            assert points["c16"]["fsync_calls"] < points["c16"]["forced_writes"]
            assert points["c16"]["txns_per_sec"] > points["c1"]["txns_per_sec"]
            assert points["c16"]["frames_per_socket_write"] > 1.0

        # The message-complexity contrast (paper table 2): 3PC's prepare
        # phase costs strictly more protocol messages per transaction.
        assert (
            data["3pc-central"]["json"]["c1"]["proto_frames_per_txn"]
            > data["2pc-central"]["json"]["c1"]["proto_frames_per_txn"]
        )
        # Codec invariant: frame *counts* are protocol properties, not
        # codec properties — both codecs move the same frames.
        for spec_name in PROTOCOLS:
            assert data[spec_name]["bin"]["c1"]["proto_frames_per_txn"] == (
                data[spec_name]["json"]["c1"]["proto_frames_per_txn"]
            )
