"""Benchmark LIVE — wall-clock throughput of the live TCP cluster.

Unlike the simulator benches (virtual time), this one spawns real
`repro serve` processes on loopback and measures what a client sees:
transactions per second, p50/p99 commit latency in milliseconds, and
per-protocol forced-write and message counts.  2PC vs 3PC here is the
paper's message-complexity contrast priced in wall-clock time — 3PC's
extra prepare phase buys nonblocking termination with one more
round-trip and broadcast on the critical path.
"""

from __future__ import annotations

import pytest

from repro.experiments.base import ExperimentResult
from repro.live.cluster import ClusterConfig, ClusterHarness
from repro.metrics.tables import Table

pytestmark = pytest.mark.slow

PROTOCOLS = ("2pc-central", "3pc-central")
N_TXNS = 15


def run_live_bench(tmp_dir) -> ExperimentResult:
    reports = {}
    for spec_name in PROTOCOLS:
        config = ClusterConfig(
            spec_name=spec_name, n_sites=3, data_dir=tmp_dir / spec_name
        )
        with ClusterHarness(config) as harness:
            harness.start()
            reports[spec_name] = harness.bench(N_TXNS)

    table = Table(
        ["protocol", "txns/s", "p50 ms", "p99 ms", "writes/txn", "msgs/txn"],
        title=f"live loopback cluster, 3 sites, {N_TXNS} txns each",
    )
    for spec_name, report in reports.items():
        table.add_row(
            spec_name,
            report["txns_per_sec"],
            report["latency_ms"]["p50"],
            report["latency_ms"]["p99"],
            report["forced_writes_per_txn"],
            report["proto_frames_per_txn"],
        )
    return ExperimentResult(
        experiment_id="LIVE",
        title="live cluster throughput and commit latency (wall clock)",
        tables=[table],
        data=reports,
        notes=[
            "latencies are client-observed begin->decision over real TCP "
            "with fsync on every forced DT-log write",
            "3pc's extra prepare phase shows up as more messages per txn "
            "and a longer critical path than 2pc, the cost of nonblocking "
            "termination",
            "absolute numbers vary with the host; the 2pc-vs-3pc ratios "
            "are the stable signal",
        ],
    )


def test_bench_live_throughput(benchmark, record_report, tmp_path):
    result = benchmark.pedantic(run_live_bench, args=(tmp_path,), rounds=1, iterations=1)
    record_report(result)
    data = result.data

    for spec_name in PROTOCOLS:
        report = data[spec_name]
        assert report["txns"] == N_TXNS
        assert report["txns_per_sec"] > 0
        assert 0 < report["latency_ms"]["p50"] <= report["latency_ms"]["p99"]
        # Every site forces its vote/decision records: at least two
        # writes per site per committed txn land in the DT logs.
        assert report["forced_writes_per_txn"] >= 2

    # The message-complexity contrast (paper table 2): 3PC's prepare
    # phase costs strictly more protocol messages per transaction.
    assert (
        data["3pc-central"]["proto_frames_per_txn"]
        > data["2pc-central"]["proto_frames_per_txn"]
    )
