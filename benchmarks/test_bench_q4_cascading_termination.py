"""Benchmark Q4 — termination under cascading backup failures."""

from repro.experiments.e_q4_cascading_termination import run_q4


def test_bench_q4(benchmark, record_report):
    result = benchmark.pedantic(run_q4, rounds=3, iterations=1)
    record_report(result)
    data = result.data
    for extra, row in data.items():
        assert row["all_decided"], f"cascade with {extra} extra failures hung"
        assert row["atomic"], f"cascade with {extra} extra failures split"
    # Worst case reaches a single survivor, and latency grows with the
    # number of failures (roughly one election round each).
    worst = max(data)
    assert data[worst]["survivors"] == 1
    assert data[worst]["duration"] > data[0]["duration"]
