"""Benchmark F2 — regenerate the 2-site 2PC reachable state graph
(slide 18)."""

from repro.experiments.e_f2_global_graph import run_f2


def test_bench_f2(benchmark, record_report):
    result = benchmark(run_f2)
    record_report(result)
    assert result.data["deadlocked"] == 0
    assert result.data["inconsistent"] == 0
    assert result.data["terminal"] <= result.data["final"]
    assert result.data["states"] > 10  # A nontrivial graph, as drawn.
    assert result.data["all_executions_terminate"]
    assert result.data["commit_paths"] > 0 and result.data["abort_paths"] > 0
