"""Benchmark T1 — regenerate slide 32's concurrency-set table."""

from repro.experiments.e_t1_concurrency_sets import run_t1


def test_bench_t1(benchmark, record_report):
    result = benchmark(run_t1)
    record_report(result)
    assert result.data["all_match"], "concurrency sets drifted from the paper"
    assert result.data["cs_2pc"]["w"] == ["a", "c", "q", "w"]
    assert result.data["committable_2pc"] == ["c"]
    assert result.data["committable_3pc"] == ["c", "p"]
