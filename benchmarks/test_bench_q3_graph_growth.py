"""Benchmark Q3 — exponential state-graph growth (slide 19)."""

from repro.experiments.e_q3_graph_growth import run_q3


def test_bench_q3(benchmark, record_report):
    result = benchmark.pedantic(run_q3, rounds=2, iterations=1)
    record_report(result)
    assert result.data["min_growth_factor"] > 1.5
    sizes = result.data["sizes"]
    # Decentralized graphs outgrow central ones at equal n.
    assert sizes["2pc-decentralized"][4] > sizes["2pc-central"][4]
