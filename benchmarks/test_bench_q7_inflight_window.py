"""Benchmark Q7 — the blast radius of one crash across a window."""

from repro.experiments.e_q7_inflight_window import run_q7


def test_bench_q7(benchmark, record_report):
    result = benchmark.pedantic(run_q7, rounds=3, iterations=1)
    record_report(result)
    data = result.data
    assert data["2pc-central"]["blocked"] >= 2   # A real window blocks.
    assert data["3pc-central"]["blocked"] == 0
    assert data["2pc-central"]["atomic"]
    assert data["3pc-central"]["atomic"]
    # 3PC salvages (commits or aborts) everything 2PC lost.
    total = sum(v for k, v in data["3pc-central"].items() if k != "atomic")
    assert data["3pc-central"]["committed"] + data["3pc-central"]["aborted"] == total
