"""Benchmark PSWEEP — the parallel sweep runner vs the serial path.

Three guarantees, measured on real Q1/Q2 sweeps:

* the parallel path (``workers=4``) is byte-identical to serial,
* the warm artifact cache beats re-running the sweep, and
* honest wall-clocks for all three paths land in the JSON sidecar so
  the speedup trajectory is tracked across PRs.

The parallel-vs-serial wall-clock is reported but not asserted: on a
single-core runner (this container has ``os.cpu_count() == 1`` in some
configurations) process fan-out cannot beat in-process serial, and a
flaky assertion would be worse than an honest measurement.  Multi-core
CI shows the speedup.  The cache assertion has no such excuse: a warm
re-sweep must always win.
"""

import os
import time

from repro.experiments.base import ExperimentResult
from repro.metrics.tables import Table
from repro.parallel import SweepCache, SweepRunner, plan_sweep


def _timed_sweep(workers, tasks, cache=None):
    start = time.perf_counter()
    result = SweepRunner(workers=workers, cache=cache).run(tasks)
    return result, time.perf_counter() - start


def test_bench_parallel_sweep(record_report, tmp_path):
    tasks = plan_sweep(["Q1", "Q2"])

    serial, serial_s = _timed_sweep(1, tasks)
    parallel, parallel_s = _timed_sweep(4, tasks)

    cache = SweepCache(tmp_path / "cache")
    _warmup, cold_s = _timed_sweep(1, tasks, cache=cache)
    cached, cached_s = _timed_sweep(1, tasks, cache=cache)

    identical = (
        parallel.report == serial.report
        and parallel.merged.sidecar_json() == serial.merged.sidecar_json()
        and parallel.merged.trace.to_jsonl() == serial.merged.trace.to_jsonl()
        and cached.report == serial.report
    )
    assert identical, "parallel/cached sweep output diverged from serial"
    assert all(outcome.cached for outcome in cached.outcomes)
    assert cached_s < serial_s, (
        f"warm cache ({cached_s:.3f}s) must beat serial ({serial_s:.3f}s)"
    )

    table = Table(
        ["path", "workers", "wall clock (s)", "tasks"],
        title="sweep wall-clock by execution path",
    )
    table.add_row("serial", 1, f"{serial_s:.3f}", len(tasks))
    table.add_row("parallel", 4, f"{parallel_s:.3f}", len(tasks))
    table.add_row("cached", 1, f"{cached_s:.3f}", len(tasks))

    result = ExperimentResult(
        experiment_id="PSWEEP",
        title="parallel sweep runner: serial vs parallel vs cached",
        tables=[table],
        data={
            "tasks": len(tasks),
            "cpu_count": os.cpu_count(),
            "serial_s": round(serial_s, 4),
            "parallel_s": round(parallel_s, 4),
            "cached_s": round(cached_s, 4),
            "parallel_workers": 4,
            "byte_identical": identical,
            "parallel_speedup": round(serial_s / parallel_s, 3),
            "cache_speedup": round(serial_s / cached_s, 3),
        },
        notes=[
            "stdout artifacts are byte-identical across all three paths "
            "(merged in task-key order, never completion order)",
            "parallel speedup is meaningful only when cpu_count > 1; "
            "the cache speedup must hold everywhere",
        ],
    )
    record_report(result)
