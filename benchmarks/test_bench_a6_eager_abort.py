"""Benchmark A6 — the eager-abort optimization tradeoff."""

from repro.experiments.e_a6_eager_abort import run_a6


def test_bench_a6(benchmark, record_report):
    result = benchmark.pedantic(run_a6, rounds=3, iterations=1)
    record_report(result)
    data = result.data
    # Benefit: eager aborts without waiting for the straggler.
    assert data["2PC eager"]["abort_latency"] < data["2PC strict"]["abort_latency"]
    assert data["3PC eager"]["abort_latency"] < data["3PC strict"]["abort_latency"]
    # Cost: the lemma's synchrony precondition is gone.
    assert data["2PC strict"]["synchronous"] and not data["2PC eager"]["synchronous"]
    # Unchanged: the theorem's verdicts.
    assert data["3PC eager"]["nonblocking"]
    assert not data["2PC eager"]["nonblocking"]
