"""Benchmark Q5 — the recovery outcome matrix."""

from repro.experiments.e_q5_recovery_matrix import run_q5


def test_bench_q5(benchmark, record_report):
    result = benchmark.pedantic(run_q5, rounds=3, iterations=1)
    record_report(result)
    for protocol, rows in result.data.items():
        for row in rows:
            assert row["consistent"], (protocol, row["label"])
    vias = {row["via"] for rows in result.data.values() for row in rows}
    # All three recovery mechanisms are exercised by the matrix.
    assert "recovery" in vias
