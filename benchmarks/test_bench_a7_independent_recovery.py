"""Benchmark A7 — the independent recovery map."""

from repro.experiments.e_a7_independent_recovery import run_a7


def test_bench_a7(benchmark, record_report):
    result = benchmark.pedantic(run_a7, rounds=3, iterations=1)
    record_report(result)
    data = result.data
    # Slide 6's rule holds across the catalog.
    for name in data:
        assert data[name]["q"]["independent"] == "abort"
        assert data[name]["c"]["independent"] == "commit"
    # The in-doubt window is real: 2PC's w and 3PC's p need queries.
    assert data["2pc-central"]["w"]["independent"] is None
    assert data["3pc-central"]["p"]["independent"] is None
    # The central/decentralized asymmetry at w.
    assert data["3pc-central"]["w"]["independent"] == "abort"
    assert data["3pc-decentralized"]["w"]["independent"] is None
