"""Benchmark Q6 — post-failure database throughput, 2PC vs 3PC."""

from repro.experiments.e_q6_db_throughput import run_q6


def test_bench_q6(benchmark, record_report):
    result = benchmark.pedantic(run_q6, rounds=3, iterations=1)
    record_report(result)
    data = result.data
    # The paper's motivating contrast: after the crash, 2PC's stream is
    # dead (locks held by the blocked commit) while 3PC's continues.
    assert data["2pc-central"]["after_crash_commits"] == 0
    assert data["2pc-central"]["blocked"] == 1
    assert data["2pc-central"]["stalled"] > 0
    assert data["3pc-central"]["after_crash_commits"] > 0
    assert data["3pc-central"]["stalled"] == 0
    assert data["3pc-central"]["committed"] > data["2pc-central"]["committed"]
