"""Benchmark T2 — regenerate the blocking verdicts (slides 28/33)."""

from repro.experiments.e_t2_blocking_verdicts import run_t2


def test_bench_t2(benchmark, record_report):
    result = benchmark(run_t2)
    record_report(result)
    assert result.data["blocking"] == [
        "1pc", "2pc-central", "2pc-decentralized",
    ]
    assert result.data["nonblocking"] == ["3pc-central", "3pc-decentralized"]
    assert result.data["w_violates_both_conditions"]
