"""Benchmark T3 — regenerate slide 40's termination decision rule."""

from repro.experiments.e_t3_termination_rule import run_t3


def test_bench_t3(benchmark, record_report):
    result = benchmark(run_t3)
    record_report(result)
    assert result.data["all_match"], "decision rule drifted from slide 40"
    assert result.data["two_pc_blocks_at_w"]
