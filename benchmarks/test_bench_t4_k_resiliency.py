"""Benchmark T4 — regenerate the corollary's k-resiliency table
(slide 30)."""

from repro.experiments.e_t4_k_resiliency import run_t4


def test_bench_t4(benchmark, record_report):
    result = benchmark(run_t4)
    record_report(result)
    tolerated = result.data["tolerated"]
    for n in (2, 3, 4):
        assert tolerated["3pc-central"][n] == n - 1
        assert tolerated["3pc-decentralized"][n] == n - 1
        assert tolerated["2pc-central"][n] == 0
        assert tolerated["2pc-decentralized"][n] == 0
        assert tolerated["1pc"][n] == 0
