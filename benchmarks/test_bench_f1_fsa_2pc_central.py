"""Benchmark F1 — regenerate the central-site 2PC automata (slide 15)."""

from repro.experiments.e_f1_fsa_2pc_central import run_f1


def test_bench_f1(benchmark, record_report):
    result = benchmark(run_f1)
    record_report(result)
    assert result.data["coordinator_states"] == ["a", "c", "q", "w"]
    assert result.data["slave_states"] == ["a", "c", "q", "w"]
    assert result.data["coordinator_phases"] == 2
    assert result.data["slave_phases"] == 2
