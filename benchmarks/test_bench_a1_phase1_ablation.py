"""Benchmark A1 — the phase-1 ablation: skipping it breaks atomicity."""

from repro.experiments.e_a1_phase1_ablation import run_a1


def test_bench_a1(benchmark, record_report):
    result = benchmark.pedantic(run_a1, rounds=3, iterations=1)
    record_report(result)
    assert result.data["standard"]["atomic"]
    assert not result.data["unsafe-skip-phase1"]["atomic"]
    assert result.data["unsafe-skip-phase1"]["backup_logged"] == "commit"
    assert result.data["unsafe-skip-phase1"]["survivors"] == ["abort"]
