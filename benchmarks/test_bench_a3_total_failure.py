"""Benchmark A3 — total-failure recovery extension."""

from repro.experiments.e_a3_total_failure import run_a3


def test_bench_a3(benchmark, record_report):
    result = benchmark.pedantic(run_a3, rounds=3, iterations=1)
    record_report(result)
    assert not result.data["disabled"]["resolved"]  # The paper's limit.
    assert result.data["enabled"]["resolved"]
    assert result.data["enabled"]["atomic"]
    assert set(result.data["enabled"]["outcomes"].values()) == {"abort"}
