"""Shared plumbing for the benchmark suite.

Each benchmark regenerates one paper artifact (see DESIGN.md §3),
asserts its shape against the paper, and saves the rendered tables
under ``benchmarks/reports/`` so EXPERIMENTS.md can quote them.
"""

from __future__ import annotations

from pathlib import Path

import pytest

REPORTS = Path(__file__).resolve().parent / "reports"


@pytest.fixture(scope="session")
def record_report():
    """Write one experiment's rendered output to the reports directory."""
    REPORTS.mkdir(exist_ok=True)

    def _record(result) -> str:
        text = result.render()
        (REPORTS / f"{result.experiment_id}.txt").write_text(text + "\n")
        return text

    return _record
