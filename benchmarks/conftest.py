"""Shared plumbing for the benchmark suite.

Each benchmark regenerates one paper artifact (see DESIGN.md §3),
asserts its shape against the paper, and saves the rendered tables
under ``benchmarks/reports/`` so EXPERIMENTS.md can quote them.  Next
to every human-readable ``*.txt`` report a machine-readable ``*.json``
sidecar is written (deterministic, sorted keys), so the perf
trajectory of each experiment can be tracked mechanically across PRs.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.metrics.registry import json_sidecar

REPORTS = Path(__file__).resolve().parent / "reports"


@pytest.fixture(scope="session")
def record_report():
    """Write one experiment's rendered output to the reports directory."""
    REPORTS.mkdir(exist_ok=True)

    def _record(result) -> str:
        text = result.render()
        (REPORTS / f"{result.experiment_id}.txt").write_text(text + "\n")
        (REPORTS / f"{result.experiment_id}.json").write_text(
            json_sidecar(result) + "\n"
        )
        return text

    return _record
