"""Name-indexed registry of the catalog protocols.

The registry powers the CLI, the experiment harness, and parameterized
tests: anything that wants "every protocol in the paper" iterates
:data:`PROTOCOLS`.
"""

from __future__ import annotations

from typing import Callable

from repro.errors import InvalidProtocolError
from repro.fsa.spec import ProtocolSpec
from repro.protocols.one_phase import one_phase
from repro.protocols.three_phase_central import central_three_phase
from repro.protocols.three_phase_decentralized import decentralized_three_phase
from repro.protocols.two_phase_central import central_two_phase
from repro.protocols.two_phase_decentralized import decentralized_two_phase

#: All catalog protocols by canonical name.  Each value is a builder
#: taking the participant count.
PROTOCOLS: dict[str, Callable[[int], ProtocolSpec]] = {
    "1pc": one_phase,
    "2pc-central": central_two_phase,
    "2pc-decentralized": decentralized_two_phase,
    "3pc-central": central_three_phase,
    "3pc-decentralized": decentralized_three_phase,
}

#: Names of the protocols the paper proves blocking / nonblocking.
BLOCKING = ("1pc", "2pc-central", "2pc-decentralized")
NONBLOCKING = ("3pc-central", "3pc-decentralized")


def protocol_names() -> list[str]:
    """Canonical names of every catalog protocol, sorted."""
    return sorted(PROTOCOLS)


def build(name: str, n_sites: int) -> ProtocolSpec:
    """Build the named protocol for ``n_sites`` participants.

    Raises:
        InvalidProtocolError: If the name is not in the catalog.
    """
    try:
        builder = PROTOCOLS[name]
    except KeyError:
        known = ", ".join(protocol_names())
        raise InvalidProtocolError(
            f"unknown protocol {name!r}; known protocols: {known}"
        ) from None
    return builder(n_sites)
