"""Name-indexed registry of the catalog protocols.

The registry powers the CLI, the experiment harness, and parameterized
tests: anything that wants "every protocol in the paper" iterates
:data:`PROTOCOLS`.
"""

from __future__ import annotations

from typing import Callable

from repro.errors import InvalidProtocolError
from repro.fsa.spec import ProtocolSpec
from repro.protocols.one_phase import one_phase
from repro.protocols.three_phase_central import central_three_phase
from repro.protocols.three_phase_decentralized import decentralized_three_phase
from repro.protocols.two_phase_central import central_two_phase
from repro.protocols.two_phase_decentralized import decentralized_two_phase

#: All catalog protocols by canonical name.  Each value is a builder
#: taking the participant count.
PROTOCOLS: dict[str, Callable[[int], ProtocolSpec]] = {
    "1pc": one_phase,
    "2pc-central": central_two_phase,
    "2pc-decentralized": decentralized_two_phase,
    "3pc-central": central_three_phase,
    "3pc-decentralized": decentralized_three_phase,
}

#: Names of the protocols the paper proves blocking / nonblocking.
BLOCKING = ("1pc", "2pc-central", "2pc-decentralized")
NONBLOCKING = ("3pc-central", "3pc-decentralized")

#: Protocols supporting the read-only one-phase exit (central-site
#: protocols, where the coordinator can prune its fan-outs).
RO_CAPABLE = ("2pc-central", "3pc-central")


def protocol_names() -> list[str]:
    """Canonical names of every catalog protocol, sorted."""
    return sorted(PROTOCOLS)


def build(name: str, n_sites: int, ro_sites: tuple = ()) -> ProtocolSpec:
    """Build the named protocol for ``n_sites`` participants.

    Args:
        name: Canonical protocol name.
        n_sites: Participant count.
        ro_sites: Slaves running the read-only one-phase exit; only the
            central-site protocols support the optimization.

    Raises:
        InvalidProtocolError: If the name is not in the catalog, or
            ``ro_sites`` is given for a protocol without the read-only
            optimization.
    """
    try:
        builder = PROTOCOLS[name]
    except KeyError:
        known = ", ".join(protocol_names())
        raise InvalidProtocolError(
            f"unknown protocol {name!r}; known protocols: {known}"
        ) from None
    if ro_sites:
        if name not in RO_CAPABLE:
            raise InvalidProtocolError(
                f"{name!r} does not support read-only participants; "
                f"supported: {', '.join(RO_CAPABLE)}"
            )
        return builder(n_sites, ro_sites=tuple(ro_sites))
    return builder(n_sites)
