"""The one-phase commit protocol (1PC).

Slide 8: "1PC is the simplest commit protocol.  However, it is
inadequate because it does not allow a unilateral abort by a server."
The coordinator receives the client's decision and simply broadcasts
commit or abort; slaves have no vote and cannot refuse.

The coordinator's own decision is modelled as nondeterminism at its
initial state: on reading the external ``request`` it either commits
(vote yes) or aborts (vote no) and broadcasts accordingly.
"""

from __future__ import annotations

from repro.fsa.automaton import SiteAutomaton, Transition
from repro.fsa.messages import EXTERNAL, Msg, fan_out
from repro.fsa.spec import ProtocolSpec
from repro.protocols._shared import COORDINATOR, check_site_count, slaves_of
from repro.types import ProtocolClass, SiteId, Vote


def one_phase(n_sites: int) -> ProtocolSpec:
    """Build the 1PC spec for ``n_sites`` participants.

    Args:
        n_sites: Total participant count including the coordinator
            (site 1); must be at least 2.

    Returns:
        A validated :class:`ProtocolSpec`.
    """
    sites = check_site_count("1PC", n_sites)
    slaves = slaves_of(sites)

    coordinator = SiteAutomaton(
        site=COORDINATOR,
        role="coordinator",
        initial="q",
        commit_states=["c"],
        abort_states=["a"],
        transitions=[
            Transition(
                source="q",
                target="c",
                reads=frozenset({Msg("request", EXTERNAL, COORDINATOR)}),
                writes=fan_out("commit", COORDINATOR, slaves),
                vote=Vote.YES,
            ),
            Transition(
                source="q",
                target="a",
                reads=frozenset({Msg("request", EXTERNAL, COORDINATOR)}),
                writes=fan_out("abort", COORDINATOR, slaves),
                vote=Vote.NO,
            ),
        ],
    )

    automata: dict[SiteId, SiteAutomaton] = {COORDINATOR: coordinator}
    for site in slaves:
        automata[site] = SiteAutomaton(
            site=site,
            role="slave",
            initial="q",
            commit_states=["c"],
            abort_states=["a"],
            transitions=[
                Transition(
                    source="q",
                    target="c",
                    reads=frozenset({Msg("commit", COORDINATOR, site)}),
                ),
                Transition(
                    source="q",
                    target="a",
                    reads=frozenset({Msg("abort", COORDINATOR, site)}),
                ),
            ],
        )

    return ProtocolSpec(
        name=f"1PC (central-site, n={n_sites})",
        protocol_class=ProtocolClass.CENTRAL_SITE,
        automata=automata,
        initial_messages=[Msg("request", EXTERNAL, COORDINATOR)],
        coordinator=COORDINATOR,
    )
