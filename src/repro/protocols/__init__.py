"""Catalog of the paper's commit protocols.

Five protocols, each built both as an analyzable
:class:`~repro.fsa.spec.ProtocolSpec` (this package) and executed by the
generic engine in :mod:`repro.runtime`:

* :func:`~repro.protocols.one_phase.one_phase` — 1PC, the simplest
  protocol; inadequate because it forbids unilateral abort (slide 8);
* :func:`~repro.protocols.two_phase_central.central_two_phase` — the
  central-site 2PC of slide 15;
* :func:`~repro.protocols.two_phase_decentralized.decentralized_two_phase`
  — the decentralized 2PC of slide 26;
* :func:`~repro.protocols.three_phase_central.central_three_phase` — the
  nonblocking central-site 3PC of slide 35;
* :func:`~repro.protocols.three_phase_decentralized.decentralized_three_phase`
  — the nonblocking decentralized 3PC of slide 36.

:mod:`~repro.protocols.catalog` exposes a name-indexed registry.
"""

from repro.protocols.catalog import PROTOCOLS, build, protocol_names
from repro.protocols.one_phase import one_phase
from repro.protocols.three_phase_central import central_three_phase
from repro.protocols.three_phase_decentralized import decentralized_three_phase
from repro.protocols.two_phase_central import central_two_phase
from repro.protocols.two_phase_decentralized import decentralized_two_phase

__all__ = [
    "PROTOCOLS",
    "build",
    "central_three_phase",
    "central_two_phase",
    "decentralized_three_phase",
    "decentralized_two_phase",
    "one_phase",
    "protocol_names",
]
