"""The central-site two-phase commit protocol (2PC), slide 15.

Phase 1: the coordinator distributes the transaction (``xact``) to all
slaves and waits for each to vote yes or no.  Phase 2: the coordinator
collects the votes and informs each slave of the outcome.

The coordinator's own vote — the parenthesized ``(yes_1)`` / ``(no_1)``
of the paper's figure — is modelled as nondeterminism at its wait
state: having collected every slave's yes, the coordinator either adds
its own yes and commits, or adds its own no and aborts.

By default the coordinator honours property 4 of the central-site
model (slide 23) and collects the *complete* vote vector before
deciding, which is what makes the protocol synchronous within one
state transition (slide 24).  Pass ``eager_abort=True`` for the common
practical optimization of aborting on the first ``no`` — it saves
waiting but lets a decided site lead a lagging one by two transitions,
losing the synchronicity property (measurable via
:func:`repro.analysis.check_synchronicity`).
"""

from __future__ import annotations

from repro.fsa.automaton import SiteAutomaton, Transition
from repro.fsa.messages import EXTERNAL, Msg, fan_in, fan_out
from repro.fsa.spec import ProtocolSpec
from repro.protocols._shared import (
    COORDINATOR,
    check_ro_sites,
    check_site_count,
    no_vote_combinations,
    read_only_slave_automaton,
    slaves_of,
)
from repro.types import ProtocolClass, SiteId, Vote


def _coordinator_automaton(
    slaves: list[SiteId],
    eager_abort: bool,
    voters: list[SiteId],
    read_only: list[SiteId],
) -> SiteAutomaton:
    """The coordinator FSA: q -> w -> {a, c}.

    Read-only slaves still receive the ``xact`` and their ``ro`` reply
    completes phase 1, but they are pruned from every phase-2 fan-out:
    a site with nothing at stake needs no outcome.
    """
    ro_acks = fan_in("ro", read_only, COORDINATOR)
    transitions = [
        Transition(
            source="q",
            target="w",
            reads=frozenset({Msg("request", EXTERNAL, COORDINATOR)}),
            writes=fan_out("xact", COORDINATOR, slaves),
        ),
        # All slaves voted yes and the coordinator votes yes: commit.
        Transition(
            source="w",
            target="c",
            reads=fan_in("yes", voters, COORDINATOR) | ro_acks,
            writes=fan_out("commit", COORDINATOR, voters),
            vote=Vote.YES,
        ),
        # All slaves voted yes but the coordinator votes no: abort.
        Transition(
            source="w",
            target="a",
            reads=fan_in("yes", voters, COORDINATOR) | ro_acks,
            writes=fan_out("abort", COORDINATOR, voters),
            vote=Vote.NO,
        ),
    ]
    if eager_abort:
        # Optimization: any slave no aborts without awaiting other votes.
        for slave in voters:
            transitions.append(
                Transition(
                    source="w",
                    target="a",
                    reads=frozenset({Msg("no", slave, COORDINATOR)}),
                    writes=fan_out("abort", COORDINATOR, voters),
                )
            )
    else:
        # Property 4: read the full vote vector, abort on any no.
        for vector in no_vote_combinations(voters):
            transitions.append(
                Transition(
                    source="w",
                    target="a",
                    reads=frozenset(
                        Msg(kind, slave, COORDINATOR)
                        for slave, kind in vector.items()
                    )
                    | ro_acks,
                    writes=fan_out("abort", COORDINATOR, voters),
                )
            )
    return SiteAutomaton(
        site=COORDINATOR,
        role="coordinator",
        initial="q",
        commit_states=["c"],
        abort_states=["a"],
        transitions=transitions,
    )


def _slave_automaton(site: SiteId) -> SiteAutomaton:
    """The slave FSA of slide 15: q -> {w, a}, w -> {c, a}."""
    return SiteAutomaton(
        site=site,
        role="slave",
        initial="q",
        commit_states=["c"],
        abort_states=["a"],
        transitions=[
            Transition(
                source="q",
                target="w",
                reads=frozenset({Msg("xact", COORDINATOR, site)}),
                writes=(Msg("yes", site, COORDINATOR),),
                vote=Vote.YES,
            ),
            Transition(
                source="q",
                target="a",
                reads=frozenset({Msg("xact", COORDINATOR, site)}),
                writes=(Msg("no", site, COORDINATOR),),
                vote=Vote.NO,
            ),
            Transition(
                source="w",
                target="c",
                reads=frozenset({Msg("commit", COORDINATOR, site)}),
            ),
            Transition(
                source="w",
                target="a",
                reads=frozenset({Msg("abort", COORDINATOR, site)}),
            ),
        ],
    )


def central_two_phase(
    n_sites: int, eager_abort: bool = False, ro_sites: tuple = ()
) -> ProtocolSpec:
    """Build the central-site 2PC spec for ``n_sites`` participants.

    Args:
        n_sites: Total participant count including the coordinator
            (site 1); must be at least 2.
        eager_abort: Abort on the first ``no`` instead of collecting the
            full vote vector (see module docstring).
        ro_sites: Slaves running the read-only one-phase exit: they
            answer the ``xact`` with ``ro`` and terminate, and the
            coordinator prunes them from the phase-2 fan-out.

    Returns:
        A validated :class:`ProtocolSpec`.  This protocol is *blocking*
        — the theorem checker in :mod:`repro.analysis.nonblocking`
        reports violations of both conditions at each slave's wait
        state, exactly as the paper observes.
    """
    sites = check_site_count("central-site 2PC", n_sites)
    slaves = slaves_of(sites)
    voters, read_only = check_ro_sites("central-site 2PC", slaves, ro_sites)
    automata: dict[SiteId, SiteAutomaton] = {
        COORDINATOR: _coordinator_automaton(slaves, eager_abort, voters, read_only)
    }
    for site in voters:
        automata[site] = _slave_automaton(site)
    for site in read_only:
        automata[site] = read_only_slave_automaton(site)
    ro_suffix = (
        f", ro={{{','.join(str(s) for s in read_only)}}}" if read_only else ""
    )
    return ProtocolSpec(
        name=f"2PC (central-site, n={n_sites}{ro_suffix})",
        protocol_class=ProtocolClass.CENTRAL_SITE,
        automata=automata,
        initial_messages=[Msg("request", EXTERNAL, COORDINATOR)],
        coordinator=COORDINATOR,
    )
