"""The nonblocking decentralized three-phase commit protocol, slide 36.

The decentralized 2PC with a buffer state: having collected every yes
vote, a peer broadcasts ``prepare`` (to every site including itself)
and enters ``p``; having collected every peer's ``prepare`` it commits.
A ``prepare`` from peer *j* doubles as *j*'s acknowledgement that it
saw all yes votes, so no separate ack round is needed in this model.
"""

from __future__ import annotations

from repro.fsa.automaton import SiteAutomaton, Transition
from repro.fsa.messages import EXTERNAL, Msg, fan_in, fan_out
from repro.fsa.spec import ProtocolSpec
from repro.protocols._shared import check_site_count, no_vote_combinations
from repro.types import ProtocolClass, SiteId, Vote


def _peer_automaton(
    site: SiteId, sites: list[SiteId], eager_abort: bool
) -> SiteAutomaton:
    """The peer FSA of slide 36: q -> {w, a}, w -> {p, a}, p -> c."""
    transitions = [
        Transition(
            source="q",
            target="w",
            reads=frozenset({Msg("xact", EXTERNAL, site)}),
            writes=fan_out("yes", site, sites),
            vote=Vote.YES,
        ),
        Transition(
            source="q",
            target="a",
            reads=frozenset({Msg("xact", EXTERNAL, site)}),
            writes=fan_out("no", site, sites),
            vote=Vote.NO,
        ),
        Transition(
            source="w",
            target="p",
            reads=fan_in("yes", sites, site),
            writes=fan_out("prepare", site, sites),
        ),
        Transition(
            source="p",
            target="c",
            reads=fan_in("prepare", sites, site),
        ),
    ]
    peers = [peer for peer in sites if peer != site]
    if eager_abort:
        for peer in peers:
            transitions.append(
                Transition(
                    source="w",
                    target="a",
                    reads=frozenset({Msg("no", peer, site)}),
                )
            )
    else:
        # Full interchange round: own yes plus every peer's vote.
        for vector in no_vote_combinations(peers):
            reads = {Msg("yes", site, site)}
            reads.update(Msg(kind, peer, site) for peer, kind in vector.items())
            transitions.append(
                Transition(source="w", target="a", reads=frozenset(reads))
            )
    return SiteAutomaton(
        site=site,
        role="peer",
        initial="q",
        commit_states=["c"],
        abort_states=["a"],
        transitions=transitions,
    )


def decentralized_three_phase(
    n_sites: int, eager_abort: bool = False
) -> ProtocolSpec:
    """Build the decentralized 3PC spec for ``n_sites`` participants.

    Args:
        n_sites: Participant count; must be at least 2.
        eager_abort: Abort on the first ``no`` instead of completing the
            vote interchange round (loses synchronicity within one
            transition; see :mod:`repro.protocols.two_phase_central`).

    Returns:
        A validated :class:`ProtocolSpec`.  Nonblocking (experiment F6
        verifies both theorem conditions by exhaustive analysis).
    """
    sites = check_site_count("decentralized 3PC", n_sites)
    automata = {site: _peer_automaton(site, sites, eager_abort) for site in sites}
    return ProtocolSpec(
        name=f"3PC (decentralized, n={n_sites})",
        protocol_class=ProtocolClass.DECENTRALIZED,
        automata=automata,
        initial_messages=[Msg("xact", EXTERNAL, site) for site in sites],
    )
