"""The decentralized two-phase commit protocol, slide 26.

All sites run the same peer protocol.  In the first phase each site
receives the external ``xact`` message, decides whether to unilaterally
abort, and sends its decision to every peer *including itself* (slide
25: "sites will be assumed to send messages to themselves").  In the
second phase each site collects all decisions: all yes ⇒ commit, any
no ⇒ abort.

With ``n_sites = 2`` and roles collapsed, this protocol is the paper's
*canonical 2PC* (slide 32) whose concurrency sets are
``CS(q) = {q, w, a}``, ``CS(w) = {q, w, a, c}``, ``CS(a) = {q, w, a}``,
``CS(c) = {w, c}`` — reproduced by experiment T1.
"""

from __future__ import annotations

from repro.fsa.automaton import SiteAutomaton, Transition
from repro.fsa.messages import EXTERNAL, Msg, fan_in, fan_out
from repro.fsa.spec import ProtocolSpec
from repro.protocols._shared import check_site_count, no_vote_combinations
from repro.types import ProtocolClass, SiteId, Vote


def _peer_automaton(
    site: SiteId, sites: list[SiteId], eager_abort: bool
) -> SiteAutomaton:
    """The peer FSA of slide 26: q -> {w, a}, w -> {c, a}."""
    transitions = [
        Transition(
            source="q",
            target="w",
            reads=frozenset({Msg("xact", EXTERNAL, site)}),
            writes=fan_out("yes", site, sites),
            vote=Vote.YES,
        ),
        Transition(
            source="q",
            target="a",
            reads=frozenset({Msg("xact", EXTERNAL, site)}),
            writes=fan_out("no", site, sites),
            vote=Vote.NO,
        ),
        Transition(
            source="w",
            target="c",
            reads=fan_in("yes", sites, site),
        ),
    ]
    peers = [peer for peer in sites if peer != site]
    if eager_abort:
        # Optimization: any single no aborts; remaining votes unread.
        for peer in peers:
            transitions.append(
                Transition(
                    source="w",
                    target="a",
                    reads=frozenset({Msg("no", peer, site)}),
                )
            )
    else:
        # A full message interchange per round (slide 25): read the
        # complete vote vector — own yes plus every peer's vote — and
        # abort when any peer voted no.
        for vector in no_vote_combinations(peers):
            reads = {Msg("yes", site, site)}
            reads.update(
                Msg(kind, peer, site) for peer, kind in vector.items()
            )
            transitions.append(
                Transition(source="w", target="a", reads=frozenset(reads))
            )
    return SiteAutomaton(
        site=site,
        role="peer",
        initial="q",
        commit_states=["c"],
        abort_states=["a"],
        transitions=transitions,
    )


def decentralized_two_phase(n_sites: int, eager_abort: bool = False) -> ProtocolSpec:
    """Build the decentralized 2PC spec for ``n_sites`` participants.

    Args:
        n_sites: Participant count; must be at least 2.
        eager_abort: Abort on the first ``no`` instead of completing the
            vote interchange round (loses synchronicity within one
            transition; see :mod:`repro.protocols.two_phase_central`).

    Returns:
        A validated :class:`ProtocolSpec`.  Blocking, like its
        central-site sibling: a peer in ``w`` has both a commit and an
        abort state in its concurrency set, and ``w`` is noncommittable
        with a commit state in its concurrency set.
    """
    sites = check_site_count("decentralized 2PC", n_sites)
    automata = {site: _peer_automaton(site, sites, eager_abort) for site in sites}
    return ProtocolSpec(
        name=f"2PC (decentralized, n={n_sites})",
        protocol_class=ProtocolClass.DECENTRALIZED,
        automata=automata,
        initial_messages=[Msg("xact", EXTERNAL, site) for site in sites],
    )
