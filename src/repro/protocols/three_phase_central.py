"""The nonblocking central-site three-phase commit protocol, slide 35.

3PC is 2PC with a *buffer state* ``p`` ("prepare to commit") inserted
between the wait state and the commit state, exactly per the paper's
construction (slide 34).  Having collected every yes vote, the
coordinator first broadcasts ``prepare``, waits for every slave's
``ack``, and only then broadcasts ``commit``.  The buffer state is
committable but not a commit state, which is what satisfies both
conditions of the fundamental nonblocking theorem.
"""

from __future__ import annotations

from repro.fsa.automaton import SiteAutomaton, Transition
from repro.fsa.messages import EXTERNAL, Msg, fan_in, fan_out
from repro.fsa.spec import ProtocolSpec
from repro.protocols._shared import (
    COORDINATOR,
    check_ro_sites,
    check_site_count,
    no_vote_combinations,
    read_only_slave_automaton,
    slaves_of,
)
from repro.types import ProtocolClass, SiteId, Vote


def _coordinator_automaton(
    slaves: list[SiteId],
    eager_abort: bool,
    voters: list[SiteId],
    read_only: list[SiteId],
) -> SiteAutomaton:
    """The coordinator FSA of slide 35: q -> w -> {a, p}, p -> c.

    Read-only slaves answer the ``xact`` with ``ro`` and are pruned
    from the prepare/ack round and both decision fan-outs.
    """
    ro_acks = fan_in("ro", read_only, COORDINATOR)
    transitions = [
        Transition(
            source="q",
            target="w",
            reads=frozenset({Msg("request", EXTERNAL, COORDINATOR)}),
            writes=fan_out("xact", COORDINATOR, slaves),
        ),
        # All slaves voted yes and the coordinator votes yes: prepare.
        Transition(
            source="w",
            target="p",
            reads=fan_in("yes", voters, COORDINATOR) | ro_acks,
            writes=fan_out("prepare", COORDINATOR, voters),
            vote=Vote.YES,
        ),
        # All slaves voted yes but the coordinator votes no: abort.
        Transition(
            source="w",
            target="a",
            reads=fan_in("yes", voters, COORDINATOR) | ro_acks,
            writes=fan_out("abort", COORDINATOR, voters),
            vote=Vote.NO,
        ),
        # Every slave acknowledged the prepare: commit.
        Transition(
            source="p",
            target="c",
            reads=fan_in("ack", voters, COORDINATOR),
            writes=fan_out("commit", COORDINATOR, voters),
        ),
    ]
    if eager_abort:
        for slave in voters:
            transitions.append(
                Transition(
                    source="w",
                    target="a",
                    reads=frozenset({Msg("no", slave, COORDINATOR)}),
                    writes=fan_out("abort", COORDINATOR, voters),
                )
            )
    else:
        # Property 4: read the full vote vector, abort on any no.
        for vector in no_vote_combinations(voters):
            transitions.append(
                Transition(
                    source="w",
                    target="a",
                    reads=frozenset(
                        Msg(kind, slave, COORDINATOR)
                        for slave, kind in vector.items()
                    )
                    | ro_acks,
                    writes=fan_out("abort", COORDINATOR, voters),
                )
            )
    return SiteAutomaton(
        site=COORDINATOR,
        role="coordinator",
        initial="q",
        commit_states=["c"],
        abort_states=["a"],
        transitions=transitions,
    )


def _slave_automaton(site: SiteId) -> SiteAutomaton:
    """The slave FSA of slide 35: q -> {w, a}, w -> {p, a}, p -> c."""
    return SiteAutomaton(
        site=site,
        role="slave",
        initial="q",
        commit_states=["c"],
        abort_states=["a"],
        transitions=[
            Transition(
                source="q",
                target="w",
                reads=frozenset({Msg("xact", COORDINATOR, site)}),
                writes=(Msg("yes", site, COORDINATOR),),
                vote=Vote.YES,
            ),
            Transition(
                source="q",
                target="a",
                reads=frozenset({Msg("xact", COORDINATOR, site)}),
                writes=(Msg("no", site, COORDINATOR),),
                vote=Vote.NO,
            ),
            Transition(
                source="w",
                target="p",
                reads=frozenset({Msg("prepare", COORDINATOR, site)}),
                writes=(Msg("ack", site, COORDINATOR),),
            ),
            Transition(
                source="w",
                target="a",
                reads=frozenset({Msg("abort", COORDINATOR, site)}),
            ),
            Transition(
                source="p",
                target="c",
                reads=frozenset({Msg("commit", COORDINATOR, site)}),
            ),
        ],
    )


def central_three_phase(
    n_sites: int, eager_abort: bool = False, ro_sites: tuple = ()
) -> ProtocolSpec:
    """Build the central-site 3PC spec for ``n_sites`` participants.

    Args:
        n_sites: Total participant count including the coordinator
            (site 1); must be at least 2.
        eager_abort: Abort on the first ``no`` instead of collecting the
            full vote vector (loses synchronicity within one
            transition; see :mod:`repro.protocols.two_phase_central`).
        ro_sites: Slaves running the read-only one-phase exit: they
            answer the ``xact`` with ``ro`` and terminate, and the
            coordinator prunes them from phases 2 and 3.

    Returns:
        A validated :class:`ProtocolSpec`.  Nonblocking: every site
        satisfies both conditions of the fundamental theorem, which
        experiment F5 verifies by exhaustive state-graph analysis.
    """
    sites = check_site_count("central-site 3PC", n_sites)
    slaves = slaves_of(sites)
    voters, read_only = check_ro_sites("central-site 3PC", slaves, ro_sites)
    automata: dict[SiteId, SiteAutomaton] = {
        COORDINATOR: _coordinator_automaton(slaves, eager_abort, voters, read_only)
    }
    for site in voters:
        automata[site] = _slave_automaton(site)
    for site in read_only:
        automata[site] = read_only_slave_automaton(site)
    ro_suffix = (
        f", ro={{{','.join(str(s) for s in read_only)}}}" if read_only else ""
    )
    return ProtocolSpec(
        name=f"3PC (central-site, n={n_sites}{ro_suffix})",
        protocol_class=ProtocolClass.CENTRAL_SITE,
        automata=automata,
        initial_messages=[Msg("request", EXTERNAL, COORDINATOR)],
        coordinator=COORDINATOR,
    )
