"""Shared helpers for the protocol builders."""

from __future__ import annotations

from repro.errors import InstantiationError
from repro.types import SiteId

#: Site id of the coordinator in every central-site protocol (the paper
#: numbers it site 1).
COORDINATOR: SiteId = SiteId(1)


def check_site_count(name: str, n_sites: int, minimum: int = 2) -> list[SiteId]:
    """Validate the site count and return the site id list ``[1..n]``.

    Raises:
        InstantiationError: If ``n_sites`` is below ``minimum``.
    """
    if n_sites < minimum:
        raise InstantiationError(
            f"{name} needs at least {minimum} sites, got {n_sites}"
        )
    return [SiteId(i) for i in range(1, n_sites + 1)]


def slaves_of(sites: list[SiteId]) -> list[SiteId]:
    """All sites except the coordinator (site 1)."""
    return [site for site in sites if site != COORDINATOR]


def no_vote_combinations(voters: list[SiteId]) -> list[dict[SiteId, str]]:
    """Every full vote vector over ``voters`` containing at least one no.

    The paper's property 4 (slide 23) — the coordinator "waits for a
    response from each one of them" — means a vote collector reads the
    *complete* vote vector before moving, even when aborting.  That is
    what makes the protocols synchronous within one state transition
    (slide 24).  Modelling it in a flat FSA needs one abort transition
    per vote vector with at least one no: ``2**len(voters) - 1``
    transitions.  Builders therefore accept an ``eager_abort`` flag for
    the practical abort-on-first-no variant, which uses one transition
    per dissenter but lets a decided site lead a lagging one by two
    transitions.

    Returns:
        All mappings ``voter -> "yes" | "no"`` with at least one no,
        in a deterministic order.
    """
    combinations: list[dict[SiteId, str]] = []
    for mask in range(1, 2 ** len(voters)):
        vector = {
            voter: ("no" if mask & (1 << position) else "yes")
            for position, voter in enumerate(voters)
        }
        combinations.append(vector)
    return combinations
