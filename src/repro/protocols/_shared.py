"""Shared helpers for the protocol builders."""

from __future__ import annotations

from typing import Iterable

from repro.errors import InstantiationError
from repro.fsa.automaton import SiteAutomaton, Transition
from repro.fsa.messages import Msg
from repro.types import SiteId, Vote

#: Site id of the coordinator in every central-site protocol (the paper
#: numbers it site 1).
COORDINATOR: SiteId = SiteId(1)


def check_ro_sites(
    name: str, slaves: list[SiteId], ro_sites: Iterable[SiteId]
) -> tuple[list[SiteId], list[SiteId]]:
    """Split ``slaves`` into (voters, read_only) per ``ro_sites``.

    The read-only one-phase exit only makes sense for slaves: the
    coordinator drives the protocol and always votes.  At least one
    voting slave must remain so the multi-site commit (and its
    termination protocol) still has participants.

    Raises:
        InstantiationError: On a read-only site that is not a slave, or
            when no voting slave would remain.
    """
    read_only = sorted(set(SiteId(site) for site in ro_sites))
    for site in read_only:
        if site not in slaves:
            raise InstantiationError(
                f"{name}: read-only site {site} is not a slave "
                f"(slaves are {slaves})"
            )
    voters = [site for site in slaves if site not in read_only]
    if not voters:
        raise InstantiationError(
            f"{name}: at least one voting slave is required, "
            f"all of {slaves} are read-only"
        )
    return voters, read_only


def read_only_slave_automaton(site: SiteId) -> SiteAutomaton:
    """The one-phase FSA of a read-only slave: q -> r.

    On receiving the transaction the site reports ``ro`` ("nothing to
    commit here") and exits immediately — no wait state, no phase-2/3
    messages, and (in the runtime) no forced DT-log writes.  The
    ``r`` state is terminal but carries no outcome; either global
    decision is acceptable to a site with no updates at stake.
    """
    return SiteAutomaton(
        site=site,
        role="read-only slave",
        initial="q",
        commit_states=[],
        abort_states=[],
        read_only_states=["r"],
        transitions=[
            Transition(
                source="q",
                target="r",
                reads=frozenset({Msg("xact", COORDINATOR, site)}),
                writes=(Msg("ro", site, COORDINATOR),),
                vote=Vote.READ_ONLY,
            ),
        ],
    )


def check_site_count(name: str, n_sites: int, minimum: int = 2) -> list[SiteId]:
    """Validate the site count and return the site id list ``[1..n]``.

    Raises:
        InstantiationError: If ``n_sites`` is below ``minimum``.
    """
    if n_sites < minimum:
        raise InstantiationError(
            f"{name} needs at least {minimum} sites, got {n_sites}"
        )
    return [SiteId(i) for i in range(1, n_sites + 1)]


def slaves_of(sites: list[SiteId]) -> list[SiteId]:
    """All sites except the coordinator (site 1)."""
    return [site for site in sites if site != COORDINATOR]


def no_vote_combinations(voters: list[SiteId]) -> list[dict[SiteId, str]]:
    """Every full vote vector over ``voters`` containing at least one no.

    The paper's property 4 (slide 23) — the coordinator "waits for a
    response from each one of them" — means a vote collector reads the
    *complete* vote vector before moving, even when aborting.  That is
    what makes the protocols synchronous within one state transition
    (slide 24).  Modelling it in a flat FSA needs one abort transition
    per vote vector with at least one no: ``2**len(voters) - 1``
    transitions.  Builders therefore accept an ``eager_abort`` flag for
    the practical abort-on-first-no variant, which uses one transition
    per dissenter but lets a decided site lead a lagging one by two
    transitions.

    Returns:
        All mappings ``voter -> "yes" | "no"`` with at least one no,
        in a deterministic order.
    """
    combinations: list[dict[SiteId, str]] = []
    for mask in range(1, 2 ** len(voters)):
        vector = {
            voter: ("no" if mask & (1 << position) else "yes")
            for position, voter in enumerate(voters)
        }
        combinations.append(vector)
    return combinations
