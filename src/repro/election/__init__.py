"""Distributed election algorithms for backup-coordinator selection.

Slide 38: "Any distributed election mechanism can be used to choose the
backup coordinator."  This package provides two classic mechanisms as
runnable message-passing algorithms on the simulated network:

* :mod:`~repro.election.bully` — Garcia-Molina's bully algorithm: the
  highest operational id wins;
* :mod:`~repro.election.ring` — a ring election: candidacies circulate
  around a logical ring and the highest collected id wins.

Both converge to a deterministic winner among the operational sites,
which is why the termination protocol's default "strategy function"
(:func:`repro.runtime.termination.lowest_id_election`, or the
:func:`bully_strategy` / :func:`ring_strategy` equivalents below) can
stand in for a full message exchange without changing outcomes.
"""

from repro.election.bully import BullyNode, bully_strategy, run_bully_election
from repro.election.ring import RingNode, ring_strategy, run_ring_election

__all__ = [
    "BullyNode",
    "RingNode",
    "bully_strategy",
    "ring_strategy",
    "run_bully_election",
    "run_ring_election",
]
