"""A ring election algorithm (Chang & Roberts style, candidacy list).

Nodes form a logical ring in id order.  The initiator sends an
``ELECTION`` message carrying a candidate list to its successor; each
operational node appends its own id and forwards.  When the message
returns to the initiator, the highest collected id is the winner, and a
``ELECTED`` announcement circulates once more.  Crashed nodes are
skipped by forwarding to the next operational successor (the reliable
failure detector keeps each node's ring view current).
"""

from __future__ import annotations

import dataclasses
from typing import Iterable, Optional

from repro.net.message import Envelope
from repro.net.network import Network
from repro.sim.process import Process
from repro.sim.simulator import Simulator
from repro.types import SiteId


@dataclasses.dataclass(frozen=True)
class ElectionToken:
    """The circulating candidacy list.

    Attributes:
        initiator: Node that started the election.
        candidates: Ids collected so far, in visit order.
    """

    initiator: SiteId
    candidates: tuple[SiteId, ...]


@dataclasses.dataclass(frozen=True)
class ElectedToken:
    """The circulating victory announcement."""

    initiator: SiteId
    winner: SiteId


class RingNode(Process):
    """One participant in a ring election.

    Args:
        sim: The simulator.
        network: The shared network; the node attaches itself.
        node_id: This node's id.
        peers: Every participant id, including this node (defines the
            ring order).
    """

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        node_id: SiteId,
        peers: Iterable[SiteId],
    ) -> None:
        super().__init__(sim, name=f"ring-{node_id}")
        self.node_id = node_id
        self.network = network
        self.peers = sorted(peers)
        self.coordinator: Optional[SiteId] = None
        self.known_failed: set[SiteId] = set()
        network.attach(node_id, self)
        network.add_failure_listener(node_id, self._peer_failed)

    # ------------------------------------------------------------------
    # Ring plumbing
    # ------------------------------------------------------------------

    def successor(self) -> SiteId:
        """The next operational node clockwise from this one.

        Falls back to this node itself when it believes it is the only
        survivor.
        """
        n = len(self.peers)
        start = self.peers.index(self.node_id)
        for step in range(1, n + 1):
            candidate = self.peers[(start + step) % n]
            if candidate == self.node_id or candidate not in self.known_failed:
                return candidate
        return self.node_id  # pragma: no cover - loop always returns

    def _forward(self, payload: object) -> None:
        nxt = self.successor()
        if nxt == self.node_id:
            # Sole survivor: the election degenerates immediately.
            if isinstance(payload, ElectionToken):
                self.coordinator = self.node_id
                self.trace(
                    "ring.sole_survivor", "won by default", site=self.node_id
                )
            return
        self.network.send(self.node_id, nxt, payload)

    # ------------------------------------------------------------------
    # Protocol
    # ------------------------------------------------------------------

    def start_election(self) -> None:
        """Begin circulating a candidacy token."""
        if not self.alive:
            return
        self.trace("ring.start", "initiating election", site=self.node_id)
        self._forward(ElectionToken(self.node_id, (self.node_id,)))

    def deliver(self, envelope: Envelope) -> None:
        """Network sink."""
        if not self.alive:
            return
        payload = envelope.payload
        if isinstance(payload, ElectionToken):
            if payload.initiator == self.node_id:
                winner = max(payload.candidates)
                self.coordinator = winner
                self.trace(
                    "ring.complete",
                    f"token returned; winner {winner}",
                    site=self.node_id,
                )
                self._forward(ElectedToken(self.node_id, winner))
            else:
                token = ElectionToken(
                    payload.initiator, payload.candidates + (self.node_id,)
                )
                self._forward(token)
        elif isinstance(payload, ElectedToken):
            if payload.initiator == self.node_id:
                return  # The announcement completed the ring.
            self.coordinator = payload.winner
            self.trace(
                "ring.accept",
                f"accepted coordinator {payload.winner}",
                site=self.node_id,
            )
            self._forward(payload)

    def _peer_failed(self, failed: SiteId) -> None:
        self.known_failed.add(failed)
        if self.alive and failed == self.coordinator:
            self.coordinator = None
            self.start_election()


def run_ring_election(
    node_ids: Iterable[SiteId],
    crashed: Iterable[SiteId] = (),
    initiator: Optional[SiteId] = None,
    seed: int = 0,
) -> tuple[Optional[SiteId], dict[SiteId, Optional[SiteId]]]:
    """Run one standalone ring election to convergence.

    Args mirror :func:`repro.election.bully.run_bully_election`.

    Returns:
        ``(winner, view)`` with the converged coordinator and each
        node's accepted coordinator.
    """
    sim = Simulator(seed=seed)
    network = Network(sim)
    ids = sorted(node_ids)
    down = set(crashed)
    nodes = {i: RingNode(sim, network, i, ids) for i in ids}
    for i in down:
        nodes[i].crash()
        network.crash(i)
    # Give survivors a current ring view before the token circulates
    # (the detector would deliver these notifications anyway; doing it
    # up front keeps the standalone runner independent of timing).
    for node in nodes.values():
        node.known_failed |= down
    operational = [i for i in ids if i not in down]
    if not operational:
        return None, {i: None for i in ids}
    if initiator is None:
        initiator = min(operational)
    sim.schedule(0.0, nodes[initiator].start_election, label="start election")
    sim.run(until=1000.0)
    view = {i: nodes[i].coordinator for i in ids}
    return max(operational), view


def ring_strategy(candidates: Iterable[SiteId]) -> SiteId:
    """The ring algorithm's deterministic outcome: the highest id."""
    return max(candidates)
