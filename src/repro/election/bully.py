"""The bully election algorithm (Garcia-Molina, 1982).

When a node starts an election it challenges every higher-id node with
an ``ELECTION`` message.  A higher node that is alive answers ``OK``
(bullying the challenger out) and starts its own election.  A node that
hears no ``OK`` within a timeout declares itself coordinator and
broadcasts ``COORDINATOR``.  The highest operational id always wins.

Run standalone via :func:`run_bully_election`; the equivalent
deterministic strategy for the termination protocol is
:func:`bully_strategy`.
"""

from __future__ import annotations

import dataclasses
from typing import Iterable, Optional

from repro.net.message import Envelope
from repro.net.network import Network
from repro.sim.process import Process
from repro.sim.simulator import Simulator
from repro.types import SiteId


@dataclasses.dataclass(frozen=True)
class Election:
    """Challenge from a lower-id node."""


@dataclasses.dataclass(frozen=True)
class Ok:
    """A higher-id node's answer: 'I am alive, stand down'."""


@dataclasses.dataclass(frozen=True)
class Coordinator:
    """Victory announcement from the new coordinator."""

    winner: SiteId


class BullyNode(Process):
    """One participant in a bully election.

    Args:
        sim: The simulator.
        network: The shared network; the node attaches itself.
        node_id: This node's id (higher ids win).
        peers: Every participant id, including this node.
        answer_timeout: How long to wait for an ``OK`` before declaring
            victory; must exceed one round trip.
    """

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        node_id: SiteId,
        peers: Iterable[SiteId],
        answer_timeout: float = 3.0,
    ) -> None:
        super().__init__(sim, name=f"bully-{node_id}")
        self.node_id = node_id
        self.network = network
        self.peers = sorted(peers)
        self.answer_timeout = answer_timeout
        self.coordinator: Optional[SiteId] = None
        self.elections_started = 0
        self._awaiting_ok = False
        network.attach(node_id, self)
        network.add_failure_listener(node_id, self._peer_failed)

    # ------------------------------------------------------------------
    # Protocol
    # ------------------------------------------------------------------

    def start_election(self) -> None:
        """Challenge all higher-id peers; self-elect if none answers."""
        if not self.alive:
            return
        self.elections_started += 1
        higher = [p for p in self.peers if p > self.node_id]
        self.trace(
            "bully.start",
            f"challenging {higher or 'nobody'}",
            site=self.node_id,
        )
        if not higher:
            self._declare_victory()
            return
        self._awaiting_ok = True
        for peer in higher:
            self.network.send(self.node_id, peer, Election())
        self.set_timer("bully.answer", self.answer_timeout, self._answer_timeout)

    def _answer_timeout(self) -> None:
        if self._awaiting_ok:
            self._awaiting_ok = False
            self._declare_victory()

    def _declare_victory(self) -> None:
        self.coordinator = self.node_id
        self.trace("bully.win", "declared self coordinator", site=self.node_id)
        for peer in self.peers:
            if peer != self.node_id and self.network.is_up(peer):
                self.network.send(self.node_id, peer, Coordinator(self.node_id))

    def deliver(self, envelope: Envelope) -> None:
        """Network sink."""
        if not self.alive:
            return
        payload = envelope.payload
        if isinstance(payload, Election):
            # A lower node challenged us: bully it out and run our own.
            self.network.send(self.node_id, envelope.src, Ok())
            if not self._awaiting_ok and self.coordinator != self.node_id:
                self.start_election()
        elif isinstance(payload, Ok):
            # A higher node lives; await its Coordinator announcement.
            self._awaiting_ok = False
            self.cancel_timer("bully.answer")
            self.set_timer(
                "bully.await_winner",
                self.answer_timeout * 3,
                self.start_election,
            )
        elif isinstance(payload, Coordinator):
            self.coordinator = payload.winner
            self._awaiting_ok = False
            self.cancel_timer("bully.answer")
            self.cancel_timer("bully.await_winner")
            self.trace(
                "bully.accept",
                f"accepted coordinator {payload.winner}",
                site=self.node_id,
            )

    def _peer_failed(self, failed: SiteId) -> None:
        """Re-elect if the current coordinator died."""
        if self.alive and failed == self.coordinator:
            self.coordinator = None
            self.start_election()


def run_bully_election(
    node_ids: Iterable[SiteId],
    crashed: Iterable[SiteId] = (),
    initiator: Optional[SiteId] = None,
    seed: int = 0,
) -> tuple[Optional[SiteId], dict[SiteId, Optional[SiteId]]]:
    """Run one standalone bully election to convergence.

    Args:
        node_ids: All participant ids.
        crashed: Ids that are down before the election starts.
        initiator: The node that notices the failure and starts the
            election (default: the lowest operational id).
        seed: Simulator seed.

    Returns:
        ``(winner, view)`` where ``view`` maps each node to the
        coordinator it ended up accepting (``None`` for crashed nodes).
    """
    sim = Simulator(seed=seed)
    network = Network(sim)
    ids = sorted(node_ids)
    down = set(crashed)
    nodes = {i: BullyNode(sim, network, i, ids) for i in ids}
    for i in down:
        nodes[i].crash()
        network.crash(i)
    operational = [i for i in ids if i not in down]
    if not operational:
        return None, {i: None for i in ids}
    if initiator is None:
        initiator = min(operational)
    sim.schedule(0.0, nodes[initiator].start_election, label="start election")
    sim.run(until=1000.0)
    view = {i: nodes[i].coordinator for i in ids}
    return max(operational), view


def bully_strategy(candidates: Iterable[SiteId]) -> SiteId:
    """The bully algorithm's deterministic outcome: the highest id.

    Drop-in :class:`~repro.runtime.termination.ElectionStrategy` for the
    termination protocol.
    """
    return max(candidates)
