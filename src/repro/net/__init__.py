"""Simulated network substrate.

Implements exactly the network the paper assumes ("Design assumptions"):

* point-to-point communication that never fails — every message sent to
  an operational site is eventually delivered, uncorrupted and exactly
  once;
* reliable failure detection — when a site crashes, the network detects
  it and reports it to every operational site after a bounded detection
  delay, and it never falsely suspects a live site.

Messages addressed to a crashed site are dropped (a crashed site cannot
read its tape); the recovery protocol in :mod:`repro.runtime.recovery`
is what re-synchronizes a recovering site, mirroring the paper's
separation between termination and recovery protocols.
"""

from repro.net.latency import (
    ExponentialLatency,
    FixedLatency,
    LatencyModel,
    PerLinkLatency,
    UniformLatency,
    lan_profile,
)
from repro.net.message import Envelope, Payload
from repro.net.network import Network

__all__ = [
    "Envelope",
    "ExponentialLatency",
    "FixedLatency",
    "LatencyModel",
    "Network",
    "Payload",
    "PerLinkLatency",
    "UniformLatency",
    "lan_profile",
]
