"""The simulated point-to-point network with reliable failure detection.

See the package docstring of :mod:`repro.net` for the semantics, which
match the paper's assumptions precisely.

Trace categories emitted here (see ``docs/OBSERVABILITY.md``):

* ``net.send`` — a message left its source; ``data`` carries the
  network-unique ``msg_id`` plus ``src``/``dst``.
* ``net.deliver`` / ``net.drop`` / ``net.partition_drop`` — the
  message's terminal event, stamped with the same ``msg_id`` (and
  ``sent_at``) so send/terminal pairs form causal spans
  (:class:`repro.sim.spans.SpanIndex`).
* ``site.crash`` / ``site.restart`` — liveness transitions.
* ``net.partition`` / ``net.heal`` — partition lifecycle.
* ``net.stale_detect`` — a scheduled failure report found its subject
  live again (fast restart, or a partition healed) and was suppressed.
"""

from __future__ import annotations

from typing import Callable, Optional, Protocol

from repro.errors import UnknownSiteError
from repro.net.latency import FixedLatency, LatencyModel
from repro.net.message import Envelope, Payload
from repro.sim.simulator import Simulator
from repro.types import SimTime, SiteId


class MessageSink(Protocol):
    """Anything that can receive delivered envelopes."""

    def deliver(self, envelope: Envelope) -> None:
        """Handle one delivered envelope."""
        ...  # pragma: no cover - protocol definition


#: Callback type for failure/recovery notifications: ``callback(site)``.
FailureListener = Callable[[SiteId], None]


class FaultInjector(Protocol):
    """A fault decision point consulted at every message delivery.

    The schedule explorer (:mod:`repro.explore`) implements this to turn
    "should a crash or partition happen right here?" into an enumerable
    choice.  The injector runs *before* the delivery's partition/liveness
    checks, so a crash it injects drops the very message that triggered
    it — the tightest crash-at-delivery race expressible in the model.
    """

    def before_deliver(self, network: "Network", envelope: Envelope) -> None:
        """Optionally mutate ``network`` (crash/partition) pre-delivery."""
        ...  # pragma: no cover - protocol definition


class Network:
    """Reliable point-to-point network connecting simulated sites.

    Args:
        sim: The owning simulator.
        latency: Transit-delay model (defaults to one fixed time unit).
        detection_delay: How long after a crash the network reports the
            failure to each operational site.  The paper only requires
            the report to be reliable, not instantaneous.

    Semantics:
        * A message sent while the destination is up at delivery time is
          delivered exactly once; delivery order between two sites can
          interleave arbitrarily under randomized latency.
        * A message whose destination is down at delivery time is
          dropped and recorded in the trace (``net.drop``).
        * When a site crashes, every *other* operational site's failure
          listeners fire after ``detection_delay``.  Listeners attached
          later are not retroactively notified.
        * Recovery notifications (``recovery_listeners``) mirror failure
          notifications, supporting the paper's recovery protocols.
    """

    def __init__(
        self,
        sim: Simulator,
        latency: Optional[LatencyModel] = None,
        detection_delay: SimTime = 1.0,
    ) -> None:
        self.sim = sim
        self.latency = latency if latency is not None else FixedLatency(1.0)
        self.detection_delay = detection_delay
        self._sinks: dict[SiteId, MessageSink] = {}
        self._up: dict[SiteId, bool] = {}
        self._failure_listeners: dict[SiteId, list[FailureListener]] = {}
        self._recovery_listeners: dict[SiteId, list[FailureListener]] = {}
        self._next_msg_id = 0
        self._partition: Optional[list[frozenset[SiteId]]] = None
        self.messages_sent = 0
        self.messages_delivered = 0
        self.messages_dropped = 0
        #: Optional fault decision point, consulted at every delivery
        #: (see :class:`FaultInjector`).  ``None`` = no injected faults.
        self.fault_injector: Optional[FaultInjector] = None

    # ------------------------------------------------------------------
    # Topology
    # ------------------------------------------------------------------

    def attach(self, site: SiteId, sink: MessageSink) -> None:
        """Connect a site's message sink to the network (initially up)."""
        self._sinks[site] = sink
        self._up[site] = True
        self._failure_listeners.setdefault(site, [])
        self._recovery_listeners.setdefault(site, [])

    @property
    def sites(self) -> list[SiteId]:
        """All attached site ids, sorted."""
        return sorted(self._sinks)

    def is_up(self, site: SiteId) -> bool:
        """Whether the site is attached and currently operational."""
        return self._up.get(site, False)

    def operational_sites(self) -> list[SiteId]:
        """Sorted ids of all currently operational sites."""
        return sorted(site for site, up in self._up.items() if up)

    def _require_site(self, site: SiteId) -> None:
        if site not in self._sinks:
            raise UnknownSiteError(f"site {site} is not attached to the network")

    # ------------------------------------------------------------------
    # Messaging
    # ------------------------------------------------------------------

    def send(self, src: SiteId, dst: SiteId, payload: Payload) -> Envelope:
        """Send ``payload`` from ``src`` to ``dst``.

        Returns the scheduled envelope.  Sending never fails from the
        sender's perspective (the network is reliable); whether the
        message is ultimately delivered depends on the destination being
        up at delivery time.
        """
        self._require_site(src)
        self._require_site(dst)
        rng = self.sim.streams.stream("net.latency")
        delay = self.latency.delay(src, dst, rng)
        envelope = Envelope(
            msg_id=self._next_msg_id,
            src=src,
            dst=dst,
            payload=payload,
            sent_at=self.sim.now,
            deliver_at=self.sim.now + delay,
        )
        self._next_msg_id += 1
        self.messages_sent += 1
        self.sim.trace.record(
            self.sim.now,
            "net.send",
            f"{envelope}",
            site=src,
            msg_id=envelope.msg_id,
            src=src,
            dst=dst,
        )
        self.sim.schedule(delay, lambda: self._deliver(envelope), label=f"deliver {envelope.msg_id}")
        return envelope

    def broadcast(
        self, src: SiteId, dsts: list[SiteId], payload: Payload
    ) -> list[Envelope]:
        """Send the same payload from ``src`` to each destination in order."""
        return [self.send(src, dst, payload) for dst in dsts]

    def _deliver(self, envelope: Envelope) -> None:
        if self.fault_injector is not None:
            self.fault_injector.before_deliver(self, envelope)
        if self._partition is not None and not self._same_side(
            envelope.src, envelope.dst
        ):
            self.messages_dropped += 1
            self.sim.trace.record(
                self.sim.now,
                "net.partition_drop",
                f"{envelope} (cross-partition)",
                site=envelope.dst,
                msg_id=envelope.msg_id,
                src=envelope.src,
                dst=envelope.dst,
                sent_at=envelope.sent_at,
            )
            return
        if not self._up.get(envelope.dst, False):
            self.messages_dropped += 1
            self.sim.trace.record(
                self.sim.now,
                "net.drop",
                f"{envelope} (destination down)",
                site=envelope.dst,
                msg_id=envelope.msg_id,
                src=envelope.src,
                dst=envelope.dst,
                sent_at=envelope.sent_at,
            )
            return
        self.messages_delivered += 1
        self.sim.trace.record(
            self.sim.now,
            "net.deliver",
            f"{envelope}",
            site=envelope.dst,
            msg_id=envelope.msg_id,
            src=envelope.src,
            dst=envelope.dst,
            sent_at=envelope.sent_at,
        )
        self._sinks[envelope.dst].deliver(envelope)

    # ------------------------------------------------------------------
    # Failure detection
    # ------------------------------------------------------------------

    def add_failure_listener(self, site: SiteId, listener: FailureListener) -> None:
        """Register ``listener`` to hear about failures of *other* sites.

        The listener fires only while ``site`` itself is operational —
        a crashed site cannot observe anything.
        """
        self._require_site(site)
        self._failure_listeners[site].append(listener)

    def add_recovery_listener(self, site: SiteId, listener: FailureListener) -> None:
        """Register ``listener`` to hear about recoveries of other sites."""
        self._require_site(site)
        self._recovery_listeners[site].append(listener)

    def crash(self, site: SiteId) -> None:
        """Mark ``site`` as crashed and schedule failure notifications.

        Crashing an already-down site is a no-op.  Notifications go to
        every site operational *at notification time*, matching the
        paper's requirement that failures are reported to operational
        sites (a site that crashes in the interim misses the report but
        will learn what it needs from its own recovery protocol).

        A site that restarts *within* the detection window is live
        again at notification time, so the report is stale: it is
        suppressed (recorded as ``net.stale_detect``) rather than
        telling every peer a running site is dead.
        """
        self._require_site(site)
        if not self._up[site]:
            return
        self._up[site] = False
        self.sim.trace.record(self.sim.now, "site.crash", f"site {site} crashed", site=site)

        def notify() -> None:
            if self._up.get(site, False):
                self.sim.trace.record(
                    self.sim.now,
                    "net.stale_detect",
                    f"suppressed stale crash report for site {site} "
                    "(restarted within the detection window)",
                    site=site,
                )
                return
            for other in self.sites:
                if other == site or not self._up.get(other, False):
                    continue
                for listener in list(self._failure_listeners[other]):
                    listener(site)

        self.sim.schedule(
            self.detection_delay, notify, label=f"detect crash of {site}"
        )

    def restart(self, site: SiteId) -> None:
        """Mark a crashed ``site`` as operational again and notify peers."""
        self._require_site(site)
        if self._up[site]:
            return
        self._up[site] = True
        self.sim.trace.record(
            self.sim.now, "site.restart", f"site {site} restarted", site=site
        )

        def notify() -> None:
            for other in self.sites:
                if other == site or not self._up.get(other, False):
                    continue
                for listener in list(self._recovery_listeners[other]):
                    listener(site)

        self.sim.schedule(
            self.detection_delay, notify, label=f"detect restart of {site}"
        )

    # ------------------------------------------------------------------
    # Partitions — DELIBERATELY outside the paper's model
    # ------------------------------------------------------------------

    @staticmethod
    def _same_side_in(
        groups: list[frozenset[SiteId]], a: SiteId, b: SiteId
    ) -> bool:
        if a == b:
            return True
        for group in groups:
            if a in group:
                return b in group
        return False  # Unlisted sites are unreachable from everyone.

    def _same_side(self, a: SiteId, b: SiteId) -> bool:
        assert self._partition is not None
        return self._same_side_in(self._partition, a, b)

    def partition(self, groups: list[set[SiteId]]) -> None:
        """Split the network, violating the paper's assumptions on purpose.

        The paper assumes the network "never fails" and reliably reports
        *site* failures.  A partition breaks both at once: cross-group
        messages are dropped, and — modelling a detector that cannot
        tell a dead site from an unreachable one — every site receives
        failure notifications for all sites outside its group.  This is
        the substrate of experiment A2, which exhibits the well-known
        3PC split-decision under partition and thereby shows the
        reliable-network assumption is load-bearing, not cosmetic.
        """
        sides = [frozenset(group) for group in groups]
        self._partition = sides
        self.sim.trace.record(
            self.sim.now,
            "net.partition",
            f"network partitioned into {[sorted(g) for g in groups]}",
        )

        def suspect() -> None:
            if self._partition != sides:
                # Healed (or re-partitioned) within the detection
                # window — the suspicion sweep would report sites that
                # are reachable again, so suppress it.
                self.sim.trace.record(
                    self.sim.now,
                    "net.stale_detect",
                    "suppressed stale partition suspicion "
                    "(partition changed within the detection window)",
                )
                return
            for observer in self.sites:
                if not self._up.get(observer, False):
                    continue
                for other in self.sites:
                    if other == observer or self._same_side_in(
                        sides, observer, other
                    ):
                        continue
                    if not self._up.get(other, False):
                        # Actually down: its crash was (or will be)
                        # reported by crash() itself; suspecting it
                        # again would double the notification.
                        continue
                    for listener in list(self._failure_listeners[observer]):
                        listener(other)

        self.sim.schedule(
            self.detection_delay, suspect, label="partition suspicion"
        )

    def heal(self) -> None:
        """Undo :meth:`partition`; in-flight cross-group mail was lost.

        Mirrors the partition suspicion sweep with a recovery sweep:
        after ``detection_delay``, every operational site's recovery
        listeners fire for each formerly cross-side site that is
        operational again — without this, sites suspected dead during
        the partition would stay suspected forever.  Sites that really
        crashed stay suspected until their own :meth:`restart`.
        Healing when no partition is active is a no-op.
        """
        if self._partition is None:
            return
        sides = self._partition
        self._partition = None
        self.sim.trace.record(self.sim.now, "net.heal", "partition healed")

        def recover() -> None:
            for observer in self.sites:
                if not self._up.get(observer, False):
                    continue
                for other in self.sites:
                    if other == observer or self._same_side_in(
                        sides, observer, other
                    ):
                        continue
                    if not self._up.get(other, False):
                        continue  # Really dead — stays suspected.
                    if self._partition is not None and not self._same_side(
                        observer, other
                    ):
                        continue  # Split again before the sweep fired.
                    for listener in list(self._recovery_listeners[observer]):
                        listener(other)

        self.sim.schedule(
            self.detection_delay, recover, label="partition recovery"
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        up = self.operational_sites()
        return f"Network(sites={self.sites}, up={up}, sent={self.messages_sent})"
