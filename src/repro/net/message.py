"""Message envelopes carried by the simulated network.

The protocol layers exchange small structured payloads; the network
wraps them in an :class:`Envelope` carrying addressing and timing
metadata.  Payloads are intentionally untyped at this layer (any
hashable-ish object); the commit engine uses :class:`ProtocolMessage`
from :mod:`repro.fsa.messages`, the election and database layers use
their own dataclasses.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Optional

from repro.types import SimTime, SiteId

#: Anything the network will carry.  Kept as an alias for readability.
Payload = Any


@dataclasses.dataclass(frozen=True)
class Envelope:
    """A payload in flight between two sites.

    Attributes:
        msg_id: Network-unique message id (assigned at send time).
        src: Sending site.
        dst: Receiving site.
        payload: The application-level message object.
        sent_at: Virtual time the send was issued.
        deliver_at: Virtual time the network will deliver it (set when
            the delivery event is scheduled; ``None`` for dropped mail).
    """

    msg_id: int
    src: SiteId
    dst: SiteId
    payload: Payload
    sent_at: SimTime
    deliver_at: Optional[SimTime] = None

    @property
    def latency(self) -> Optional[SimTime]:
        """Transit time, or ``None`` if the message was never delivered."""
        if self.deliver_at is None:
            return None
        return self.deliver_at - self.sent_at

    def __str__(self) -> str:
        return f"#{self.msg_id} {self.src}->{self.dst}: {self.payload}"
