"""Latency models for the simulated network.

A latency model maps a (source, destination) pair to a transit delay.
Models draw from a dedicated random stream so latency noise is
reproducible and independent of other random consumers.
"""

from __future__ import annotations

import random
from typing import Protocol

from repro.types import SimTime, SiteId


class LatencyModel(Protocol):
    """Anything that can produce a message transit delay."""

    def delay(self, src: SiteId, dst: SiteId, rng: random.Random) -> SimTime:
        """Return the transit delay for one message from src to dst."""
        ...  # pragma: no cover - protocol definition


class FixedLatency:
    """Every message takes exactly ``value`` time units.

    The default model: with a fixed latency, protocol executions are
    fully synchronous in the paper's sense and easiest to reason about.

    The ``rng`` argument of :meth:`delay` is ignored *by design*: a
    fixed model draws nothing, and — because random streams are named,
    not positional (see :mod:`repro.sim.rng`) — not drawing does not
    shift any other consumer's stream.  Swapping ``FixedLatency`` for a
    randomized model therefore perturbs only message timing, never the
    rest of the run's randomness.
    """

    def __init__(self, value: SimTime = 1.0) -> None:
        if value < 0:
            raise ValueError(f"latency must be nonnegative, got {value}")
        self.value = value

    def delay(self, src: SiteId, dst: SiteId, rng: random.Random) -> SimTime:
        return self.value

    def __repr__(self) -> str:
        return f"FixedLatency({self.value})"


class UniformLatency:
    """Transit delays drawn uniformly from ``[low, high]``.

    Randomized latency exercises the asynchrony the paper's model
    permits: "state transitions at one site are asynchronous with
    respect to transitions at other sites".
    """

    def __init__(self, low: SimTime, high: SimTime) -> None:
        if low < 0 or high < low:
            raise ValueError(f"need 0 <= low <= high, got [{low}, {high}]")
        self.low = low
        self.high = high

    def delay(self, src: SiteId, dst: SiteId, rng: random.Random) -> SimTime:
        return rng.uniform(self.low, self.high)

    def __repr__(self) -> str:
        return f"UniformLatency({self.low}, {self.high})"


class ExponentialLatency:
    """A shifted exponential: ``floor`` plus an exponential tail.

    The empirical shape of real datacenter/LAN message delays: a hard
    lower bound (propagation + kernel + serialization, the ``floor``)
    plus a long right tail (queueing), giving p99 ≫ p50.  Use this to
    make simulator configs mirror delay distributions *measured* on the
    live cluster runtime (``repro cluster --bench`` reports wall-clock
    p50/p99; see ``docs/LIVE.md``).

    Args:
        mean: Mean of the exponential tail (excess over the floor),
            in simulated time units; must be positive.
        floor: Minimum transit delay; must be nonnegative.
    """

    def __init__(self, mean: SimTime, floor: SimTime = 0.0) -> None:
        if mean <= 0:
            raise ValueError(f"mean must be positive, got {mean}")
        if floor < 0:
            raise ValueError(f"floor must be nonnegative, got {floor}")
        self.mean = mean
        self.floor = floor

    def delay(self, src: SiteId, dst: SiteId, rng: random.Random) -> SimTime:
        return self.floor + rng.expovariate(1.0 / self.mean)

    def __repr__(self) -> str:
        return f"ExponentialLatency(mean={self.mean}, floor={self.floor})"


def lan_profile(scale: SimTime = 1.0) -> ExponentialLatency:
    """An :class:`ExponentialLatency` shaped like loopback/LAN TCP.

    Calibrated against the live runtime's loopback measurements: the
    floor dominates (connection reuse, no propagation to speak of) and
    the tail is roughly half the floor.  At ``scale=1.0`` one simulated
    time unit corresponds to one *median* LAN hop, so simulated phase
    counts read directly as round-trip counts; pass ``scale`` in
    milliseconds (e.g. ``0.12``) to work in wall-clock units instead.
    """
    return ExponentialLatency(mean=0.5 * scale, floor=0.75 * scale)


class PerLinkLatency:
    """Explicit per-link delays with a default for unlisted links.

    Useful for modelling a geographically skewed deployment (e.g. one
    distant site) when studying how stragglers stretch commit latency.
    """

    def __init__(
        self,
        links: dict[tuple[SiteId, SiteId], SimTime],
        default: SimTime = 1.0,
    ) -> None:
        for pair, value in links.items():
            if value < 0:
                raise ValueError(f"latency for link {pair} must be nonnegative")
        if default < 0:
            raise ValueError("default latency must be nonnegative")
        self._links = dict(links)
        self._default = default

    def delay(self, src: SiteId, dst: SiteId, rng: random.Random) -> SimTime:
        return self._links.get((src, dst), self._default)

    def __repr__(self) -> str:
        return f"PerLinkLatency({len(self._links)} links, default={self._default})"
