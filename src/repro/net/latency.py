"""Latency models for the simulated network.

A latency model maps a (source, destination) pair to a transit delay.
Models draw from a dedicated random stream so latency noise is
reproducible and independent of other random consumers.
"""

from __future__ import annotations

import random
from typing import Protocol

from repro.types import SimTime, SiteId


class LatencyModel(Protocol):
    """Anything that can produce a message transit delay."""

    def delay(self, src: SiteId, dst: SiteId, rng: random.Random) -> SimTime:
        """Return the transit delay for one message from src to dst."""
        ...  # pragma: no cover - protocol definition


class FixedLatency:
    """Every message takes exactly ``value`` time units.

    The default model: with a fixed latency, protocol executions are
    fully synchronous in the paper's sense and easiest to reason about.
    """

    def __init__(self, value: SimTime = 1.0) -> None:
        if value < 0:
            raise ValueError(f"latency must be nonnegative, got {value}")
        self.value = value

    def delay(self, src: SiteId, dst: SiteId, rng: random.Random) -> SimTime:
        return self.value

    def __repr__(self) -> str:
        return f"FixedLatency({self.value})"


class UniformLatency:
    """Transit delays drawn uniformly from ``[low, high]``.

    Randomized latency exercises the asynchrony the paper's model
    permits: "state transitions at one site are asynchronous with
    respect to transitions at other sites".
    """

    def __init__(self, low: SimTime, high: SimTime) -> None:
        if low < 0 or high < low:
            raise ValueError(f"need 0 <= low <= high, got [{low}, {high}]")
        self.low = low
        self.high = high

    def delay(self, src: SiteId, dst: SiteId, rng: random.Random) -> SimTime:
        return rng.uniform(self.low, self.high)

    def __repr__(self) -> str:
        return f"UniformLatency({self.low}, {self.high})"


class PerLinkLatency:
    """Explicit per-link delays with a default for unlisted links.

    Useful for modelling a geographically skewed deployment (e.g. one
    distant site) when studying how stragglers stretch commit latency.
    """

    def __init__(
        self,
        links: dict[tuple[SiteId, SiteId], SimTime],
        default: SimTime = 1.0,
    ) -> None:
        for pair, value in links.items():
            if value < 0:
                raise ValueError(f"latency for link {pair} must be nonnegative")
        if default < 0:
            raise ValueError("default latency must be nonnegative")
        self._links = dict(links)
        self._default = default

    def delay(self, src: SiteId, dst: SiteId, rng: random.Random) -> SimTime:
        return self._links.get((src, dst), self._default)

    def __repr__(self) -> str:
        return f"PerLinkLatency({len(self._links)} links, default={self._default})"
