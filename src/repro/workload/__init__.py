"""Workload and fault-schedule generators for the experiment harness."""

from repro.workload.crashes import (
    CrashAfterPayloads,
    CrashAt,
    CrashDuringTransition,
    CrashEvent,
)
from repro.workload.generator import TransactionSpec, WorkloadGenerator
from repro.workload.serialize import campaign_from_json, campaign_to_json

__all__ = [
    "CrashAfterPayloads",
    "CrashAt",
    "CrashDuringTransition",
    "CrashEvent",
    "TransactionSpec",
    "WorkloadGenerator",
    "campaign_from_json",
    "campaign_to_json",
]
