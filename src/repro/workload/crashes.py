"""Crash schedules for failure injection.

Two trigger flavours cover the failure modes the paper discusses:

* :class:`CrashAt` — the site fails at a virtual time, cleanly between
  transitions;
* :class:`CrashDuringTransition` — the site fails *inside* a state
  transition, having transmitted only a prefix of the transition's
  messages (slide 21: local transitions are not atomic under failure).

Either kind may schedule a later restart, which hands the site to the
recovery protocol.
"""

from __future__ import annotations

import dataclasses
from typing import Optional, Union

from repro.types import SimTime, SiteId


@dataclasses.dataclass(frozen=True)
class CrashAt:
    """Crash ``site`` at virtual time ``at``; optionally restart later.

    Attributes:
        site: The site to fail.
        at: Crash time.
        restart_at: Optional restart time (must be after ``at``).
    """

    site: SiteId
    at: SimTime
    restart_at: Optional[SimTime] = None

    def __post_init__(self) -> None:
        if self.restart_at is not None and self.restart_at <= self.at:
            raise ValueError(
                f"restart_at {self.restart_at} must come after crash at {self.at}"
            )


@dataclasses.dataclass(frozen=True)
class CrashDuringTransition:
    """Crash ``site`` mid-transition after a prefix of its writes.

    Attributes:
        site: The site to fail.
        transition_number: Which of the site's transition firings to
            interrupt (1-based).
        after_writes: How many of the transition's messages get out
            before the failure (0 = none).
        restart_at: Optional absolute restart time.
    """

    site: SiteId
    transition_number: int
    after_writes: int
    restart_at: Optional[SimTime] = None

    def __post_init__(self) -> None:
        if self.transition_number < 1:
            raise ValueError("transition_number is 1-based and must be >= 1")
        if self.after_writes < 0:
            raise ValueError("after_writes must be >= 0")


@dataclasses.dataclass(frozen=True)
class CrashAfterPayloads:
    """Crash ``site`` while it is transmitting control-plane payloads.

    Counts the site's termination/recovery payload sends (``MoveTo``,
    ``TermDecision``, state queries, ...) and fails the site just
    before the ``payload_number``-th send leaves, so a broadcast can be
    cut off after any prefix.  This is the injector behind the phase-1
    ablation (experiment A1): a backup coordinator that applies its
    decision locally and then dies mid-broadcast.

    Attributes:
        site: The site to fail.
        payload_number: Which control-plane send to interrupt
            (1-based; the send does not happen).
        restart_at: Optional absolute restart time.
    """

    site: SiteId
    payload_number: int
    restart_at: Optional[SimTime] = None

    def __post_init__(self) -> None:
        if self.payload_number < 1:
            raise ValueError("payload_number is 1-based and must be >= 1")


CrashEvent = Union[CrashAt, CrashDuringTransition, CrashAfterPayloads]
