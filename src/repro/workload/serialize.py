"""JSON (de)serialization of workloads and fault schedules.

A failure found by a randomized campaign is only useful if it can be
shipped in a bug report and replayed byte-for-byte.  This module
round-trips :class:`~repro.workload.generator.TransactionSpec`
configurations — votes plus crash schedules — through plain JSON.
"""

from __future__ import annotations

import json
from typing import Any

from repro.errors import ReproError
from repro.types import SiteId, TransactionId, Vote
from repro.workload.crashes import (
    CrashAfterPayloads,
    CrashAt,
    CrashDuringTransition,
    CrashEvent,
)
from repro.workload.generator import TransactionSpec

#: Schema version embedded in every document.
FORMAT_VERSION = 1


def crash_to_dict(event: CrashEvent) -> dict[str, Any]:
    """Encode one crash event as a JSON-compatible dict."""
    if isinstance(event, CrashAt):
        return {
            "type": "at",
            "site": event.site,
            "at": event.at,
            "restart_at": event.restart_at,
        }
    if isinstance(event, CrashDuringTransition):
        return {
            "type": "during_transition",
            "site": event.site,
            "transition_number": event.transition_number,
            "after_writes": event.after_writes,
            "restart_at": event.restart_at,
        }
    if isinstance(event, CrashAfterPayloads):
        return {
            "type": "after_payloads",
            "site": event.site,
            "payload_number": event.payload_number,
            "restart_at": event.restart_at,
        }
    raise ReproError(f"unknown crash event type {type(event).__name__}")


def crash_from_dict(data: dict[str, Any]) -> CrashEvent:
    """Decode one crash event.

    Raises:
        ReproError: On an unknown ``type`` tag.
    """
    kind = data.get("type")
    if kind == "at":
        return CrashAt(
            site=SiteId(data["site"]),
            at=float(data["at"]),
            restart_at=data.get("restart_at"),
        )
    if kind == "during_transition":
        return CrashDuringTransition(
            site=SiteId(data["site"]),
            transition_number=int(data["transition_number"]),
            after_writes=int(data["after_writes"]),
            restart_at=data.get("restart_at"),
        )
    if kind == "after_payloads":
        return CrashAfterPayloads(
            site=SiteId(data["site"]),
            payload_number=int(data["payload_number"]),
            restart_at=data.get("restart_at"),
        )
    raise ReproError(f"unknown crash event type {kind!r}")


def transaction_to_dict(txn: TransactionSpec) -> dict[str, Any]:
    """Encode one transaction configuration."""
    return {
        "txn_id": txn.txn_id,
        "seed": txn.seed,
        "votes": {str(site): vote.value for site, vote in txn.votes.items()},
        "crashes": [crash_to_dict(event) for event in txn.crashes],
    }


def transaction_from_dict(data: dict[str, Any]) -> TransactionSpec:
    """Decode one transaction configuration."""
    return TransactionSpec(
        txn_id=int(data["txn_id"]),
        seed=int(data["seed"]),
        votes={
            SiteId(int(site)): Vote(vote)
            for site, vote in data["votes"].items()
        },
        crashes=tuple(crash_from_dict(event) for event in data["crashes"]),
    )


def campaign_to_json(transactions: list[TransactionSpec]) -> str:
    """Encode a whole campaign as a JSON document."""
    return json.dumps(
        {
            "format_version": FORMAT_VERSION,
            "transactions": [transaction_to_dict(t) for t in transactions],
        },
        indent=2,
        sort_keys=True,
    )


def campaign_from_json(text: str) -> list[TransactionSpec]:
    """Decode a campaign document.

    Raises:
        ReproError: On a version mismatch or malformed document.
    """
    try:
        document = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ReproError(f"malformed campaign document: {exc}") from exc
    version = document.get("format_version")
    if version != FORMAT_VERSION:
        raise ReproError(
            f"unsupported campaign format version {version!r} "
            f"(expected {FORMAT_VERSION})"
        )
    return [transaction_from_dict(t) for t in document["transactions"]]
