"""Randomized transaction workloads for failure-injection campaigns.

A :class:`WorkloadGenerator` produces reproducible
:class:`TransactionSpec` configurations — per-site votes plus a crash
schedule — and can execute them through the runtime harness.  The
experiment Q1 sweeps and the property-based atomicity tests are built
on it.
"""

from __future__ import annotations

import dataclasses
import random
from typing import TYPE_CHECKING, Iterator, Optional

from repro.fsa.spec import ProtocolSpec
from repro.types import SiteId, Vote
from repro.workload.crashes import CrashAt, CrashDuringTransition, CrashEvent

if TYPE_CHECKING:  # pragma: no cover - break the workload<->runtime cycle
    from repro.runtime.decision import TerminationRule
    from repro.runtime.harness import RunResult


@dataclasses.dataclass(frozen=True)
class TransactionSpec:
    """One generated transaction configuration.

    Attributes:
        txn_id: Sequence number within the campaign.
        seed: Seed for the run's latency noise.
        votes: Per-site votes.
        crashes: The fault schedule.
    """

    txn_id: int
    seed: int
    votes: dict[SiteId, Vote]
    crashes: tuple[CrashEvent, ...]

    def describe(self) -> str:
        """One-line summary for logs and failure reports."""
        votes = ", ".join(f"{s}:{v.value}" for s, v in sorted(self.votes.items()))
        return f"txn {self.txn_id} votes[{votes}] crashes={list(self.crashes)}"


class WorkloadGenerator:
    """Generates and executes randomized transactions for one protocol.

    Args:
        spec: The protocol under test.
        seed: Campaign seed; two generators with equal arguments yield
            identical campaigns.
        p_no: Probability a site votes no.
        p_crash: Probability each site is given a crash event.
        crash_window: Crash times are drawn uniformly from
            ``[0, crash_window]`` virtual time.
        p_restart: Probability a crashed site gets a restart.
        restart_delay: Restarts happen this long after the crash.
        p_partial: Probability a crash is a mid-transition partial-send
            crash rather than a timed one.
        rule: Shared termination rule (built once when omitted).
    """

    def __init__(
        self,
        spec: ProtocolSpec,
        seed: int = 0,
        p_no: float = 0.1,
        p_crash: float = 0.3,
        crash_window: float = 8.0,
        p_restart: float = 0.5,
        restart_delay: float = 20.0,
        p_partial: float = 0.25,
        rule: Optional["TerminationRule"] = None,
    ) -> None:
        # Imported here (not at module level) to break the import cycle
        # between the workload and runtime packages.
        from repro.runtime.decision import TerminationRule

        self.spec = spec
        self.seed = seed
        self.p_no = p_no
        self.p_crash = p_crash
        self.crash_window = crash_window
        self.p_restart = p_restart
        self.restart_delay = restart_delay
        self.p_partial = p_partial
        self.rule = rule if rule is not None else TerminationRule(spec)

    def transactions(self, count: int) -> Iterator[TransactionSpec]:
        """Yield ``count`` reproducible transaction configurations."""
        rng = random.Random(self.seed)
        for txn_id in range(count):
            votes = {
                site: (Vote.NO if rng.random() < self.p_no else Vote.YES)
                for site in self.spec.sites
            }
            crashes: list[CrashEvent] = []
            for site in self.spec.sites:
                if rng.random() >= self.p_crash:
                    continue
                crash_time = rng.uniform(0.0, self.crash_window)
                restart_at = None
                if rng.random() < self.p_restart:
                    restart_at = crash_time + self.restart_delay
                if rng.random() < self.p_partial:
                    automaton = self.spec.automaton(site)
                    transition_number = rng.randint(1, automaton.phase_count)
                    crashes.append(
                        CrashDuringTransition(
                            site=site,
                            transition_number=transition_number,
                            after_writes=rng.randint(0, self.spec.n_sites),
                            restart_at=(
                                crash_time + self.restart_delay
                                if restart_at is not None
                                else None
                            ),
                        )
                    )
                else:
                    crashes.append(
                        CrashAt(site=site, at=crash_time, restart_at=restart_at)
                    )
            yield TransactionSpec(
                txn_id=txn_id,
                seed=rng.randrange(2**31),
                votes=votes,
                crashes=tuple(crashes),
            )

    def run(self, txn: TransactionSpec, max_time: float = 300.0) -> "RunResult":
        """Execute one generated transaction through the harness."""
        from repro.runtime.harness import CommitRun
        from repro.runtime.policies import FixedVotes

        return CommitRun(
            spec=self.spec,
            seed=txn.seed,
            vote_policy=FixedVotes(txn.votes),
            crashes=txn.crashes,
            rule=self.rule,
            max_time=max_time,
        ).execute()

    def campaign(self, count: int, max_time: float = 300.0) -> list["RunResult"]:
        """Run a whole campaign and return every result."""
        return [self.run(txn, max_time=max_time) for txn in self.transactions(count)]
