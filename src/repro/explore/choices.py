"""The choice model: named decision points and the controller.

Everything nondeterministic about an explored run is reduced to an
ordered sequence of *choices*.  Each choice happens at a named decision
point (``"order"``, ``"crash:2"``, ``"partition"``) with a known
*arity* — the number of alternatives available right there — and picks
one alternative by index.  A run is then fully determined by
``(config, choice sequence)``: replaying the same choices through the
same code reproduces the same execution, byte for byte.

The :class:`ChoiceController` drives one run.  It holds a *prefix* of
forced choices (empty for the root schedule) and a fallback policy for
decisions beyond the prefix — index 0 (the "default" schedule: FIFO
ordering, no faults) for bounded DFS, or a seeded RNG for random
exploration.  Every decision actually taken is recorded on the
:attr:`ChoiceController.trail`, which is what the explorer branches on
and the shrinker minimizes.
"""

from __future__ import annotations

import dataclasses
import random
from typing import Any, Iterable, Optional, Sequence, Union

from repro.errors import ExploreConfigError, ReplayDivergenceError


@dataclasses.dataclass(frozen=True)
class Choice:
    """One resolved decision: at ``point``, alternative ``index`` of ``arity``.

    Attributes:
        point: Stable name of the decision point.
        index: The alternative taken (``0 <= index < arity``); 0 is
            always the *default* (FIFO order / no fault).
        arity: How many alternatives existed when the decision was made.
    """

    point: str
    index: int
    arity: int

    def __post_init__(self) -> None:
        if self.arity < 1:
            raise ExploreConfigError(f"choice arity must be >= 1: {self}")
        if not 0 <= self.index < self.arity:
            raise ExploreConfigError(f"choice index out of range: {self}")

    @property
    def is_default(self) -> bool:
        """Whether this decision took the default alternative."""
        return self.index == 0

    def to_json(self) -> dict[str, Any]:
        """Plain-JSON representation (replay-artifact schema)."""
        return {"point": self.point, "index": self.index, "arity": self.arity}

    @classmethod
    def from_json(cls, record: dict[str, Any]) -> "Choice":
        """Inverse of :meth:`to_json`."""
        return cls(
            point=str(record["point"]),
            index=int(record["index"]),
            arity=int(record["arity"]),
        )

    def describe(self) -> str:
        """Short human rendering, e.g. ``order=2/3``."""
        return f"{self.point}={self.index}/{self.arity}"


#: A schedule prefix: the choices forced on a run, in decision order.
Prefix = tuple[Choice, ...]


def normalize_prefix(choices: Iterable[Union[Choice, dict]]) -> Prefix:
    """Coerce an iterable of choices / JSON records into a prefix."""
    out = []
    for item in choices:
        out.append(item if isinstance(item, Choice) else Choice.from_json(item))
    return tuple(out)


def strip_defaults(prefix: Sequence[Choice]) -> Prefix:
    """Canonicalize a prefix by dropping trailing default choices.

    Beyond the prefix the controller falls back to defaults anyway, so
    trailing defaults are semantically inert; stripping them makes
    equal schedules compare equal.
    """
    end = len(prefix)
    while end > 0 and prefix[end - 1].is_default:
        end -= 1
    return tuple(prefix[:end])


class ChoiceController:
    """Resolves decision points for one run and records the trail.

    Args:
        prefix: Choices forced on the first ``len(prefix)`` decisions.
        rng: Fallback RNG for decisions beyond the prefix; ``None``
            falls back to the default alternative (index 0).
        strict: Replay mode.  When set, a decision whose point name or
            arity differs from the prefix entry — or whose recorded
            index no longer fits — raises
            :class:`~repro.errors.ReplayDivergenceError` instead of
            being tolerantly clamped.  Strict replay is for regression
            artifacts; tolerant mode is what lets the shrinker probe
            mutated prefixes whose tails may no longer align.
    """

    def __init__(
        self,
        prefix: Iterable[Union[Choice, dict]] = (),
        rng: Optional[random.Random] = None,
        strict: bool = False,
    ) -> None:
        self._prefix = normalize_prefix(prefix)
        self._rng = rng
        self._strict = strict
        self.trail: list[Choice] = []

    @property
    def position(self) -> int:
        """Index of the next decision (= number already taken)."""
        return len(self.trail)

    @property
    def prefix(self) -> Prefix:
        """The forced prefix this controller was created with."""
        return self._prefix

    def choose(self, point: str, arity: int) -> int:
        """Resolve one decision and record it on the trail."""
        if arity < 1:
            raise ExploreConfigError(
                f"decision point {point!r} offered arity {arity}"
            )
        position = len(self.trail)
        if position < len(self._prefix):
            want = self._prefix[position]
            if self._strict and (
                want.point != point
                or want.arity != arity
                or want.index >= arity
            ):
                raise ReplayDivergenceError(
                    f"decision {position}: recorded "
                    f"{want.describe()} but execution reached "
                    f"{point!r} with arity {arity}"
                )
            # Tolerant mode: keep the *intent* of the recorded index as
            # far as possible; modulo keeps it deterministic when the
            # tree shifted under a shrink candidate.
            index = want.index % arity
        elif self._rng is not None:
            index = self._rng.randrange(arity)
        else:
            index = 0
        self.trail.append(Choice(point=point, index=index, arity=arity))
        return index

    def finished_prefix(self) -> bool:
        """Whether every forced choice was actually consumed.

        A strict replay that ends with unconsumed prefix entries
        diverged silently — the run quiesced before reaching the
        recorded decisions — so replayers check this too.
        """
        return len(self.trail) >= len(self._prefix)
