"""Deterministic schedule exploration over the live runtime.

This package drives the sim/runtime stack through systematically
enumerated (bounded DFS) and seeded-random message orderings plus
crash/partition injection points, checks invariants derived from the
paper after every run, shrinks violating schedules to minimal
counterexamples, and serializes them as replayable JSON artifacts.

See ``docs/EXPLORATION.md`` for the choice-point model, the invariant
catalogue, and the corpus promotion workflow.
"""

from repro.explore.choices import (
    Choice,
    ChoiceController,
    Prefix,
    normalize_prefix,
    strip_defaults,
)
from repro.explore.explorer import (
    Explorer,
    ScheduleOutcome,
    ShardResult,
    ViolationRecord,
)
from repro.explore.hooks import ExplorationHooks, FaultSummary
from repro.explore.invariants import (
    InvariantPolicy,
    InvariantViolation,
    check_run,
)
from repro.explore.mutants import MUTANTS, apply_mutant, mutant_names
from repro.explore.replay import ReplayOutcome, replay
from repro.explore.schedule import (
    ExploreConfig,
    ReplayArtifact,
    schedule_hash,
)
from repro.explore.shard import (
    EXPLORE_EXPERIMENT_ID,
    build_explore_payload,
    merge_explore_payloads,
    plan_tasks,
    render_explore_report,
    violation_artifact,
)
from repro.explore.shrink import ShrinkResult, shrink

__all__ = [
    "Choice",
    "ChoiceController",
    "Prefix",
    "normalize_prefix",
    "strip_defaults",
    "Explorer",
    "ScheduleOutcome",
    "ShardResult",
    "ViolationRecord",
    "ExplorationHooks",
    "FaultSummary",
    "InvariantPolicy",
    "InvariantViolation",
    "check_run",
    "MUTANTS",
    "apply_mutant",
    "mutant_names",
    "ReplayOutcome",
    "replay",
    "ExploreConfig",
    "ReplayArtifact",
    "schedule_hash",
    "EXPLORE_EXPERIMENT_ID",
    "build_explore_payload",
    "merge_explore_payloads",
    "plan_tasks",
    "render_explore_report",
    "violation_artifact",
    "ShrinkResult",
    "shrink",
]
