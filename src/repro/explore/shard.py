"""Sharding exploration across the parallel sweep runner.

One exploration is split into ``config.shards`` *logical* shards —
fixed by the config, never by the worker count — and each shard becomes
one :class:`~repro.parallel.tasks.SweepTask` under the reserved
pseudo-experiment id :data:`EXPLORE_EXPERIMENT_ID`.  The sweep worker
(:func:`repro.parallel.worker.build_payload`) dispatches that id here,
so exploration inherits the runner's whole determinism story: canonical
JSON payloads, task-key-ordered merging, spawn-isolated workers, and
the artifact cache.

Because shard membership and per-shard budgets depend only on the
config, ``--workers 1`` and ``--workers 8`` execute the same schedule
sets and merge to byte-identical reports.
"""

from __future__ import annotations

import json
from typing import Any, Sequence

from repro.errors import ExploreConfigError
from repro.explore.explorer import Explorer, ViolationRecord
from repro.explore.schedule import ExploreConfig, ReplayArtifact
from repro.parallel.tasks import PAYLOAD_SCHEMA, SweepTask

#: Reserved experiment id routing sweep tasks to the explorer.
EXPLORE_EXPERIMENT_ID = "EXPLORE"


def plan_tasks(config: ExploreConfig) -> list[SweepTask]:
    """One sweep task per logical shard of ``config``.

    The explore config is flattened into the task config (all scalar
    values, so task freezing/thawing round-trips exactly) plus the
    shard index.
    """
    return [
        SweepTask.make(
            EXPLORE_EXPERIMENT_ID,
            seed=config.seed,
            config={**config.to_json(), "shard": shard},
        )
        for shard in range(config.shards)
    ]


def violation_artifact(
    config: ExploreConfig, record: ViolationRecord
) -> ReplayArtifact:
    """Package one shrunk violation as a replayable artifact."""
    return ReplayArtifact(
        config=config,
        schedule=record.shrunk,
        expect_verdict="violation",
        expect_kinds=record.signature,
        note="found by repro explore; " + "; ".join(record.details),
    )


def build_explore_payload(task: SweepTask) -> dict[str, Any]:
    """Worker entry point: execute one shard, return its payload.

    The payload mirrors the experiment-payload contract the merge step
    expects (``render``, ``data``, ``registry``, ``traces``, ...) and
    is JSON-normalized so fresh results equal cache-reloaded ones.
    """
    if task.experiment_id != EXPLORE_EXPERIMENT_ID:
        raise ExploreConfigError(
            f"not an explore task: {task.experiment_id!r}"
        )
    config_map = dict(task.config_jsonable())
    shard = config_map.pop("shard", None)
    if shard is None:
        raise ExploreConfigError("explore task config lacks a shard index")
    config = ExploreConfig.from_json(config_map)
    explorer = Explorer(config)
    result = explorer.explore_shard(int(shard))

    violations = []
    for record in result.violations:
        artifact = violation_artifact(config, record)
        violations.append(
            {
                "signature": list(record.signature),
                "count": record.count,
                "first_hash": record.first.hash,
                "first_choices": [
                    choice.to_json() for choice in record.first.canonical
                ],
                "shrunk_hash": record.shrunk_hash,
                "shrunk": [choice.to_json() for choice in record.shrunk],
                "details": list(record.details),
                "artifact": artifact.to_json(),
            }
        )
    data = {
        "config": config.to_json(),
        "shard": result.shard,
        "schedules": result.schedules,
        "shrink_runs": result.shrink_runs,
        "violations": violations,
    }
    payload = {
        "schema": PAYLOAD_SCHEMA,
        "experiment_id": EXPLORE_EXPERIMENT_ID,
        "seed": task.seed,
        "config": task.config_jsonable(),
        "title": f"schedule exploration shard {result.shard}/{config.shards}",
        "render": _render_shard(data),
        "data": data,
        "notes": [],
        "registry": None,
        "traces": [],
    }
    return json.loads(json.dumps(payload, sort_keys=True))


def _render_shard(data: dict[str, Any]) -> str:
    lines = [
        f"shard {data['shard']}: {data['schedules']} schedules, "
        f"{len(data['violations'])} violation signature(s), "
        f"{data['shrink_runs']} shrink probes"
    ]
    for violation in data["violations"]:
        lines.append(
            f"  {'+'.join(violation['signature'])}: x{violation['count']}, "
            f"shrunk to {len(violation['shrunk'])} choice(s) "
            f"[{violation['shrunk_hash']}]"
        )
    return "\n".join(lines)


def merge_explore_payloads(
    payloads: Sequence[dict[str, Any]],
) -> dict[str, Any]:
    """Fold per-shard payloads into the combined exploration document.

    Pure and order-insensitive: shards are sorted by index, violation
    signatures deduplicated across shards (counts summed, the lowest
    shard's shrunk witness kept), so output is identical however the
    shards were executed.
    """
    docs = sorted(
        (payload["data"] for payload in payloads),
        key=lambda doc: doc["shard"],
    )
    if not docs:
        raise ExploreConfigError("no explore payloads to merge")
    config = docs[0]["config"]
    merged: dict[tuple[str, ...], dict[str, Any]] = {}
    for doc in docs:
        if doc["config"] != config:
            raise ExploreConfigError(
                "explore payloads from different configs cannot merge"
            )
        for violation in doc["violations"]:
            key = tuple(violation["signature"])
            kept = merged.get(key)
            if kept is None:
                merged[key] = dict(violation)
            else:
                kept["count"] += violation["count"]
    violations = [merged[key] for key in sorted(merged)]
    return {
        "config": config,
        "schedules": sum(doc["schedules"] for doc in docs),
        "shrink_runs": sum(doc["shrink_runs"] for doc in docs),
        "shards": [
            {
                "shard": doc["shard"],
                "schedules": doc["schedules"],
                "violations": len(doc["violations"]),
            }
            for doc in docs
        ],
        "violations": violations,
        "verdict": "violation" if violations else "clean",
    }


def render_explore_report(combined: dict[str, Any]) -> str:
    """Canonical human-readable report for a merged exploration."""
    config = combined["config"]
    lines = [
        "=== schedule exploration ===",
        f"protocol={config['protocol']} sites={config['n_sites']} "
        f"seed={config['seed']} mode={config['mode']} "
        f"budget={config['budget']} depth={config['depth']} "
        f"branch={config['max_branch']} crashes={config['crash_budget']} "
        f"partitions={config['partitions']} "
        f"mutant={config['mutant'] or '-'}",
        f"schedules executed: {combined['schedules']} "
        f"across {len(combined['shards'])} shard(s) "
        f"(+{combined['shrink_runs']} shrink probes)",
        f"verdict: {combined['verdict'].upper()}",
    ]
    for violation in combined["violations"]:
        lines.append("")
        lines.append(
            f"violation {'+'.join(violation['signature'])} "
            f"(seen x{violation['count']})"
        )
        lines.append(
            f"  shrunk schedule [{violation['shrunk_hash']}]: "
            f"{len(violation['shrunk'])} choice(s)"
        )
        for choice in violation["shrunk"]:
            lines.append(
                f"    {choice['point']}={choice['index']}/{choice['arity']}"
            )
        for detail in violation["details"]:
            lines.append(f"  {detail}")
    return "\n".join(lines) + "\n"
