"""Seeded runtime mutants: deliberately broken protocol implementations.

The explorer's job is to catch a *runtime* that diverges from the
verified design, so its self-test needs runtimes that actually do.  A
mutant is a transform over the claimed :class:`ProtocolSpec` producing
the spec the engine will *execute*, while every invariant keeps
auditing against the unmutated original — exactly the situation where
an implementation bug ships inside a proven-correct design.

``skip-buffer`` is the canonical one: a 3PC whose coordinator commits
straight out of the wait state, skipping the prepared-to-commit buffer
state (and the ack round) that the nonblocking theorem requires.  The
explorer must flag it via conformance (an un-specced transition),
the history theorem (commit concurrent with a noncommittable state),
and — under a crash — atomicity.
"""

from __future__ import annotations

from typing import Callable

from repro.errors import ExploreConfigError
from repro.fsa.automaton import SiteAutomaton, Transition
from repro.fsa.messages import fan_out
from repro.fsa.spec import ProtocolSpec
from repro.protocols._shared import COORDINATOR
from repro.types import Vote


def _skip_buffer(spec: ProtocolSpec) -> ProtocolSpec:
    """Collapse the coordinator's buffer state: ``w -> c`` directly.

    The yes-vote transition that should enter ``p`` (broadcasting
    ``prepare``) instead jumps to ``c`` broadcasting ``commit``; the
    ``p -> c`` ack-collection transition disappears.  Slaves are left
    untouched — they wait in ``w`` for a ``prepare`` that never comes,
    which is precisely the uncertainty window the buffer state was
    invented to close.
    """
    if COORDINATOR not in spec.automata:
        raise ExploreConfigError(
            f"mutant 'skip-buffer' needs a central coordinator; "
            f"{spec.name!r} has none"
        )
    coordinator = spec.automaton(COORDINATOR)
    if "p" not in coordinator.states:
        raise ExploreConfigError(
            f"mutant 'skip-buffer' needs a coordinator buffer state 'p'; "
            f"{spec.name!r} has none (use a 3PC protocol)"
        )
    slaves = [site for site in spec.sites if site != COORDINATOR]
    transitions = []
    for transition in coordinator.transitions:
        if transition.source == "p":
            continue  # The ack round is gone.
        if transition.target == "p":
            transition = Transition(
                source=transition.source,
                target="c",
                reads=transition.reads,
                writes=fan_out("commit", COORDINATOR, slaves),
                vote=Vote.YES,
            )
        transitions.append(transition)
    mutated = SiteAutomaton(
        site=COORDINATOR,
        role=coordinator.role,
        initial=coordinator.initial,
        commit_states=sorted(coordinator.commit_states),
        abort_states=sorted(coordinator.abort_states),
        transitions=transitions,
    )
    automata = {
        site: (mutated if site == COORDINATOR else spec.automaton(site))
        for site in spec.sites
    }
    # validate=False: the whole point is a spec the validator would
    # reject (slaves read a 'prepare' nobody sends anymore) — a broken
    # implementation does not stop being broken gracefully.
    return ProtocolSpec(
        name=f"{spec.name}#skip-buffer",
        protocol_class=spec.protocol_class,
        automata=automata,
        initial_messages=spec.initial_messages,
        coordinator=spec.coordinator,
        validate=False,
    )


#: Registered mutants: name -> spec transform.
MUTANTS: dict[str, Callable[[ProtocolSpec], ProtocolSpec]] = {
    "skip-buffer": _skip_buffer,
}


def mutant_names() -> list[str]:
    """All registered mutant names, sorted."""
    return sorted(MUTANTS)


def apply_mutant(spec: ProtocolSpec, name: str) -> ProtocolSpec:
    """Apply the named mutant to ``spec``.

    Raises:
        ExploreConfigError: For an unknown name or an inapplicable spec.
    """
    transform = MUTANTS.get(name)
    if transform is None:
        raise ExploreConfigError(
            f"unknown mutant {name!r}; known: {', '.join(mutant_names())}"
        )
    return transform(spec)
