"""Delta-debugging shrinker for violating schedules.

Given a canonical choice prefix that provokes an invariant violation,
:func:`shrink` searches for a smaller prefix provoking the *same*
violation signature, using only a probe callback that re-executes a
candidate and reports whether it is still interesting.

Three deterministic passes, iterated to a fixpoint:

1. **truncate** — try every shorter prefix, shortest first.  Dropping a
   tail removes whole subtrees of forced decisions at once.
2. **default-out** — set each non-default choice back to its default
   (index 0), left to right, and re-strip trailing defaults.
3. **lower** — reduce each remaining non-default index toward 0 (a
   lower sibling is an earlier, "simpler" alternative).

Every accepted candidate must strictly decrease the measure
``(non-default count, length, choice tuple)``, so the loop terminates;
because the passes and the probe are deterministic, so is the result,
and a fixpoint admits no further improvement — ``shrink(shrink(s)) ==
shrink(s)`` (given the probe budget is not exhausted mid-search).

The probe returns the *re-canonicalized* trail of the candidate run
(or ``None`` if the violation vanished): the controller is tolerant —
a forced choice whose point has drifted is clamped — so adopting what
actually executed keeps the prefix honest.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Iterable, Optional

from repro.explore.choices import Choice, Prefix, strip_defaults

#: Re-execute a candidate prefix.  Returns the re-canonicalized trail
#: when the candidate still reproduces the target violation signature,
#: ``None`` otherwise.
ProbeFn = Callable[[Prefix], Optional[Prefix]]

#: Default cap on probe executions for one shrink.
DEFAULT_MAX_PROBES = 400


@dataclasses.dataclass(frozen=True)
class ShrinkResult:
    """Outcome of one shrink.

    Attributes:
        prefix: The minimized canonical prefix.
        probes: Probe executions spent.
        exhausted: True when the probe budget ran out mid-search (the
            result is still valid, just possibly not minimal).
    """

    prefix: Prefix
    probes: int
    exhausted: bool = False


def _measure(prefix: Prefix) -> tuple:
    return (
        sum(1 for choice in prefix if not choice.is_default),
        len(prefix),
        tuple((c.point, c.index, c.arity) for c in prefix),
    )


def shrink(
    initial: Iterable[Choice],
    probe: ProbeFn,
    max_probes: int = DEFAULT_MAX_PROBES,
) -> ShrinkResult:
    """Minimize ``initial`` while the probe stays interesting.

    ``initial`` must itself be interesting — the shrinker never
    re-checks it, it only ever moves to candidates the probe confirmed.
    """
    current = strip_defaults(tuple(initial))
    spent = 0
    exhausted = False

    def attempt(candidate: Prefix) -> Optional[Prefix]:
        """Probe one candidate; adopt only strict improvements."""
        nonlocal spent, exhausted
        if spent >= max_probes:
            exhausted = True
            return None
        spent += 1
        result = probe(candidate)
        if result is None:
            return None
        result = strip_defaults(result)
        if _measure(result) < _measure(current):
            return result
        return None

    changed = True
    while changed and not exhausted:
        changed = False

        # Pass 1: truncation, shortest surviving prefix first.
        for cut in range(len(current)):
            adopted = attempt(strip_defaults(current[:cut]))
            if adopted is not None:
                current = adopted
                changed = True
                break
        if changed or exhausted:
            continue

        # Pass 2: default-out single non-default choices, left to right.
        for position, choice in enumerate(current):
            if choice.is_default:
                continue
            candidate = (
                current[:position]
                + (Choice(choice.point, 0, choice.arity),)
                + current[position + 1 :]
            )
            adopted = attempt(strip_defaults(candidate))
            if adopted is not None:
                current = adopted
                changed = True
                break
        if changed or exhausted:
            continue

        # Pass 3: lower surviving indices toward 0, smallest first.
        for position, choice in enumerate(current):
            if choice.index <= 1:
                continue  # Defaults were pass 2's job.
            for lower in range(1, choice.index):
                candidate = (
                    current[:position]
                    + (Choice(choice.point, lower, choice.arity),)
                    + current[position + 1 :]
                )
                adopted = attempt(strip_defaults(candidate))
                if adopted is not None:
                    current = adopted
                    changed = True
                    break
            if changed:
                break

    return ShrinkResult(prefix=current, probes=spent, exhausted=exhausted)
