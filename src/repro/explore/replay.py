"""Exact re-execution of serialized replay artifacts.

:func:`replay` rebuilds the full runtime stack from an artifact's
config, forces its recorded choice schedule through a *strict*
controller (any divergence between recorded and live choice points
raises :class:`~repro.errors.ReplayDivergenceError` instead of being
papered over), and compares what happened against the artifact's
expectations.  This is what the ``repro replay`` CLI subcommand and the
``tests/corpus/`` regression suite run.
"""

from __future__ import annotations

import dataclasses

from repro.explore.explorer import Explorer, ScheduleOutcome
from repro.explore.schedule import ReplayArtifact


@dataclasses.dataclass(frozen=True)
class ReplayOutcome:
    """Result of replaying one artifact.

    Attributes:
        artifact: What was replayed.
        outcome: The re-executed schedule's full outcome.
        verdict: ``"violation"`` or ``"clean"`` — what actually
            happened this time.
        problems: Every way reality differed from the artifact's
            expectations; empty means the replay matched.
    """

    artifact: ReplayArtifact
    outcome: ScheduleOutcome
    verdict: str
    problems: tuple[str, ...]

    @property
    def ok(self) -> bool:
        """True when the replay matched every expectation."""
        return not self.problems

    def describe(self) -> str:
        """One-line rendering for reports."""
        status = "ok" if self.ok else "MISMATCH"
        return (
            f"{self.artifact.hash} {status}: verdict={self.verdict} "
            f"(expected {self.artifact.expect_verdict})"
        )


def replay(
    artifact: ReplayArtifact, explorer: Explorer | None = None
) -> ReplayOutcome:
    """Strictly re-execute an artifact and check its expectations.

    Args:
        artifact: The schedule to replay.
        explorer: Optional prebuilt explorer for the artifact's config
            (corpus tests replay many artifacts sharing one config);
            when given, its config must equal the artifact's.

    Raises:
        ReplayDivergenceError: The recorded schedule no longer matches
            the runtime's live choice points (the code changed in a way
            that invalidates the artifact, not merely its verdict).
    """
    if explorer is None:
        explorer = Explorer(artifact.config)
    elif explorer.config != artifact.config:
        raise ValueError(
            "prebuilt explorer config does not match the artifact"
        )
    outcome = explorer.run_one(artifact.schedule, strict=True)
    if len(outcome.trail) < len(artifact.schedule):
        from repro.errors import ReplayDivergenceError

        raise ReplayDivergenceError(
            f"run quiesced after {len(outcome.trail)} decisions but the "
            f"artifact records {len(artifact.schedule)} — the runtime no "
            "longer reaches the recorded choice points"
        )
    verdict = "violation" if outcome.violations else "clean"

    problems: list[str] = []
    if verdict != artifact.expect_verdict:
        problems.append(
            f"expected verdict {artifact.expect_verdict!r}, got {verdict!r}"
        )
    missing = set(artifact.expect_kinds) - set(outcome.signature)
    if missing:
        problems.append(
            f"expected violation kinds not reproduced: {sorted(missing)} "
            f"(got {list(outcome.signature)})"
        )
    if artifact.expect_blocked is not None:
        blocked = bool(outcome.blocked)
        if blocked != artifact.expect_blocked:
            problems.append(
                f"expected blocked={artifact.expect_blocked}, "
                f"got blocked sites {list(outcome.blocked)!r}"
            )
    return ReplayOutcome(
        artifact=artifact,
        outcome=outcome,
        verdict=verdict,
        problems=tuple(problems),
    )
