"""Wiring between the choice controller and the live runtime.

:class:`ExplorationHooks` installs itself into one
:class:`~repro.runtime.harness.CommitRun` via the harness's
``instrument`` callback and turns the run's nondeterminism into named
choice points:

* ``order`` — the simulator's same-time tie-break
  (:attr:`Simulator.chooser`): which of the first ``max_branch`` ready
  events fires next.  Index 0 is FIFO, the historical default.
* ``crash:<site>`` — at a message delivery to an operational site,
  while crash budget remains: 1 crashes the destination *before* the
  message lands (the message then drops, mid-broadcast).
* ``partition`` — when enabled and the network is whole: index ``i >
  0`` splits the network so that site ``i`` is isolated from the rest
  (the canonical one-vs-rest splits, in site order).

All fault points are only offered within the first ``depth`` decisions
so the choice tree — and therefore every recorded trail — stays
bounded.
"""

from __future__ import annotations

import dataclasses

from repro.explore.choices import ChoiceController
from repro.net.message import Envelope
from repro.net.network import Network
from repro.runtime.site import CommitSite
from repro.sim.events import Event
from repro.sim.simulator import Simulator
from repro.types import SiteId


@dataclasses.dataclass(frozen=True)
class FaultSummary:
    """What the hooks actually injected into one run.

    The invariant policy reads this to decide which checks apply: a
    partitioned run waives liveness and the concurrency-theorem checks
    (the paper's network assumption was deliberately broken), while
    crash counts feed the declared failure budget.
    """

    crashes: tuple[SiteId, ...]
    partitioned: bool

    @property
    def total(self) -> int:
        """Number of distinct faults injected."""
        return len(self.crashes) + (1 if self.partitioned else 0)


class ExplorationHooks:
    """Install choice points into one commit run.

    Args:
        controller: The run's choice controller.
        depth: Decisions eligible for branching / fault injection.
        max_branch: Arity cap for ``order`` choice points.
        crash_budget: How many crash decisions may answer "yes".
        partitions: Whether to offer the partition decision point.
    """

    def __init__(
        self,
        controller: ChoiceController,
        depth: int = 40,
        max_branch: int = 3,
        crash_budget: int = 1,
        partitions: bool = False,
    ) -> None:
        self._controller = controller
        self._depth = depth
        self._max_branch = max_branch
        self._crash_budget = crash_budget
        self._partitions = partitions
        self._sites: dict[SiteId, CommitSite] = {}
        self._crashed: list[SiteId] = []
        self._partitioned = False

    # ------------------------------------------------------------------
    # Installation (CommitRun ``instrument`` callback)
    # ------------------------------------------------------------------

    def install(
        self,
        sim: Simulator,
        network: Network,
        sites: dict[SiteId, CommitSite],
    ) -> None:
        """Attach the hooks to a freshly assembled run substrate."""
        self._sites = sites
        sim.chooser = self._pick_event
        network.fault_injector = self

    def summary(self) -> FaultSummary:
        """The faults injected so far (final after the run quiesces)."""
        return FaultSummary(
            crashes=tuple(self._crashed), partitioned=self._partitioned
        )

    # ------------------------------------------------------------------
    # Choice points
    # ------------------------------------------------------------------

    def _pick_event(self, ready: list[Event]) -> int:
        if self._controller.position >= self._depth:
            return 0
        arity = min(len(ready), self._max_branch)
        if arity < 2:
            return 0
        return self._controller.choose("order", arity)

    def before_deliver(self, network: Network, envelope: Envelope) -> None:
        """The network's fault decision point (see :class:`FaultInjector`)."""
        controller = self._controller
        dst = envelope.dst
        if (
            self._crash_budget > 0
            and network.is_up(dst)
            and controller.position < self._depth
        ):
            if controller.choose(f"crash:{dst}", 2) == 1:
                self._crash_budget -= 1
                self._crashed.append(dst)
                site = self._sites.get(dst)
                if site is not None and site.alive:
                    site.crash()
                network.crash(dst)
        if (
            self._partitions
            and not self._partitioned
            and controller.position < self._depth
        ):
            sites = network.sites
            index = controller.choose("partition", len(sites) + 1)
            if index > 0:
                isolated = sites[index - 1]
                rest = {site for site in sites if site != isolated}
                self._partitioned = True
                network.partition([{isolated}, rest])
