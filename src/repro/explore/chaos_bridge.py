"""Round-trip live gray-failure chaos schedules into the replay corpus.

A chaos counterexample found on the live cluster (real processes, real
TCP, wall-clock detector) is strong evidence but a weak regression
test: replaying it takes seconds of real time and a working loopback
stack.  The explorer is the opposite — microseconds per schedule,
bit-exact replay — and it can express the *same* failure: a gray link
that keeps delivering heartbeats while dropping a site's commit-phase
frames is, to the protocol FSAs, a partition that the failure detector
never reports symmetrically.

:func:`gray_counterexample` performs that translation.  Given the live
:class:`~repro.live.chaos.ChaosPolicy` that produced a split decision,
it searches the explorer (partitions enabled, no crashes — nobody
actually died, that is the point) for an atomicity violation whose
shrunk schedule isolates the same site the gray link starved, shrinks
it with ddmin, and packages a hash-verified
:class:`~repro.explore.schedule.ReplayArtifact` whose note records the
chaos policy's content hash as provenance.  The artifact is what gets
pinned under ``tests/corpus/`` and replayed by the regression suite.
"""

from __future__ import annotations

from repro.errors import ExploreError
from repro.explore.choices import Choice
from repro.explore.explorer import Explorer, ViolationRecord
from repro.explore.schedule import ExploreConfig, ReplayArtifact
from repro.live.chaos import ChaosPolicy


def _isolates(schedule: tuple[Choice, ...], isolate: int) -> bool:
    """Whether the schedule's partition choice isolates site ``isolate``.

    The ``partition`` choice point has arity ``n_sites + 1``: index 0
    keeps the network whole, index ``i`` isolates the i-th site (sites
    are 1-based and sorted, so index == site id).
    """
    return any(
        choice.point == "partition" and choice.index == int(isolate)
        for choice in schedule
    )


def _artifact(
    config: ExploreConfig,
    record: ViolationRecord,
    policy: ChaosPolicy,
    isolate: int,
) -> ReplayArtifact:
    note = (
        f"round-trip of live gray-link chaos policy {policy.hash} "
        f"({policy.note}): heartbeats delivered but commit-phase frames "
        f"dropped, so the reliable-detector assumption fails for site "
        f"{isolate}; the explorer reproduces the same split decision by "
        f"isolating site {isolate} mid-protocol; "
        + "; ".join(record.details)
    )
    return ReplayArtifact(
        config=config,
        schedule=record.shrunk,
        expect_verdict="violation",
        expect_kinds=record.signature,
        note=note,
    )


def gray_counterexample(
    policy: ChaosPolicy,
    protocol: str = "3pc-central",
    n_sites: int = 3,
    isolate: int = 3,
    budget: int = 400,
    seed: int = 11,
    seed_tries: int = 4,
) -> ReplayArtifact:
    """Search the explorer for the gray policy's split decision.

    Tries ``seed_tries`` consecutive seeds; prefers an atomicity
    violation whose shrunk schedule isolates ``isolate`` (the site the
    gray link starved of protocol frames), falling back to any
    atomicity violation if no seed produces that exact shape.

    Raises:
        ExploreError: If no tried seed surfaces an atomicity violation
            at all — the budget was too small or the runtime changed.
    """
    fallback: tuple[ExploreConfig, ViolationRecord] | None = None
    for attempt in range(seed_tries):
        config = ExploreConfig(
            protocol=protocol,
            n_sites=n_sites,
            seed=seed + attempt,
            budget=budget,
            partitions=True,
            crash_budget=0,
            shards=1,
        )
        explorer = Explorer(config)
        result = explorer.explore_shard(0)
        for record in result.violations:
            if "atomicity" not in record.signature:
                continue
            if _isolates(record.shrunk, isolate):
                return _artifact(config, record, policy, isolate)
            if fallback is None:
                fallback = (config, record)
    if fallback is not None:
        return _artifact(fallback[0], fallback[1], policy, isolate)
    raise ExploreError(
        f"no atomicity violation found for {protocol} within "
        f"{seed_tries} seeds x {budget} schedules — cannot round-trip "
        f"chaos policy {policy.hash} into the corpus"
    )
