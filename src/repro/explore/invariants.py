"""Run invariants: what every explored execution is checked against.

Four families, each mapped to the paper (see ``docs/EXPLORATION.md``):

* **atomicity** (AC1) — no two sites ever log conflicting final
  outcomes.  Checked on every run, crashed sites included: a
  coordinator that logged commit before dying still committed.
* **history theorem** — the fundamental nonblocking theorem's
  conditions, checked over the *observed* state history instead of the
  abstract reachability graph: at no instant may two operational sites
  occupy a commit state and an abort state (condition 1), and no
  operational site may occupy a commit state while another operational,
  non-recovering site occupies a noncommittable state (condition 2).
  Enforced only for protocols whose static analysis is nonblocking —
  for 2PC the analysis itself says the window exists, so observing it
  is expected, not a runtime bug.
* **liveness** — under the declared failure budget (crashes only, no
  partition, at least one operational site), a statically-nonblocking
  protocol must leave no operational site undecided or blocked.
* **conformance** — the existing
  :func:`repro.analysis.conformance.audit_run` auditor: every fired
  transition is a path of the claimed automaton, votes and decisions
  match the DT log.

The checker is pure: it reads a finished
:class:`~repro.runtime.harness.RunResult` (whose trace carries the
state history) plus prebuilt analysis artifacts, and returns findings.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

from repro.analysis.conformance import audit_run
from repro.explore.hooks import FaultSummary
from repro.fsa.spec import ProtocolSpec
from repro.runtime.harness import RunResult
from repro.types import SiteId


@dataclasses.dataclass(frozen=True)
class InvariantViolation:
    """One invariant broken by one run.

    Attributes:
        kind: Violation family — ``"atomicity"``,
            ``"history-commit-abort"``, ``"history-noncommittable"``,
            ``"liveness"``, or ``"conformance"``.
        detail: Human-readable description with witnesses.
        site: The site the violation anchors to, when there is one.
    """

    kind: str
    detail: str
    site: Optional[SiteId] = None

    def describe(self) -> str:
        """One-line rendering."""
        where = f" (site {self.site})" if self.site is not None else ""
        return f"[{self.kind}]{where} {self.detail}"


@dataclasses.dataclass(frozen=True)
class InvariantPolicy:
    """Which checks apply, derived from spec analysis + fault budget.

    Attributes:
        nonblocking: Static verdict of the claimed spec (drives the
            history-theorem and liveness checks).
        committable: ``(site, state) -> committable?`` classification
            from the claimed spec's reachability graph.
        check_conformance: Audit runs against the claimed automata.
    """

    nonblocking: bool
    committable: dict[tuple[SiteId, str], bool]
    check_conformance: bool = True


def check_run(
    run: RunResult,
    spec: ProtocolSpec,
    policy: InvariantPolicy,
    faults: FaultSummary,
) -> list[InvariantViolation]:
    """Check one finished run against every applicable invariant.

    Args:
        run: The finished run (its trace carries the state history).
        spec: The *claimed* spec — what the implementation is supposed
            to be running, regardless of any mutant actually executing.
        policy: Prebuilt analysis verdicts for the claimed spec.
        faults: What the exploration hooks injected into this run.

    Returns:
        All violations, in a deterministic order (checks run in a fixed
        sequence; the history walk is chronological).
    """
    violations: list[InvariantViolation] = []

    if not run.atomic:
        violations.append(
            InvariantViolation(
                kind="atomicity",
                detail=f"conflicting final outcomes logged: {run.outcomes()!r}",
            )
        )

    theorem_applies = (
        policy.nonblocking
        and not faults.partitioned
        and len(faults.crashes) < spec.n_sites
    )
    if theorem_applies:
        violations.extend(_check_history(run, spec, policy))
        violations.extend(_check_liveness(run))

    if policy.check_conformance:
        for finding in audit_run(run, spec):
            violations.append(
                InvariantViolation(
                    kind="conformance",
                    detail=f"[{finding.kind}] {finding.detail}",
                    site=finding.site,
                )
            )
    return violations


def _check_liveness(run: RunResult) -> list[InvariantViolation]:
    violations = []
    for site in run.blocked_sites:
        violations.append(
            InvariantViolation(
                kind="liveness",
                detail="operational site ended blocked despite the "
                "protocol's nonblocking verdict",
                site=site,
            )
        )
    blocked = set(run.blocked_sites)
    for site in run.undecided_operational:
        if site in blocked:
            continue  # Already reported above.
        violations.append(
            InvariantViolation(
                kind="liveness",
                detail="operational site never reached a decision "
                "(stalled without even blocking)",
                site=site,
            )
        )
    return violations


def _check_history(
    run: RunResult,
    spec: ProtocolSpec,
    policy: InvariantPolicy,
) -> list[InvariantViolation]:
    """Walk the observed state history checking the theorem conditions.

    Tracks, per site: current local state, liveness, and a *recovering*
    flag.  A freshly restarted site sits in its automaton's initial
    state only because its engine was rebuilt — the paper's concurrency
    argument covers operational protocol participants, so a recovering
    site is exempt from condition 2 until it adopts a state again.
    """
    state: dict[SiteId, str] = {
        site: spec.automaton(site).initial for site in spec.sites
    }
    alive: dict[SiteId, bool] = {site: True for site in spec.sites}
    recovering: dict[SiteId, bool] = {site: False for site in spec.sites}
    commit_states = {
        site: spec.automaton(site).commit_states for site in spec.sites
    }
    abort_states = {
        site: spec.automaton(site).abort_states for site in spec.sites
    }

    violations: list[InvariantViolation] = []
    seen: set[str] = set()  # Dedup: one report per condition per run.

    def snapshot_check(at_time: float) -> None:
        committers = [
            site
            for site in spec.sites
            if alive[site] and state[site] in commit_states[site]
        ]
        if not committers:
            return
        witness = committers[0]
        for site in spec.sites:
            if not alive[site] or site == witness:
                continue
            if site in spec.read_only_sites:
                # A read-only participant left the protocol at phase 1;
                # its exit state holds no outcome and is deliberately
                # noncommittable, so the theorem's conditions do not
                # range over it.
                continue
            local = state[site]
            if local in abort_states[site] and "history-commit-abort" not in seen:
                seen.add("history-commit-abort")
                violations.append(
                    InvariantViolation(
                        kind="history-commit-abort",
                        detail=(
                            f"t={at_time:g}: site {witness} occupies commit "
                            f"state {state[witness]!r} while site {site} "
                            f"occupies abort state {local!r}"
                        ),
                        site=witness,
                    )
                )
            elif (
                not recovering[site]
                and local not in abort_states[site]
                and not policy.committable.get((site, local), False)
                and "history-noncommittable" not in seen
            ):
                seen.add("history-noncommittable")
                violations.append(
                    InvariantViolation(
                        kind="history-noncommittable",
                        detail=(
                            f"t={at_time:g}: site {witness} occupies commit "
                            f"state {state[witness]!r} while operational "
                            f"site {site} occupies noncommittable state "
                            f"{local!r} (theorem condition 2 over the "
                            "observed history)"
                        ),
                        site=witness,
                    )
                )

    for entry in run.trace:
        category = entry.category
        site = entry.site
        if category in (
            "engine.transition",
            "engine.forced_state",
            "engine.forced_outcome",
        ):
            if site is None:
                continue
            new_state = entry.data.get("state")
            if new_state is None:
                continue
            state[SiteId(site)] = str(new_state)
            recovering[SiteId(site)] = False
            snapshot_check(entry.time)
        elif category == "site.crash" and site is not None:
            alive[SiteId(site)] = False
        elif category == "site.restart" and site is not None:
            alive[SiteId(site)] = True
            recovering[SiteId(site)] = True
            state[SiteId(site)] = spec.automaton(SiteId(site)).initial
    return violations
