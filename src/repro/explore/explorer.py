"""The deterministic schedule explorer.

One :class:`Explorer` owns the prebuilt, reusable artifacts for a
config — claimed spec, reachability graph, termination rule, invariant
policy, optional runtime mutant — and executes *schedules*: commit runs
driven by a :class:`~repro.explore.choices.ChoiceController` through
the harness's instrument hook.

Two search strategies over the choice tree:

* **dfs** — bounded depth-first enumeration.  The root schedule (all
  defaults) is run first; every recorded decision with untried
  alternatives spawns sibling prefixes, explored leftmost-first under a
  schedule budget.  ``depth`` bounds which decisions may branch and
  ``max_branch`` caps ordering arity, so the tree is finite.
* **random** — ``budget`` independent schedules whose fallback choices
  come from per-index seeded RNGs.

Both are deterministic in the config alone: same config, same runs,
same findings, regardless of process, worker count, or wall clock.
"""

from __future__ import annotations

import dataclasses
import random
from typing import Callable, Iterable, Optional

from repro.analysis.nonblocking import check_nonblocking
from repro.analysis.reachability import build_state_graph
from repro.explore.choices import Choice, ChoiceController, Prefix, strip_defaults
from repro.explore.hooks import ExplorationHooks, FaultSummary
from repro.explore.invariants import InvariantPolicy, InvariantViolation, check_run
from repro.explore.mutants import apply_mutant
from repro.explore.schedule import ExploreConfig, schedule_hash
from repro.explore.shrink import ShrinkResult, shrink
from repro.protocols import catalog
from repro.runtime.decision import TerminationRule
from repro.runtime.harness import CommitRun
from repro.sim import lastrun
from repro.types import SiteId


@dataclasses.dataclass(frozen=True)
class ScheduleOutcome:
    """Everything the explorer keeps from one executed schedule.

    Attributes:
        prefix: The forced choices this run was launched with.
        trail: Every decision actually taken, in order.
        canonical: ``trail`` with trailing defaults stripped — the
            minimal prefix that replays this exact run.
        hash: Content hash of (config identity, canonical prefix).
        violations: Invariant findings (empty = clean).
        faults: Crash/partition injections the hooks performed.
        blocked: Sites that ended blocked.
        outcomes: Per-site final outcome values, in site order.
    """

    prefix: Prefix
    trail: Prefix
    canonical: Prefix
    hash: str
    violations: tuple[InvariantViolation, ...]
    faults: FaultSummary
    blocked: tuple[SiteId, ...]
    outcomes: tuple[str, ...]

    @property
    def signature(self) -> tuple[str, ...]:
        """The run's violation signature: sorted distinct kinds."""
        return tuple(sorted({v.kind for v in self.violations}))


@dataclasses.dataclass
class ViolationRecord:
    """One distinct violation signature found during exploration.

    Attributes:
        signature: Sorted distinct violation kinds.
        count: How many explored schedules hit this signature.
        first: The first (unshrunk) offending schedule outcome.
        shrunk: Minimized canonical prefix reproducing the signature.
        shrunk_hash: Schedule hash of the minimized prefix.
        shrink_runs: Probe executions the shrinker spent.
        details: The violation descriptions from the *shrunk* run.
    """

    signature: tuple[str, ...]
    count: int
    first: ScheduleOutcome
    shrunk: Prefix
    shrunk_hash: str
    shrink_runs: int
    details: tuple[str, ...]


@dataclasses.dataclass
class ShardResult:
    """What one logical frontier shard explored."""

    shard: int
    schedules: int
    shrink_runs: int
    violations: list[ViolationRecord]


class Explorer:
    """Execute and search schedules for one exploration config.

    Building an explorer performs the expensive, run-independent work
    once: catalog build, reachability graph, static nonblocking
    verdict, committable classification, termination rule, and the
    optional runtime mutant.
    """

    def __init__(self, config: ExploreConfig) -> None:
        self.config = config
        self.spec = catalog.build(config.protocol, config.n_sites)
        self.runtime_spec = (
            apply_mutant(self.spec, config.mutant)
            if config.mutant is not None
            else self.spec
        )
        self.graph = build_state_graph(self.spec)
        report = check_nonblocking(self.spec, graph=self.graph)
        self.policy = InvariantPolicy(
            nonblocking=report.nonblocking,
            committable=dict(report.committable),
        )
        self.rule = TerminationRule(self.spec, graph=self.graph)

    # ------------------------------------------------------------------
    # Single-schedule execution
    # ------------------------------------------------------------------

    def run_one(
        self,
        prefix: Iterable[Choice] = (),
        rng: Optional[random.Random] = None,
        strict: bool = False,
    ) -> ScheduleOutcome:
        """Execute one schedule and check every applicable invariant."""
        prefix = tuple(prefix)
        lastrun.note(
            "explore_schedule",
            protocol=self.config.protocol,
            seed=self.config.seed,
            mutant=self.config.mutant,
            schedule_hash=schedule_hash(self.config, strip_defaults(prefix)),
            choices=len(prefix),
        )
        controller = ChoiceController(prefix=prefix, rng=rng, strict=strict)
        hooks = ExplorationHooks(
            controller,
            depth=self.config.depth,
            max_branch=self.config.max_branch,
            crash_budget=self.config.crash_budget,
            partitions=self.config.partitions,
        )
        run = CommitRun(
            self.runtime_spec,
            seed=self.config.seed,
            rule=self.rule,
            termination_mode=self.config.termination_mode,
            max_time=self.config.max_time,
            instrument=hooks.install,
        ).execute()
        faults = hooks.summary()
        violations = tuple(check_run(run, self.spec, self.policy, faults))
        trail = tuple(controller.trail)
        canonical = strip_defaults(trail)
        return ScheduleOutcome(
            prefix=prefix,
            trail=trail,
            canonical=canonical,
            hash=schedule_hash(self.config, canonical),
            violations=violations,
            faults=faults,
            blocked=tuple(run.blocked_sites),
            outcomes=tuple(
                run.reports[site].outcome.value for site in self.spec.sites
            ),
        )

    # ------------------------------------------------------------------
    # Tree expansion (DFS)
    # ------------------------------------------------------------------

    def expand(self, prefix_len: int, trail: Prefix) -> list[Prefix]:
        """Sibling prefixes branching off a recorded trail.

        For every decision at or beyond ``prefix_len`` (decisions
        *inside* the prefix were branched by an ancestor) and within
        the depth bound, each untried alternative yields a child prefix
        ``trail[:p] + (alternative,)``.
        """
        children: list[Prefix] = []
        limit = min(len(trail), self.config.depth)
        for position in range(prefix_len, limit):
            choice = trail[position]
            for alternative in range(choice.index + 1, choice.arity):
                children.append(
                    trail[:position]
                    + (Choice(choice.point, alternative, choice.arity),)
                )
        return children

    def _dfs(
        self,
        frontier: Iterable[Prefix],
        budget: int,
        observe: Callable[[ScheduleOutcome], None],
    ) -> int:
        """Bounded DFS from ``frontier``; returns schedules executed."""
        stack = list(frontier)
        stack.reverse()
        executed = 0
        while stack and executed < budget:
            prefix = stack.pop()
            outcome = self.run_one(prefix)
            executed += 1
            observe(outcome)
            children = self.expand(len(prefix), outcome.trail)
            children.reverse()
            stack.extend(children)
        return executed

    # ------------------------------------------------------------------
    # Sharded exploration
    # ------------------------------------------------------------------

    def _shard_budget(self, shard: int) -> int:
        base, extra = divmod(self.config.budget, self.config.shards)
        return base + (1 if shard < extra else 0)

    def _random_rng(self, index: int) -> random.Random:
        mixed = (self.config.seed * 2654435761 + index * 1000003) % 2**63
        return random.Random(mixed)

    def explore_shard(self, shard: int) -> ShardResult:
        """Explore one logical shard of the schedule space.

        Shards are defined by ``config.shards`` alone — the DFS
        frontier under the root schedule (or the index stripes of
        random mode) is dealt round-robin — so the union of all shards
        is the same schedule set no matter how many worker processes
        execute them, which is what keeps ``--workers N`` byte-identical
        to the serial path.
        """
        if not 0 <= shard < self.config.shards:
            raise ValueError(
                f"shard {shard} out of range for {self.config.shards} shards"
            )
        collector = _Collector(self)
        budget = self._shard_budget(shard)
        executed = 0
        if self.config.mode == "random":
            for index in range(shard, self.config.budget, self.config.shards):
                if executed >= budget:
                    break
                outcome = self.run_one((), rng=self._random_rng(index))
                executed += 1
                collector.observe(outcome)
        else:
            # Every shard re-runs the root to learn the frontier; only
            # shard 0 *reports* it (and charges it against its budget).
            root = self.run_one(())
            if shard == 0 and budget > 0:
                executed += 1
                collector.observe(root)
            frontier = self.expand(0, root.trail)[shard :: self.config.shards]
            executed += self._dfs(
                frontier, budget - executed, collector.observe
            )
        return ShardResult(
            shard=shard,
            schedules=executed,
            shrink_runs=collector.shrink_runs,
            violations=collector.records,
        )

    # ------------------------------------------------------------------
    # Shrinking
    # ------------------------------------------------------------------

    def shrink_violation(
        self, outcome: ScheduleOutcome
    ) -> tuple[ShrinkResult, ScheduleOutcome]:
        """Minimize a violating schedule, preserving its signature.

        Returns the shrink result plus the re-executed outcome of the
        minimized prefix (whose violations describe the counterexample
        the artifact documents).
        """
        target = outcome.signature
        if not target:
            raise ValueError("cannot shrink a clean schedule")

        def probe(candidate: Prefix) -> Optional[Prefix]:
            probed = self.run_one(candidate)
            if probed.signature == target:
                return probed.canonical
            return None

        result = shrink(outcome.canonical, probe)
        final = self.run_one(result.prefix)
        return result, final


class _Collector:
    """Aggregates violating outcomes by signature, shrinking the first."""

    def __init__(self, explorer: Explorer) -> None:
        self._explorer = explorer
        self._by_signature: dict[tuple[str, ...], ViolationRecord] = {}
        self.shrink_runs = 0

    @property
    def records(self) -> list[ViolationRecord]:
        return sorted(self._by_signature.values(), key=lambda r: r.signature)

    def observe(self, outcome: ScheduleOutcome) -> None:
        signature = outcome.signature
        if not signature:
            return
        record = self._by_signature.get(signature)
        if record is not None:
            record.count += 1
            return
        result, final = self._explorer.shrink_violation(outcome)
        # +1 for the confirmation run of the minimized prefix.
        self.shrink_runs += result.probes + 1
        self._by_signature[signature] = ViolationRecord(
            signature=signature,
            count=1,
            first=outcome,
            shrunk=result.prefix,
            shrunk_hash=schedule_hash(self._explorer.config, result.prefix),
            shrink_runs=result.probes + 1,
            details=tuple(v.describe() for v in final.violations),
        )
