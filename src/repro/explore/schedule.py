"""Schedule identity and the JSON replay-artifact format.

A *schedule* is an :class:`ExploreConfig` plus a choice prefix — the
complete recipe for re-executing one explored run.  Violating schedules
are serialized as replay artifacts (``schema`` 1, sorted-key JSON) that
the ``repro replay`` CLI subcommand and the regression corpus under
``tests/corpus/`` re-execute strictly; see ``docs/EXPLORATION.md`` for
the format and the promotion workflow.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from typing import Any, Optional

from repro.errors import ExploreConfigError
from repro.explore.choices import Choice, Prefix, normalize_prefix

#: Replay-artifact schema version; bump on incompatible layout changes.
REPLAY_SCHEMA = 1

#: Marker distinguishing replay artifacts from other JSON lying around.
REPLAY_KIND = "repro.explore.replay"

#: Exploration strategies.
MODES = ("dfs", "random")


@dataclasses.dataclass(frozen=True)
class ExploreConfig:
    """Everything that parameterizes one exploration (or replay).

    Attributes:
        protocol: Catalog protocol name (``"3pc-central"``).
        n_sites: Number of participating sites.
        seed: Root seed — drives the runtime's random streams and, in
            random mode, the per-schedule fallback choices.
        budget: Maximum schedules to execute across the exploration.
        depth: Number of leading decisions eligible for branching (and
            for fault choice points); beyond it every decision silently
            defaults, which bounds both the tree and trail lengths.
        max_branch: Cap on the arity of ordering choice points (the
            first ``max_branch`` ready events are considered).
        crash_budget: Crash decision points offered per run.
        partitions: Offer a partition decision point (off by default —
            partitions violate the paper's network assumptions, and
            3PC's split-decision under them is a known result).
        mutant: Optional registered runtime mutant to execute (the
            invariants still audit against the unmutated spec).
        termination_mode: Termination-protocol variant for the runtime.
        max_time: Virtual-time bound per run.
        mode: ``"dfs"`` (bounded systematic) or ``"random"`` (seeded).
        shards: Number of logical frontier shards.  Fixed by config —
            never by worker count — so output is byte-identical for any
            ``--workers`` value.
    """

    protocol: str
    n_sites: int
    seed: int = 0
    budget: int = 1000
    depth: int = 40
    max_branch: int = 3
    crash_budget: int = 1
    partitions: bool = False
    mutant: Optional[str] = None
    termination_mode: str = "standard"
    max_time: float = 1000.0
    mode: str = "dfs"
    shards: int = 4

    def __post_init__(self) -> None:
        if self.n_sites < 2:
            raise ExploreConfigError("exploration needs at least 2 sites")
        if self.budget < 1:
            raise ExploreConfigError("budget must be >= 1")
        if self.depth < 1:
            raise ExploreConfigError("depth must be >= 1")
        if self.max_branch < 2:
            raise ExploreConfigError("max_branch must be >= 2")
        if self.crash_budget < 0:
            raise ExploreConfigError("crash_budget must be >= 0")
        if self.mode not in MODES:
            raise ExploreConfigError(
                f"unknown mode {self.mode!r}; choose from {MODES}"
            )
        if self.shards < 1:
            raise ExploreConfigError("shards must be >= 1")

    def to_json(self) -> dict[str, Any]:
        """Plain-JSON representation (stable keys)."""
        return {
            "protocol": self.protocol,
            "n_sites": self.n_sites,
            "seed": self.seed,
            "budget": self.budget,
            "depth": self.depth,
            "max_branch": self.max_branch,
            "crash_budget": self.crash_budget,
            "partitions": self.partitions,
            "mutant": self.mutant,
            "termination_mode": self.termination_mode,
            "max_time": self.max_time,
            "mode": self.mode,
            "shards": self.shards,
        }

    @classmethod
    def from_json(cls, record: dict[str, Any]) -> "ExploreConfig":
        """Inverse of :meth:`to_json`; unknown keys are rejected."""
        fields = {field.name for field in dataclasses.fields(cls)}
        unknown = set(record) - fields
        if unknown:
            raise ExploreConfigError(
                f"unknown explore config keys: {sorted(unknown)}"
            )
        return cls(**record)


def schedule_hash(config: ExploreConfig, prefix: Prefix) -> str:
    """Content hash naming one schedule (config + forced choices).

    The hash covers only run-identity fields — exploration bookkeeping
    (budget, shards, mode) does not change what a single schedule
    executes, so it is excluded; two artifacts that replay identically
    hash identically.
    """
    identity = {
        "protocol": config.protocol,
        "n_sites": config.n_sites,
        "seed": config.seed,
        "depth": config.depth,
        "max_branch": config.max_branch,
        "crash_budget": config.crash_budget,
        "partitions": config.partitions,
        "mutant": config.mutant,
        "termination_mode": config.termination_mode,
        "max_time": config.max_time,
        "choices": [choice.to_json() for choice in prefix],
    }
    material = json.dumps(identity, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(material.encode()).hexdigest()[:12]


@dataclasses.dataclass(frozen=True)
class ReplayArtifact:
    """A serialized counterexample (or witness) schedule.

    Attributes:
        config: The exploration config the schedule runs under.
        schedule: The forced choice prefix.
        expect_verdict: ``"violation"`` or ``"clean"`` — what replaying
            this schedule should produce *today*.  A fixed bug flips a
            corpus entry to ``"clean"``; a documented model limitation
            (3PC under partition) stays ``"violation"``.
        expect_kinds: Violation kinds the replay must reproduce
            (subset check; empty for ``"clean"`` artifacts).
        expect_blocked: When not ``None``, assert that the replayed run
            did (``True``) / did not (``False``) leave operational
            sites blocked — how 2PC's expected blocking is pinned
            without calling it a violation.
        note: Free-text provenance (what bug, which session, why kept).
    """

    config: ExploreConfig
    schedule: Prefix
    expect_verdict: str = "violation"
    expect_kinds: tuple[str, ...] = ()
    expect_blocked: Optional[bool] = None
    note: str = ""

    def __post_init__(self) -> None:
        if self.expect_verdict not in ("violation", "clean"):
            raise ExploreConfigError(
                f"expect_verdict must be 'violation' or 'clean', "
                f"got {self.expect_verdict!r}"
            )

    @property
    def hash(self) -> str:
        """The schedule's content hash (artifact file naming)."""
        return schedule_hash(self.config, self.schedule)

    def to_json(self) -> str:
        """Serialize as deterministic, human-diffable JSON."""
        record = {
            "schema": REPLAY_SCHEMA,
            "kind": REPLAY_KIND,
            "hash": self.hash,
            "config": self.config.to_json(),
            "schedule": [choice.to_json() for choice in self.schedule],
            "expect": {
                "verdict": self.expect_verdict,
                "kinds": list(self.expect_kinds),
                "blocked": self.expect_blocked,
            },
            "note": self.note,
        }
        return json.dumps(record, indent=2, sort_keys=True) + "\n"

    @classmethod
    def from_json(cls, text: str) -> "ReplayArtifact":
        """Parse and validate an artifact written by :meth:`to_json`."""
        record = json.loads(text)
        if record.get("kind") != REPLAY_KIND:
            raise ExploreConfigError(
                f"not a replay artifact (kind={record.get('kind')!r})"
            )
        if record.get("schema") != REPLAY_SCHEMA:
            raise ExploreConfigError(
                f"unsupported replay schema {record.get('schema')!r} "
                f"(this build reads schema {REPLAY_SCHEMA})"
            )
        expect = record.get("expect", {})
        artifact = cls(
            config=ExploreConfig.from_json(record["config"]),
            schedule=normalize_prefix(record.get("schedule", ())),
            expect_verdict=expect.get("verdict", "violation"),
            expect_kinds=tuple(expect.get("kinds", ())),
            expect_blocked=expect.get("blocked"),
            note=str(record.get("note", "")),
        )
        recorded_hash = record.get("hash")
        if recorded_hash is not None and recorded_hash != artifact.hash:
            raise ExploreConfigError(
                f"artifact hash mismatch: file says {recorded_hash}, "
                f"content hashes to {artifact.hash} (hand-edited?)"
            )
        return artifact

    def save(self, path: str) -> None:
        """Write the artifact to ``path``."""
        with open(path, "w") as handle:
            handle.write(self.to_json())

    @classmethod
    def load(cls, path: str) -> "ReplayArtifact":
        """Read an artifact previously written by :meth:`save`."""
        with open(path) as handle:
            return cls.from_json(handle.read())
