"""On-disk artifact cache for completed sweep tasks.

One JSON file per task, named by experiment id, seed, and the task's
:meth:`~repro.parallel.tasks.SweepTask.cache_key` — a hash over
(experiment id, seed, config, code version).  Because the code version
is part of the key, editing any ``repro`` source orphans old entries
rather than replaying them; orphans are just dead files, never wrong
answers.  Corrupt or mismatched files are treated as misses.

Writes are atomic (temp file + ``os.replace``) so a sweep killed
mid-store can never leave a half-written artifact that later loads.
"""

from __future__ import annotations

import json
import os
import pathlib
from typing import Any, Optional, Union

from repro.parallel.tasks import PAYLOAD_SCHEMA, SweepTask


class SweepCache:
    """Directory-backed store of completed task payloads.

    Args:
        root: Cache directory; created (with parents) if missing.
    """

    def __init__(self, root: Union[str, pathlib.Path]) -> None:
        self.root = pathlib.Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    def path_for(self, task: SweepTask) -> pathlib.Path:
        """Where this task's artifact lives (exists or not)."""
        name = f"{task.experiment_id}_s{task.seed}_{task.cache_key()}.json"
        return self.root / name

    def load(self, task: SweepTask) -> Optional[dict[str, Any]]:
        """Return the cached payload, or ``None`` on any kind of miss."""
        path = self.path_for(task)
        try:
            document = json.loads(path.read_text())
        except (OSError, ValueError):
            return None
        if (
            not isinstance(document, dict)
            or document.get("cache_key") != task.cache_key()
            or not isinstance(document.get("payload"), dict)
            or document["payload"].get("schema") != PAYLOAD_SCHEMA
        ):
            return None
        return document["payload"]

    def store(self, task: SweepTask, payload: dict[str, Any]) -> pathlib.Path:
        """Atomically persist one task's payload; returns its path."""
        path = self.path_for(task)
        document = {"cache_key": task.cache_key(), "payload": payload}
        tmp = path.with_suffix(".tmp")
        tmp.write_text(json.dumps(document, sort_keys=True, indent=1) + "\n")
        os.replace(tmp, path)
        return path

    def entry_count(self) -> int:
        """Number of artifacts currently on disk.

        Deliberately a method, not ``__len__``: a ``__len__`` would make
        an *empty* cache falsy, silently disabling any ``if cache:``
        guard that meant ``if cache is not None:``.
        """
        return sum(1 for _ in self.root.glob("*.json"))
