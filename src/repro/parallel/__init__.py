"""Parallel sweep runner: fan experiment shards across worker processes.

The scaling substrate for every sweep-shaped workload in this repo
(see ``docs/PARALLEL.md``):

* :mod:`repro.parallel.tasks` — task identity, ordering keys, and the
  (experiment, seed, config, code-version) cache hash.
* :mod:`repro.parallel.plan` — default per-experiment shard plans.
* :mod:`repro.parallel.worker` — the spawn-safe worker entry point
  producing canonical JSON payloads.
* :mod:`repro.parallel.cache` — the on-disk artifact cache.
* :mod:`repro.parallel.merge` — deterministic merging (task-key order,
  disjoint ``msg_id`` spans in combined traces).
* :mod:`repro.parallel.runner` — the orchestrator; ``workers=1`` is
  the serial reference path, ``workers=N`` must (and does) produce
  byte-identical output.
"""

from repro.parallel.cache import SweepCache
from repro.parallel.merge import MergedSweep, merge_payloads, merge_traces
from repro.parallel.plan import plan_sweep, sweep_tasks
from repro.parallel.runner import SweepResult, SweepRunner, TaskOutcome
from repro.parallel.tasks import SweepTask, code_version

__all__ = [
    "MergedSweep",
    "SweepCache",
    "SweepResult",
    "SweepRunner",
    "SweepTask",
    "TaskOutcome",
    "code_version",
    "merge_payloads",
    "merge_traces",
    "plan_sweep",
    "sweep_tasks",
]
