"""The parallel sweep runner: fan tasks out, merge results in key order.

Execution model:

* ``workers <= 1`` runs every task in-process, in task-key order —
  the *serial path*.
* ``workers > 1`` fans uncached tasks across a ``spawn`` process pool
  (shared-nothing: each worker freshly imports ``repro``), then merges
  by task key.  Completion order never influences output, so the
  parallel path is byte-identical to the serial one.

Either way, tasks already present in the optional
:class:`~repro.parallel.cache.SweepCache` are not re-executed: their
payloads are canonical JSON, indistinguishable from fresh ones.

Hung workers are bounded by ``task_timeout``: results are collected in
task order and each wait is capped, so a worker that never returns
fails the sweep within roughly one timeout instead of stalling it
forever (the pool is terminated, not joined).
"""

from __future__ import annotations

import dataclasses
import multiprocessing
import time
from typing import Any, Optional, Sequence

from repro.errors import SweepConfigError, SweepTaskError, SweepTimeoutError
from repro.parallel.cache import SweepCache
from repro.parallel.merge import MergedSweep, merge_payloads
from repro.parallel.tasks import SweepTask
from repro.parallel.worker import run_task


@dataclasses.dataclass
class TaskOutcome:
    """How one task's payload was obtained.

    Attributes:
        task: The task.
        payload: Its canonical artifact payload.
        cached: Whether the payload came from the artifact cache.
        elapsed_s: Worker-side wall clock (0.0 for cache hits).
    """

    task: SweepTask
    payload: dict[str, Any]
    cached: bool
    elapsed_s: float


@dataclasses.dataclass
class SweepResult:
    """A finished sweep: merged artifact plus (non-canonical) timing.

    Everything under :attr:`merged` is deterministic in the task list
    alone; :attr:`wall_clock_s`, per-task timings, and
    :attr:`workers` describe this particular execution and must never
    be folded into the canonical output.
    """

    outcomes: list[TaskOutcome]
    merged: MergedSweep
    workers: int
    wall_clock_s: float

    @property
    def report(self) -> str:
        """The merged human-readable report (canonical)."""
        return self.merged.report

    def timing(self) -> dict[str, Any]:
        """Execution-specific timing document (non-canonical)."""
        return {
            "workers": self.workers,
            "wall_clock_s": self.wall_clock_s,
            "tasks": [
                {
                    "task": outcome.task.describe(),
                    "cached": outcome.cached,
                    "elapsed_s": outcome.elapsed_s,
                }
                for outcome in self.outcomes
            ],
        }


class SweepRunner:
    """Execute sweep tasks with optional parallelism and caching.

    Args:
        workers: Process count; ``1`` (default) is the in-process
            serial path.
        cache: Optional artifact cache consulted before executing and
            updated after.
        task_timeout: Upper bound, in real seconds, on waiting for any
            single pending task in the parallel path (hung-worker
            failsafe).  ``None`` waits forever.  Ignored on the serial
            path, where a hang is directly visible.
    """

    def __init__(
        self,
        workers: int = 1,
        cache: Optional[SweepCache] = None,
        task_timeout: Optional[float] = None,
    ) -> None:
        if workers < 1:
            raise SweepConfigError(f"workers must be >= 1, got {workers}")
        self.workers = workers
        self.cache = cache
        self.task_timeout = task_timeout

    def run(self, tasks: Sequence[SweepTask]) -> SweepResult:
        """Execute ``tasks`` and return the merged, ordered result.

        Raises:
            SweepConfigError: On an empty plan or duplicate task keys.
            SweepTaskError: If a task raises in a worker.
            SweepTimeoutError: If the parallel path waits longer than
                ``task_timeout`` on one pending task.
        """
        if not tasks:
            raise SweepConfigError("sweep plan is empty")
        ordered = sorted(tasks, key=lambda task: task.task_key)
        keys = [task.task_key for task in ordered]
        if len(set(keys)) != len(keys):
            duplicates = sorted(
                {key[0] for key in keys if keys.count(key) > 1}
            )
            raise SweepConfigError(
                f"duplicate task keys in sweep plan (experiments: "
                f"{', '.join(duplicates)})"
            )

        start = time.perf_counter()
        outcomes: dict[tuple, TaskOutcome] = {}
        to_run: list[SweepTask] = []
        for task in ordered:
            payload = self.cache.load(task) if self.cache is not None else None
            if payload is not None:
                outcomes[task.task_key] = TaskOutcome(
                    task=task, payload=payload, cached=True, elapsed_s=0.0
                )
            else:
                to_run.append(task)

        if to_run:
            if self.workers > 1 and len(to_run) > 1:
                fresh = self._run_parallel(to_run)
            else:
                fresh = self._run_serial(to_run)
            for outcome in fresh:
                if self.cache is not None:
                    self.cache.store(outcome.task, outcome.payload)
                outcomes[outcome.task.task_key] = outcome

        ordered_outcomes = [outcomes[task.task_key] for task in ordered]
        merged = merge_payloads(
            [(outcome.task, outcome.payload) for outcome in ordered_outcomes]
        )
        return SweepResult(
            outcomes=ordered_outcomes,
            merged=merged,
            workers=self.workers,
            wall_clock_s=time.perf_counter() - start,
        )

    def _run_serial(self, tasks: Sequence[SweepTask]) -> list[TaskOutcome]:
        outcomes = []
        for task in tasks:
            try:
                reply = run_task(task)
            except Exception as error:
                raise SweepTaskError(
                    f"task {task.describe()} failed: {error}"
                ) from error
            outcomes.append(
                TaskOutcome(
                    task=task,
                    payload=reply["payload"],
                    cached=False,
                    elapsed_s=reply["elapsed_s"],
                )
            )
        return outcomes

    def _run_parallel(self, tasks: Sequence[SweepTask]) -> list[TaskOutcome]:
        context = multiprocessing.get_context("spawn")
        pool = context.Pool(processes=min(self.workers, len(tasks)))
        try:
            handles = [
                (task, pool.apply_async(run_task, (task,))) for task in tasks
            ]
            outcomes = []
            for task, handle in handles:
                try:
                    reply = handle.get(timeout=self.task_timeout)
                except multiprocessing.TimeoutError:
                    pool.terminate()
                    raise SweepTimeoutError(
                        f"task {task.describe()} did not complete within "
                        f"{self.task_timeout}s; pool terminated"
                    ) from None
                except Exception as error:
                    pool.terminate()
                    raise SweepTaskError(
                        f"task {task.describe()} failed in worker: {error}"
                    ) from error
                outcomes.append(
                    TaskOutcome(
                        task=task,
                        payload=reply["payload"],
                        cached=False,
                        elapsed_s=reply["elapsed_s"],
                    )
                )
            pool.close()
            return outcomes
        finally:
            pool.terminate()
            pool.join()
