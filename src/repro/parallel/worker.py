"""The spawn-safe worker entry point.

:func:`run_task` is what executes inside each pool process: it runs
one experiment shard and returns a *payload* — a plain-JSON dict that
fully describes the shard's artifact.  Payloads are normalized through
a JSON round-trip so a freshly computed payload is byte-identical to
one reloaded from the artifact cache, which in turn keeps merged sweep
output independent of where each result came from.

Workers are shared-nothing: the only inputs are the pickled
:class:`~repro.parallel.tasks.SweepTask` and the worker's own fresh
import of ``repro`` (spawn start method — no inherited interpreter
state, so results cannot depend on parent-process history).
"""

from __future__ import annotations

import inspect
import json
import time
from typing import Any

from repro.errors import SweepConfigError
from repro.parallel.tasks import PAYLOAD_SCHEMA, SweepTask
from repro.sim.tracing import _json_safe


def build_payload(task: SweepTask) -> dict[str, Any]:
    """Execute ``task`` and return its canonical payload dict.

    The payload carries everything the merge step needs — rendered
    report, structured data, metrics-registry snapshot, per-run trace
    JSONL — and nothing nondeterministic (no timings, no host info).
    """
    if task.experiment_id == "EXPLORE":
        # Reserved pseudo-experiment: schedule-exploration shards ride
        # the sweep runner (caching, spawn isolation, ordered merge)
        # without registering as a report experiment.
        from repro.explore.shard import build_explore_payload

        return build_explore_payload(task)

    from repro.experiments.registry import EXPERIMENTS, run_experiment

    config = task.config_dict()
    runner = EXPERIMENTS.get(task.experiment_id)
    if runner is not None and "seed" in inspect.signature(runner).parameters:
        config.setdefault("seed", task.seed)
    elif task.seed != 0:
        raise SweepConfigError(
            f"experiment {task.experiment_id} does not accept a seed, "
            f"but task requests seed={task.seed}"
        )
    result = run_experiment(task.experiment_id, **config)
    payload = {
        "schema": PAYLOAD_SCHEMA,
        "experiment_id": result.experiment_id,
        "seed": task.seed,
        "config": task.config_jsonable(),
        "title": result.title,
        "render": result.render(),
        "data": _json_safe(result.data),
        "notes": list(result.notes),
        "registry": result.registry.to_dict() if result.registry else None,
        "traces": [trace.to_jsonl() for trace in result.traces],
    }
    # Normalize through JSON so fresh payloads equal cache-reloaded
    # ones exactly (tuples become lists, keys become strings).
    return json.loads(json.dumps(payload, sort_keys=True))


def run_task(task: SweepTask) -> dict[str, Any]:
    """Pool entry point: payload plus the worker-side wall clock.

    The elapsed time rides outside the payload so timing (inherently
    nondeterministic) never contaminates the canonical artifact.
    """
    start = time.perf_counter()
    payload = build_payload(task)
    return {"payload": payload, "elapsed_s": time.perf_counter() - start}
