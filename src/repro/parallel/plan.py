"""Default sweep plans: how each experiment shards into tasks.

An experiment with a decomposable axis (site counts for Q2, protocol ×
site count for Q1) gets a sharder that splits it into several
independent tasks; everything else becomes a single-task plan.  Plans
are plain lists of :class:`~repro.parallel.tasks.SweepTask`, so custom
sweeps (benchmarks, tests) can build their own instead.
"""

from __future__ import annotations

from typing import Callable, Iterable

from repro.errors import ReproError
from repro.experiments.registry import EXPERIMENTS
from repro.parallel.tasks import SweepTask


def _q1_shards() -> list[SweepTask]:
    """Q1 sharded by (protocol, site count)."""
    return [
        SweepTask.make(
            "Q1", config={"protocols": (protocol,), "n_sites": n_sites}
        )
        for protocol in ("2pc-central", "3pc-central")
        for n_sites in (4, 5, 6)
    ]


def _q2_shards() -> list[SweepTask]:
    """Q2 sharded by site count.

    Traces are captured only on the default artifact range (n <= 16);
    larger shards exist to give the sweep real work, and their traces
    would dominate serialization cost.
    """
    return [
        SweepTask.make(
            "Q2",
            config={"site_counts": (n,), "capture_traces": n <= 16},
        )
        for n in (2, 4, 8, 12, 16, 24, 32)
    ]


_SHARDERS: dict[str, Callable[[], list[SweepTask]]] = {
    "Q1": _q1_shards,
    "Q2": _q2_shards,
}


def sweep_tasks(experiment_id: str) -> list[SweepTask]:
    """The default sweep plan for one experiment id.

    Raises:
        ReproError: For an unknown id.
    """
    key = experiment_id.upper()
    if key in _SHARDERS:
        return _SHARDERS[key]()
    if key in EXPERIMENTS:
        return [SweepTask.make(key)]
    known = ", ".join(sorted(EXPERIMENTS))
    raise ReproError(f"unknown experiment {experiment_id!r}; known: {known}")


def plan_sweep(experiment_ids: Iterable[str]) -> list[SweepTask]:
    """Concatenate default plans for several ids (``'all'`` = every id)."""
    ids: list[str] = []
    for experiment_id in experiment_ids:
        if experiment_id.lower() == "all":
            ids.extend(EXPERIMENTS)
        else:
            ids.append(experiment_id)
    tasks: list[SweepTask] = []
    for experiment_id in ids:
        tasks.extend(sweep_tasks(experiment_id))
    return tasks
