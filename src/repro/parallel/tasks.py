"""Sweep task identity: keys, configs, and cache hashing.

A :class:`SweepTask` names one (experiment, seed, config) point of a
sweep.  Tasks are frozen and hashable so they can cross process
boundaries (spawn workers pickle them), key dictionaries, and sort
deterministically — the merge step orders results by
:attr:`SweepTask.task_key`, never by completion order, which is what
makes parallel output byte-identical to the serial path.

The artifact cache keys on :meth:`SweepTask.cache_key`, a digest of
(experiment id, seed, config, code version); any change to the
``repro`` source invalidates every cached entry via
:func:`code_version`.
"""

from __future__ import annotations

import dataclasses
import functools
import hashlib
import json
import pathlib
from typing import Any, Mapping, Optional

import repro

#: Bumped whenever the payload layout changes, invalidating old caches.
PAYLOAD_SCHEMA = 1

#: Frozen config representation: sorted (key, value) pairs.
FrozenConfig = tuple[tuple[str, Any], ...]


def _freeze_value(value: Any) -> Any:
    """Recursively convert lists/dicts to hashable tuples."""
    if isinstance(value, (list, tuple)):
        return tuple(_freeze_value(item) for item in value)
    if isinstance(value, Mapping):
        return tuple(
            (str(key), _freeze_value(val)) for key, val in sorted(value.items())
        )
    return value


def _thaw_value(value: Any) -> Any:
    """Undo :func:`_freeze_value` enough for JSON (tuples -> lists)."""
    if isinstance(value, tuple):
        return [_thaw_value(item) for item in value]
    return value


@functools.lru_cache(maxsize=1)
def code_version() -> str:
    """Digest of every ``repro`` source file, as a cache-key component.

    Any edit to any module changes the version, so stale artifacts can
    never be replayed against different code.
    """
    root = pathlib.Path(repro.__file__).resolve().parent
    digest = hashlib.sha256()
    for path in sorted(root.rglob("*.py")):
        digest.update(str(path.relative_to(root)).encode())
        digest.update(b"\0")
        digest.update(path.read_bytes())
        digest.update(b"\0")
    return digest.hexdigest()[:12]


@dataclasses.dataclass(frozen=True)
class SweepTask:
    """One (experiment, seed, config) point of a sweep.

    Attributes:
        experiment_id: Registry id, upper-case (``"Q2"``).
        seed: Root seed forwarded to runners that accept one; recorded
            in the task identity either way.
        config: Frozen keyword overrides for the experiment runner.
    """

    experiment_id: str
    seed: int = 0
    config: FrozenConfig = ()

    @classmethod
    def make(
        cls,
        experiment_id: str,
        seed: int = 0,
        config: Optional[Mapping[str, Any]] = None,
    ) -> "SweepTask":
        """Build a task from a plain config mapping."""
        frozen: FrozenConfig = ()
        if config:
            frozen = tuple(
                (str(key), _freeze_value(value))
                for key, value in sorted(config.items())
            )
        return cls(experiment_id=experiment_id.upper(), seed=seed, config=frozen)

    def config_dict(self) -> dict[str, Any]:
        """The config as a plain dict (tuple values preserved)."""
        return dict(self.config)

    def config_jsonable(self) -> dict[str, Any]:
        """The config with tuples thawed to lists, for JSON documents."""
        return {key: _thaw_value(value) for key, value in self.config}

    @property
    def task_key(self) -> tuple[str, int, str]:
        """Total deterministic ordering key for merge order."""
        return (
            self.experiment_id,
            self.seed,
            json.dumps(self.config_jsonable(), sort_keys=True),
        )

    def cache_key(self) -> str:
        """Content hash naming this task's cached artifact."""
        material = json.dumps(
            {
                "schema": PAYLOAD_SCHEMA,
                "code_version": code_version(),
                "experiment_id": self.experiment_id,
                "seed": self.seed,
                "config": self.config_jsonable(),
            },
            sort_keys=True,
        )
        return hashlib.sha256(material.encode()).hexdigest()[:16]

    def describe(self) -> str:
        """Short human-readable id used in reports and merged traces."""
        parts = [self.experiment_id, f"seed={self.seed}"]
        if self.config:
            rendered = ",".join(
                f"{key}={_thaw_value(value)}" for key, value in self.config
            )
            parts.append(rendered)
        return " ".join(parts)
