"""Deterministic merging of per-task sweep artifacts.

All merge functions take payloads **already ordered by task key** and
are pure: same payloads in, same bytes out, regardless of how many
workers produced them or in which order they finished.  This module is
the whole determinism story of the parallel runner — the pool may race,
the merge never does.

Trace merging rebases each run's ``msg_id`` values onto a shared
namespace (each trace's ids are offset past the previous trace's
maximum) and stamps every entry with its task id, so causal
send→deliver spans stay disjoint and attributable in the combined
stream (see ``docs/OBSERVABILITY.md``).
"""

from __future__ import annotations

import dataclasses
import json
from typing import Any, Optional, Sequence

from repro.metrics.registry import MetricsRegistry
from repro.parallel.tasks import PAYLOAD_SCHEMA, SweepTask
from repro.sim.tracing import TraceEntry, TraceLog

#: Schema of the merged sweep sidecar document.
SWEEP_SIDECAR_SCHEMA = 1


@dataclasses.dataclass
class MergedSweep:
    """The combined, deterministic artifact of one sweep.

    Attributes:
        report: Human-readable rendering, one section per task in
            task-key order.
        registry: All per-task metrics registries folded together.
        trace: All attached per-run traces concatenated in task order
            with disjoint ``msg_id`` spans.
        sidecar: Machine-readable document (sorted keys) mirroring the
            per-task structured data.
    """

    report: str
    registry: MetricsRegistry
    trace: TraceLog
    sidecar: dict[str, Any]

    def sidecar_json(self) -> str:
        """Deterministic JSON rendering of :attr:`sidecar`."""
        return json.dumps(self.sidecar, indent=2, sort_keys=True)


def merge_traces(
    chunks: Sequence[tuple[str, str]],
) -> TraceLog:
    """Merge ``(task_id, jsonl)`` trace chunks into one log.

    Entries keep their per-run virtual timestamps and arrive in chunk
    order (runs are concatenated, not interleaved — each run has its
    own virtual clock, so cross-run time ordering would be
    meaningless).  Every entry gains a ``task`` field, and ``msg_id``
    values are offset so no two runs share an id: within the merged
    log, a ``msg_id`` names exactly one send→terminal span.
    """
    merged = TraceLog()
    offset = 0
    for task_id, jsonl in chunks:
        chunk = TraceLog.from_jsonl(jsonl)
        max_id = -1
        for entry in chunk:
            data = dict(entry.data)
            msg_id = data.get("msg_id")
            if msg_id is not None:
                max_id = max(max_id, int(msg_id))
                data["msg_id"] = int(msg_id) + offset
            data["task"] = task_id
            merged.append(
                TraceEntry(
                    time=entry.time,
                    category=entry.category,
                    site=entry.site,
                    detail=entry.detail,
                    data=data,
                )
            )
        offset += max_id + 1
    return merged


def merge_payloads(
    ordered: Sequence[tuple[SweepTask, dict[str, Any]]],
) -> MergedSweep:
    """Combine per-task payloads (pre-sorted by task key) into one artifact."""
    sections: list[str] = []
    registry = MetricsRegistry()
    chunks: list[tuple[str, str]] = []
    tasks_doc: list[dict[str, Any]] = []
    for task, payload in ordered:
        task_id = task.describe()
        sections.append(f"--- {task_id} ---\n\n{payload['render']}")
        registry.inc("sweep_tasks_total", experiment=task.experiment_id)
        if payload.get("registry") is not None:
            registry.merge(MetricsRegistry.from_dict(payload["registry"]))
        for index, jsonl in enumerate(payload.get("traces", ())):
            chunks.append((f"{task_id} run={index}", jsonl))
        tasks_doc.append(
            {
                "experiment_id": payload["experiment_id"],
                "seed": payload["seed"],
                "config": payload["config"],
                "title": payload["title"],
                "data": payload["data"],
                "notes": payload["notes"],
            }
        )
    sidecar = {
        "schema": SWEEP_SIDECAR_SCHEMA,
        "payload_schema": PAYLOAD_SCHEMA,
        "tasks": tasks_doc,
        "metrics": registry.to_dict(),
    }
    return MergedSweep(
        report="\n\n".join(sections),
        registry=registry,
        trace=merge_traces(chunks),
        sidecar=sidecar,
    )
