"""ASCII swimlane rendering of simulation traces.

One column per site, one row per (time, event) group.  Event glyphs:

====================  =====================================
trace category        glyph
====================  =====================================
``engine.transition``  the new local state, e.g. ``->w``
``engine.forced_*``    ``=>s`` (termination/recovery moved us)
``net.send``           ``kind>`` (message leaving)
``net.deliver``        ``>kind`` (message arriving)
``site.crash``         ``CRASH``
``site.restart``       ``UP``
``site.decided``       ``COMMIT!`` / ``ABORT!``
``term.*``             ``[term …]`` annotations
``recovery.*``         ``[rec …]`` annotations
====================  =====================================
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.sim.tracing import TraceEntry, TraceLog
from repro.types import SiteId

#: Categories rendered by default (network sends are noisy; deliveries
#: show the information flow).
DEFAULT_CATEGORIES = (
    "engine.transition",
    "engine.forced_state",
    "engine.forced_outcome",
    "engine.partial_crash",
    "net.deliver",
    "site.crash",
    "site.restart",
    "site.decided",
    "term.round",
    "term.blocked",
    "recovery.in_doubt",
    "recovery.resolved",
    "recovery.unilateral_abort",
    "recovery.total_failure",
)


def _glyph(entry: TraceEntry) -> Optional[str]:
    category = entry.category
    if category == "engine.transition":
        state = entry.data.get("state", "?")
        return f"->{state}"
    if category == "engine.forced_state":
        return f"=>{entry.data.get('state', '?')}"
    if category == "engine.forced_outcome":
        return f"=>{entry.data.get('state', '?')}!"
    if category == "engine.partial_crash":
        return "CRASH*"
    if category == "net.deliver":
        detail = entry.detail
        payload = detail.split(": ", 1)[-1] if ": " in detail else detail
        return f">{payload[:10]}"
    if category == "site.crash":
        return "CRASH"
    if category == "site.restart":
        return "UP"
    if category == "site.decided":
        outcome = entry.detail.split(" ", 1)[0].upper()
        return f"{outcome}!"
    if category.startswith("term."):
        return f"[{category.split('.', 1)[1]}]"
    if category.startswith("recovery."):
        return f"[rec:{category.split('.', 1)[1]}]"
    return None


def render_swimlanes(
    trace: TraceLog,
    sites: Iterable[SiteId],
    categories: Iterable[str] = DEFAULT_CATEGORIES,
    width: int = 14,
) -> str:
    """Render a trace as per-site swimlanes.

    Args:
        trace: The trace to render.
        sites: Site ids, one lane each (left to right).
        categories: Trace categories to include.
        width: Column width per lane.

    Returns:
        The diagram as a multi-line string, header row first.
    """
    lanes = list(sites)
    wanted = set(categories)
    index = {site: i for i, site in enumerate(lanes)}

    header = "time".ljust(9) + "".join(
        f"site {site}".ljust(width) for site in lanes
    )
    separator = "-" * len(header)
    rows: list[str] = [header, separator]

    # Group entries by identical timestamp so concurrent events share a
    # visual row where lanes do not collide.
    current_time: Optional[float] = None
    current_cells: dict[int, str] = {}

    def flush() -> None:
        if current_time is None or not current_cells:
            return
        cells = [
            current_cells.get(i, "").ljust(width) for i in range(len(lanes))
        ]
        rows.append(f"{current_time:8.2f} " + "".join(cells))

    for entry in trace:
        if entry.category not in wanted or entry.site not in index:
            continue
        glyph = _glyph(entry)
        if glyph is None:
            continue
        lane = index[entry.site]
        if entry.time != current_time or lane in current_cells:
            flush()
            if entry.time != current_time:
                current_time = entry.time
                current_cells = {}
            else:
                current_cells = {}
        current_cells[lane] = glyph[: width - 1]
    flush()
    return "\n".join(rows)


def render_run(run, **kwargs) -> str:
    """Render a :class:`~repro.runtime.harness.RunResult`'s swimlanes."""
    sites = sorted(run.reports)
    return render_swimlanes(run.trace, sites, **kwargs)
