"""Visualization helpers: ASCII swimlanes for simulation traces.

:func:`~repro.viz.timeline.render_swimlanes` turns a
:class:`~repro.sim.tracing.TraceLog` (or a whole
:class:`~repro.runtime.harness.RunResult`) into a per-site swimlane
diagram — the fastest way to see who sent what, when the detector
fired, which backup took over, and where each site decided.
"""

from repro.viz.timeline import render_run, render_swimlanes

__all__ = ["render_run", "render_swimlanes"]
