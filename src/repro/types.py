"""Shared primitive types and enums used across the library.

These are deliberately tiny: site identifiers, transaction identifiers,
the commit outcome enum, and the vote enum that annotates protocol
transitions.  Keeping them in one leaf module avoids import cycles
between the simulation, protocol, and database layers.
"""

from __future__ import annotations

import enum
from typing import NewType

#: Identifier of a participating site.  The paper numbers sites 1..n with
#: site 1 acting as coordinator in the central-site model; we follow that
#: convention throughout (site ids are small positive integers).
SiteId = NewType("SiteId", int)

#: Identifier of a distributed transaction.
TransactionId = NewType("TransactionId", int)

#: Simulated time.  The simulator uses float seconds; determinism is
#: guaranteed by tie-breaking on an event sequence number, not on time.
SimTime = float


class Outcome(enum.Enum):
    """Final outcome of a distributed transaction at a site.

    ``COMMIT`` and ``ABORT`` are the two irreversible final outcomes of
    the paper's model.  ``UNDECIDED`` describes a site that has not yet
    reached a final state, and ``BLOCKED`` describes an operational site
    that can never decide without waiting for a crashed site to recover
    (the situation nonblocking protocols eliminate).
    """

    COMMIT = "commit"
    ABORT = "abort"
    UNDECIDED = "undecided"
    BLOCKED = "blocked"

    @property
    def is_final(self) -> bool:
        """Whether this outcome is one of the two irreversible decisions."""
        return self in (Outcome.COMMIT, Outcome.ABORT)


class Vote(enum.Enum):
    """A site's vote on committing the transaction.

    A transition annotated ``YES`` represents the site agreeing to
    commit ("yes to commit"); ``NO`` represents a unilateral abort vote.
    ``READ_ONLY`` is the one-phase exit of Gray & Lamport: the site has
    no updates at stake, so it votes "read-only" and leaves the
    protocol — either outcome is acceptable to it, and it logs nothing.
    Vote annotations feed the committable-state analysis: a local state
    is *committable* when its occupancy implies every site has taken a
    ``YES``-annotated transition (Skeen 1981, "Committable States"); a
    READ_ONLY vote counts as consent, since a read-only site never
    vetoes the commit.
    """

    YES = "yes"
    NO = "no"
    READ_ONLY = "ro"


class ProtocolClass(enum.Enum):
    """The two generic classes of commit protocols the paper studies."""

    CENTRAL_SITE = "central-site"
    DECENTRALIZED = "decentralized"


class StateKind(enum.Enum):
    """Classification of a local state in a protocol automaton."""

    INITIAL = "initial"
    INTERMEDIATE = "intermediate"
    COMMIT = "commit"
    ABORT = "abort"
    #: Terminal state of a read-only participant: the site has left the
    #: protocol after phase 1 without adopting either outcome.
    READ_ONLY = "read-only"

    @property
    def is_final(self) -> bool:
        """Whether states of this kind are final (commit or abort)."""
        return self in (StateKind.COMMIT, StateKind.ABORT)
