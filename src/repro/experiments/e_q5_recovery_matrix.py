"""Experiment Q5 — the recovery-protocol outcome matrix.

Crashes one slave at every distinct point of its protocol execution —
before voting, right after the yes vote, after acknowledging the
prepare (3PC), after receiving the decision — restarts it, and records
how the recovery protocol of slide 12 resolves it: unilateral abort
(pre-vote), outcome query (in doubt), or log replay (already decided).
The recovered outcome must agree with the operational sites in every
cell.
"""

from __future__ import annotations

from repro.experiments.base import ExperimentResult
from repro.metrics.tables import Table
from repro.protocols import catalog
from repro.runtime.decision import TerminationRule
from repro.runtime.harness import CommitRun
from repro.types import Outcome
from repro.workload.crashes import CrashDuringTransition

#: Crash points per protocol: (label, slave transition number, writes sent).
CRASH_POINTS = {
    "2pc-central": [
        ("before voting (during vote transition, nothing sent)", 1, 0),
        ("after sending yes (state not yet advanced)", 1, 1),
        ("after receiving the decision", 2, 0),
    ],
    "3pc-central": [
        ("before voting (during vote transition, nothing sent)", 1, 0),
        ("after sending yes (state not yet advanced)", 1, 1),
        ("after acking the prepare", 2, 1),
        ("after receiving the commit", 3, 0),
    ],
}


def run_q5(n_sites: int = 4, restart_at: float = 40.0) -> ExperimentResult:
    """Regenerate the Q5 matrix (slave = site 2 crashes and recovers)."""
    result = ExperimentResult(
        experiment_id="Q5",
        title="Recovery outcomes by crash point (slave site 2, restart)",
    )

    table = Table(
        [
            "protocol",
            "crash point",
            "recovered outcome",
            "via",
            "operational outcome",
            "consistent",
        ],
        title="recovery matrix",
    )
    data: dict[str, list[dict]] = {}
    for name, points in CRASH_POINTS.items():
        spec = catalog.build(name, n_sites)
        rule = TerminationRule(spec)
        data[name] = []
        for label, transition_number, writes in points:
            run = CommitRun(
                spec,
                crashes=[
                    CrashDuringTransition(
                        site=2,
                        transition_number=transition_number,
                        after_writes=writes,
                        restart_at=restart_at,
                    )
                ],
                rule=rule,
            ).execute()
            recovered = run.reports[2]
            operational = {
                report.outcome
                for site, report in run.reports.items()
                if site != 2 and report.outcome.is_final
            }
            op_outcome = (
                next(iter(operational)).value if len(operational) == 1 else "mixed"
            )
            consistent = run.atomic and recovered.outcome.is_final
            table.add_row(
                name,
                label,
                recovered.outcome.value,
                recovered.via or "—",
                op_outcome,
                consistent,
            )
            data[name].append(
                {
                    "label": label,
                    "recovered": recovered.outcome.value,
                    "via": recovered.via,
                    "operational": op_outcome,
                    "consistent": consistent,
                }
            )
    result.tables.append(table)

    result.data = data
    result.notes.append(
        "Pre-vote crashes recover by unilateral abort (slide 6); "
        "post-yes crashes recover by querying the operational sites; "
        "post-decision crashes replay the DT log.  Every cell agrees "
        "with the operational sites' outcome."
    )
    return result
