"""Experiment T2 — blocking verdicts for the whole catalog
(paper slides 28 and 33).

Runs the fundamental nonblocking theorem on every protocol: both 2PC
variants (and 1PC) must violate it, both 3PC variants must satisfy it,
and the violation witnesses must be exactly the paper's — the wait
state ``w`` blocks for *both* reasons (commit and abort in its
concurrency set, and noncommittable with a commit in its concurrency
set).
"""

from __future__ import annotations

from repro.analysis.nonblocking import check_nonblocking
from repro.experiments.base import ExperimentResult
from repro.metrics.tables import Table
from repro.protocols import catalog


def run_t2(n_sites: int = 3) -> ExperimentResult:
    """Regenerate table T2 for ``n_sites``-participant instances."""
    result = ExperimentResult(
        experiment_id="T2",
        title=f"Nonblocking-theorem verdicts (slides 28/33), n={n_sites}",
    )

    verdicts = Table(
        ["protocol", "nonblocking", "violations", "first witness"],
        title="theorem verdicts",
    )
    data: dict[str, dict] = {}
    for name in catalog.protocol_names():
        spec = catalog.build(name, n_sites)
        report = check_nonblocking(spec)
        first = report.violations[0].describe() if report.violations else "—"
        verdicts.add_row(name, report.nonblocking, len(report.violations), first)
        data[name] = {
            "nonblocking": report.nonblocking,
            "violations": [
                (v.site, v.state, v.condition) for v in report.violations
            ],
        }
    result.tables.append(verdicts)

    # The signature detail: the 2PC wait state violates BOTH conditions.
    spec = catalog.build("2pc-decentralized", n_sites)
    report = check_nonblocking(spec)
    w_conditions = sorted(
        {v.condition for v in report.violations if v.state == "w"}
    )
    detail = Table(["check", "value"], title="2PC wait-state detail (slide 28)")
    detail.add_row("conditions violated at w", ",".join(map(str, w_conditions)))
    result.tables.append(detail)

    result.data = {
        "verdicts": data,
        "w_violates_both_conditions": w_conditions == [1, 2],
        "blocking": sorted(
            name for name, d in data.items() if not d["nonblocking"]
        ),
        "nonblocking": sorted(
            name for name, d in data.items() if d["nonblocking"]
        ),
    }
    result.notes.append(
        "Both 2PC protocols (and 1PC) block; both 3PC protocols are "
        "nonblocking; the 2PC wait state blocks for both of the "
        "theorem's reasons, as slide 28 observes."
    )
    return result
