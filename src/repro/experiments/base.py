"""Common result type for experiment modules."""

from __future__ import annotations

import dataclasses
from typing import Any, Optional

from repro.metrics.registry import MetricsRegistry
from repro.metrics.tables import Table
from repro.sim.tracing import TraceLog


@dataclasses.dataclass
class ExperimentResult:
    """The regenerated artifact of one experiment.

    Attributes:
        experiment_id: Index id from DESIGN.md (``"F1"`` ... ``"Q6"``).
        title: What the artifact is.
        tables: The regenerated rows, ready to print.
        data: Structured values for programmatic assertions in tests
            and benches.
        notes: Interpretation notes (paper-vs-measured commentary).
        registry: Optional metrics rollup of the experiment's runs;
            the parallel sweep runner merges these across shards
            (:meth:`repro.metrics.registry.MetricsRegistry.merge`).
        traces: Optional per-run trace logs attached by the experiment;
            the sweep runner merges them into one JSONL stream with
            per-run ``msg_id`` spans kept disjoint (see
            ``docs/OBSERVABILITY.md``).
    """

    experiment_id: str
    title: str
    tables: list[Table] = dataclasses.field(default_factory=list)
    data: dict[str, Any] = dataclasses.field(default_factory=dict)
    notes: list[str] = dataclasses.field(default_factory=list)
    registry: Optional[MetricsRegistry] = None
    traces: list[TraceLog] = dataclasses.field(default_factory=list)

    def render(self) -> str:
        """Render the whole result for printing."""
        parts = [f"=== {self.experiment_id}: {self.title} ==="]
        for table in self.tables:
            parts.append(table.render())
        if self.notes:
            parts.append("notes:")
            parts.extend(f"  - {note}" for note in self.notes)
        return "\n\n".join(parts)
