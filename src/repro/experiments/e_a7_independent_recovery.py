"""Experiment A7 — the independent recovery map (SKEE81a's question).

Slide 6 states the recovery rule — "when a failure occurs before the
commit point is reached, the site will abort the transaction
immediately upon recovering" — and slide 12 defers the rest to the
companion recovery report.  This experiment computes the full map: for
each local state a site can crash in, the set of outcomes the
operational sites can reach before it returns, and therefore whether
the site may recover independently or must query.

The map also machine-checks the runtime implementation: the states
where :mod:`repro.runtime.recovery` unilaterally aborts are exactly
(a subset of) the independently-abortable states, and the states where
it queries are exactly where two outcomes are possible — plus one
conservative case, central 3PC's ``w``, where abort is in fact forced
(the dead slave's ack can never arrive) but the implementation asks
anyway and receives that same abort.
"""

from __future__ import annotations

from repro.analysis.recovery_analysis import independent_recovery_map
from repro.experiments.base import ExperimentResult
from repro.metrics.tables import Table
from repro.protocols import catalog
from repro.types import SiteId


def run_a7(n_sites: int = 3) -> ExperimentResult:
    """Regenerate the A7 independent-recovery map."""
    result = ExperimentResult(
        experiment_id="A7",
        title="Independent recovery: which crash states need no one's help",
    )

    table = Table(
        [
            "protocol",
            "crash state",
            "post-crash outcomes",
            "independent recovery",
            "implementation behaviour",
        ],
        title=f"victim = slave/peer site 2, n={n_sites}",
    )
    data: dict[str, dict[str, dict]] = {}
    for name in ("2pc-central", "3pc-central", "3pc-decentralized"):
        spec = catalog.build(name, n_sites)
        automaton = spec.automaton(SiteId(2))
        verdicts = independent_recovery_map(spec, SiteId(2))
        data[name] = {}
        for state, verdict in verdicts.items():
            independent = verdict.independent
            if state in automaton.final_states:
                behaviour = "replay DT log"
            elif automaton.implies_yes_vote.get(state, False):
                behaviour = "query peers (in doubt)"
            else:
                behaviour = "unilateral abort (slide 6)"
            table.add_row(
                name,
                state,
                ",".join(sorted(o.value for o in verdict.outcomes)),
                independent.value if independent else "no — must query",
                behaviour,
            )
            data[name][state] = {
                "outcomes": sorted(o.value for o in verdict.outcomes),
                "independent": independent.value if independent else None,
                "behaviour": behaviour,
            }
    result.tables.append(table)

    result.data = data
    result.notes.append(
        "Pre-vote crashes are independently abortable everywhere "
        "(slide 6's rule is exactly right); post-yes crashes are in "
        "doubt — except central 3PC's w, where the dead slave's missing "
        "ack forces abort, an asymmetry the decentralized 3PC does not "
        "share (a peer backup in p commits)."
    )
    return result
