"""Experiment F1 — the central-site 2PC automata (paper slide 15).

Regenerates the coordinator and slave FSAs, validates them against the
formal model's structural requirements, and tabulates states and
transitions exactly as the figure presents them.
"""

from __future__ import annotations

from repro.experiments.base import ExperimentResult
from repro.fsa.render import format_automaton
from repro.metrics.tables import Table
from repro.protocols.two_phase_central import central_two_phase


def run_f1(n_sites: int = 3) -> ExperimentResult:
    """Regenerate figure F1 for an ``n_sites``-participant instance."""
    spec = central_two_phase(n_sites)
    result = ExperimentResult(
        experiment_id="F1",
        title=f"FSAs of the central-site 2PC (slide 15), n={n_sites}",
    )

    shape = Table(
        ["site", "role", "states", "initial", "commit", "abort", "phases"],
        title="automaton shapes",
    )
    for site in spec.sites:
        automaton = spec.automaton(site)
        shape.add_row(
            site,
            automaton.role,
            ",".join(sorted(automaton.states)),
            automaton.initial,
            ",".join(sorted(automaton.commit_states)),
            ",".join(sorted(automaton.abort_states)),
            automaton.phase_count,
        )
    result.tables.append(shape)

    transitions = Table(["site", "transition"], title="transitions (paper notation)")
    seen_roles: set[str] = set()
    for site in spec.sites:
        automaton = spec.automaton(site)
        if automaton.role in seen_roles:
            continue
        seen_roles.add(automaton.role)
        for transition in automaton.transitions:
            transitions.add_row(site, transition.describe())
    result.tables.append(transitions)

    coordinator = spec.automaton(spec.coordinator)
    slave = spec.automaton(spec.sites[-1])
    result.data = {
        "coordinator_states": sorted(coordinator.states),
        "slave_states": sorted(slave.states),
        "coordinator_phases": coordinator.phase_count,
        "slave_phases": slave.phase_count,
        "rendered": format_automaton(coordinator),
    }
    result.notes.append(
        "Matches slide 15: coordinator q->w->{a,c}; slave q->{w,a}, "
        "w->{c,a}; both roles two-phase."
    )
    return result
