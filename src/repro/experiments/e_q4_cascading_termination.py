"""Experiment Q4 — termination under cascading backup failures.

Slide 37: "As subsequent site failures may occur during the termination
protocol, in the worst case, all of the operational sites must obey the
fundamental nonblocking theorem.  A termination protocol should
successfully terminate the transaction as long as one site executing a
nonblocking commit protocol remains operational."

We crash the 3PC coordinator mid-protocol, then successively crash
each newly elected backup coordinator, for 0..n−2 extra failures, and
verify that the survivors always terminate consistently — down to a
single operational site.
"""

from __future__ import annotations

from repro.experiments.base import ExperimentResult
from repro.metrics.tables import Table
from repro.protocols import catalog
from repro.runtime.decision import TerminationRule
from repro.runtime.harness import CommitRun
from repro.workload.crashes import CrashAt


def run_q4(n_sites: int = 5) -> ExperimentResult:
    """Regenerate the Q4 cascade table for ``n_sites`` participants."""
    spec = catalog.build("3pc-central", n_sites)
    rule = TerminationRule(spec)

    result = ExperimentResult(
        experiment_id="Q4",
        title=f"3PC termination under cascading backup failures (n={n_sites})",
    )

    table = Table(
        [
            "extra backup failures",
            "survivors",
            "all survivors decided",
            "consistent",
            "termination time",
            "max rounds at a survivor",
        ],
        title="cascade sweep (coordinator dies at t=2, backups every 3 time units)",
    )
    data: dict[int, dict] = {}
    for extra in range(n_sites - 1):
        crashes = [CrashAt(site=1, at=2.0)]
        # The deterministic election picks the lowest operational id, so
        # the next backups are sites 2, 3, ... — crash each in turn
        # while it is mid-termination.
        for i in range(extra):
            crashes.append(CrashAt(site=i + 2, at=4.0 + 3.0 * i))
        run = CommitRun(spec, crashes=crashes, rule=rule).execute()
        survivors = [
            site for site, report in run.reports.items() if report.alive
        ]
        all_decided = all(
            run.reports[site].outcome.is_final for site in survivors
        )
        rounds = max(
            (
                entry.data.get("backup", 0)
                for entry in run.trace.select(category="term.round")
            ),
            default=0,
        )
        round_count = run.trace.count("term.round")
        table.add_row(
            extra,
            len(survivors),
            all_decided,
            run.atomic,
            run.duration,
            round_count,
        )
        data[extra] = {
            "survivors": len(survivors),
            "all_decided": all_decided,
            "atomic": run.atomic,
            "duration": run.duration,
            "rounds": round_count,
            "max_backup": rounds,
        }
    result.tables.append(table)

    result.data = data
    result.notes.append(
        "Even with every elected backup assassinated in turn — down to "
        "a single survivor — the survivors terminate consistently; "
        "termination time grows roughly linearly in the failure count "
        "(one election + backup round per failure)."
    )
    return result
