"""Experiment A3 — recovery from total failure.

The paper's protocols deliberately leave total failure (every
participant crashes) unresolved: a recovering in-doubt site can only
query peers, and if everyone is equally in doubt the transaction stays
open.  This experiment measures that baseline, then enables the
library's extension: once *every* participant reports itself as a
recovered in-doubt site, no decision record can exist anywhere (they
are force-logged before any effect), so a collective abort is provably
safe.
"""

from __future__ import annotations

from repro.experiments.base import ExperimentResult
from repro.metrics.tables import Table
from repro.protocols import catalog
from repro.runtime.decision import TerminationRule
from repro.runtime.harness import CommitRun
from repro.workload.crashes import CrashAt


def run_a3(n_sites: int = 3) -> ExperimentResult:
    """Regenerate the A3 comparison for ``n_sites`` participants."""
    spec = catalog.build("3pc-decentralized", n_sites)
    rule = TerminationRule(spec)
    # Everyone crashes after voting yes (in doubt), then everyone
    # restarts.
    crashes = [
        CrashAt(site=site, at=1.5, restart_at=20.0 + site)
        for site in spec.sites
    ]

    result = ExperimentResult(
        experiment_id="A3",
        title="Total failure: the paper's baseline vs the recovery extension",
    )

    table = Table(
        ["total-failure recovery", "outcomes", "atomic", "resolved"],
        title=f"all {n_sites} sites crash in doubt, then restart",
    )
    data: dict[str, dict] = {}
    for enabled in (False, True):
        run = CommitRun(
            spec,
            crashes=crashes,
            rule=rule,
            total_failure_recovery=enabled,
            max_time=120.0,
        ).execute()
        outcomes = {s: o.value for s, o in run.outcomes().items()}
        resolved = all(r.outcome.is_final for r in run.reports.values())
        table.add_row(
            "enabled" if enabled else "disabled (paper)",
            str(outcomes),
            run.atomic,
            resolved,
        )
        data["enabled" if enabled else "disabled"] = {
            "outcomes": outcomes,
            "atomic": run.atomic,
            "resolved": resolved,
        }
    result.tables.append(table)

    result.data = data
    result.notes.append(
        "Without the extension every site stays in doubt forever (the "
        "paper's acknowledged limit).  With it, a complete round of "
        "recovered-in-doubt answers licenses a safe unanimous abort."
    )
    return result
