"""Experiment Q7 — one crash, a whole window of in-flight transactions.

A transaction manager rarely runs one commit at a time.  This
experiment multiplexes a stream of staggered transactions over one
simulated network (one engine/termination/recovery stack per
transaction per site) and kills the coordinator once, mid-stream:

* under 2PC, every transaction whose votes were cast but whose
  decision had not yet been delivered blocks — the blast radius of a
  single crash is the whole vulnerable window;
* under 3PC, every one of those transactions is terminated by its own
  backup round; nothing blocks.

This is the systems-level reading of the abstract's first sentence.
"""

from __future__ import annotations

from repro.experiments.base import ExperimentResult
from repro.metrics.tables import Table
from repro.protocols import catalog
from repro.runtime.decision import TerminationRule
from repro.runtime.multi import MultiCommitRun
from repro.types import Outcome
from repro.workload.crashes import CrashAt


def run_q7(
    n_sites: int = 4,
    n_txns: int = 8,
    stagger: float = 1.0,
    crash_at: float = 4.0,
) -> ExperimentResult:
    """Regenerate the Q7 in-flight-window comparison."""
    result = ExperimentResult(
        experiment_id="Q7",
        title=(
            f"Blast radius of one coordinator crash across {n_txns} "
            f"staggered transactions"
        ),
    )

    table = Table(
        [
            "protocol",
            "txns",
            "committed",
            "aborted (terminated)",
            "blocked",
            "atomic",
        ],
        title=f"stagger {stagger}, crash at t={crash_at}",
    )
    data: dict[str, dict] = {}
    for protocol in ("2pc-central", "3pc-central"):
        spec = catalog.build(protocol, n_sites)
        rule = TerminationRule(spec)
        run = MultiCommitRun(
            spec,
            start_times=[i * stagger for i in range(n_txns)],
            crashes=[CrashAt(site=1, at=crash_at)],
            rule=rule,
        ).execute()
        committed = aborted = blocked = 0
        for xid, txn_result in run.per_transaction.items():
            if txn_result.blocked_sites:
                blocked += 1
            elif Outcome.COMMIT in txn_result.decided_outcomes():
                committed += 1
            else:
                aborted += 1
        table.add_row(
            protocol, n_txns, committed, aborted, blocked, run.atomic
        )
        data[protocol] = {
            "committed": committed,
            "aborted": aborted,
            "blocked": blocked,
            "atomic": run.atomic,
        }
    result.tables.append(table)

    result.data = data
    result.notes.append(
        "The same crash, the same stream: 2PC blocks every transaction "
        "caught in its vulnerable window; 3PC's termination protocol "
        "resolves each one, so its blocked count is zero."
    )
    return result
