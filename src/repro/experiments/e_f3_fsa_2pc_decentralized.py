"""Experiment F3 — the decentralized 2PC automaton (paper slide 26)."""

from __future__ import annotations

from repro.experiments.base import ExperimentResult
from repro.metrics.tables import Table
from repro.protocols.two_phase_decentralized import decentralized_two_phase


def run_f3(n_sites: int = 3) -> ExperimentResult:
    """Regenerate figure F3 for an ``n_sites``-participant instance."""
    spec = decentralized_two_phase(n_sites)
    peer = spec.automaton(spec.sites[0])

    result = ExperimentResult(
        experiment_id="F3",
        title=f"FSA of the decentralized 2PC (slide 26), n={n_sites}",
    )

    shape = Table(["property", "value"], title="peer automaton")
    shape.add_row("roles", "one (all sites run the same protocol)")
    shape.add_row("states", ",".join(sorted(peer.states)))
    shape.add_row("initial", peer.initial)
    shape.add_row("commit", ",".join(sorted(peer.commit_states)))
    shape.add_row("abort", ",".join(sorted(peer.abort_states)))
    shape.add_row("phases", peer.phase_count)
    result.tables.append(shape)

    transitions = Table(["transition"], title="peer transitions (site 1 shown)")
    for transition in peer.transitions:
        transitions.add_row(transition.describe())
    result.tables.append(transitions)

    roles = {spec.automaton(s).role for s in spec.sites}
    result.data = {
        "states": sorted(peer.states),
        "phases": peer.phase_count,
        "single_role": len(roles) == 1,
        "sends_to_self": any(
            msg.dst == peer.site
            for t in peer.transitions
            for msg in t.writes
        ),
    }
    result.notes.append(
        "Matches slide 26: one peer role, q->{w,a} on the xact message "
        "(sending the vote to every site including itself), w->c on the "
        "full yes set, w->a on any no."
    )
    return result
