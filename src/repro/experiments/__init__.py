"""The experiment suite: every figure and table of the paper.

Each module regenerates one artifact (see DESIGN.md §3 for the index)
and returns an :class:`~repro.experiments.base.ExperimentResult` whose
tables print the same rows the paper reports.  The benchmark harness
under ``benchmarks/`` calls these functions — one bench per experiment
— and EXPERIMENTS.md records paper-vs-measured for each id.
"""

from repro.experiments.base import ExperimentResult
from repro.experiments.registry import EXPERIMENTS, run_experiment

__all__ = ["EXPERIMENTS", "ExperimentResult", "run_experiment"]
