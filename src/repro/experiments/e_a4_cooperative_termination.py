"""Experiment A4 — cooperative termination: polling before deciding.

The paper's backup decides from *its own* state only.  That blocks
unnecessarily when the elected backup is less informed than a peer —
e.g. a 2PC slave elected backup while another slave already received
the commit.  The cooperative extension polls operational sites first
and adopts any final outcome it finds (always safe: the outcome is
already durable somewhere), falling back to the paper's rule otherwise.

The experiment sweeps coordinator crashes over 2PC and counts blocked
runs under each mode: cooperative termination removes the
"someone-already-knows" blocking cases but — as the theorem demands —
cannot eliminate the genuinely undecidable window where every survivor
sits in ``w``.
"""

from __future__ import annotations

from repro.election.bully import bully_strategy
from repro.experiments.base import ExperimentResult
from repro.metrics.tables import Table
from repro.protocols import catalog
from repro.runtime.decision import TerminationRule
from repro.runtime.harness import CommitRun
from repro.workload.crashes import CrashAt, CrashDuringTransition


def _schedules(spec, grid: int):
    horizon = 2.0 * spec.max_phase_count() + 2.0
    schedules = [
        [CrashAt(site=1, at=horizon * (i + 0.5) / grid)] for i in range(grid)
    ]
    coordinator = spec.automaton(1)
    for transition_number in range(1, coordinator.phase_count + 1):
        for sent in range(spec.n_sites):
            schedules.append(
                [
                    CrashDuringTransition(
                        site=1,
                        transition_number=transition_number,
                        after_writes=sent,
                    )
                ]
            )
    return schedules


def run_a4(n_sites: int = 4, grid: int = 12) -> ExperimentResult:
    """Regenerate the A4 blocking comparison."""
    spec = catalog.build("2pc-central", n_sites)
    rule = TerminationRule(spec)

    result = ExperimentResult(
        experiment_id="A4",
        title="Cooperative vs standard termination on 2PC (blocking runs)",
    )

    table = Table(
        ["termination mode", "runs", "blocked runs", "atomicity violations"],
        title="coordinator-crash sweep (bully election: backup = highest id)",
    )
    data: dict[str, dict] = {}
    for mode in ("standard", "cooperative"):
        blocked = violations = runs = 0
        for crashes in _schedules(spec, grid):
            run = CommitRun(
                spec,
                crashes=crashes,
                rule=rule,
                termination_mode=mode,
                elect=bully_strategy,
            ).execute()
            runs += 1
            if run.blocked_sites:
                blocked += 1
            if not run.atomic:
                violations += 1
        table.add_row(mode, runs, blocked, violations)
        data[mode] = {"runs": runs, "blocked": blocked, "violations": violations}
    result.tables.append(table)

    result.data = data
    result.notes.append(
        "Cooperative polling strictly reduces 2PC's blocked runs (it "
        "rescues every schedule where some survivor already held the "
        "outcome) without ever violating atomicity — but the genuinely "
        "undecidable all-in-w window remains, as the fundamental "
        "theorem says it must."
    )
    return result
