"""Experiment A1 — why phase 1 of the backup protocol exists.

Slide 39: "Phase 1 of the backup protocol is required because the
backup coordinator may fail."  This ablation makes the requirement
concrete by running the same adversarial schedule against the paper's
termination protocol and against a naive variant that skips phase 1
(apply the decision locally, then broadcast):

* the coordinator crashes *inside* its prepare fan-out, so exactly one
  slave reaches the prepared state ``p`` while the rest stay in ``w``;
* that slave is elected backup and — having decided commit — is killed
  before its first termination payload leaves.

With phase 1, nothing was decided before the acks, so the next backup's
abort is consistent.  Without phase 1, the dead backup already logged
COMMIT while the next backup (still in ``w``) aborts the survivors —
a genuine atomicity violation, reproduced on demand.
"""

from __future__ import annotations

from repro.experiments.base import ExperimentResult
from repro.metrics.tables import Table
from repro.protocols import catalog
from repro.runtime.decision import TerminationRule
from repro.runtime.harness import CommitRun
from repro.workload.crashes import CrashAfterPayloads, CrashDuringTransition


def run_a1(n_sites: int = 4) -> ExperimentResult:
    """Regenerate the A1 ablation for ``n_sites`` participants."""
    spec = catalog.build("3pc-central", n_sites)
    rule = TerminationRule(spec)
    crashes = [
        # Prepare reaches only slave 2; slaves 3..n stay in w.
        CrashDuringTransition(site=1, transition_number=2, after_writes=1),
        # Backup 2 dies before its first termination broadcast message.
        CrashAfterPayloads(site=2, payload_number=1),
    ]

    result = ExperimentResult(
        experiment_id="A1",
        title="Ablation: the backup protocol with and without phase 1",
    )

    table = Table(
        [
            "termination mode",
            "backup 2 logged",
            "survivor outcomes",
            "atomic",
        ],
        title="same adversarial schedule, two protocols",
    )
    data: dict[str, dict] = {}
    for mode in ("standard", "unsafe-skip-phase1"):
        run = CommitRun(
            spec, crashes=crashes, rule=rule, termination_mode=mode
        ).execute()
        survivors = sorted(
            {
                run.reports[s].outcome.value
                for s in spec.sites
                if run.reports[s].alive
            }
        )
        table.add_row(
            mode,
            run.reports[2].outcome.value,
            ",".join(survivors),
            run.atomic,
        )
        data[mode] = {
            "backup_logged": run.reports[2].outcome.value,
            "survivors": survivors,
            "atomic": run.atomic,
        }
    result.tables.append(table)

    result.data = data
    result.notes.append(
        "Identical failures: with phase 1 the run stays atomic (the "
        "dead backup had decided nothing yet); without it the dead "
        "backup's logged commit contradicts the survivors' abort — the "
        "violation slide 39's phase 1 is there to prevent."
    )
    return result
