"""Experiment A5 — the quorum tradeoff: partition safety vs crash resilience.

The paper's termination protocol terminates with a single operational
site (the corollary's best case) but splits under a partition misread
as crashes (experiment A2).  Quorum termination — in the direction of
Skeen's quorum-based protocols — inverts the tradeoff: a side without a
strict majority blocks, so a single partition can no longer produce a
split decision, but a lone survivor of genuine crashes now blocks too.

The experiment runs both failure shapes under both modes and tabulates
the 2×2 outcome: what each mode buys and what it costs.
"""

from __future__ import annotations

from repro.experiments.base import ExperimentResult
from repro.metrics.tables import Table
from repro.protocols import catalog
from repro.runtime.decision import TerminationRule
from repro.runtime.harness import CommitRun
from repro.workload.crashes import CrashAt


def run_a5(n_sites: int = 4) -> ExperimentResult:
    """Regenerate the A5 tradeoff table."""
    spec = catalog.build("3pc-central", n_sites)
    rule = TerminationRule(spec)

    result = ExperimentResult(
        experiment_id="A5",
        title="Quorum termination: partition safety vs crash resilience",
    )

    table = Table(
        ["failure shape", "termination", "atomic", "blocked sites",
         "survivors decided"],
        title="the 2x2 tradeoff",
    )
    data: dict[str, dict[str, dict]] = {"partition": {}, "cascade": {}}

    half = n_sites // 2
    groups = [
        {s for s in spec.sites[:half]},
        {s for s in spec.sites[half:]},
    ]
    cascade = [
        CrashAt(site=site, at=2.0 + 2.0 * i)
        for i, site in enumerate(spec.sites[:-1])
    ]

    for mode in ("standard", "quorum"):
        partitioned = CommitRun(
            spec,
            rule=rule,
            termination_mode=mode,
            partition_at=3.2,
            partition_groups=groups,
        ).execute()
        decided = sum(
            1 for r in partitioned.reports.values() if r.outcome.is_final
        )
        table.add_row(
            "even partition",
            mode,
            partitioned.atomic,
            len(partitioned.blocked_sites),
            decided,
        )
        data["partition"][mode] = {
            "atomic": partitioned.atomic,
            "blocked": len(partitioned.blocked_sites),
            "decided": decided,
        }

        crashed = CommitRun(
            spec, crashes=cascade, rule=rule, termination_mode=mode
        ).execute()
        survivor = crashed.reports[spec.sites[-1]]
        table.add_row(
            "cascade to one survivor",
            mode,
            crashed.atomic,
            len(crashed.blocked_sites),
            1 if survivor.outcome.is_final else 0,
        )
        data["cascade"][mode] = {
            "atomic": crashed.atomic,
            "survivor_decided": survivor.outcome.is_final,
        }
    result.tables.append(table)

    result.data = data
    result.notes.append(
        "Standard termination: maximal crash resilience (lone survivor "
        "decides) but splits under partition.  Quorum termination: "
        "immune to the single-partition split (minority blocks) but a "
        "lone survivor of real crashes blocks.  No mode gets both — "
        "the tension later consensus-based commit protocols resolve."
    )
    return result
