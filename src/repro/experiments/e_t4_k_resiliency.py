"""Experiment T4 — the corollary on k−1 site failures (paper slide 30).

For each catalog protocol and site count, computes the largest subset
of sites obeying both theorem conditions and the implied number of
tolerated failures: 3PC tolerates n−1 (any single survivor terminates),
the blocking protocols tolerate none.
"""

from __future__ import annotations

from repro.analysis.nonblocking import check_nonblocking
from repro.experiments.base import ExperimentResult
from repro.metrics.tables import Table
from repro.protocols import catalog


def run_t4(site_counts: tuple[int, ...] = (2, 3, 4)) -> ExperimentResult:
    """Regenerate table T4 over the given site counts."""
    result = ExperimentResult(
        experiment_id="T4",
        title="Corollary: resilience to k-1 site failures (slide 30)",
    )

    table = Table(
        ["protocol", "n", "obeying sites", "tolerated failures"],
        title="k-resiliency",
    )
    data: dict[str, dict[int, int]] = {}
    for name in catalog.protocol_names():
        data[name] = {}
        for n in site_counts:
            report = check_nonblocking(catalog.build(name, n))
            table.add_row(
                name,
                n,
                len(report.obeying_sites),
                report.tolerated_failures,
            )
            data[name][n] = report.tolerated_failures
    result.tables.append(table)

    result.data = {"tolerated": data}
    result.notes.append(
        "Both 3PCs tolerate n-1 failures (every site obeys the theorem, "
        "so any lone survivor can terminate); 1PC and the 2PCs tolerate "
        "none."
    )
    return result
