"""Experiment T1 — concurrency sets of the canonical 2PC (slide 32).

The paper's table:

    CS(q) = {q, w, a}      CS(w) = {q, w, a, c}
    CS(a) = {q, w, a}      CS(c) = {w, c}

computed here from the exhaustive reachable state graph of the two-site
decentralized 2PC (the canonical protocol), and the analogous table for
the canonical 3PC used by the termination rule of slide 40.
"""

from __future__ import annotations

from repro.analysis.concurrency import concurrency_table
from repro.analysis.committable import committable_labels
from repro.analysis.reachability import build_state_graph
from repro.experiments.base import ExperimentResult
from repro.metrics.tables import Table
from repro.protocols.three_phase_decentralized import decentralized_three_phase
from repro.protocols.two_phase_decentralized import decentralized_two_phase
from repro.types import SiteId

#: The table exactly as printed on slide 32.
PAPER_2PC = {
    "q": frozenset({"q", "w", "a"}),
    "w": frozenset({"q", "w", "a", "c"}),
    "a": frozenset({"q", "w", "a"}),
    "c": frozenset({"w", "c"}),
}


def run_t1() -> ExperimentResult:
    """Regenerate table T1 and check it against the paper's values."""
    site = SiteId(1)
    graph2 = build_state_graph(decentralized_two_phase(2))
    table2 = concurrency_table(graph2, site)
    graph3 = build_state_graph(decentralized_three_phase(2))
    table3 = concurrency_table(graph3, site)

    result = ExperimentResult(
        experiment_id="T1",
        title="Concurrency sets of the canonical 2PC (slide 32)",
    )

    cs2 = Table(
        ["state", "computed CS", "paper CS", "match"],
        title="canonical 2PC",
    )
    matches = {}
    for state in sorted(table2):
        computed = table2[state]
        expected = PAPER_2PC[state]
        matches[state] = computed == expected
        cs2.add_row(
            state,
            "{" + ", ".join(sorted(computed)) + "}",
            "{" + ", ".join(sorted(expected)) + "}",
            matches[state],
        )
    result.tables.append(cs2)

    cs3 = Table(["state", "computed CS"], title="canonical 3PC (for slide 40)")
    for state in sorted(table3):
        cs3.add_row(state, "{" + ", ".join(sorted(table3[state])) + "}")
    result.tables.append(cs3)

    committable = Table(
        ["protocol", "committable states"],
        title="committable states (slide 20)",
    )
    committable.add_row("canonical 2PC", ",".join(sorted(committable_labels(graph2, site))))
    committable.add_row("canonical 3PC", ",".join(sorted(committable_labels(graph3, site))))
    result.tables.append(committable)

    result.data = {
        "cs_2pc": {k: sorted(v) for k, v in table2.items()},
        "cs_3pc": {k: sorted(v) for k, v in table3.items()},
        "all_match": all(matches.values()),
        "committable_2pc": sorted(committable_labels(graph2, site)),
        "committable_3pc": sorted(committable_labels(graph3, site)),
    }
    result.notes.append(
        "Every computed concurrency set equals the paper's table; the "
        "2PC has the single committable state {c} while the 3PC has "
        "{p, c} — slide 20's blocking-vs-nonblocking signature."
    )
    return result
