"""Experiment Q1 — blocking frequency under coordinator crashes.

The paper's headline claim, quantified: "nonblocking protocols allow
operational sites to continue transaction processing even though site
failures have occurred."  We sweep the coordinator's crash time across
the whole protocol execution (plus mid-transition partial-send crashes)
and measure, for 2PC vs 3PC, the fraction of runs in which operational
sites end up *blocked* — undecided with no safe decision — versus
terminated (committed or aborted).

Expected shape: 2PC blocks for every crash landing in its vulnerable
window (votes cast, outcome undelivered); 3PC never blocks.
"""

from __future__ import annotations

from typing import Optional

from repro.experiments.base import ExperimentResult
from repro.metrics.collector import StatSeries
from repro.metrics.registry import MetricsRegistry
from repro.metrics.tables import Table
from repro.protocols import catalog
from repro.runtime.decision import TerminationRule
from repro.runtime.harness import CommitRun
from repro.types import Outcome
from repro.workload.crashes import CrashAt, CrashDuringTransition


def _crash_schedules(spec, grid: int):
    """Coordinator crash points covering the whole execution."""
    schedules = []
    # Timed crashes across the execution window (roughly 2*phases hops).
    horizon = 2.0 * spec.max_phase_count() + 2.0
    for i in range(grid):
        at = horizon * (i + 0.5) / grid
        schedules.append((f"t={at:.2f}", [CrashAt(site=1, at=at)]))
    # Partial-send crashes inside each coordinator transition.
    coordinator = spec.automaton(1)
    for transition_number in range(1, coordinator.phase_count + 1):
        for sent in (0, 1, spec.n_sites - 2):
            schedules.append(
                (
                    f"mid-transition {transition_number} after {sent} sends",
                    [
                        CrashDuringTransition(
                            site=1,
                            transition_number=transition_number,
                            after_writes=sent,
                        )
                    ],
                )
            )
    return schedules


def run_q1(
    n_sites: int = 4,
    grid: int = 16,
    protocols: tuple[str, ...] = ("2pc-central", "3pc-central"),
) -> ExperimentResult:
    """Regenerate the Q1 sweep.

    Args:
        n_sites: Participants per run.
        grid: Number of timed crash points across the execution.
        protocols: Which catalog protocols to sweep — the parallel
            sweep runner shards along this axis (and ``n_sites``).
    """
    result = ExperimentResult(
        experiment_id="Q1",
        title=f"Blocking frequency under coordinator crashes (n={n_sites})",
        registry=MetricsRegistry(),
    )

    table = Table(
        [
            "protocol",
            "runs",
            "blocked runs",
            "blocked %",
            "terminated runs",
            "atomicity violations",
            "mean decision time (operational)",
        ],
        title="coordinator-crash sweep",
    )
    data: dict[str, dict] = {}
    for name in protocols:
        spec = catalog.build(name, n_sites)
        rule = TerminationRule(spec)
        blocked = terminated = violations = 0
        runs = 0
        decision_times = StatSeries()
        for _label, crashes in _crash_schedules(spec, grid):
            run = CommitRun(
                spec, crashes=crashes, rule=rule, registry=result.registry
            ).execute()
            runs += 1
            if not run.atomic:
                violations += 1
            if run.blocked_sites:
                blocked += 1
            else:
                terminated += 1
            for site, report in run.reports.items():
                if report.alive and report.decided_at is not None:
                    decision_times.add(report.decided_at)
        table.add_row(
            name,
            runs,
            blocked,
            100.0 * blocked / runs,
            terminated,
            violations,
            decision_times.mean,
        )
        data[name] = {
            "runs": runs,
            "blocked": blocked,
            "blocked_fraction": blocked / runs,
            "violations": violations,
            "mean_decision_time": decision_times.mean,
        }
    result.tables.append(table)

    result.data = data
    result.notes.append(
        "2PC blocks whenever the coordinator dies inside the vulnerable "
        "window between vote collection and outcome delivery; 3PC's "
        "blocked fraction is exactly zero across the same sweep, with "
        "zero atomicity violations for both."
    )
    return result
