"""Experiment T3 — the termination decision rule for the canonical 3PC
(paper slide 40).

The paper's rule: having moved every operational site to the backup's
state ``s``, commit if ``s ∈ {p, c}``, abort if ``s ∈ {q, w, a}``.
This experiment derives the decision table from the computed
concurrency sets and asserts it matches — and shows the 2PC analogue,
where the wait state yields BLOCKED (no safe decision), the paper's
argument that "a termination protocol can only be effective if the
associated commit protocol is nonblocking" (slide 12).
"""

from __future__ import annotations

from repro.experiments.base import ExperimentResult
from repro.metrics.tables import Table
from repro.protocols.three_phase_decentralized import decentralized_three_phase
from repro.protocols.two_phase_decentralized import decentralized_two_phase
from repro.runtime.decision import TerminationRule
from repro.types import Outcome, SiteId

#: Slide 40's table for the canonical 3PC.
PAPER_RULE_3PC = {
    "q": Outcome.ABORT,
    "w": Outcome.ABORT,
    "a": Outcome.ABORT,
    "p": Outcome.COMMIT,
    "c": Outcome.COMMIT,
}


def run_t3(n_sites: int = 3) -> ExperimentResult:
    """Regenerate table T3 and check it against the paper's rule."""
    site = SiteId(1)
    rule3 = TerminationRule(decentralized_three_phase(n_sites))
    rule2 = TerminationRule(decentralized_two_phase(n_sites))
    table3 = rule3.table(site)
    table2 = rule2.table(site)

    result = ExperimentResult(
        experiment_id="T3",
        title=f"Backup decision rule for the canonical 3PC (slide 40), n={n_sites}",
    )

    rule_table = Table(
        ["backup state s", "computed decision", "paper decision", "match"],
        title="canonical 3PC",
    )
    matches = {}
    for state in sorted(PAPER_RULE_3PC):
        computed = table3[state]
        expected = PAPER_RULE_3PC[state]
        matches[state] = computed is expected
        rule_table.add_row(state, computed.value, expected.value, matches[state])
    result.tables.append(rule_table)

    blocked_table = Table(
        ["backup state s", "decision"],
        title="canonical 2PC (why 2PC termination fails)",
    )
    for state in sorted(table2):
        blocked_table.add_row(state, table2[state].value)
    result.tables.append(blocked_table)

    result.data = {
        "rule_3pc": {k: v.value for k, v in table3.items()},
        "rule_2pc": {k: v.value for k, v in table2.items()},
        "all_match": all(matches.values()),
        "two_pc_blocks_at_w": table2["w"] is Outcome.BLOCKED,
    }
    result.notes.append(
        "The rule derived from concurrency sets equals slide 40's "
        "table exactly; on 2PC the same derivation yields BLOCKED at "
        "the wait state, so no termination protocol can save 2PC."
    )
    return result
