"""Experiment F2 — the reachable state graph of the 2-site 2PC
(paper slide 18).

Enumerates every reachable global state of the two-site decentralized
2PC (the paper's canonical 2PC), classifies final / terminal /
deadlocked / inconsistent states, and emits the graph in DOT form.
"""

from __future__ import annotations

from repro.analysis.paths import execution_statistics
from repro.analysis.reachability import build_state_graph
from repro.experiments.base import ExperimentResult
from repro.metrics.tables import Table
from repro.protocols.two_phase_decentralized import decentralized_two_phase


def run_f2() -> ExperimentResult:
    """Regenerate figure F2 (the 2-site reachable state graph)."""
    spec = decentralized_two_phase(2)
    graph = build_state_graph(spec)
    stats = execution_statistics(graph)

    result = ExperimentResult(
        experiment_id="F2",
        title="Reachable state graph of the 2-site 2PC (slide 18)",
    )

    summary = Table(["metric", "value"], title="graph summary")
    summary.add_row("global states", len(graph))
    summary.add_row("edges", graph.edge_count)
    summary.add_row("final states", len(graph.final_states()))
    summary.add_row("terminal states", len(graph.terminal_states()))
    summary.add_row("deadlocked states", len(graph.deadlocked_states()))
    summary.add_row("inconsistent states", len(graph.inconsistent_states()))
    result.tables.append(summary)

    listing = Table(["global state", "final"], title="states (paper notation)")
    for state in graph.states:
        listing.add_row(state.describe(graph.sites), graph.is_final(state))
    result.tables.append(listing)

    executions = Table(["metric", "value"], title="maximal executions (liveness)")
    executions.add_row("execution paths", stats.paths)
    executions.add_row("commit paths", stats.commit_paths)
    executions.add_row("abort paths", stats.abort_paths)
    executions.add_row("shortest path (transitions)", stats.lengths.minimum)
    executions.add_row("longest path (transitions)", stats.lengths.maximum)
    result.tables.append(executions)

    result.data = {
        "states": len(graph),
        "edges": graph.edge_count,
        "final": len(graph.final_states()),
        "terminal": len(graph.terminal_states()),
        "deadlocked": len(graph.deadlocked_states()),
        "inconsistent": len(graph.inconsistent_states()),
        "paths": stats.paths,
        "commit_paths": stats.commit_paths,
        "abort_paths": stats.abort_paths,
        "all_executions_terminate": stats.all_terminate_finally,
        "dot": graph.to_dot(),
    }
    result.notes.append(
        "As the paper requires: every terminal state is final (no "
        "deadlocks), no reachable state mixes commit with abort, and "
        "every maximal execution ends in a unanimous final state."
    )
    return result
