"""Experiment F6 — the decentralized 3PC automaton (paper slide 36)."""

from __future__ import annotations

from repro.analysis.nonblocking import check_nonblocking
from repro.analysis.synchronicity import check_synchronicity
from repro.experiments.base import ExperimentResult
from repro.metrics.tables import Table
from repro.protocols.three_phase_decentralized import decentralized_three_phase


def run_f6(n_sites: int = 3) -> ExperimentResult:
    """Regenerate figure F6 and verify its nonblocking property."""
    spec = decentralized_three_phase(n_sites)
    peer = spec.automaton(spec.sites[0])
    report = check_nonblocking(spec)
    sync = check_synchronicity(spec)

    result = ExperimentResult(
        experiment_id="F6",
        title=f"FSA of the decentralized 3PC (slide 36), n={n_sites}",
    )

    shape = Table(["property", "value"], title="peer automaton")
    shape.add_row("states", ",".join(sorted(peer.states)))
    shape.add_row("phases", peer.phase_count)
    shape.add_row("nonblocking", report.nonblocking)
    shape.add_row("tolerated failures", report.tolerated_failures)
    shape.add_row("synchronous within one", sync.synchronous_within_one)
    result.tables.append(shape)

    transitions = Table(["transition"], title="peer transitions (site 1 shown)")
    for transition in peer.transitions:
        transitions.add_row(transition.describe())
    result.tables.append(transitions)

    result.data = {
        "states": sorted(peer.states),
        "phases": peer.phase_count,
        "nonblocking": report.nonblocking,
        "tolerated_failures": report.tolerated_failures,
        "synchronous": sync.synchronous_within_one,
    }
    result.notes.append(
        "Matches slide 36: q->{w,a} on the vote, w->p broadcasting "
        "prepare on the full yes set, p->c on the full prepare set."
    )
    return result
