"""Experiment Q3 — exponential growth of the reachable state graph.

Slide 19: "The reachable state graph grows exponentially with the
number of sites, but, in practice, we seldom need to actually build
it."  This experiment builds it anyway — for increasing n — and
reports states and edges, confirming the growth rate the paper warns
about (and motivating the node budget the enumerator enforces).
"""

from __future__ import annotations

from repro.analysis.reachability import build_state_graph
from repro.experiments.base import ExperimentResult
from repro.metrics.tables import Table
from repro.protocols import catalog

#: Per-protocol site counts kept small enough to enumerate exhaustively.
DEFAULT_SWEEP = {
    "2pc-central": (2, 3, 4, 5),
    "3pc-central": (2, 3, 4, 5),
    "2pc-decentralized": (2, 3, 4),
    "3pc-decentralized": (2, 3, 4),
}


def run_q3(sweep: dict[str, tuple[int, ...]] = None) -> ExperimentResult:
    """Regenerate the Q3 growth table."""
    sweep = sweep if sweep is not None else DEFAULT_SWEEP
    result = ExperimentResult(
        experiment_id="Q3",
        title="Reachable-state-graph growth with site count (slide 19)",
    )

    table = Table(
        ["protocol", "n", "global states", "edges", "growth vs n-1"],
        title="graph sizes",
    )
    data: dict[str, dict[int, int]] = {}
    for name, counts in sweep.items():
        data[name] = {}
        previous = None
        for n in counts:
            graph = build_state_graph(catalog.build(name, n), budget=2_000_000)
            growth = f"x{len(graph) / previous:.2f}" if previous else "—"
            table.add_row(name, n, len(graph), graph.edge_count, growth)
            data[name][n] = len(graph)
            previous = len(graph)
    result.tables.append(table)

    # Exponential check: per-site multiplicative growth factor.
    factors = []
    for name, sizes in data.items():
        counts = sorted(sizes)
        for a, b in zip(counts, counts[1:]):
            factors.append(sizes[b] / sizes[a])
    result.data = {
        "sizes": data,
        "min_growth_factor": min(factors),
    }
    result.notes.append(
        "Every added site multiplies the state count (all growth "
        "factors exceed 2x), confirming the exponential growth the "
        "paper notes — and why concurrency sets, not raw graphs, are "
        "what a termination protocol consults at run time."
    )
    return result
