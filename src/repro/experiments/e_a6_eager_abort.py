"""Experiment A6 — the eager-abort optimization and what it costs.

Property 4 of the central-site model (slide 23) has the coordinator
collect the *complete* vote vector before deciding, which is what makes
the protocols synchronous within one state transition (slide 24) — the
precondition of the design lemma.  Practical systems usually abort on
the first ``no`` instead.  This experiment measures both sides of that
optimization:

* **benefit** — time to a unanimous decision when one site votes no:
  the eager coordinator aborts as soon as the dissent arrives instead
  of waiting for stragglers (visible under skewed link latency);
* **cost** — the synchronicity property: the eager variants let a
  decided site lead a lagging voter by two transitions, so the lemma's
  precondition (and with it the buffer-state design method's guarantee)
  no longer applies.

Nonblocking verdicts themselves are unchanged — eager 3PC still
satisfies the theorem — which is itself worth knowing: the theorem is
about concurrency sets, not about synchrony.
"""

from __future__ import annotations

from repro.analysis.nonblocking import check_nonblocking
from repro.analysis.synchronicity import check_synchronicity
from repro.experiments.base import ExperimentResult
from repro.metrics.tables import Table
from repro.net.latency import PerLinkLatency
from repro.protocols.three_phase_central import central_three_phase
from repro.protocols.two_phase_central import central_two_phase
from repro.runtime.harness import CommitRun
from repro.runtime.policies import FixedVotes
from repro.types import SiteId, Vote


def run_a6(n_sites: int = 4, straggler_delay: float = 6.0) -> ExperimentResult:
    """Regenerate the A6 tradeoff table."""
    result = ExperimentResult(
        experiment_id="A6",
        title="The eager-abort optimization: faster aborts, lost synchrony",
    )

    # One slave votes no quickly; another slave's link is slow, so its
    # vote (yes) arrives late.  Strict coordinators wait for it.
    straggler = SiteId(n_sites)
    latency = PerLinkLatency(
        {(straggler, SiteId(1)): straggler_delay}, default=1.0
    )
    votes = FixedVotes({SiteId(2): Vote.NO})

    table = Table(
        [
            "protocol variant",
            "abort latency (one no, one straggler)",
            "sync within one transition",
            "max lead",
            "nonblocking",
        ],
        title="strict (property 4) vs eager abort",
    )
    data: dict[str, dict] = {}
    for label, builder, eager in (
        ("2PC strict", central_two_phase, False),
        ("2PC eager", central_two_phase, True),
        ("3PC strict", central_three_phase, False),
        ("3PC eager", central_three_phase, True),
    ):
        spec = builder(n_sites, eager_abort=eager)
        run = CommitRun(
            spec,
            latency=latency,
            vote_policy=votes,
            termination_enabled=False,
        ).execute()
        run.assert_atomic()
        last_decision = max(run.decision_times().values())
        sync = check_synchronicity(spec)
        verdict = check_nonblocking(spec)
        table.add_row(
            label,
            last_decision,
            sync.synchronous_within_one,
            sync.max_lead,
            verdict.nonblocking,
        )
        data[label] = {
            "abort_latency": last_decision,
            "synchronous": sync.synchronous_within_one,
            "max_lead": sync.max_lead,
            "nonblocking": verdict.nonblocking,
        }
    result.tables.append(table)

    result.data = data
    result.notes.append(
        "Eager abort cuts abort latency by the straggler's delay but "
        "sacrifices synchronicity-within-one (max lead 2), voiding the "
        "lemma's precondition.  The nonblocking verdicts are untouched "
        "— the theorem judges concurrency sets, not synchrony."
    )
    return result
