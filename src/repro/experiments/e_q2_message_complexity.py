"""Experiment Q2 — the price of resilience: messages and latency.

Quantifies the paper's remark that "resilient protocols are expensive"
(slide 4): for every catalog protocol and a range of site counts, the
measured message count and commit latency of a failure-free unanimous
commit, next to the closed-form expectation:

========================  ================  =============
protocol                  messages          latency (hops)
========================  ================  =============
1PC (central)             n−1               1
2PC (central)             3(n−1)            3
3PC (central)             5(n−1)            5
2PC (decentralized)       n²                1
3PC (decentralized)       2n²               2
========================  ================  =============

Decentralized counts include the self-addressed copies of slide 25,
and their latencies exclude transaction distribution because the paper
does not model it there ("an xact message will be simply received"),
whereas the central-site protocols pay one hop for the coordinator's
xact fan-out.
"""

from __future__ import annotations

from repro.experiments.base import ExperimentResult
from repro.metrics.registry import MetricsRegistry
from repro.metrics.tables import Table
from repro.protocols import catalog
from repro.runtime.harness import CommitRun

#: Closed-form message counts and latencies for a unanimous commit.
ANALYTIC = {
    "1pc": (lambda n: n - 1, 1),
    "2pc-central": (lambda n: 3 * (n - 1), 3),
    "3pc-central": (lambda n: 5 * (n - 1), 5),
    "2pc-decentralized": (lambda n: n * n, 1),
    "3pc-decentralized": (lambda n: 2 * n * n, 2),
}


def run_q2(
    site_counts: tuple[int, ...] = (2, 4, 8, 12, 16),
    capture_traces: bool = False,
) -> ExperimentResult:
    """Regenerate the Q2 cost table over ``site_counts``.

    Args:
        site_counts: Participant counts to measure (one row per
            protocol per count) — the axis the parallel sweep shards.
        capture_traces: Attach each run's trace log to the result so
            sweep merges can build a combined JSONL stream; off by
            default because large-n traces dominate serialization cost.
    """
    result = ExperimentResult(
        experiment_id="Q2",
        title="Message and latency cost of a unanimous commit",
        registry=MetricsRegistry(),
    )

    table = Table(
        [
            "protocol",
            "n",
            "messages (measured)",
            "messages (analytic)",
            "latency (measured)",
            "latency (analytic)",
        ],
        title="failure-free commit cost (unit link latency)",
    )
    data: dict[str, dict[int, dict]] = {}
    for name in catalog.protocol_names():
        expected_msgs, expected_latency = ANALYTIC[name]
        data[name] = {}
        for n in site_counts:
            # eager_abort makes no difference on the unanimous-yes path
            # but keeps large-n spec construction linear instead of
            # exponential in the vote-vector combinations.
            if name == "1pc":
                spec = catalog.build(name, n)
            else:
                spec = catalog.PROTOCOLS[name](n, eager_abort=True)
            run = CommitRun(
                spec, termination_enabled=False, registry=result.registry
            ).execute()
            run.assert_atomic()
            if capture_traces:
                result.traces.append(run.trace)
            table.add_row(
                name,
                n,
                run.messages_sent,
                expected_msgs(n),
                run.duration,
                expected_latency,
            )
            data[name][n] = {
                "messages": run.messages_sent,
                "expected_messages": expected_msgs(n),
                "latency": run.duration,
                "expected_latency": expected_latency,
            }
    result.tables.append(table)

    result.data = data
    result.notes.append(
        "Measured counts equal the closed forms exactly.  Nonblocking "
        "costs ~5/3x the messages and hops of 2PC centrally, and 2x "
        "the messages (1.5x the hops) decentralized — the price of "
        "resilience the paper flags on slide 4."
    )
    return result
