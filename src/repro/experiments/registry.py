"""Name-indexed registry of all experiments."""

from __future__ import annotations

import inspect
from typing import Any, Callable

from repro.errors import ReproError
from repro.experiments.base import ExperimentResult
from repro.experiments.e_a1_phase1_ablation import run_a1
from repro.experiments.e_a2_partition import run_a2
from repro.experiments.e_a3_total_failure import run_a3
from repro.experiments.e_a4_cooperative_termination import run_a4
from repro.experiments.e_a5_quorum_tradeoff import run_a5
from repro.experiments.e_a6_eager_abort import run_a6
from repro.experiments.e_a7_independent_recovery import run_a7
from repro.experiments.e_f1_fsa_2pc_central import run_f1
from repro.experiments.e_f2_global_graph import run_f2
from repro.experiments.e_f3_fsa_2pc_decentralized import run_f3
from repro.experiments.e_f4_buffer_synthesis import run_f4
from repro.experiments.e_f5_fsa_3pc_central import run_f5
from repro.experiments.e_f6_fsa_3pc_decentralized import run_f6
from repro.experiments.e_q1_blocking_frequency import run_q1
from repro.experiments.e_q2_message_complexity import run_q2
from repro.experiments.e_q3_graph_growth import run_q3
from repro.experiments.e_q4_cascading_termination import run_q4
from repro.experiments.e_q5_recovery_matrix import run_q5
from repro.experiments.e_q6_db_throughput import run_q6
from repro.experiments.e_q7_inflight_window import run_q7
from repro.experiments.e_t1_concurrency_sets import run_t1
from repro.experiments.e_t2_blocking_verdicts import run_t2
from repro.experiments.e_t3_termination_rule import run_t3
from repro.experiments.e_t4_k_resiliency import run_t4

#: Every experiment by id, in DESIGN.md order.
EXPERIMENTS: dict[str, Callable[[], ExperimentResult]] = {
    "F1": run_f1,
    "F2": run_f2,
    "F3": run_f3,
    "T1": run_t1,
    "T2": run_t2,
    "F4": run_f4,
    "F5": run_f5,
    "F6": run_f6,
    "T3": run_t3,
    "T4": run_t4,
    "Q1": run_q1,
    "Q2": run_q2,
    "Q3": run_q3,
    "Q4": run_q4,
    "Q5": run_q5,
    "Q6": run_q6,
    "Q7": run_q7,
    # Extensions and ablations beyond the paper's own artifacts.
    "A1": run_a1,
    "A2": run_a2,
    "A3": run_a3,
    "A4": run_a4,
    "A5": run_a5,
    "A6": run_a6,
    "A7": run_a7,
}


def run_experiment(experiment_id: str, **config: Any) -> ExperimentResult:
    """Run one experiment by id (case-insensitive).

    Args:
        experiment_id: Index id (``"F1"`` ... ``"A7"``).
        config: Optional keyword overrides forwarded to the
            experiment's runner (e.g. ``site_counts=(8,)`` for Q2).
            This is how sweep shards parameterize one experiment; keys
            the runner does not accept are rejected up front.

    Raises:
        ReproError: For an unknown id or a config key the experiment's
            runner does not accept.
    """
    key = experiment_id.upper()
    try:
        runner = EXPERIMENTS[key]
    except KeyError:
        known = ", ".join(sorted(EXPERIMENTS))
        raise ReproError(
            f"unknown experiment {experiment_id!r}; known: {known}"
        ) from None
    if config:
        accepted = set(inspect.signature(runner).parameters)
        unknown = sorted(set(config) - accepted)
        if unknown:
            raise ReproError(
                f"experiment {key} does not accept config key(s) "
                f"{', '.join(unknown)}; accepted: {', '.join(sorted(accepted))}"
            )
    return runner(**config)
