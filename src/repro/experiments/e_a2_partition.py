"""Experiment A2 — the network assumption is load-bearing.

The paper's guarantee rests on two network assumptions (slide 13): the
network never fails, and site failures are detected reliably.  This
out-of-model experiment violates both at once with a partition: cross-
group messages drop and each side suspects the other side dead.  Both
halves of a 3PC then run the termination protocol independently — one
side's backup sits in the prepared state and commits, the other's sits
in the wait state and aborts.  The split decision quantifies exactly
where the paper's theorem stops applying (and why later work — quorum
3PC, Paxos commit — exists).
"""

from __future__ import annotations

from repro.experiments.base import ExperimentResult
from repro.metrics.tables import Table
from repro.protocols import catalog
from repro.runtime.decision import TerminationRule
from repro.runtime.harness import CommitRun
from repro.types import SiteId


def run_a2(n_sites: int = 4) -> ExperimentResult:
    """Regenerate the A2 partition demonstration."""
    spec = catalog.build("3pc-central", n_sites)
    rule = TerminationRule(spec)
    half = n_sites // 2
    groups = [
        set(SiteId(i) for i in range(1, half + 1)),
        set(SiteId(i) for i in range(half + 1, n_sites + 1)),
    ]

    result = ExperimentResult(
        experiment_id="A2",
        title="Out-of-model: 3PC under a network partition",
    )

    table = Table(
        ["scenario", "outcomes", "atomic"],
        title="crash-only (in model) vs partition (out of model)",
    )
    data: dict[str, dict] = {}

    # In-model control: a real coordinator crash at the same moment.
    from repro.workload.crashes import CrashAt

    control = CommitRun(
        spec, crashes=[CrashAt(site=1, at=3.2)], rule=rule
    ).execute()
    table.add_row(
        "coordinator crash (paper's model)",
        str({s: o.value for s, o in control.outcomes().items()}),
        control.atomic,
    )
    data["crash"] = {"atomic": control.atomic}

    # Out-of-model: partition mid-protocol, detector turns unreachable
    # into "failed".
    partitioned = CommitRun(
        spec,
        rule=rule,
        partition_at=3.2,
        partition_groups=groups,
    ).execute()
    table.add_row(
        f"partition into {[sorted(g) for g in groups]}",
        str({s: o.value for s, o in partitioned.outcomes().items()}),
        partitioned.atomic,
    )
    outcomes = partitioned.outcomes()
    data["partition"] = {
        "atomic": partitioned.atomic,
        "outcomes": {s: o.value for s, o in outcomes.items()},
    }
    result.tables.append(table)

    result.data = data
    result.notes.append(
        "Under a genuine crash the theorem holds (atomic, survivors "
        "terminate).  Under a partition misread as crashes, the two "
        "sides reach opposite decisions — 3PC's well-known split-brain, "
        "demonstrating that the paper's reliable-network assumption is "
        "essential to the nonblocking guarantee."
    )
    return result
