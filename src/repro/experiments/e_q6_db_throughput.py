"""Experiment Q6 — what blocking costs a real database.

The paper's motivation made concrete: "nonblocking protocols allow
operational sites to continue transaction processing" (abstract).  A
stream of transfer transactions runs against the distributed database;
partway through, the commit coordinator crashes during one
transaction's commit phase.  Under 2PC that transaction blocks and its
strict-2PL locks stay held, so every later transaction touching the
same keys dies stalled; under 3PC the termination protocol resolves
the in-flight transaction and the stream continues.
"""

from __future__ import annotations

from repro.db.distributed import DistributedDB
from repro.experiments.base import ExperimentResult
from repro.metrics.tables import Table
from repro.types import Outcome, SiteId
from repro.workload.crashes import CrashAt


def run_q6(
    n_txns: int = 20,
    crash_txn: int = 5,
    n_sites: int = 4,
) -> ExperimentResult:
    """Regenerate the Q6 throughput comparison.

    Args:
        n_txns: Transactions in the stream.
        crash_txn: Index of the transaction whose commit phase suffers
            the coordinator crash.
        n_sites: Database sites.
    """
    result = ExperimentResult(
        experiment_id="Q6",
        title=(
            "Post-failure throughput: transfers over a blocked 2PC vs a "
            "terminated 3PC"
        ),
    )

    table = Table(
        [
            "protocol",
            "txns",
            "committed",
            "aborted",
            "blocked",
            "stalled behind locks",
            "committed after crash",
        ],
        title=f"transfer stream (crash during txn {crash_txn})",
    )
    data: dict[str, dict] = {}
    # Both accounts live on distinct sites so every transfer is a
    # distributed transaction over the same two participants.
    placement = {"checking": SiteId(1), "savings": SiteId(2)}
    for protocol in ("2pc-central", "3pc-central"):
        db = DistributedDB(n_sites, protocol=protocol, placement=placement)
        db.run_transaction(0, [("w", "checking", 1000), ("w", "savings", 1000)])
        committed = aborted = blocked = stalled = after_crash_commits = 0
        for i in range(1, n_txns + 1):
            ops = [
                ("r", "checking"),
                ("w", "checking", 1000 - i),
                ("r", "savings"),
                ("w", "savings", 1000 + i),
            ]
            crashes = (
                [CrashAt(site=1, at=2.0)] if i == crash_txn else []
            )
            outcome = db.run_transaction(i, ops, crashes=crashes)
            if outcome.outcome is Outcome.COMMIT:
                committed += 1
                if i > crash_txn:
                    after_crash_commits += 1
            elif outcome.outcome is Outcome.BLOCKED:
                blocked += 1
            else:
                aborted += 1
                if outcome.reason == "stalled":
                    stalled += 1
        table.add_row(
            protocol, n_txns, committed, aborted, blocked, stalled,
            after_crash_commits,
        )
        data[protocol] = {
            "committed": committed,
            "aborted": aborted,
            "blocked": blocked,
            "stalled": stalled,
            "after_crash_commits": after_crash_commits,
        }
    result.tables.append(table)

    result.data = data
    result.notes.append(
        "Under 2PC the crashed coordinator leaves the transfer blocked "
        "with its locks held, so every subsequent transfer stalls and "
        "dies; under 3PC the termination protocol resolves it and the "
        "rest of the stream commits."
    )
    return result
