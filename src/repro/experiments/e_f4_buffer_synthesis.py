"""Experiment F4 — the buffer-state design method (paper slide 34).

Mechanically applies the paper's construction — insert a buffer state
``p`` before every commit state entered from a noncommittable state —
to both 2PC variants and checks that the result is *exactly* the
catalog 3PC (structural equality), is verified nonblocking by the
theorem, and that the method correctly fails on 1PC (whose slaves cast
no votes, so no buffer placement helps — slide 8's inadequacy).
"""

from __future__ import annotations

from repro.analysis.nonblocking import check_lemma, check_nonblocking
from repro.analysis.synthesis import insert_buffer_states, specs_structurally_equal
from repro.errors import SynthesisError
from repro.experiments.base import ExperimentResult
from repro.metrics.tables import Table
from repro.protocols.one_phase import one_phase
from repro.protocols.three_phase_central import central_three_phase
from repro.protocols.three_phase_decentralized import decentralized_three_phase
from repro.protocols.two_phase_central import central_two_phase
from repro.protocols.two_phase_decentralized import decentralized_two_phase


def run_f4(n_sites: int = 3) -> ExperimentResult:
    """Regenerate figure F4's construction and verify it end to end."""
    result = ExperimentResult(
        experiment_id="F4",
        title=f"Buffer-state synthesis: 2PC + p = 3PC (slide 34), n={n_sites}",
    )

    table = Table(
        ["input protocol", "synthesized nonblocking", "equals catalog 3PC"],
        title="synthesis outcomes",
    )
    cases = [
        (
            central_two_phase(n_sites),
            central_three_phase(n_sites),
            "2pc-central",
        ),
        (
            decentralized_two_phase(n_sites),
            decentralized_three_phase(n_sites),
            "2pc-decentralized",
        ),
    ]
    data: dict[str, dict] = {}
    for blocking_spec, target_spec, name in cases:
        synthesized = insert_buffer_states(blocking_spec)
        report = check_nonblocking(synthesized)
        equal = specs_structurally_equal(synthesized, target_spec)
        table.add_row(name, report.nonblocking, equal)
        data[name] = {"nonblocking": report.nonblocking, "equals_3pc": equal}
    result.tables.append(table)

    # Lemma view: before synthesis the 2PC violates the adjacency lemma;
    # after, it does not.
    before = check_lemma(central_two_phase(n_sites))
    after = check_lemma(insert_buffer_states(central_two_phase(n_sites)))
    lemma = Table(["stage", "lemma violations"], title="adjacency lemma (slide 33)")
    lemma.add_row("2PC before buffer insertion", len(before))
    lemma.add_row("after buffer insertion", len(after))
    result.tables.append(lemma)

    one_pc_failed = False
    try:
        insert_buffer_states(one_phase(n_sites))
    except SynthesisError:
        one_pc_failed = True
    negative = Table(["input protocol", "synthesis result"], title="negative control")
    negative.add_row(
        "1pc", "SynthesisError (slaves never vote)" if one_pc_failed else "unexpected success"
    )
    result.tables.append(negative)

    result.data = {
        **data,
        "lemma_violations_before": len(before),
        "lemma_violations_after": len(after),
        "one_pc_rejected": one_pc_failed,
    }
    result.notes.append(
        "The mechanized construction reproduces both 3PCs exactly and "
        "refuses 1PC, matching the paper's presentation of the method "
        "and of 1PC's inadequacy."
    )
    return result
