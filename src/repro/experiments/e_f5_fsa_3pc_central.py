"""Experiment F5 — the central-site 3PC automata (paper slide 35)."""

from __future__ import annotations

from repro.analysis.nonblocking import check_nonblocking
from repro.analysis.synchronicity import check_synchronicity
from repro.experiments.base import ExperimentResult
from repro.metrics.tables import Table
from repro.protocols.three_phase_central import central_three_phase


def run_f5(n_sites: int = 3) -> ExperimentResult:
    """Regenerate figure F5 and verify its nonblocking property."""
    spec = central_three_phase(n_sites)
    report = check_nonblocking(spec)
    sync = check_synchronicity(spec)

    result = ExperimentResult(
        experiment_id="F5",
        title=f"FSAs of the central-site 3PC (slide 35), n={n_sites}",
    )

    shape = Table(
        ["site", "role", "states", "phases"], title="automaton shapes"
    )
    for site in spec.sites:
        automaton = spec.automaton(site)
        shape.add_row(
            site,
            automaton.role,
            ",".join(sorted(automaton.states)),
            automaton.phase_count,
        )
    result.tables.append(shape)

    transitions = Table(["site", "transition"], title="transitions (one per role)")
    seen_roles: set[str] = set()
    for site in spec.sites:
        automaton = spec.automaton(site)
        if automaton.role in seen_roles:
            continue
        seen_roles.add(automaton.role)
        for transition in automaton.transitions:
            transitions.add_row(site, transition.describe())
    result.tables.append(transitions)

    verdict = Table(["property", "value"], title="verification")
    verdict.add_row("nonblocking (fundamental theorem)", report.nonblocking)
    verdict.add_row("tolerated failures (corollary)", report.tolerated_failures)
    verdict.add_row("synchronous within one transition", sync.synchronous_within_one)
    result.tables.append(verdict)

    coordinator = spec.automaton(spec.coordinator)
    result.data = {
        "coordinator_states": sorted(coordinator.states),
        "phases": spec.max_phase_count(),
        "nonblocking": report.nonblocking,
        "tolerated_failures": report.tolerated_failures,
        "synchronous": sync.synchronous_within_one,
    }
    result.notes.append(
        "Matches slide 35: the buffer state p sits between w and c at "
        "every site; the protocol has three phases, is synchronous "
        "within one transition, and satisfies both theorem conditions."
    )
    return result
