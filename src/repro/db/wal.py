"""The write-ahead log: per-site local atomicity.

A redo/undo log in the classic style (steal, no-force, no
checkpoints — the log holds the full history of this simulation):

* every update is logged *before* it is applied to the store, with
  both the old and the new value;
* commit and abort are single forced records;
* recovery replays the whole log forward (redo), then rolls back every
  transaction without a commit record (undo, in reverse order), writing
  compensation ``abort`` records for them.

This is the "local recovery strategy that provides atomicity at the
local level" the paper assumes of every site (slide 7).
"""

from __future__ import annotations

import dataclasses
from typing import Any, Iterable, Optional, Union

from repro.errors import WALError
from repro.db.kv import KVStore
from repro.types import TransactionId

#: Sentinel recorded as the "old value" when the key did not exist.
MISSING = object()


@dataclasses.dataclass(frozen=True)
class BeginRecord:
    """Transaction start."""

    txn: TransactionId


@dataclasses.dataclass(frozen=True)
class UpdateRecord:
    """One logged update with undo (old) and redo (new) information.

    ``old`` is :data:`MISSING` when the key had no prior value — undo
    then deletes the key.
    """

    txn: TransactionId
    key: str
    old: Any
    new: Any


@dataclasses.dataclass(frozen=True)
class CommitRecord:
    """Transaction commit (forced)."""

    txn: TransactionId


@dataclasses.dataclass(frozen=True)
class AbortRecord:
    """Transaction abort (forced; also written as a compensation record
    when recovery rolls a loser back)."""

    txn: TransactionId


WALRecord = Union[BeginRecord, UpdateRecord, CommitRecord, AbortRecord]


class WriteAheadLog:
    """Append-only, crash-surviving log for one site."""

    def __init__(self) -> None:
        self._records: list[WALRecord] = []

    @property
    def records(self) -> tuple[WALRecord, ...]:
        """All records in append order."""
        return tuple(self._records)

    def __len__(self) -> int:
        return len(self._records)

    # ------------------------------------------------------------------
    # Appends (each validates basic protocol sanity)
    # ------------------------------------------------------------------

    def log_begin(self, txn: TransactionId) -> None:
        """Record the start of ``txn``.

        Raises:
            WALError: If the transaction already began.
        """
        if self._began(txn):
            raise WALError(f"transaction {txn} already began")
        self._records.append(BeginRecord(txn))

    def log_update(self, txn: TransactionId, key: str, old: Any, new: Any) -> None:
        """Record an update of ``key`` by ``txn`` (before applying it).

        Raises:
            WALError: If the transaction never began or already ended.
        """
        self._require_active(txn)
        self._records.append(UpdateRecord(txn, key, old, new))

    def log_commit(self, txn: TransactionId) -> None:
        """Force a commit record.

        Raises:
            WALError: If the transaction never began or already ended.
        """
        self._require_active(txn)
        self._records.append(CommitRecord(txn))

    def log_abort(self, txn: TransactionId) -> None:
        """Force an abort record.

        Raises:
            WALError: If the transaction never began or already ended.
        """
        self._require_active(txn)
        self._records.append(AbortRecord(txn))

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def _began(self, txn: TransactionId) -> bool:
        return any(
            isinstance(r, BeginRecord) and r.txn == txn for r in self._records
        )

    def _require_active(self, txn: TransactionId) -> None:
        if not self._began(txn):
            raise WALError(f"transaction {txn} never began")
        if self.status(txn) != "active":
            raise WALError(f"transaction {txn} already {self.status(txn)}")

    def status(self, txn: TransactionId) -> str:
        """``"active"``, ``"committed"``, ``"aborted"``, or ``"unknown"``."""
        result = "unknown"
        for record in self._records:
            if record.txn != txn:
                continue
            if isinstance(record, BeginRecord):
                result = "active"
            elif isinstance(record, CommitRecord):
                result = "committed"
            elif isinstance(record, AbortRecord):
                result = "aborted"
        return result

    def transactions(self) -> list[TransactionId]:
        """Every transaction id appearing in the log, sorted."""
        return sorted({r.txn for r in self._records})

    def updates_of(self, txn: TransactionId) -> list[UpdateRecord]:
        """The update records of ``txn`` in log order."""
        return [
            r
            for r in self._records
            if isinstance(r, UpdateRecord) and r.txn == txn
        ]

    # ------------------------------------------------------------------
    # Recovery
    # ------------------------------------------------------------------

    def recover(
        self,
        store: KVStore,
        in_doubt: Iterable[TransactionId] = (),
    ) -> dict[str, list[TransactionId]]:
        """Rebuild ``store`` from the log after a crash.

        Redo pass: replay every update in log order.  Undo pass: roll
        back transactions with neither commit nor abort record, newest
        update first, and append compensation abort records for them.

        Args:
            store: The (freshly wiped) store to rebuild.
            in_doubt: Transactions that voted yes in a commit protocol
                but whose outcome is still unknown.  These must *not*
                be rolled back — the distributed decision may yet be
                commit — so their updates stay applied and they remain
                active, awaiting resolution.

        Returns:
            ``{"committed": [...], "aborted": [...], "rolled_back":
            [...], "in_doubt": [...]}`` — how each logged transaction
            was classified.
        """
        keep = set(in_doubt)
        # Redo: replay history forward.
        for record in self._records:
            if isinstance(record, UpdateRecord):
                store.put(record.key, record.new)
            elif isinstance(record, AbortRecord):
                # History already contains the txn's updates; undo them
                # now exactly as the original abort did.
                self._undo_into(store, record.txn, upto=self._records.index(record))

        # Undo: roll back losers (active transactions).
        classification: dict[str, list[TransactionId]] = {
            "committed": [],
            "aborted": [],
            "rolled_back": [],
            "in_doubt": [],
        }
        for txn in self.transactions():
            status = self.status(txn)
            if status == "committed":
                classification["committed"].append(txn)
            elif status == "aborted":
                classification["aborted"].append(txn)
            elif txn in keep:
                classification["in_doubt"].append(txn)
            else:
                self._undo_into(store, txn, upto=len(self._records))
                self._records.append(AbortRecord(txn))
                classification["rolled_back"].append(txn)
        return classification

    def _undo_into(
        self, store: KVStore, txn: TransactionId, upto: int
    ) -> None:
        """Undo ``txn``'s updates recorded before index ``upto``."""
        for record in reversed(self._records[:upto]):
            if isinstance(record, UpdateRecord) and record.txn == txn:
                if record.old is MISSING:
                    store.delete(record.key)
                else:
                    store.put(record.key, record.old)
