"""The distributed database: multi-site transactions over real commit
protocols.

:class:`DistributedDB` owns one :class:`~repro.db.local_tm.ResourceManager`
per site and routes keys to sites.  A transaction executes its
reads/writes under strict 2PL at each touched site, then runs the
commit phase through the *actual* FSA protocol (any catalog protocol)
on the simulated network, crash injection included.

Two execution modes:

* :meth:`DistributedDB.run_transaction` — one transaction at a time;
* :meth:`DistributedDB.run_concurrent` — several transaction programs
  interleaved round-robin, so lock conflicts, deadlocks (→ no votes),
  and the signature cost of blocking protocols (a blocked commit keeps
  its locks and stalls later transactions) all actually happen.
"""

from __future__ import annotations

import dataclasses
import zlib
from typing import Any, Iterable, Optional, Sequence, Union

from repro.errors import DeadlockError, InvalidProtocolError, TransactionAborted
from repro.db.local_tm import BlockedOnLock, ResourceManager
from repro.protocols.catalog import build as build_protocol
from repro.runtime.decision import TerminationRule
from repro.runtime.harness import CommitRun, RunResult
from repro.runtime.policies import FixedVotes
from repro.types import Outcome, SiteId, TransactionId, Vote
from repro.workload.crashes import CrashAt, CrashDuringTransition, CrashEvent

#: One operation of a transaction program.
#: ``("r", key)`` reads; ``("w", key, value)`` writes.
Op = Union[tuple[str, str], tuple[str, str, Any]]


@dataclasses.dataclass
class TransactionOutcome:
    """Result of one distributed transaction.

    Attributes:
        txn: Transaction id.
        outcome: COMMIT, ABORT, or BLOCKED (commit protocol could not
            decide and locks remain held).
        participants: Sites the transaction touched.
        votes: Per-participant prepare votes (empty if the transaction
            aborted before the commit phase).
        reason: Why the transaction aborted early, if it did
            (``"deadlock"``, ``"stalled"``), else ``None``.
        commit_run: The commit-phase simulation result, when one ran.
    """

    txn: TransactionId
    outcome: Outcome
    participants: tuple[SiteId, ...]
    votes: dict[SiteId, Vote] = dataclasses.field(default_factory=dict)
    reason: Optional[str] = None
    commit_run: Optional[RunResult] = None

    @property
    def committed(self) -> bool:
        """Whether the transaction committed everywhere."""
        return self.outcome is Outcome.COMMIT


class DistributedDB:
    """A multi-site database committing through a catalog protocol.

    Args:
        n_sites: Number of database sites (ids 1..n).
        protocol: Catalog protocol name for the commit phase
            (``"3pc-central"`` by default).
        seed: Seed for commit-phase simulations.
        placement: Optional explicit ``key -> site`` mapping; unlisted
            keys hash across sites.
    """

    def __init__(
        self,
        n_sites: int,
        protocol: str = "3pc-central",
        seed: int = 0,
        placement: Optional[dict[str, SiteId]] = None,
    ) -> None:
        if n_sites < 1:
            raise InvalidProtocolError(f"need at least 1 site, got {n_sites}")
        self.n_sites = n_sites
        self.protocol = protocol
        self.seed = seed
        self.sites = [SiteId(i) for i in range(1, n_sites + 1)]
        self.rms = {site: ResourceManager(site) for site in self.sites}
        self._placement = dict(placement or {})
        self._participants: dict[TransactionId, list[SiteId]] = {}
        self._next_seed = seed
        # Termination rules are cached per participant count: building
        # one costs a state-graph enumeration.
        self._rules: dict[int, TerminationRule] = {}

    # ------------------------------------------------------------------
    # Placement
    # ------------------------------------------------------------------

    def place(self, key: str) -> SiteId:
        """The site storing ``key`` (explicit placement, else hash)."""
        if key in self._placement:
            return self._placement[key]
        return self.sites[zlib.crc32(key.encode()) % self.n_sites]

    def get(self, key: str) -> Any:
        """Committed value of ``key`` (no transaction, no locks)."""
        return self.rms[self.place(key)].store.get(key)

    # ------------------------------------------------------------------
    # Context-manager API
    # ------------------------------------------------------------------

    def transaction(
        self,
        txn: Optional[TransactionId] = None,
        crashes: Iterable[CrashEvent] = (),
        max_time: float = 300.0,
    ) -> "TransactionContext":
        """Open a transaction as a context manager.

        ::

            with db.transaction() as txn:
                balance = txn.read("acct:a")
                txn.write("acct:a", balance - 50)
                txn.write("acct:b", 50)
            assert txn.outcome.committed

        A clean exit runs the commit phase through the configured
        protocol; an exception (including a deadlock-victim abort)
        aborts everywhere and re-raises.  The result is available as
        :attr:`TransactionContext.outcome` after exit.
        """
        if txn is None:
            txn = TransactionId(self._auto_txn_id())
        return TransactionContext(self, txn, tuple(crashes), max_time)

    def _auto_txn_id(self) -> int:
        self._next_auto_txn = getattr(self, "_next_auto_txn", 10_000) + 1
        return self._next_auto_txn

    # ------------------------------------------------------------------
    # Single-transaction execution
    # ------------------------------------------------------------------

    def run_transaction(
        self,
        txn: TransactionId,
        ops: Sequence[Op],
        crashes: Iterable[CrashEvent] = (),
        max_time: float = 300.0,
    ) -> TransactionOutcome:
        """Execute ``ops`` and commit via the configured protocol.

        Args:
            txn: Transaction id (unique per database).
            ops: The transaction program.
            crashes: Commit-phase crash schedule, in *database* site
                ids (translated onto the protocol topology).
            max_time: Commit-phase simulation deadline.

        Returns:
            The :class:`TransactionOutcome`.
        """
        try:
            for op in ops:
                self._apply_op(txn, op)
        except BlockedOnLock:
            # Single-transaction mode: nobody will release the lock, so
            # a queued request means a prior transaction left it held
            # (typically a *blocked* commit).  The new transaction
            # gives up rather than waiting forever.
            self._abort_everywhere(txn)
            return TransactionOutcome(
                txn=txn,
                outcome=Outcome.ABORT,
                participants=tuple(self._participants.get(txn, ())),
                reason="stalled",
            )
        except (DeadlockError, TransactionAborted):
            self._abort_everywhere(txn)
            return TransactionOutcome(
                txn=txn,
                outcome=Outcome.ABORT,
                participants=tuple(self._participants.get(txn, ())),
                reason="deadlock",
            )
        return self._commit_phase(txn, crashes, max_time)

    def _apply_op(self, txn: TransactionId, op: Op) -> None:
        kind = op[0]
        key = op[1]
        site = self.place(key)
        rm = self.rms[site]
        participants = self._participants.setdefault(txn, [])
        if site not in participants:
            rm.begin(txn)
            participants.append(site)
        if kind == "r":
            rm.read(txn, key)
        elif kind == "w":
            rm.write(txn, key, op[2])
        else:
            raise ValueError(f"unknown op kind {kind!r}")

    def _abort_everywhere(self, txn: TransactionId) -> None:
        for site in self._participants.get(txn, ()):
            self.rms[site].abort(txn)

    # ------------------------------------------------------------------
    # Commit phase
    # ------------------------------------------------------------------

    def _commit_phase(
        self,
        txn: TransactionId,
        crashes: Iterable[CrashEvent],
        max_time: float,
    ) -> TransactionOutcome:
        participants = sorted(self._participants.get(txn, ()))
        if not participants:
            return TransactionOutcome(
                txn=txn, outcome=Outcome.COMMIT, participants=()
            )
        votes = {site: self.rms[site].prepare(txn) for site in participants}

        if len(participants) == 1:
            # A flat transaction needs no distributed protocol.
            site = participants[0]
            if votes[site] is Vote.YES:
                self.rms[site].commit(txn)
                outcome = Outcome.COMMIT
            else:
                self.rms[site].abort(txn)
                outcome = Outcome.ABORT
            return TransactionOutcome(
                txn=txn,
                outcome=outcome,
                participants=tuple(participants),
                votes=votes,
            )

        # Map database sites onto the protocol topology 1..k.  The
        # lowest participant acts as coordinator for central protocols.
        k = len(participants)
        to_proto = {db: SiteId(i + 1) for i, db in enumerate(participants)}
        from_proto = {v: k_ for k_, v in to_proto.items()}
        spec = build_protocol(self.protocol, k)
        rule = self._rules.get(k)
        if rule is None:
            rule = TerminationRule(spec)
            self._rules[k] = rule
        proto_votes = {to_proto[db]: vote for db, vote in votes.items()}
        proto_crashes = [self._map_crash(event, to_proto) for event in crashes]

        self._next_seed += 1
        run = CommitRun(
            spec=spec,
            seed=self._next_seed,
            vote_policy=FixedVotes(proto_votes),
            crashes=proto_crashes,
            rule=rule,
            max_time=max_time,
        ).execute()

        global_outcomes = run.decided_outcomes()
        global_decision: Optional[Outcome] = (
            next(iter(global_outcomes)) if len(global_outcomes) == 1 else None
        )

        blocked = False
        for proto_site, report in run.reports.items():
            db_site = from_proto[proto_site]
            rm = self.rms[db_site]
            if report.crashed:
                # The participant's data plane crashed during the
                # commit phase: wipe volatile state and replay the WAL.
                # Any *other* transaction active at the site lost its
                # volatile updates and locks, so it is aborted
                # everywhere.  The transaction itself is classified by
                # what is knowable: its own logged decision, else the
                # global decision, else — if it voted yes — it stays in
                # doubt with updates and locks preserved; a site that
                # never voted rolls back (unilateral abort on
                # recovery, slide 6).
                bystanders = [t for t in rm.active_transactions() if t != txn]
                rm.crash()
                resolution = (
                    report.outcome if report.outcome.is_final else global_decision
                )
                if resolution is not None:
                    if resolution is Outcome.COMMIT:
                        rm.wal.log_commit(txn)
                    else:
                        rm.wal.log_abort(txn)
                    rm.recover()
                elif report.vote is Vote.YES:
                    rm.recover(in_doubt=[txn])
                    blocked = True
                else:
                    rm.recover()  # Never voted: rolled back.
                for bystander in bystanders:
                    self._abort_everywhere(bystander)
                continue
            if report.outcome is Outcome.COMMIT:
                if rm.is_active(txn):
                    rm.commit(txn)
            elif report.outcome is Outcome.ABORT:
                rm.abort(txn)
            else:
                blocked = True  # Undecided: locks stay held.

        if blocked and not run.decided_outcomes():
            outcome = Outcome.BLOCKED
        elif Outcome.COMMIT in run.decided_outcomes():
            outcome = Outcome.COMMIT
        else:
            outcome = Outcome.ABORT
        return TransactionOutcome(
            txn=txn,
            outcome=outcome,
            participants=tuple(participants),
            votes=votes,
            commit_run=run,
        )

    @staticmethod
    def _map_crash(
        event: CrashEvent, to_proto: dict[SiteId, SiteId]
    ) -> CrashEvent:
        if event.site not in to_proto:
            raise ValueError(
                f"crash schedule names site {event.site}, which is not a "
                "participant of this transaction"
            )
        return dataclasses.replace(event, site=to_proto[event.site])

    # ------------------------------------------------------------------
    # Concurrent execution
    # ------------------------------------------------------------------

    def run_concurrent(
        self,
        programs: dict[TransactionId, Sequence[Op]],
        crashes: Optional[dict[TransactionId, Sequence[CrashEvent]]] = None,
        max_stall_rounds: int = 100,
        max_time: float = 300.0,
    ) -> dict[TransactionId, TransactionOutcome]:
        """Interleave several transaction programs round-robin.

        Each scheduling round advances every live transaction by one
        operation; blocked operations retry the next round.  Deadlock
        victims abort (and will be reported with ``reason="deadlock"``).
        A transaction whose operations all completed runs its commit
        phase immediately.  Transactions making no progress for
        ``max_stall_rounds`` rounds — typically queued behind the locks
        of a *blocked* commit — abort with ``reason="stalled"``.

        Returns:
            Outcome per transaction id.
        """
        crashes = crashes or {}
        cursors = {txn: 0 for txn in programs}
        stall = {txn: 0 for txn in programs}
        results: dict[TransactionId, TransactionOutcome] = {}

        def give_up(txn: TransactionId, reason: str) -> None:
            self._abort_everywhere(txn)
            results[txn] = TransactionOutcome(
                txn=txn,
                outcome=Outcome.ABORT,
                participants=tuple(self._participants.get(txn, ())),
                reason=reason,
            )
            live.remove(txn)

        live = sorted(programs)
        while live:
            progressed_any = False
            for txn in list(live):
                ops = programs[txn]
                if cursors[txn] >= len(ops):
                    results[txn] = self._commit_phase(
                        txn, crashes.get(txn, ()), max_time
                    )
                    live.remove(txn)
                    progressed_any = True
                    continue
                try:
                    self._apply_op(txn, ops[cursors[txn]])
                except BlockedOnLock:
                    stall[txn] += 1
                    if stall[txn] >= max_stall_rounds:
                        give_up(txn, "stalled")
                    continue
                except (DeadlockError, TransactionAborted):
                    give_up(txn, "deadlock")
                    progressed_any = True
                    continue
                cursors[txn] += 1
                stall[txn] = 0
                progressed_any = True

            # Local detection cannot see cycles spanning sites; run the
            # global detector over the union of waits-for graphs.
            for victim in self._global_deadlock_victims():
                if victim in live:
                    give_up(victim, "deadlock")
                    progressed_any = True

            if not progressed_any:
                for txn in live:
                    stall[txn] += 1
                if all(stall[txn] >= max_stall_rounds for txn in live):
                    for txn in list(live):
                        give_up(txn, "stalled")
        return results

    def _global_deadlock_victims(self) -> list[TransactionId]:
        """Distributed deadlock detection over the merged waits-for graph.

        Each site only sees its own waits-for edges, so a cycle that
        spans sites (the classic two-site, two-key deadlock) is
        invisible locally.  A centralized detector merges the edges and
        sacrifices the youngest (highest-id) transaction per cycle.
        """
        merged: dict[TransactionId, set[TransactionId]] = {}
        for rm in self.rms.values():
            for waiter, blockers in rm.locks.waits_for().items():
                merged.setdefault(waiter, set()).update(blockers)

        victims: set[TransactionId] = set()
        for start in sorted(merged):
            if start in victims:
                continue
            # DFS from start looking for a path back to start.
            stack: list[TransactionId] = sorted(merged.get(start, ()))
            seen: set[TransactionId] = set()
            while stack:
                node = stack.pop()
                if node == start:
                    victims.add(max(self._cycle_members(merged, start)))
                    break
                if node in seen or node in victims:
                    continue
                seen.add(node)
                stack.extend(sorted(merged.get(node, ())))
        return sorted(victims)

    @staticmethod
    def _cycle_members(
        graph: dict[TransactionId, set[TransactionId]], start: TransactionId
    ) -> set[TransactionId]:
        """Nodes on some cycle through ``start`` (reach start and are
        reachable from it)."""

        def reachable(
            root: TransactionId, edges: dict[TransactionId, set[TransactionId]]
        ) -> set[TransactionId]:
            seen: set[TransactionId] = set()
            stack = [root]
            while stack:
                node = stack.pop()
                for nxt in edges.get(node, ()):
                    if nxt not in seen:
                        seen.add(nxt)
                        stack.append(nxt)
            return seen

        forward = reachable(start, graph)
        reverse_edges: dict[TransactionId, set[TransactionId]] = {}
        for src, dsts in graph.items():
            for dst in dsts:
                reverse_edges.setdefault(dst, set()).add(src)
        backward = reachable(start, reverse_edges)
        members = forward & backward
        members.add(start)
        return members

    # ------------------------------------------------------------------
    # Site failure plumbing (data plane)
    # ------------------------------------------------------------------

    def crash_site(self, site: SiteId) -> dict[str, list[TransactionId]]:
        """Crash a site's data plane and immediately recover it.

        Wipes the volatile store and lock table, then replays the WAL.
        Returns the recovery classification (committed / aborted /
        rolled back).
        """
        rm = self.rms[site]
        rm.crash()
        return rm.recover()

    def snapshot(self) -> dict[str, Any]:
        """Committed contents of the whole database (for audits)."""
        merged: dict[str, Any] = {}
        for rm in self.rms.values():
            merged.update(rm.store.snapshot())
        return merged


class TransactionContext:
    """One open transaction with read/write access and auto commit/abort.

    Created by :meth:`DistributedDB.transaction`; see there for usage.
    Operations execute immediately (locks taken, WAL written) so reads
    observe the transaction's own writes.
    """

    def __init__(
        self,
        db: DistributedDB,
        txn: TransactionId,
        crashes: tuple[CrashEvent, ...],
        max_time: float,
    ) -> None:
        self._db = db
        self.txn = txn
        self._crashes = crashes
        self._max_time = max_time
        self.outcome: Optional[TransactionOutcome] = None
        self._open = False

    # -- data operations ------------------------------------------------

    def _rm_for(self, key: str):
        site = self._db.place(key)
        rm = self._db.rms[site]
        participants = self._db._participants.setdefault(self.txn, [])
        if site not in participants:
            rm.begin(self.txn)
            participants.append(site)
        return rm

    def read(self, key: str) -> Any:
        """Read ``key`` under a shared lock (sees own writes)."""
        self._require_open()
        return self._rm_for(key).read(self.txn, key)

    def write(self, key: str, value: Any) -> None:
        """Write ``key`` under an exclusive lock."""
        self._require_open()
        self._rm_for(key).write(self.txn, key, value)

    def _require_open(self) -> None:
        if not self._open:
            raise TransactionAborted(
                f"transaction {self.txn} is not open (use 'with')"
            )

    # -- context manager --------------------------------------------------

    def __enter__(self) -> "TransactionContext":
        self._open = True
        return self

    def __exit__(self, exc_type, exc, _tb) -> bool:
        self._open = False
        if exc_type is not None:
            self._db._abort_everywhere(self.txn)
            reason = (
                "deadlock"
                if isinstance(exc, (DeadlockError, TransactionAborted))
                else "error"
            )
            self.outcome = TransactionOutcome(
                txn=self.txn,
                outcome=Outcome.ABORT,
                participants=tuple(self._db._participants.get(self.txn, ())),
                reason=reason,
            )
            return False  # Re-raise.
        self.outcome = self._db._commit_phase(
            self.txn, self._crashes, self._max_time
        )
        return False
