"""The volatile per-site key-value store.

Plain committed state: transactions mutate it through the resource
manager (which handles locking and logging), never directly.  The
store is *volatile* — a site crash wipes it — and is rebuilt from the
write-ahead log on recovery, which is what makes the WAL the source of
local atomicity.
"""

from __future__ import annotations

from typing import Any, Iterator, Optional


class KVStore:
    """An in-memory key-value store with deletion and iteration."""

    def __init__(self) -> None:
        self._data: dict[str, Any] = {}

    def get(self, key: str, default: Any = None) -> Any:
        """Current value of ``key`` (or ``default``)."""
        return self._data.get(key, default)

    def put(self, key: str, value: Any) -> None:
        """Set ``key`` to ``value``."""
        self._data[key] = value

    def delete(self, key: str) -> bool:
        """Remove ``key``; returns whether it existed."""
        return self._data.pop(key, None) is not None

    def exists(self, key: str) -> bool:
        """Whether ``key`` holds a value."""
        return key in self._data

    def keys(self) -> list[str]:
        """All keys, sorted."""
        return sorted(self._data)

    def items(self) -> Iterator[tuple[str, Any]]:
        """All (key, value) pairs in key order."""
        for key in self.keys():
            yield key, self._data[key]

    def snapshot(self) -> dict[str, Any]:
        """A copy of the current contents (for audits and tests)."""
        return dict(self._data)

    def wipe(self) -> None:
        """Lose everything — what a site crash does to volatile state."""
        self._data.clear()

    def __len__(self) -> int:
        return len(self._data)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"KVStore({len(self._data)} keys)"
