"""Strict two-phase locking with deadlock detection.

The lock manager grants shared (read) and exclusive (write) locks per
key.  Conflicting requests wait in FIFO order; a waits-for graph is
maintained, and any request that would close a cycle is refused with
:class:`~repro.errors.DeadlockError` — the requester becomes the
deadlock victim and must abort.

This is the paper's stated motivation for unilateral abort (slide 8):
"a server may not be able to commit its part of a transaction due to
issues of concurrency control, e.g. the resolution of a deadlock when
a locking scheme is adopted."  The resource manager converts a
deadlock-victim abort into a ``no`` vote.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Optional

from repro.errors import DeadlockError, LockError
from repro.types import TransactionId


class LockMode(enum.Enum):
    """Lock strength."""

    SHARED = "S"
    EXCLUSIVE = "X"

    def compatible_with(self, other: "LockMode") -> bool:
        """Whether two holders in these modes can coexist."""
        return self is LockMode.SHARED and other is LockMode.SHARED


@dataclasses.dataclass
class _LockEntry:
    """Holders and waiters of one key's lock."""

    holders: dict[TransactionId, LockMode] = dataclasses.field(default_factory=dict)
    waiters: list[tuple[TransactionId, LockMode]] = dataclasses.field(
        default_factory=list
    )


class LockManager:
    """Per-site lock table.

    ``acquire`` either grants immediately, enqueues the requester
    (returning ``False``), or raises :class:`DeadlockError` when
    waiting would create a cycle in the waits-for graph.  Blocked
    requests are re-examined on every release.
    """

    def __init__(self) -> None:
        self._table: dict[str, _LockEntry] = {}

    # ------------------------------------------------------------------
    # Acquisition
    # ------------------------------------------------------------------

    def acquire(self, txn: TransactionId, key: str, mode: LockMode) -> bool:
        """Request ``key`` in ``mode`` for ``txn``.

        Returns:
            ``True`` if granted now, ``False`` if the request was
            enqueued (the caller retries after releases).

        Raises:
            DeadlockError: If waiting would deadlock; the request is
                *not* enqueued and ``txn`` should abort.
        """
        entry = self._table.setdefault(key, _LockEntry())

        held = entry.holders.get(txn)
        if held is not None:
            if held is mode or held is LockMode.EXCLUSIVE:
                return True  # Re-entrant / already stronger.
            # Upgrade S -> X: allowed when we are the sole holder.
            if len(entry.holders) == 1:
                entry.holders[txn] = LockMode.EXCLUSIVE
                return True
            self._check_deadlock(txn, key, mode, entry)
            if not self._queued(entry, txn):
                entry.waiters.insert(0, (txn, mode))  # Upgrades go first.
            return False

        if self._grantable(entry, txn, mode):
            entry.holders[txn] = mode
            return True

        self._check_deadlock(txn, key, mode, entry)
        if not self._queued(entry, txn):
            entry.waiters.append((txn, mode))
        return False

    def _grantable(
        self, entry: _LockEntry, txn: TransactionId, mode: LockMode
    ) -> bool:
        if any(
            not mode.compatible_with(held)
            for holder, held in entry.holders.items()
            if holder != txn
        ):
            return False
        # FIFO fairness: don't jump over earlier waiters.
        return not any(waiter != txn for waiter, _ in entry.waiters)

    @staticmethod
    def _queued(entry: _LockEntry, txn: TransactionId) -> bool:
        return any(waiter == txn for waiter, _ in entry.waiters)

    # ------------------------------------------------------------------
    # Release and promotion
    # ------------------------------------------------------------------

    def release_all(self, txn: TransactionId) -> list[TransactionId]:
        """Drop every lock and queued request of ``txn``.

        Returns:
            Transactions whose queued requests became grantable — the
            caller (resource manager) re-drives their work.
        """
        woken: list[TransactionId] = []
        for key in list(self._table):
            entry = self._table[key]
            entry.holders.pop(txn, None)
            entry.waiters = [(w, m) for w, m in entry.waiters if w != txn]
            woken.extend(self._promote(entry))
            if not entry.holders and not entry.waiters:
                del self._table[key]
        return sorted(set(woken))

    def _promote(self, entry: _LockEntry) -> list[TransactionId]:
        """Grant queued requests that are now compatible, in order."""
        woken = []
        while entry.waiters:
            txn, mode = entry.waiters[0]
            others_incompatible = any(
                not mode.compatible_with(held)
                for holder, held in entry.holders.items()
                if holder != txn
            )
            if others_incompatible:
                break
            entry.waiters.pop(0)
            current = entry.holders.get(txn)
            if current is None or mode is LockMode.EXCLUSIVE:
                entry.holders[txn] = mode
            woken.append(txn)
        return woken

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def holders(self, key: str) -> dict[TransactionId, LockMode]:
        """Current holders of ``key``."""
        entry = self._table.get(key)
        return dict(entry.holders) if entry else {}

    def waiters(self, key: str) -> list[TransactionId]:
        """Queued transactions on ``key``, in FIFO order."""
        entry = self._table.get(key)
        return [txn for txn, _ in entry.waiters] if entry else []

    def locks_held(self, txn: TransactionId) -> dict[str, LockMode]:
        """Every lock ``txn`` currently holds."""
        return {
            key: entry.holders[txn]
            for key, entry in self._table.items()
            if txn in entry.holders
        }

    def waits_for(self) -> dict[TransactionId, set[TransactionId]]:
        """The waits-for graph: waiter -> set of blocking holders."""
        graph: dict[TransactionId, set[TransactionId]] = {}
        for entry in self._table.values():
            for waiter, mode in entry.waiters:
                blockers = {
                    holder
                    for holder, held in entry.holders.items()
                    if holder != waiter and not mode.compatible_with(held)
                }
                if blockers:
                    graph.setdefault(waiter, set()).update(blockers)
        return graph

    # ------------------------------------------------------------------
    # Deadlock detection
    # ------------------------------------------------------------------

    def _check_deadlock(
        self,
        txn: TransactionId,
        key: str,
        mode: LockMode,
        entry: _LockEntry,
    ) -> None:
        """Raise if ``txn`` waiting on ``key`` would close a cycle."""
        blockers = {
            holder
            for holder, held in entry.holders.items()
            if holder != txn and not mode.compatible_with(held)
        }
        graph = self.waits_for()
        graph.setdefault(txn, set()).update(blockers)

        # DFS from txn: a path back to txn is a cycle.
        stack = list(graph.get(txn, ()))
        seen: set[TransactionId] = set()
        while stack:
            node = stack.pop()
            if node == txn:
                raise DeadlockError(
                    f"transaction {txn} waiting for {key!r} ({mode.value}) "
                    "would deadlock; chosen as victim"
                )
            if node in seen:
                continue
            seen.add(node)
            stack.extend(graph.get(node, ()))

    def unlock(self, txn: TransactionId, key: str) -> None:
        """Release one lock explicitly (mostly for tests).

        Raises:
            LockError: If ``txn`` does not hold ``key``.
        """
        entry = self._table.get(key)
        if entry is None or txn not in entry.holders:
            raise LockError(f"transaction {txn} does not hold {key!r}")
        del entry.holders[txn]
        self._promote(entry)
        if not entry.holders and not entry.waiters:
            del self._table[key]
