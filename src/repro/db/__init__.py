"""The distributed database substrate.

The paper assumes its surrounding system: distributed transactions over
multiple sites, each with "a local recovery strategy that provides
atomicity at the local level" (slide 7), concurrency control whose
conflicts motivate unilateral abort (slide 8: deadlock resolution under
locking), and a transaction manager that drives a commit protocol.
This package builds that system:

* :mod:`~repro.db.kv` — the volatile per-site key-value store;
* :mod:`~repro.db.wal` — the crash-surviving write-ahead log and the
  redo/undo replay that implements local atomicity;
* :mod:`~repro.db.locks` — strict two-phase locking with a waits-for
  graph and deadlock-victim selection;
* :mod:`~repro.db.local_tm` — the per-site resource manager tying the
  three together (begin / read / write / prepare / commit / abort);
* :mod:`~repro.db.distributed` — the distributed database: key
  placement, multi-site transactions, and a commit phase that runs the
  *actual* FSA protocols from :mod:`repro.protocols` through the
  runtime harness, crash injection included.

The data plane (reads/writes/locking) executes synchronously; the
commit plane is fully simulated message passing.  This split keeps the
substrate testable while exercising exactly the protocol behaviour the
paper studies — a blocked 2PC commit really does leave locks held and
stalls later transactions.
"""

from repro.db.distributed import DistributedDB, TransactionOutcome
from repro.db.kv import KVStore
from repro.db.local_tm import ResourceManager
from repro.db.locks import LockManager, LockMode
from repro.db.wal import WriteAheadLog

__all__ = [
    "DistributedDB",
    "KVStore",
    "LockManager",
    "LockMode",
    "ResourceManager",
    "TransactionOutcome",
    "WriteAheadLog",
]
