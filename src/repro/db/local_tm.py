"""The per-site resource manager.

Ties the store, the WAL, and the lock manager into the local
transaction interface the distributed layer drives:

``begin`` → ``read``/``write`` (strict 2PL + write-ahead logging) →
``prepare`` (the site's *vote*) → ``commit`` / ``abort``.

A deadlock victim is aborted immediately and will vote no at prepare
time — the paper's canonical reason for unilateral abort.  Locks are
held until commit/abort (strict 2PL), which is precisely why a
*blocked* commit protocol is expensive: an undecided transaction keeps
its locks, stalling every later conflicting transaction.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Iterable, Optional

from repro.errors import DeadlockError, TransactionAborted
from repro.db.kv import KVStore
from repro.db.locks import LockManager, LockMode
from repro.db.wal import MISSING, WriteAheadLog
from repro.types import SiteId, TransactionId, Vote


class ResourceManager:
    """One site's local transaction manager.

    Args:
        site: The site this manager serves (for diagnostics).
    """

    def __init__(self, site: SiteId) -> None:
        self.site = site
        self.store = KVStore()
        self.wal = WriteAheadLog()
        self.locks = LockManager()
        self._active: set[TransactionId] = set()
        self._prepared: set[TransactionId] = set()
        self._aborted: set[TransactionId] = set()
        self.deadlock_victims = 0

    # ------------------------------------------------------------------
    # Transaction lifecycle
    # ------------------------------------------------------------------

    def begin(self, txn: TransactionId) -> None:
        """Start ``txn`` at this site."""
        self.wal.log_begin(txn)
        self._active.add(txn)

    def read(self, txn: TransactionId, key: str) -> Any:
        """Read ``key`` under a shared lock.

        Returns the committed (or own uncommitted) value.

        Raises:
            TransactionAborted: If ``txn`` already aborted here.
            DeadlockError: If waiting would deadlock (txn is aborted as
                the victim before the error propagates).
            BlockedOnLock: (as ``False``-like sentinel) — see
                :meth:`try_read`; this method raises instead of queuing.
        """
        self._require_active(txn)
        self._acquire_or_abort(txn, key, LockMode.SHARED)
        return self.store.get(key)

    def write(self, txn: TransactionId, key: str, value: Any) -> None:
        """Write ``key`` under an exclusive lock, logging undo/redo."""
        self._require_active(txn)
        self._acquire_or_abort(txn, key, LockMode.EXCLUSIVE)
        old = self.store.get(key, MISSING) if self.store.exists(key) else MISSING
        self.wal.log_update(txn, key, old, value)
        self.store.put(key, value)

    def lock_available(self, txn: TransactionId, key: str, mode: LockMode) -> bool:
        """Whether ``txn`` could take ``key`` in ``mode`` right now."""
        holders = self.locks.holders(key)
        return all(
            holder == txn or mode.compatible_with(held)
            for holder, held in holders.items()
        )

    def _acquire_or_abort(
        self, txn: TransactionId, key: str, mode: LockMode
    ) -> None:
        try:
            granted = self.locks.acquire(txn, key, mode)
        except DeadlockError:
            self.deadlock_victims += 1
            self.abort(txn)
            raise
        if not granted:
            raise BlockedOnLock(txn, key, mode)

    def _require_active(self, txn: TransactionId) -> None:
        if txn in self._aborted:
            raise TransactionAborted(f"transaction {txn} aborted at site {self.site}")
        if txn not in self._active:
            raise TransactionAborted(
                f"transaction {txn} is not active at site {self.site}"
            )

    # ------------------------------------------------------------------
    # Commit protocol interface
    # ------------------------------------------------------------------

    def prepare(self, txn: TransactionId) -> Vote:
        """The site's vote: yes iff the transaction is healthy here."""
        if txn in self._active and txn not in self._aborted:
            self._prepared.add(txn)
            return Vote.YES
        return Vote.NO

    def commit(self, txn: TransactionId) -> None:
        """Make ``txn`` durable and release its locks."""
        self._require_active(txn)
        self.wal.log_commit(txn)
        self._active.discard(txn)
        self._prepared.discard(txn)
        self.locks.release_all(txn)

    def abort(self, txn: TransactionId) -> None:
        """Undo ``txn``'s updates and release its locks (idempotent)."""
        if txn in self._aborted or txn not in self._active:
            return
        for record in reversed(self.wal.updates_of(txn)):
            if record.old is MISSING:
                self.store.delete(record.key)
            else:
                self.store.put(record.key, record.old)
        self.wal.log_abort(txn)
        self._active.discard(txn)
        self._prepared.discard(txn)
        self._aborted.add(txn)
        self.locks.release_all(txn)

    # ------------------------------------------------------------------
    # Crash / recovery
    # ------------------------------------------------------------------

    def crash(self) -> None:
        """Lose volatile state: store contents, lock table, live sets."""
        self.store.wipe()
        self.locks = LockManager()
        self._active.clear()
        self._prepared.clear()

    def recover(
        self, in_doubt: Iterable[TransactionId] = ()
    ) -> dict[str, list[TransactionId]]:
        """Rebuild the store from the WAL after a crash.

        In-doubt transactions (voted yes, distributed outcome unknown)
        are preserved rather than rolled back: their updates stay
        applied, their exclusive locks are re-acquired, and they return
        to active/prepared status awaiting the eventual
        :meth:`resolve` — exactly how a recovering 2PC/3PC participant
        must hold its locks until the in-doubt question is answered.

        Returns the classification from
        :meth:`repro.db.wal.WriteAheadLog.recover`.
        """
        classification = self.wal.recover(self.store, in_doubt=in_doubt)
        for txn in classification["in_doubt"]:
            self._active.add(txn)
            self._prepared.add(txn)
            for record in self.wal.updates_of(txn):
                granted = self.locks.acquire(txn, record.key, LockMode.EXCLUSIVE)
                assert granted, "fresh lock table must grant in-doubt relocks"
        return classification

    def resolve(self, txn: TransactionId, outcome: "Outcome") -> None:
        """Apply the distributed decision to a recovered in-doubt txn.

        Raises:
            TransactionAborted: If the transaction is not active here.
            ValueError: For a non-final outcome.
        """
        from repro.types import Outcome

        if outcome is Outcome.COMMIT:
            self.commit(txn)
        elif outcome is Outcome.ABORT:
            self.abort(txn)
        else:
            raise ValueError(f"cannot resolve to non-final outcome {outcome}")

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def is_active(self, txn: TransactionId) -> bool:
        """Whether ``txn`` is live (begun, not yet finished) here."""
        return txn in self._active

    def active_transactions(self) -> list[TransactionId]:
        """All live transactions at this site, sorted."""
        return sorted(self._active)

    def is_prepared(self, txn: TransactionId) -> bool:
        """Whether ``txn`` voted yes here and awaits the outcome."""
        return txn in self._prepared

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ResourceManager(site={self.site}, active={len(self._active)}, "
            f"keys={len(self.store)})"
        )


class BlockedOnLock(Exception):
    """A lock request was queued; the operation should be retried.

    Not a :class:`~repro.errors.ReproError` subclass on purpose: it is
    control flow for the round-robin executor in
    :mod:`repro.db.distributed`, not an error condition.
    """

    def __init__(self, txn: TransactionId, key: str, mode: LockMode) -> None:
        super().__init__(f"transaction {txn} blocked on {key!r} ({mode.value})")
        self.txn = txn
        self.key = key
        self.mode = mode
