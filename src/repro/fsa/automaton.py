"""One site's protocol automaton.

A :class:`SiteAutomaton` is the per-site FSA of the paper's formal
model: local states, an initial state, final states partitioned into
commit and abort states, and transitions that each read a nonempty set
of messages, write an ordered sequence of messages, and optionally
carry a vote annotation.

State names follow the paper's figures (``q``, ``w``, ``a``, ``p``,
``c``); the site subscript is implicit in :attr:`SiteAutomaton.site`.
"""

from __future__ import annotations

import dataclasses
import functools
from typing import Iterable, Optional

from repro.errors import InvalidAutomatonError
from repro.fsa.messages import Msg
from repro.types import SiteId, StateKind, Vote


@dataclasses.dataclass(frozen=True)
class Transition:
    """One state transition of a site automaton.

    Attributes:
        source: State the transition leaves.
        target: State the transition enters.  The change of local state
            is the instantaneous event marking the end of the transition
            (and of all its message activity).
        reads: Nonempty set of messages consumed.  A transition is
            enabled only when every read message is outstanding and
            addressed to this site.
        writes: Ordered sequence of messages produced.  Order matters
            for failure injection: a site crashing mid-transition may
            have transmitted only a prefix of its writes (slide 21).
        vote: Optional vote annotation.  ``Vote.YES`` marks the site's
            agreement to commit; ``Vote.NO`` marks a unilateral abort.
            Vote annotations feed the committable-state analysis.
    """

    source: str
    target: str
    reads: frozenset[Msg]
    writes: tuple[Msg, ...] = ()
    vote: Optional[Vote] = None

    def describe(self) -> str:
        """Render the transition in the paper's ``reads / writes`` style."""
        reads = ", ".join(str(m) for m in sorted(self.reads))
        writes = ", ".join(str(m) for m in self.writes) or "—"
        vote = f" [vote {self.vote.value}]" if self.vote else ""
        return f"{self.source} --({reads} / {writes})--> {self.target}{vote}"


class SiteAutomaton:
    """The finite state automaton executed by one site.

    Args:
        site: The site this automaton belongs to.
        role: Role name for display (``"coordinator"``, ``"slave"``,
            ``"peer"``).
        initial: Name of the initial state.
        commit_states: Final states representing commit.
        abort_states: Final states representing abort.
        transitions: All transitions.  The full state set is inferred
            from the initial state, the final states, and transition
            endpoints.
        read_only_states: Terminal states of a read-only participant
            (the Gray & Lamport one-phase exit).  A site in such a state
            has left the protocol without adopting either outcome; it is
            final in the sense of "no further transitions", but carries
            no decision and writes no DT record.

    The constructor performs no validation; call
    :func:`repro.fsa.validate.validate_automaton` (done automatically by
    :class:`repro.fsa.spec.ProtocolSpec`).
    """

    def __init__(
        self,
        site: SiteId,
        role: str,
        initial: str,
        commit_states: Iterable[str],
        abort_states: Iterable[str],
        transitions: Iterable[Transition],
        read_only_states: Iterable[str] = (),
    ) -> None:
        self.site = site
        self.role = role
        self.initial = initial
        self.commit_states = frozenset(commit_states)
        self.abort_states = frozenset(abort_states)
        self.read_only_states = frozenset(read_only_states)
        self.transitions = tuple(transitions)
        states = (
            {initial}
            | set(self.commit_states)
            | set(self.abort_states)
            | set(self.read_only_states)
        )
        for transition in self.transitions:
            states.add(transition.source)
            states.add(transition.target)
        self.states = frozenset(states)
        self._out: dict[str, tuple[Transition, ...]] = {}
        self._in: dict[str, tuple[Transition, ...]] = {}
        for state in self.states:
            self._out[state] = tuple(
                t for t in self.transitions if t.source == state
            )
            self._in[state] = tuple(t for t in self.transitions if t.target == state)

    # ------------------------------------------------------------------
    # State classification
    # ------------------------------------------------------------------

    @property
    def final_states(self) -> frozenset[str]:
        """Commit states, abort states, and read-only exit states."""
        return self.commit_states | self.abort_states | self.read_only_states

    def kind(self, state: str) -> StateKind:
        """Classify a state: initial, intermediate, commit, or abort."""
        if state in self.commit_states:
            return StateKind.COMMIT
        if state in self.abort_states:
            return StateKind.ABORT
        if state in self.read_only_states:
            return StateKind.READ_ONLY
        if state == self.initial:
            return StateKind.INITIAL
        return StateKind.INTERMEDIATE

    def is_final(self, state: str) -> bool:
        """Whether the state terminates the site's protocol participation."""
        return (
            state in self.commit_states
            or state in self.abort_states
            or state in self.read_only_states
        )

    # ------------------------------------------------------------------
    # Structure queries
    # ------------------------------------------------------------------

    def out_transitions(self, state: str) -> tuple[Transition, ...]:
        """Transitions leaving ``state``."""
        return self._out.get(state, ())

    def in_transitions(self, state: str) -> tuple[Transition, ...]:
        """Transitions entering ``state``."""
        return self._in.get(state, ())

    def successors(self, state: str) -> frozenset[str]:
        """States adjacent to ``state`` (reachable in one transition).

        This is the adjacency relation used by the paper's lemma for
        protocols synchronous within one state transition.
        """
        return frozenset(t.target for t in self._out.get(state, ()))

    def predecessors(self, state: str) -> frozenset[str]:
        """States with a transition into ``state``."""
        return frozenset(t.source for t in self._in.get(state, ()))

    @functools.cached_property
    def depths(self) -> dict[str, int]:
        """Shortest distance of each reachable state from the initial state.

        Note the paper's automata are *not* leveled: a slave's abort
        state is one transition away via a no vote and two away via an
        abort message.  Shortest-path depth is therefore only a display
        ordering; transition *counts* during execution are tracked by
        the synchronicity analysis, not read off state identity.
        """
        depths = {self.initial: 0}
        frontier = [self.initial]
        while frontier:
            next_frontier = []
            for state in frontier:
                for transition in self._out.get(state, ()):
                    if transition.target not in depths:
                        depths[transition.target] = depths[state] + 1
                        next_frontier.append(transition.target)
            frontier = next_frontier
        return depths

    def depth(self, state: str) -> int:
        """Shortest-path depth of a reachable state (display ordering).

        Raises:
            InvalidAutomatonError: If the state is unreachable.
        """
        try:
            return self.depths[state]
        except KeyError:
            raise InvalidAutomatonError(
                f"state {state!r} is unreachable in automaton of site {self.site}"
            ) from None

    @functools.cached_property
    def phase_count(self) -> int:
        """Number of phases: the longest path from initial to a final state.

        Matches the protocol names: 2 for the 2PC automata, 3 for the
        3PC automata (a phase occurs when all sites make a transition,
        and the longest chain of transitions bounds the phase count).
        """
        order = self.topological_order()
        longest = {state: 0 for state in order}
        for state in order:
            for transition in self._out.get(state, ()):
                if transition.target in longest:
                    longest[transition.target] = max(
                        longest[transition.target], longest[state] + 1
                    )
        return max(longest[state] for state in self.final_states)

    # ------------------------------------------------------------------
    # Vote analysis
    # ------------------------------------------------------------------

    @functools.cached_property
    def implies_yes_vote(self) -> dict[str, bool]:
        """For each reachable state, whether occupancy implies a yes vote.

        A state ``s`` implies a yes vote when *every* path from the
        initial state to ``s`` traverses at least one transition
        annotated ``Vote.YES``.  Computed by dataflow over the acyclic
        automaton: a state implies yes iff all its incoming edges either
        carry a yes vote or originate in a state that implies yes.

        This is the per-site ingredient of the committable-state
        analysis in :mod:`repro.analysis.committable`.
        """
        order = self.topological_order()
        implies: dict[str, bool] = {}
        for state in order:
            incoming = self._in.get(state, ())
            if state == self.initial and not incoming:
                implies[state] = False
                continue
            if not incoming:
                implies[state] = False
                continue
            # A READ_ONLY vote is consent: the read-only site never
            # vetoes, so for committability it counts like a yes.
            implies[state] = all(
                t.vote in (Vote.YES, Vote.READ_ONLY) or implies[t.source]
                for t in incoming
            )
        return implies

    def topological_order(self) -> list[str]:
        """Reachable states in a topological order (initial first).

        Raises:
            InvalidAutomatonError: If the reachable part has a cycle —
            state diagrams of commit protocols are acyclic (slide 16).
        """
        indegree: dict[str, int] = {}
        reachable = set(self.depths)
        for state in reachable:
            indegree.setdefault(state, 0)
            for transition in self._out.get(state, ()):
                if transition.target in reachable:
                    indegree[transition.target] = indegree.get(transition.target, 0) + 1
        ready = sorted(state for state, deg in indegree.items() if deg == 0)
        order: list[str] = []
        while ready:
            state = ready.pop(0)
            order.append(state)
            inserted = []
            for transition in self._out.get(state, ()):
                target = transition.target
                if target not in indegree:
                    continue
                indegree[target] -= 1
                if indegree[target] == 0:
                    inserted.append(target)
            for target in sorted(inserted):
                ready.append(target)
            ready.sort()
        if len(order) != len(reachable):
            raise InvalidAutomatonError(
                f"automaton of site {self.site} has a cycle among reachable states"
            )
        return order

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SiteAutomaton(site={self.site}, role={self.role!r}, "
            f"states={sorted(self.states)})"
        )
