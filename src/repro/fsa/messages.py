"""Model-level messages.

A :class:`Msg` is the unit written to and read from the paper's
"common input/output tape": an immutable ``(kind, src, dst)`` triple.
Message kinds are short strings following the paper's vocabulary —
``request``, ``xact``, ``yes``, ``no``, ``commit``, ``abort``,
``prepare``, ``ack`` — plus ``ro``, the read-only vote of the
one-phase-exit optimization (Gray & Lamport).

External inputs (the transaction request arriving at the coordinator,
or the ``xact`` message each site receives in the decentralized model)
are modelled as messages from the pseudo-site :data:`EXTERNAL`.
"""

from __future__ import annotations

import dataclasses

from repro.types import SiteId

#: Pseudo site id for inputs that originate outside the protocol
#: (slide 25: "an xact message will be simply received").
EXTERNAL: SiteId = SiteId(0)

#: The message vocabulary used by the catalog protocols.
KNOWN_KINDS = frozenset(
    {"request", "xact", "yes", "no", "commit", "abort", "prepare", "ack", "ro"}
)


@dataclasses.dataclass(frozen=True, order=True)
class Msg:
    """One message on the model's input/output tape.

    Attributes:
        kind: Message kind (e.g. ``"yes"``).
        src: Sending site (``EXTERNAL`` for outside inputs).
        dst: Receiving site.
    """

    kind: str
    src: SiteId
    dst: SiteId

    def __str__(self) -> str:
        if self.src == EXTERNAL:
            return f"{self.kind}→{self.dst}"
        return f"{self.kind}[{self.src}→{self.dst}]"


def fan_out(kind: str, src: SiteId, dsts: list[SiteId]) -> tuple[Msg, ...]:
    """One message of ``kind`` from ``src`` to each destination, in order.

    Mirrors the paper's notation ``commit_2, ..., commit_n``: the same
    message kind sent to every other participant.
    """
    return tuple(Msg(kind, src, SiteId(dst)) for dst in dsts)


def fan_in(kind: str, srcs: list[SiteId], dst: SiteId) -> frozenset[Msg]:
    """One message of ``kind`` from each source to ``dst``.

    Mirrors the paper's notation ``yes_2, ..., yes_n``: the coordinator
    waits for the same message kind from every slave.
    """
    return frozenset(Msg(kind, SiteId(src), dst) for src in srcs)
