"""The paper's formal model of commit protocols.

Skeen (1981) models the execution of a transaction at each site as a
nondeterministic finite state automaton, with the network serving as a
common input/output tape: a state transition reads a nonempty set of
messages addressed to the site, writes a set of messages, and moves to
the next local state.  Final states are partitioned into *commit* and
*abort* states, and state diagrams are acyclic.

This package implements that model:

* :class:`~repro.fsa.messages.Msg` — a model-level message
  ``(kind, src, dst)``, with ``src = EXTERNAL`` for outside inputs such
  as the transaction request;
* :class:`~repro.fsa.automaton.Transition` and
  :class:`~repro.fsa.automaton.SiteAutomaton` — one site's FSA;
* :class:`~repro.fsa.spec.ProtocolSpec` — a complete n-site protocol:
  one automaton per site plus the externally supplied initial messages;
* :mod:`~repro.fsa.validate` — structural validation of the model's
  requirements (acyclicity, final-state partition, nonempty reads,
  message addressing, leveled phase structure);
* :mod:`~repro.fsa.render` — ASCII and DOT renderers reproducing the
  paper's protocol figures.

The same specs are *analyzed* by :mod:`repro.analysis` and *executed*
by :mod:`repro.runtime`, so the artifact proven nonblocking is the
artifact that runs.
"""

from repro.fsa.automaton import SiteAutomaton, Transition
from repro.fsa.messages import EXTERNAL, Msg
from repro.fsa.spec import ProtocolSpec
from repro.fsa.validate import validate_automaton, validate_spec

__all__ = [
    "EXTERNAL",
    "Msg",
    "ProtocolSpec",
    "SiteAutomaton",
    "Transition",
    "validate_automaton",
    "validate_spec",
]
