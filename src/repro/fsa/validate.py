"""Structural validation of automata and protocol specs.

The checks encode the properties the paper requires of commit-protocol
FSAs (slide 16) plus closed-world sanity conditions that make global
state enumeration well-defined:

Automaton-level
    * the initial state exists and every state is reachable from it;
    * the state diagram is acyclic;
    * commit and abort states are disjoint, both nonempty, and final
      states have no outgoing transitions;
    * every transition reads a *nonempty* set of messages, each
      addressed to this site, and writes only messages from this site;
    (The paper's automata are deliberately *not* leveled — a slave's
    abort state is reachable in one transition via a no vote and in two
    via an abort message — so no leveling is enforced; the
    synchronicity-within-one analysis counts transitions along
    executions instead.)

Spec-level
    * automaton site ids match their keys and are positive;
    * initial messages come only from :data:`~repro.fsa.messages.EXTERNAL`
      and are addressed to participating sites;
    * closed world: every message a site expects to read from a peer is
      actually written by some transition of that peer, and every write
      is addressed to a participating site;
    * no two transitions of one site can ever emit the same ``Msg``
      twice along a single path (in-flight messages form a set, not a
      multiset; acyclicity plus this check makes that sound);
    * central-site specs name a participating coordinator.
"""

from __future__ import annotations

from repro.errors import InvalidAutomatonError, InvalidProtocolError
from repro.fsa.automaton import SiteAutomaton
from repro.fsa.messages import EXTERNAL, Msg
from repro.fsa.spec import ProtocolSpec
from repro.types import ProtocolClass


def validate_automaton(automaton: SiteAutomaton) -> None:
    """Validate one site automaton.

    Raises:
        InvalidAutomatonError: Describing the first violated property.
    """
    site = automaton.site
    if automaton.initial not in automaton.states:
        raise InvalidAutomatonError(f"site {site}: initial state missing")

    overlap = automaton.commit_states & automaton.abort_states
    if overlap:
        raise InvalidAutomatonError(
            f"site {site}: states {sorted(overlap)} are both commit and abort"
        )
    ro_overlap = automaton.read_only_states & (
        automaton.commit_states | automaton.abort_states
    )
    if ro_overlap:
        raise InvalidAutomatonError(
            f"site {site}: states {sorted(ro_overlap)} are both read-only "
            "and commit/abort"
        )
    # A read-only participant terminates without adopting either
    # outcome, so its automaton legitimately has neither a commit nor
    # an abort state; every other automaton needs both.
    if not automaton.read_only_states:
        if not automaton.commit_states:
            raise InvalidAutomatonError(f"site {site}: no commit state")
        if not automaton.abort_states:
            raise InvalidAutomatonError(f"site {site}: no abort state")

    for transition in automaton.transitions:
        if not transition.reads:
            raise InvalidAutomatonError(
                f"site {site}: transition {transition.describe()} reads nothing; "
                "the model requires a nonempty read string"
            )
        for msg in transition.reads:
            if msg.dst != site:
                raise InvalidAutomatonError(
                    f"site {site}: transition reads {msg}, which is addressed "
                    f"to site {msg.dst}"
                )
        for msg in transition.writes:
            if msg.src != site:
                raise InvalidAutomatonError(
                    f"site {site}: transition writes {msg}, which claims "
                    f"sender {msg.src}"
                )
        if transition.source in automaton.final_states:
            raise InvalidAutomatonError(
                f"site {site}: final state {transition.source!r} has an "
                "outgoing transition; commit and abort are irreversible"
            )

    # Acyclicity and reachability: topological_order raises on cycles and
    # only covers reachable states.
    reachable = set(automaton.topological_order())
    unreachable = automaton.states - reachable
    if unreachable:
        raise InvalidAutomatonError(
            f"site {site}: unreachable states {sorted(unreachable)}"
        )


def validate_spec(spec: ProtocolSpec) -> None:
    """Validate a complete protocol spec.

    Runs :func:`validate_automaton` on every site first, then the
    spec-level consistency checks described in the module docstring.

    Raises:
        InvalidProtocolError: Describing the first violated property.
        InvalidAutomatonError: If a member automaton is itself invalid.
    """
    if not spec.automata:
        raise InvalidProtocolError(f"{spec.name!r}: no participating sites")

    for site, automaton in spec.automata.items():
        if site != automaton.site:
            raise InvalidProtocolError(
                f"{spec.name!r}: automaton keyed {site} claims site "
                f"{automaton.site}"
            )
        if site <= EXTERNAL:
            raise InvalidProtocolError(
                f"{spec.name!r}: site ids must be positive, got {site}"
            )
        validate_automaton(automaton)

    participants = set(spec.automata)

    for msg in spec.initial_messages:
        if msg.src != EXTERNAL:
            raise InvalidProtocolError(
                f"{spec.name!r}: initial message {msg} must come from the "
                "external world"
            )
        if msg.dst not in participants:
            raise InvalidProtocolError(
                f"{spec.name!r}: initial message {msg} addressed to a "
                "non-participant"
            )

    _check_closed_world(spec, participants)
    _check_no_duplicate_emission(spec)

    if spec.protocol_class is ProtocolClass.CENTRAL_SITE:
        if spec.coordinator is None:
            raise InvalidProtocolError(
                f"{spec.name!r}: central-site protocols need a coordinator"
            )
        if spec.coordinator not in participants:
            raise InvalidProtocolError(
                f"{spec.name!r}: coordinator {spec.coordinator} does not "
                "participate"
            )


def _check_closed_world(spec: ProtocolSpec, participants: set) -> None:
    """Every read has a possible producer; every write has a consumer site."""
    producible: set[Msg] = set(spec.initial_messages)
    for automaton in spec.automata.values():
        for transition in automaton.transitions:
            producible.update(transition.writes)

    for automaton in spec.automata.values():
        for transition in automaton.transitions:
            for msg in transition.reads:
                if msg not in producible:
                    raise InvalidProtocolError(
                        f"{spec.name!r}: site {automaton.site} reads {msg}, "
                        "which no transition or initial input can produce"
                    )
            for msg in transition.writes:
                if msg.dst not in participants:
                    raise InvalidProtocolError(
                        f"{spec.name!r}: site {automaton.site} writes {msg} "
                        "to a non-participant"
                    )


def _check_no_duplicate_emission(spec: ProtocolSpec) -> None:
    """No path through one automaton may emit the same ``Msg`` twice.

    The global-state enumerator represents outstanding messages as a
    set; this check guarantees the set representation loses nothing.
    It is conservative: it rejects specs where a message appears in the
    writes of two transitions with an ancestor/descendant relationship
    (on the same path).
    """
    for automaton in spec.automata.values():
        # ancestors[s] = states on some path from initial to s (exclusive).
        order = automaton.topological_order()
        ancestors: dict[str, frozenset[str]] = {}
        for state in order:
            incoming = automaton.in_transitions(state)
            acc: set[str] = set()
            for transition in incoming:
                acc.add(transition.source)
                acc.update(ancestors.get(transition.source, frozenset()))
            ancestors[state] = frozenset(acc)

        emissions: dict[Msg, list] = {}
        for transition in automaton.transitions:
            for msg in transition.writes:
                emissions.setdefault(msg, []).append(transition)
        for msg, transitions in emissions.items():
            if len(transitions) < 2:
                continue
            for i, first in enumerate(transitions):
                for second in transitions[i + 1 :]:
                    # Two transitions can both fire along one execution
                    # only if one's target lies on a path to the other's
                    # source.  Transitions sharing a source are mutually
                    # exclusive alternatives and never conflict.
                    sequential = (
                        first.target == second.source
                        or first.target in ancestors[second.source]
                        or second.target == first.source
                        or second.target in ancestors[first.source]
                    )
                    if sequential:
                        raise InvalidProtocolError(
                            f"{spec.name!r}: site {automaton.site} can emit "
                            f"{msg} twice along one path "
                            f"({first.describe()} and {second.describe()})"
                        )
