"""Precompiled transition tables for the FSA hot path.

The engine's inner loop asks one question per pump: *which transitions
out of the current state have their read set buffered?*  Interpreted,
that is a dict lookup by state name plus a frozenset-of-dataclass
inclusion test — every ``Msg`` gets re-hashed (three string hashes and
a tuple combine) on every poll.  Compiling an automaton replaces both
with integers: states are interned into a sorted tuple, transitions
live in a flat tuple-of-tuples indexed by state number, and every
message appearing in a read set is assigned a small int key so
enabledness is a ``frozenset[int] <= set[int]`` test over pre-hashed
ints.

Compilation is *structural only* — a :class:`CompiledTransition`
carries the original transition's ``source``/``target``/``reads``/
``writes``/``vote`` unchanged (and delegates ``describe``), so the
engine fires the exact same objects' effects in the exact same order
and the trace stream is bit-identical either way.  That equivalence is
pinned by the differential suite in
``tests/unit/test_fsa_compile.py``, which replays the explorer corpus
and direct simulator runs under both modes.

Tables are built once per :class:`~repro.fsa.automaton.SiteAutomaton`
(weakly memoized) and eagerly at spec-load time by
:class:`~repro.fsa.spec.ProtocolSpec`, so neither the simulator nor a
live node ever compiles on the transaction path.  The module-level
switch exists for the differential tests; production code never turns
it off.
"""

from __future__ import annotations

import contextlib
import weakref
from typing import Iterator, Mapping

from repro.fsa.automaton import SiteAutomaton, Transition
from repro.fsa.messages import Msg
from repro.types import SiteId


class CompiledTransition:
    """One transition with its integer-keyed fast-path lookups.

    Mirrors the attribute surface of
    :class:`~repro.fsa.automaton.Transition` (``source``, ``target``,
    ``reads``, ``writes``, ``vote``, ``describe``) so the engine's
    firing path handles both interchangeably, and adds:

    Attributes:
        reads_keys: The read set as interned message keys.
        target_idx: The target state's index in the compiled automaton.
        target_final: Whether the target is a final (commit/abort) state.
        origin: The interpreted transition this was compiled from.
    """

    __slots__ = (
        "source",
        "target",
        "reads",
        "writes",
        "vote",
        "reads_keys",
        "target_idx",
        "target_final",
        "origin",
    )

    def __init__(
        self,
        origin: Transition,
        reads_keys: frozenset[int],
        target_idx: int,
        target_final: bool,
    ) -> None:
        self.origin = origin
        self.source = origin.source
        self.target = origin.target
        self.reads = origin.reads
        self.writes = origin.writes
        self.vote = origin.vote
        self.reads_keys = reads_keys
        self.target_idx = target_idx
        self.target_final = target_final

    def describe(self) -> str:
        """Render exactly as the interpreted transition would."""
        return self.origin.describe()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CompiledTransition({self.describe()})"


class CompiledAutomaton:
    """Flat tuple-indexed lookup tables for one site automaton.

    Attributes:
        automaton: The source automaton.
        states: All state names, sorted — index position is the state's
            interned id.
        index: State name -> interned id.
        initial_idx: Interned id of the initial state.
        out: ``out[state_idx]`` is the tuple of
            :class:`CompiledTransition` leaving that state, in the same
            order ``SiteAutomaton.out_transitions`` yields them (the
            engine's tie-break order is part of observable behavior).
        msg_keys: Message -> interned key, covering every message that
            appears in some read set.  Messages outside the map can
            never enable a transition.
    """

    __slots__ = ("automaton", "states", "index", "initial_idx", "out", "msg_keys")

    def __init__(self, automaton: SiteAutomaton) -> None:
        self.automaton = automaton
        states = tuple(sorted(automaton.states))
        self.states = states
        index = {state: i for i, state in enumerate(states)}
        self.index = index
        self.initial_idx = index[automaton.initial]
        msg_keys: dict[Msg, int] = {}
        rows = []
        for state in states:
            row = []
            for transition in automaton.out_transitions(state):
                keys = []
                for msg in sorted(transition.reads):
                    key = msg_keys.get(msg)
                    if key is None:
                        key = msg_keys[msg] = len(msg_keys)
                    keys.append(key)
                row.append(
                    CompiledTransition(
                        transition,
                        frozenset(keys),
                        index[transition.target],
                        automaton.is_final(transition.target),
                    )
                )
            rows.append(tuple(row))
        self.out: tuple[tuple[CompiledTransition, ...], ...] = tuple(rows)
        self.msg_keys = msg_keys

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CompiledAutomaton(site={self.automaton.site}, "
            f"states={len(self.states)}, msgs={len(self.msg_keys)})"
        )


# ----------------------------------------------------------------------
# Compilation cache and the differential-test switch
# ----------------------------------------------------------------------

_CACHE: "weakref.WeakKeyDictionary[SiteAutomaton, CompiledAutomaton]" = (
    weakref.WeakKeyDictionary()
)

_enabled = True


def engine_compiled() -> bool:
    """Whether new engines use compiled transition tables (default on)."""
    return _enabled


def set_engine_compiled(enabled: bool) -> bool:
    """Flip the compiled/interpreted switch; returns the previous value.

    Exists for the differential test suite — production code never
    interprets.  Engines capture the mode at construction, so flipping
    mid-run affects only engines built afterwards.
    """
    global _enabled
    previous = _enabled
    _enabled = bool(enabled)
    return previous


@contextlib.contextmanager
def interpreted_engine() -> Iterator[None]:
    """Run a block with newly built engines interpreting their specs."""
    previous = set_engine_compiled(False)
    try:
        yield
    finally:
        set_engine_compiled(previous)


def compile_automaton(automaton: SiteAutomaton) -> CompiledAutomaton:
    """The (memoized) compiled tables for one automaton."""
    compiled = _CACHE.get(automaton)
    if compiled is None:
        compiled = _CACHE[automaton] = CompiledAutomaton(automaton)
    return compiled


def compile_spec(
    automata: Mapping[SiteId, SiteAutomaton],
) -> dict[SiteId, CompiledAutomaton]:
    """Compile every site automaton of a spec (spec-load-time warmup)."""
    return {site: compile_automaton(a) for site, a in automata.items()}
