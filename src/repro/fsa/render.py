"""Renderers for protocol automata and specs.

Two output formats:

* ``format_automaton`` / ``format_spec`` — ASCII transition tables in
  the style of the paper's figures, used by the examples and by the
  benchmark harness when regenerating figures F1/F3/F5/F6;
* ``automaton_to_dot`` / ``spec_to_dot`` — Graphviz DOT, for readers
  who want the figures as actual diagrams.
"""

from __future__ import annotations

from repro.fsa.automaton import SiteAutomaton
from repro.fsa.spec import ProtocolSpec


def format_automaton(automaton: SiteAutomaton) -> str:
    """Render one automaton as an ASCII transition table."""
    lines = [
        f"site {automaton.site} ({automaton.role})",
        f"  states : {', '.join(sorted(automaton.states))}",
        f"  initial: {automaton.initial}",
        f"  commit : {', '.join(sorted(automaton.commit_states))}",
        f"  abort  : {', '.join(sorted(automaton.abort_states))}",
        "  transitions:",
    ]
    ordered = sorted(
        automaton.transitions,
        key=lambda t: (automaton.depth(t.source), t.source, t.target),
    )
    for transition in ordered:
        lines.append(f"    {transition.describe()}")
    return "\n".join(lines)


def format_spec(spec: ProtocolSpec, collapse_roles: bool = True) -> str:
    """Render a whole protocol spec.

    Args:
        spec: The protocol to render.
        collapse_roles: When true (default), sites sharing a role are
            rendered once with a representative site — matching the
            paper's "Site i (i=2, n)" presentation.
    """
    lines = [f"protocol: {spec.name} ({spec.protocol_class.value}, n={spec.n_sites})"]
    if spec.coordinator is not None:
        lines.append(f"coordinator: site {spec.coordinator}")
    initial = ", ".join(str(m) for m in sorted(spec.initial_messages))
    lines.append(f"initial inputs: {initial}")
    seen_roles: set[str] = set()
    for site in spec.sites:
        automaton = spec.automaton(site)
        if collapse_roles:
            if automaton.role in seen_roles:
                continue
            seen_roles.add(automaton.role)
        lines.append("")
        lines.append(format_automaton(automaton))
    return "\n".join(lines)


def automaton_to_dot(automaton: SiteAutomaton, graph_name: str = "fsa") -> str:
    """Render one automaton as a Graphviz digraph."""
    lines = [f"digraph {graph_name} {{", "  rankdir=TB;"]
    for state in sorted(automaton.states):
        shape = "circle"
        extra = ""
        if state in automaton.commit_states:
            shape = "doublecircle"
            extra = ' color="darkgreen"'
        elif state in automaton.abort_states:
            shape = "doublecircle"
            extra = ' color="firebrick"'
        elif state == automaton.initial:
            extra = ' style="bold"'
        lines.append(f'  "{state}" [shape={shape}{extra}];')
    for transition in automaton.transitions:
        reads = ", ".join(str(m) for m in sorted(transition.reads))
        writes = ", ".join(str(m) for m in transition.writes)
        label = f"{reads} / {writes}" if writes else reads
        lines.append(
            f'  "{transition.source}" -> "{transition.target}" '
            f'[label="{label}"];'
        )
    lines.append("}")
    return "\n".join(lines)


def spec_to_dot(spec: ProtocolSpec) -> str:
    """Render every distinct role of a spec as one DOT file of clusters."""
    lines = ["digraph protocol {", "  rankdir=TB;", "  compound=true;"]
    seen_roles: set[str] = set()
    for site in spec.sites:
        automaton = spec.automaton(site)
        if automaton.role in seen_roles:
            continue
        seen_roles.add(automaton.role)
        lines.append(f"  subgraph cluster_site_{site} {{")
        lines.append(f'    label="site {site} ({automaton.role})";')
        for state in sorted(automaton.states):
            node = f"s{site}_{state}"
            shape = (
                "doublecircle" if automaton.is_final(state) else "circle"
            )
            lines.append(f'    "{node}" [label="{state}", shape={shape}];')
        for transition in automaton.transitions:
            reads = ", ".join(str(m) for m in sorted(transition.reads))
            writes = ", ".join(str(m) for m in transition.writes)
            label = f"{reads} / {writes}" if writes else reads
            lines.append(
                f'    "s{site}_{transition.source}" -> '
                f'"s{site}_{transition.target}" [label="{label}"];'
            )
        lines.append("  }")
    lines.append("}")
    return "\n".join(lines)
