"""Complete protocol specifications.

A :class:`ProtocolSpec` bundles one :class:`SiteAutomaton` per site
with the externally supplied initial messages (the transaction request
in the central-site model; the per-site ``xact`` messages in the
decentralized model).  Specs are validated on construction.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Optional

from repro.errors import InvalidProtocolError
from repro.fsa.automaton import SiteAutomaton
from repro.fsa.compile import CompiledAutomaton, compile_spec
from repro.fsa.messages import Msg
from repro.types import ProtocolClass, SiteId


class ProtocolSpec:
    """An n-site commit protocol in the paper's formal model.

    Args:
        name: Display name, e.g. ``"central-site 2PC"``.
        protocol_class: Which of the two paradigms the protocol follows.
        automata: Mapping from site id to that site's automaton.
        initial_messages: Messages outstanding before any transition
            fires — external inputs from :data:`repro.fsa.messages.EXTERNAL`
            (and nothing else; protocol messages only appear via writes).
        coordinator: The distinguished site in central-site protocols;
            ``None`` for decentralized protocols.
        validate: Run structural validation (default).  Disable only in
            tests that construct deliberately malformed specs.

    Raises:
        InvalidProtocolError: If validation fails (see
            :func:`repro.fsa.validate.validate_spec` for the checks).
    """

    def __init__(
        self,
        name: str,
        protocol_class: ProtocolClass,
        automata: Mapping[SiteId, SiteAutomaton],
        initial_messages: Iterable[Msg],
        coordinator: Optional[SiteId] = None,
        validate: bool = True,
    ) -> None:
        self.name = name
        self.protocol_class = protocol_class
        self.automata = dict(automata)
        self.initial_messages = frozenset(initial_messages)
        self.coordinator = coordinator
        if validate:
            # Imported here to avoid a cycle: validate imports spec types.
            from repro.fsa.validate import validate_spec

            validate_spec(self)
        # Compile every automaton's flat transition tables now, at
        # spec-load time, so no engine (simulator or live node) ever
        # pays the compilation on the transaction path.
        self.compiled: dict[SiteId, CompiledAutomaton] = compile_spec(self.automata)
        #: Sites that leave the protocol through a read-only exit: they
        #: have no commit/abort states, hold no outcome, and are pruned
        #: from phase-2/3 fan-outs, termination, and recovery queries.
        self.read_only_sites: frozenset[SiteId] = frozenset(
            site
            for site, automaton in self.automata.items()
            if automaton.read_only_states
            and not (automaton.commit_states or automaton.abort_states)
        )

    # ------------------------------------------------------------------
    # Topology
    # ------------------------------------------------------------------

    @property
    def sites(self) -> list[SiteId]:
        """Sorted ids of the participating sites."""
        return sorted(self.automata)

    @property
    def n_sites(self) -> int:
        """Number of participating sites."""
        return len(self.automata)

    def automaton(self, site: SiteId) -> SiteAutomaton:
        """The automaton executed by ``site``.

        Raises:
            InvalidProtocolError: If the site does not participate.
        """
        try:
            return self.automata[site]
        except KeyError:
            raise InvalidProtocolError(
                f"site {site} does not participate in {self.name!r}"
            ) from None

    # ------------------------------------------------------------------
    # Convenience views used throughout analysis and the runtime
    # ------------------------------------------------------------------

    def initial_state_vector(self) -> tuple[str, ...]:
        """The local-state vector of the initial global state."""
        return tuple(self.automata[site].initial for site in self.sites)

    def is_commit_state(self, site: SiteId, state: str) -> bool:
        """Whether ``state`` is a commit state of ``site``."""
        return state in self.automata[site].commit_states

    def is_abort_state(self, site: SiteId, state: str) -> bool:
        """Whether ``state`` is an abort state of ``site``."""
        return state in self.automata[site].abort_states

    def is_final_state(self, site: SiteId, state: str) -> bool:
        """Whether ``state`` is a final (commit or abort) state."""
        return self.automata[site].is_final(state)

    def message_kinds(self) -> frozenset[str]:
        """All message kinds appearing anywhere in the protocol."""
        kinds = {msg.kind for msg in self.initial_messages}
        for automaton in self.automata.values():
            for transition in automaton.transitions:
                kinds.update(msg.kind for msg in transition.reads)
                kinds.update(msg.kind for msg in transition.writes)
        return frozenset(kinds)

    def max_phase_count(self) -> int:
        """The protocol's phase count (max over sites).

        For the catalog protocols this matches their names: 1 for 1PC at
        the slaves, 2 for 2PC, 3 for 3PC.
        """
        return max(automaton.phase_count for automaton in self.automata.values())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ProtocolSpec({self.name!r}, {self.protocol_class.value}, "
            f"n={self.n_sites})"
        )
