"""The host seam: what the protocol controllers require from a site.

The commit FSAs, the termination protocol, and the recovery protocol
were written against the *simulated* :class:`~repro.runtime.site.CommitSite`.
Everything they actually touch, though, is a narrow surface — send a
payload to a peer, arm/cancel a named timer, read the clock, consult
the failure detector's operational view, and reach the site's engine
and DT log.  :class:`ProtocolHost` names that surface explicitly, so
the *same, unmodified* controller code runs over two backends:

* :class:`~repro.runtime.site.CommitSite` — virtual time, simulated
  network (the analysis/testing backend);
* :class:`repro.live.node.LiveTxn` — wall-clock time, real asyncio TCP
  (the deployment backend; see ``docs/LIVE.md``).

The :class:`~repro.runtime.engine.Engine` needs even less: it is
constructed from plain callables (``send``, ``now``, ``on_final``,
``on_trace``) and never sees the host at all.  This module exists so
that narrowness is a checked contract instead of an accident.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Protocol, runtime_checkable

from repro.fsa.spec import ProtocolSpec
from repro.net.message import Payload
from repro.runtime.engine import Engine
from repro.runtime.log import DTLog
from repro.types import SimTime, SiteId

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids import cycles
    from repro.runtime.recovery import RecoveryController
    from repro.runtime.termination import TerminationController


@runtime_checkable
class OperationalView(Protocol):
    """The failure detector's current view of who is reachable.

    The simulator backend implements this with the ground-truth
    liveness map of :class:`~repro.net.network.Network`; the live
    backend with heartbeat-timeout suspicion over TCP
    (:class:`repro.live.transport.Transport`).
    """

    def operational_sites(self) -> list[SiteId]:
        """Sorted ids of the sites currently believed operational."""
        ...  # pragma: no cover - protocol definition


class ProtocolHost(Protocol):
    """One site, as seen by the termination and recovery controllers.

    Attribute and method semantics match their namesakes on
    :class:`~repro.runtime.site.CommitSite`, which is the reference
    implementation of this protocol.
    """

    site: SiteId
    spec: ProtocolSpec
    engine: Engine
    log: DTLog
    ever_crashed: bool
    known_failed: set[SiteId]
    network: OperationalView
    termination: "TerminationController"
    recovery: "RecoveryController"

    @property
    def alive(self) -> bool:
        """Whether the site is currently operational."""
        ...  # pragma: no cover - protocol definition

    def send_payload(self, dst: SiteId, payload: Payload) -> None:
        """Transmit a termination/recovery payload to a peer."""
        ...  # pragma: no cover - protocol definition

    def set_timer(
        self, key: str, delay: SimTime, callback: Callable[[], None]
    ) -> object:
        """Arm (or re-arm) the named timer."""
        ...  # pragma: no cover - protocol definition

    def cancel_timer(self, key: str) -> bool:
        """Cancel the named timer if armed."""
        ...  # pragma: no cover - protocol definition

    def now(self) -> SimTime:
        """Current time in the host's clock (virtual or wall)."""
        ...  # pragma: no cover - protocol definition

    def trace(self, category: str, detail: str, **data: object) -> None:
        """Record one trace entry."""
        ...  # pragma: no cover - protocol definition

    def operational_participants(self) -> list[SiteId]:
        """Participants this site believes operational (never-crashed)."""
        ...  # pragma: no cover - protocol definition

    def notify_blocked(self) -> None:
        """Report that the transaction is blocked at this site."""
        ...  # pragma: no cover - protocol definition
