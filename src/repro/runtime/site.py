"""One simulated site running a commit protocol.

:class:`CommitSite` wires together the four per-site components:

* the FSA :class:`~repro.runtime.engine.Engine` executing the commit
  protocol proper;
* the crash-surviving :class:`~repro.runtime.log.DTLog`;
* the :class:`~repro.runtime.termination.TerminationController`
  reacting to failure notifications;
* the :class:`~repro.runtime.recovery.RecoveryController` running after
  a restart.

A crash loses all volatile state (FSA state, message buffer, timers)
but keeps the DT log; a restarted site does not rejoin the commit
protocol — it recovers the outcome, per the paper's separation of
termination (operational sites) and recovery (crashed sites).
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.fsa.messages import Msg
from repro.fsa.spec import ProtocolSpec
from repro.net.message import Envelope, Payload
from repro.net.network import Network
from repro.runtime.decision import TerminationRule
from repro.runtime.engine import Engine
from repro.runtime.log import DTLog
from repro.runtime.messages import (
    OutcomeQuery,
    OutcomeReply,
    ProtoMsg,
    TermAck,
    TermBlocked,
    TermDecision,
    TermMoveTo,
    TermStateQuery,
    TermStateReply,
)
from repro.runtime.policies import VotePolicy
from repro.runtime.recovery import RecoveryController
from repro.runtime.termination import ElectionStrategy, TerminationController
from repro.sim.process import Process
from repro.sim.simulator import Simulator
from repro.types import Outcome, SiteId

#: Callback the harness registers for decisions: (site, outcome, via).
OutcomeListener = Callable[[SiteId, Outcome, str], None]


class CommitSite(Process):
    """A participating site: engine + DT log + termination + recovery.

    Args:
        sim: The simulator.
        network: The shared network (the site attaches itself).
        spec: The protocol being executed.
        site_id: This site's id within the spec.
        vote_policy: Resolves this site's vote.
        rule: Termination decision rule (shared across sites; built
            once per protocol by the harness).
        elect: Election strategy for the backup coordinator.
        termination_enabled: Disable to demonstrate what happens
            without a termination protocol (undecided sites hang).
        requery_interval: Recovery re-query period while in doubt.
        on_outcome: Harness callback fired on every local decision.
        on_blocked: Harness callback fired when the site learns that
            the termination protocol is blocked.
    """

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        spec: ProtocolSpec,
        site_id: SiteId,
        vote_policy: VotePolicy,
        rule: TerminationRule,
        elect: Optional[ElectionStrategy] = None,
        termination_enabled: bool = True,
        termination_mode: str = "standard",
        total_failure_recovery: bool = False,
        presumption: str = "none",
        requery_interval: float = 5.0,
        on_outcome: Optional[OutcomeListener] = None,
        on_blocked: Optional[Callable[[SiteId], None]] = None,
    ) -> None:
        super().__init__(sim, name=f"site-{site_id}")
        self.site = site_id
        self.spec = spec
        self.network = network
        self.log = DTLog()
        self.vote_policy = vote_policy
        self.termination_enabled = termination_enabled
        self.presumption = presumption
        self.ever_crashed = False
        self.known_failed: set[SiteId] = set()
        self._on_outcome = on_outcome
        self._on_blocked = on_blocked
        self._payload_crash_at: Optional[int] = None
        self._payload_crash_cb = lambda: None
        self._payloads_sent = 0

        self.engine = self._fresh_engine()
        self.termination = TerminationController(
            self, rule, elect=elect, mode=termination_mode
        )
        self.recovery = RecoveryController(
            self,
            requery_interval=requery_interval,
            total_failure_recovery=total_failure_recovery,
            presumption=presumption,
        )

        network.attach(site_id, self)
        network.add_failure_listener(site_id, self._peer_failed)
        network.add_recovery_listener(site_id, self._peer_recovered)

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------

    def _fresh_engine(self) -> Engine:
        membership: tuple[SiteId, ...] = ()
        if self.site == self.spec.coordinator:
            membership = tuple(
                site
                for site in self.spec.sites
                if site != self.site and site not in self.spec.read_only_sites
            )
        return Engine(
            automaton=self.spec.automaton(self.site),
            vote_policy=self.vote_policy,
            log=self.log,
            send=self._send_model,
            now=lambda: self.sim.now,
            on_final=self._decided,
            on_trace=lambda category, detail, **data: self.trace(
                category, detail, site=self.site, **data
            ),
            presumption=self.presumption,
            membership=membership,
        )

    # ------------------------------------------------------------------
    # Messaging
    # ------------------------------------------------------------------

    def _send_model(self, msg: Msg) -> None:
        """Transmit one model message produced by the engine."""
        self.network.send(self.site, msg.dst, ProtoMsg(msg.kind))

    def send_payload(self, dst: SiteId, payload: Payload) -> None:
        """Transmit a termination/recovery payload.

        Control-plane sends honour the payload crash injector: a site
        armed with :class:`~repro.workload.crashes.CrashAfterPayloads`
        dies just before its n-th payload leaves, cutting broadcasts
        off mid-loop (subsequent sends no-op because the site is dead).
        """
        if not self.alive:
            return
        if self._payload_crash_at is not None:
            self._payloads_sent += 1
            if self._payloads_sent >= self._payload_crash_at:
                self._payload_crash_at = None
                self.trace(
                    "site.payload_crash",
                    f"crashed before control-plane send of {payload}",
                    site=self.site,
                )
                self._payload_crash_cb()
                return
        self.network.send(self.site, dst, payload)

    def arm_payload_crash(self, payload_number: int, crash) -> None:
        """Arm a :class:`CrashAfterPayloads` injection (harness hook)."""
        self._payload_crash_at = payload_number
        self._payload_crash_cb = crash

    def inject_external(self, msg: Msg) -> None:
        """Deliver an external input (``request`` / ``xact``) directly."""
        if self.alive:
            self.engine.receive(msg)

    def deliver(self, envelope: Envelope) -> None:
        """Network sink: dispatch by payload family."""
        if not self.alive:
            return
        payload = envelope.payload
        if isinstance(payload, ProtoMsg):
            if self.ever_crashed:
                # A recovered site does not rejoin the commit protocol;
                # the recovery protocol resolves its outcome instead.
                return
            self.engine.receive(Msg(payload.kind, envelope.src, self.site))
        elif isinstance(payload, TermMoveTo):
            if not self.ever_crashed:
                self.termination.on_move_to(envelope.src, payload)
        elif isinstance(payload, TermAck):
            self.termination.on_ack(envelope.src, payload)
        elif isinstance(payload, TermDecision):
            self.termination.on_decision(envelope.src, payload)
        elif isinstance(payload, TermBlocked):
            self.termination.on_blocked(envelope.src, payload)
        elif isinstance(payload, TermStateQuery):
            if not self.ever_crashed:
                self.termination.on_state_query(envelope.src, payload)
        elif isinstance(payload, TermStateReply):
            self.termination.on_state_reply(envelope.src, payload)
        elif isinstance(payload, OutcomeQuery):
            self.recovery.on_query(envelope.src, payload)
        elif isinstance(payload, OutcomeReply):
            self.recovery.on_reply(envelope.src, payload)

    # ------------------------------------------------------------------
    # Failure-detector notifications
    # ------------------------------------------------------------------

    def _peer_failed(self, failed: SiteId) -> None:
        if failed not in self.spec.automata:
            return
        self.known_failed.add(failed)
        self.trace(
            "site.peer_failed", f"notified of failure of site {failed}", site=self.site
        )
        if (
            self.termination_enabled
            and not self.ever_crashed
            and self.site not in self.spec.read_only_sites
        ):
            # Read-only participants left the protocol at phase 1 and
            # take no part in termination.
            self.termination.on_peer_failure(failed)

    def _peer_recovered(self, peer: SiteId) -> None:
        if peer not in self.spec.automata:
            return
        self.trace(
            "site.peer_recovered",
            f"notified of recovery of site {peer}",
            site=self.site,
        )
        self.recovery.on_peer_recovered(peer)

    def operational_participants(self) -> list[SiteId]:
        """Participants this site believes operational (never-crashed).

        Derived from the reliable failure notifications received so
        far; the site itself is included while alive.  Recovered sites
        stay excluded — they are clients of the recovery protocol, not
        termination participants — and so are read-only participants,
        which exit at phase 1 without an outcome.
        """
        return sorted(
            site
            for site in self.spec.sites
            if site not in self.known_failed
            and site not in self.spec.read_only_sites
            and (site != self.site or self.alive)
        )

    # ------------------------------------------------------------------
    # Outcome plumbing
    # ------------------------------------------------------------------

    def _decided(self, outcome: Outcome, via: str) -> None:
        self.trace(
            "site.decided", f"{outcome.value} via {via}", site=self.site, via=via
        )
        if self._on_outcome is not None:
            self._on_outcome(self.site, outcome, via)

    def notify_blocked(self) -> None:
        """Tell the harness this site is blocked (no safe decision)."""
        if self._on_blocked is not None:
            self._on_blocked(self.site)

    # ------------------------------------------------------------------
    # Crash lifecycle
    # ------------------------------------------------------------------

    def on_crash(self) -> None:
        """Lose all volatile state; the DT log survives."""
        self.ever_crashed = True
        self.engine.halt()
        self.trace("site.down", "crashed; volatile state lost", site=self.site)

    def on_restart(self) -> None:
        """Come back up with a fresh engine and run recovery."""
        self.engine = self._fresh_engine()
        self.trace("site.up", "restarted; running recovery", site=self.site)
        self.recovery.on_restart()
