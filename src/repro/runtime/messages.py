"""Network payloads used by the runtime.

Three protocol layers share the simulated network, each with its own
payload family:

* :class:`ProtoMsg` — a message of the commit protocol proper (a model
  :class:`~repro.fsa.messages.Msg` kind; sender/receiver come from the
  envelope);
* ``Term*`` — the termination protocol (slides 38–39);
* ``Outcome*`` — the recovery protocol's outcome queries.
"""

from __future__ import annotations

import dataclasses

from repro.types import Outcome, SiteId


@dataclasses.dataclass(frozen=True)
class ProtoMsg:
    """One commit-protocol message: just the model message kind."""

    kind: str

    def __str__(self) -> str:
        return self.kind


@dataclasses.dataclass(frozen=True)
class TermMoveTo:
    """Phase 1 of the backup protocol: adopt the backup's local state.

    Attributes:
        backup: The backup coordinator issuing the request.
        state: The backup's local state, to be adopted by receivers.
        round_no: Termination round (increases with each re-election so
            stragglers from a superseded backup are ignored).
    """

    backup: SiteId
    state: str
    round_no: int

    def __str__(self) -> str:
        return f"term-move-to({self.state}, r{self.round_no})"


@dataclasses.dataclass(frozen=True)
class TermAck:
    """A participant's acknowledgement of :class:`TermMoveTo`."""

    round_no: int

    def __str__(self) -> str:
        return f"term-ack(r{self.round_no})"


@dataclasses.dataclass(frozen=True)
class TermDecision:
    """Phase 2 of the backup protocol: the final commit/abort order."""

    outcome: Outcome
    round_no: int

    def __str__(self) -> str:
        return f"term-{self.outcome.value}(r{self.round_no})"


@dataclasses.dataclass(frozen=True)
class TermBlocked:
    """The backup's announcement that no safe decision exists.

    Sent when the decision rule yields BLOCKED — possible only for
    blocking protocols such as 2PC.  Operational sites stop and wait
    for the crashed site(s) to recover.
    """

    round_no: int

    def __str__(self) -> str:
        return f"term-blocked(r{self.round_no})"


@dataclasses.dataclass(frozen=True)
class TermStateQuery:
    """Cooperative termination, phase 0: report your local state.

    Sent by a cooperative backup before applying the decision rule, so
    a peer that already holds a final outcome can be adopted directly
    instead of blocking on the backup's own (less informed) state.
    """

    backup: SiteId
    round_no: int

    def __str__(self) -> str:
        return f"term-state-query(r{self.round_no})"


@dataclasses.dataclass(frozen=True)
class TermStateReply:
    """A participant's answer to :class:`TermStateQuery`."""

    state: str
    outcome: Outcome
    round_no: int

    def __str__(self) -> str:
        return f"term-state-reply({self.state}, r{self.round_no})"


@dataclasses.dataclass(frozen=True)
class OutcomeQuery:
    """A recovering site asking a peer for the transaction outcome."""

    def __str__(self) -> str:
        return "outcome-query"


@dataclasses.dataclass(frozen=True)
class OutcomeReply:
    """Answer to :class:`OutcomeQuery`.

    ``outcome`` is COMMIT/ABORT when the replier has decided, and
    UNDECIDED when it has not (the recovering site retries later).
    ``recovered_in_doubt`` marks a replier that itself crashed and came
    back in doubt — the signal total-failure recovery aggregates: when
    *every* participant says so, provably no decision was ever made
    and abort is safe.
    """

    outcome: Outcome
    recovered_in_doubt: bool = False

    def __str__(self) -> str:
        flag = ", recovered-in-doubt" if self.recovered_in_doubt else ""
        return f"outcome-reply({self.outcome.value}{flag})"
