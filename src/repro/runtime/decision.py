"""The termination decision rule, derived from concurrency sets.

Slide 39's rule for backup coordinators: "If the concurrency set for
the current state of the backup coordinator contains a commit state,
then the transaction is committed.  Otherwise, it is aborted."

That rule is stated for *nonblocking* protocols, where it is always
safe.  Applied naively to a blocking protocol it would violate
atomicity (a 2PC slave in ``w`` has a commit state in its concurrency
set, but the crashed coordinator may have aborted).  This module
therefore implements the rule in its theorem-complete, three-valued
form, following slides 27–28:

* **ABORT** — safe iff the concurrency set contains no commit state;
* **COMMIT** — safe iff the state is committable and the concurrency
  set contains no abort state;
* **BLOCKED** — neither decision is safe: the concurrency set contains
  both a commit and an abort state, or the state is noncommittable
  with a commit state in its concurrency set.  This is exactly the
  blocking situation of the fundamental theorem; for nonblocking
  protocols it is unreachable, which :meth:`TerminationRule.verify_nonblocking`
  checks.
"""

from __future__ import annotations

from typing import Optional

from repro.analysis.committable import committable_states
from repro.analysis.concurrency import concurrency_set
from repro.analysis.reachability import (
    DEFAULT_BUDGET,
    ReachableStateGraph,
    build_state_graph,
)
from repro.errors import TerminationError
from repro.fsa.spec import ProtocolSpec
from repro.types import Outcome, SiteId


class TerminationRule:
    """Precomputed per-(site, state) termination decisions for one spec.

    Building the rule costs one reachable-state-graph enumeration; each
    lookup is then O(1), which is what the simulated backup coordinator
    consults at failure time.  (Operationally this mirrors the paper's
    remark that "in practice, we seldom need to actually build" the
    graph at run time — here it is built once, offline, per protocol.)

    Args:
        spec: The protocol the rule serves.
        graph: Optional pre-built state graph.
        budget: Node budget when building the graph.
    """

    def __init__(
        self,
        spec: ProtocolSpec,
        graph: Optional[ReachableStateGraph] = None,
        budget: Optional[int] = DEFAULT_BUDGET,
    ) -> None:
        self.spec = spec
        if graph is None:
            graph = build_state_graph(spec, budget=budget)
        committable = committable_states(graph)

        self._decisions: dict[tuple[SiteId, str], Outcome] = {}
        for site in graph.sites:
            automaton = spec.automaton(site)
            for state in graph.reachable_local_states(site):
                # A read-only exit state has no termination decision:
                # the site left the protocol without an outcome and is
                # never consulted by (or elected into) the termination
                # protocol.
                if state in automaton.read_only_states:
                    continue
                # Final states decide themselves: commit/abort are
                # irreversible, so a final backup re-announces its
                # outcome (slide 39 lets it skip phase 1 too).
                if state in automaton.commit_states:
                    self._decisions[(site, state)] = Outcome.COMMIT
                    continue
                if state in automaton.abort_states:
                    self._decisions[(site, state)] = Outcome.ABORT
                    continue
                cs = concurrency_set(graph, site, state)
                has_commit = any(
                    spec.is_commit_state(other, local) for other, local in cs
                )
                has_abort = any(
                    spec.is_abort_state(other, local) for other, local in cs
                )
                if not has_commit:
                    self._decisions[(site, state)] = Outcome.ABORT
                elif committable[(site, state)] and not has_abort:
                    self._decisions[(site, state)] = Outcome.COMMIT
                else:
                    self._decisions[(site, state)] = Outcome.BLOCKED

    def decide(self, site: SiteId, state: str) -> Outcome:
        """The decision a backup in ``state`` at ``site`` must take.

        Raises:
            TerminationError: If the (site, state) pair is not a
                reachable configuration of the protocol.
        """
        try:
            return self._decisions[(site, state)]
        except KeyError:
            raise TerminationError(
                f"no termination decision for site {site} state {state!r} "
                f"in {self.spec.name!r} (unreachable state?)"
            ) from None

    def table(self, site: SiteId) -> dict[str, Outcome]:
        """The full decision table of one site — the shape of slide 40."""
        return {
            state: outcome
            for (owner, state), outcome in sorted(self._decisions.items())
            if owner == site
        }

    def blocked_states(self) -> list[tuple[SiteId, str]]:
        """All (site, state) pairs where no safe decision exists."""
        return sorted(
            key
            for key, outcome in self._decisions.items()
            if outcome is Outcome.BLOCKED
        )

    def verify_nonblocking(self) -> None:
        """Assert the rule never yields BLOCKED.

        Raises:
            TerminationError: Listing the blocked states, if any.  For
                the catalog 3PCs this never raises; for the 2PCs it
                does — the paper's point that "a termination protocol
                can only be effective if the associated commit protocol
                is nonblocking" (slide 12).
        """
        blocked = self.blocked_states()
        if blocked:
            listing = ", ".join(f"site {s} state {t!r}" for s, t in blocked)
            raise TerminationError(
                f"{self.spec.name!r} has blocked termination states: {listing}"
            )
