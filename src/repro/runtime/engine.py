"""The FSA interpreter: executes one site's protocol automaton.

The engine is the runtime half of the "one model, two uses" design: it
interprets the exact :class:`~repro.fsa.automaton.SiteAutomaton` the
analysis layer reasons about.  It buffers incoming model messages,
fires transitions whose read sets are satisfied, resolves vote
nondeterminism through the site's vote policy, and write-ahead-logs
votes and decisions to the DT log.

Crash realism (slide 21): local state transitions are *not* atomic
under site failures.  A transition fires as: force log records, then
transmit writes one at a time, then advance the local state.  The crash
injector can interrupt after any prefix of the writes, in which case
the state does not advance — some messages are out, the rest never
will be, exactly the partial-transition failure the paper describes.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.errors import TransitionError
from repro.fsa.automaton import SiteAutomaton, Transition
from repro.fsa.compile import (
    CompiledAutomaton,
    CompiledTransition,
    compile_automaton,
    engine_compiled,
)
from repro.fsa.messages import Msg
from repro.runtime.log import DTLog
from repro.runtime.policies import VotePolicy
from repro.types import Outcome, SiteId, Vote


class Engine:
    """Interprets one site automaton.

    Args:
        automaton: The site's FSA.
        vote_policy: Resolves this site's vote nondeterminism.
        log: The site's DT log (crash-surviving).
        send: Callback transmitting one model message on the network.
        now: Callback returning the current virtual time (for log
            timestamps).
        on_final: Callback invoked with (outcome, via) when the site
            enters a final state.
        on_trace: Callback for trace lines ``(category, detail, data)``.
        presumption: Commit presumption governing which log records are
            forced: ``"none"`` (every record, the classic write-ahead
            discipline), ``"abort"`` (presumed abort: abort-side
            records are logged lazily), or ``"commit"`` (presumed
            commit: the coordinator forces a membership record up
            front, participants log decisions lazily).
        membership: Voting participants to pin in the presumed-commit
            membership record; supplied only to the coordinator.
    """

    def __init__(
        self,
        automaton: SiteAutomaton,
        vote_policy: VotePolicy,
        log: DTLog,
        send: Callable[[Msg], None],
        now: Callable[[], float],
        on_final: Callable[[Outcome, str], None],
        on_trace: Callable[..., None],
        presumption: str = "none",
        membership: tuple[SiteId, ...] = (),
    ) -> None:
        self.automaton = automaton
        self.site: SiteId = automaton.site
        self.vote_policy = vote_policy
        self.log = log
        self._send = send
        self._now = now
        self._on_final = on_final
        self._trace = on_trace
        self.presumption = presumption
        self._membership = membership
        self.state = automaton.initial
        self.buffer: set[Msg] = set()
        # Compiled fast path: flat tuple-indexed transition tables with
        # interned message keys (see repro.fsa.compile).  ``_cstate``
        # and ``_ckeys`` mirror ``state`` and ``buffer`` as small ints;
        # the mode is captured at construction so a mid-run flip of the
        # global switch (differential tests) cannot desynchronize them.
        self._compiled: Optional[CompiledAutomaton] = (
            compile_automaton(automaton) if engine_compiled() else None
        )
        self._cstate = (
            self._compiled.index[automaton.initial]
            if self._compiled is not None
            else -1
        )
        self._ckeys: set[int] = set()
        self.transitions_fired = 0
        self._halted = False
        # When the current FSA state (= protocol phase) was entered;
        # the initial state is occupied from virtual time zero.
        self._phase_entered_at: float = 0.0
        # Partial-send crash request: (transition_number, writes_to_send,
        # crash_callback).  Armed by the failure injector.
        self._partial_crash: Optional[tuple[int, int, Callable[[], None]]] = None

    # ------------------------------------------------------------------
    # Status
    # ------------------------------------------------------------------

    @property
    def finished(self) -> bool:
        """Whether the site reached a final (commit/abort) state."""
        return self.automaton.is_final(self.state)

    @property
    def outcome(self) -> Outcome:
        """Current outcome implied by the local state."""
        if self.state in self.automaton.commit_states:
            return Outcome.COMMIT
        if self.state in self.automaton.abort_states:
            return Outcome.ABORT
        return Outcome.UNDECIDED

    def halt(self) -> None:
        """Stop interpreting (used on crash); buffered messages are lost."""
        self._halted = True

    # ------------------------------------------------------------------
    # Failure injection
    # ------------------------------------------------------------------

    def arm_partial_crash(
        self,
        transition_number: int,
        after_writes: int,
        crash: Callable[[], None],
    ) -> None:
        """Crash mid-transition: during this site's ``transition_number``-th
        firing (1-based), transmit only ``after_writes`` messages, then
        invoke ``crash`` without advancing the local state."""
        self._partial_crash = (transition_number, after_writes, crash)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def receive(self, msg: Msg) -> None:
        """Buffer one model message and fire whatever becomes enabled."""
        if self._halted:
            return
        self.buffer.add(msg)
        compiled = self._compiled
        if compiled is not None:
            key = compiled.msg_keys.get(msg)
            if key is not None:
                self._ckeys.add(key)
        self.pump()

    def pump(self) -> None:
        """Fire enabled transitions until quiescent."""
        while not self._halted and not self.finished:
            transition = self._pick_enabled()
            if transition is None:
                return
            fired = self._fire(transition)
            if not fired:
                return

    def _pick_enabled(self) -> Optional["Transition | CompiledTransition"]:
        """Choose the transition to fire, resolving vote nondeterminism.

        Raises:
            TransitionError: If several enabled transitions remain that
                disagree on target or writes after vote resolution —
                genuine ambiguity a correct spec never exhibits.
        """
        compiled = self._compiled
        if compiled is not None:
            keys = self._ckeys
            enabled = [
                t for t in compiled.out[self._cstate] if t.reads_keys <= keys
            ]
        else:
            enabled = [
                t
                for t in self.automaton.out_transitions(self.state)
                if t.reads <= self.buffer
            ]
        if not enabled:
            return None
        if len(enabled) == 1:
            return enabled[0]

        voted = [t for t in enabled if t.vote is not None]
        if voted:
            my_vote = self.vote_policy.vote(self.site)
            matching = [t for t in enabled if t.vote is my_vote]
            if matching:
                enabled = matching

        # Remaining candidates must be interchangeable (same effect).
        first = enabled[0]
        for other in enabled[1:]:
            if other.target != first.target or other.writes != first.writes:
                raise TransitionError(
                    f"site {self.site} state {self.state!r}: ambiguous "
                    f"enabled transitions {first.describe()} vs "
                    f"{other.describe()}"
                )
        return first

    def _fire(self, transition: "Transition | CompiledTransition") -> bool:
        """Execute one transition.

        Returns:
            ``True`` if the transition completed (state advanced),
            ``False`` if a partial-send crash interrupted it.
        """
        self.transitions_fired += 1

        # Presumed commit: the coordinator pins the participant set
        # durably before the first message of the transaction leaves —
        # a later no-record query answer of "commit" is only sound for
        # transactions that provably never started.
        if (
            self._membership
            and self.presumption == "commit"
            and self.state == self.automaton.initial
            and self.log.membership() is None
        ):
            self.log.write_membership(self._membership, self._now())
            self._trace(
                "engine.membership",
                f"membership {sorted(self._membership)} forced "
                "(presumed commit)",
                members=sorted(self._membership),
            )

        # Write-ahead: log the vote and/or decision before any send;
        # the presumption decides which records need the force.  A
        # read-only vote is never logged — the one-phase exit's whole
        # point is zero DT-log writes at the read-only site.
        if (
            transition.vote is not None
            and transition.vote is not Vote.READ_ONLY
            and self.log.vote() is None
        ):
            self.log.write_vote(
                transition.vote,
                self._now(),
                forced=self._vote_forced(transition.vote),
            )
        if self._compiled is not None:
            entering_final = transition.target_final
        else:
            entering_final = self.automaton.is_final(transition.target)
        entering_read_only = transition.target in self.automaton.read_only_states
        if entering_final and not entering_read_only:
            outcome = (
                Outcome.COMMIT
                if transition.target in self.automaton.commit_states
                else Outcome.ABORT
            )
            self.log.write_decision(
                outcome,
                self._now(),
                via="protocol",
                forced=self._decision_forced(outcome),
            )

        partial = self._partial_crash
        crash_now = (
            partial is not None and partial[0] == self.transitions_fired
        )
        writes = transition.writes
        if crash_now:
            writes = transition.writes[: partial[1]]

        self.buffer -= transition.reads
        if self._compiled is not None:
            self._ckeys -= transition.reads_keys
        for msg in writes:
            self._send(msg)

        if crash_now:
            self._partial_crash = None
            self._trace(
                "engine.partial_crash",
                f"crashed during {transition.describe()} after "
                f"{len(writes)}/{len(transition.writes)} writes",
                transition=transition.describe(),
                sent=len(writes),
            )
            partial[2]()
            return False

        previous = self.state
        self.state = transition.target
        if self._compiled is not None:
            self._cstate = transition.target_idx
        self._trace(
            "engine.transition",
            transition.describe(),
            state=self.state,
            fired=self.transitions_fired,
        )
        self._advance_phase(previous)
        if entering_final:
            if entering_read_only:
                # The one-phase exit: terminal, but no outcome and no
                # DT record — the site simply leaves the protocol.
                self._trace(
                    "txn.readonly_exit",
                    "read-only exit after phase 1",
                    state=self.state,
                )
                self._on_final(Outcome.UNDECIDED, "read-only")
            else:
                self._record_decision("protocol")
                self._on_final(self.outcome, "protocol")
        return True

    def _vote_forced(self, vote: Vote) -> bool:
        """Whether the presumption requires forcing this vote record.

        Yes votes are always forced — the in-doubt protocol depends on
        a durable yes.  A no vote is the abort side's first record:
        under presumed abort losing it merely re-derives the
        presumption, so the force is skipped; under presumed commit a
        lost no would be mis-presumed as commit, so it stays forced.
        """
        if vote is Vote.NO:
            return self.presumption != "abort"
        return True

    def _decision_forced(self, outcome: Outcome) -> bool:
        """Whether the presumption requires forcing this decision record.

        With no presumption every decision is forced.  Under either
        presumption the coordinator's commit stays forced — it is the
        cluster-durable authority every in-doubt participant resolves
        against (this protocol family sends no decision acks, so the
        coordinator never forgets a decision and participants may log
        theirs lazily).  Abort decisions are lazy everywhere: presumed
        abort re-derives them from the absence of records, and presumed
        commit re-derives them from a membership record with no
        decision (coordinator) or a forced no vote / in-doubt query
        (participants).
        """
        if self.presumption == "none":
            return True
        return (
            outcome is Outcome.COMMIT
            and self.automaton.role == "coordinator"
        )

    def _advance_phase(self, previous: str) -> None:
        """Emit the ``phase.exit``/``phase.enter`` pair for a state change.

        The FSA state *is* the protocol phase (q/w/p/a/c...), so phase
        timing falls straight out of state occupancy: ``elapsed`` on the
        exit event is how long the site sat in the phase it just left.
        """
        now = self._now()
        self._trace(
            "phase.exit",
            f"left {previous!r} after {now - self._phase_entered_at:g}",
            phase=previous,
            elapsed=now - self._phase_entered_at,
        )
        self._phase_entered_at = now
        self._trace(
            "phase.enter",
            f"entered {self.state!r}",
            phase=self.state,
        )

    def _record_decision(self, via: str) -> None:
        """Emit the ``txn.decided`` event (decision latency = its time)."""
        self._trace(
            "txn.decided",
            f"{self.outcome.value} via {via}",
            outcome=self.outcome.value,
            via=via,
            state=self.state,
        )

    # ------------------------------------------------------------------
    # Forced moves (termination protocol hooks)
    # ------------------------------------------------------------------

    def force_state(self, state: str) -> None:
        """Adopt a local state on the backup coordinator's order.

        Phase 1 of the backup protocol (slide 39) asks every site to
        make a transition to the backup's local state.

        Raises:
            TransitionError: If the label is not a state of this
                automaton (heterogeneous protocols would need a state
                mapping, which the catalog protocols do not).
        """
        if state not in self.automaton.states:
            raise TransitionError(
                f"site {self.site} cannot adopt unknown state {state!r}"
            )
        if self.finished:
            return
        previous = self.state
        self.state = state
        if self._compiled is not None:
            self._cstate = self._compiled.index[state]
        self._trace(
            "engine.forced_state",
            f"moved {previous!r} -> {state!r} by termination protocol",
            state=state,
        )
        if state != previous:
            self._advance_phase(previous)

    def force_outcome(self, outcome: Outcome, via: str) -> None:
        """Adopt a final outcome delivered by termination or recovery."""
        if self.finished:
            return
        if outcome is Outcome.COMMIT:
            target = sorted(self.automaton.commit_states)[0]
        elif outcome is Outcome.ABORT:
            target = sorted(self.automaton.abort_states)[0]
        else:
            raise TransitionError(f"cannot force non-final outcome {outcome}")
        self.log.write_decision(outcome, self._now(), via=via)
        previous = self.state
        self.state = target
        if self._compiled is not None:
            self._cstate = self._compiled.index[target]
        self._trace(
            "engine.forced_outcome",
            f"{outcome.value} via {via}",
            state=target,
            via=via,
        )
        if target != previous:
            self._advance_phase(previous)
        self._record_decision(via)
        self._on_final(outcome, via)
